(* Crash storm: recoverable consensus vs its non-recoverable baseline
   under increasingly hostile crash schedules.

     dune exec examples/crash_storm.exe

   For each crash rate, many random executions are driven for both
   algorithms on the same kind of 2-process system:

   - the Figure 2 algorithm (from the swap-free sticky-bit certificate)
     must never fail, whatever the crash rate (Theorem 8);
   - Ruppert's standard team-consensus algorithm on the swap register
     (consensus number 2!) works perfectly at crash rate 0 and starts
     failing as soon as crashes are enabled -- a crashed process swaps a
     second time and destroys the evidence of who went first.

   This is the paper's title, observed: recoverable consensus is strictly
   harder than consensus for some types. *)

open Rcons.Runtime

let uniform rng crash_prob =
  Adversary.of_rng ~rng (Adversary.Uniform { crash_prob; max_crashes = 6 })

let run_figure2 rng crash_prob =
  let cert =
    match Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 2 with
    | Some c -> c
    | None -> assert false
  in
  let inputs = [| 1; 2 |] in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n:2 in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n:2 body in
  ignore (Adversary.run ~record:false (uniform rng crash_prob) sim);
  Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs

let run_baseline rng crash_prob =
  let cert =
    match Rcons.Check.Discerning.witness Rcons.Spec.Swap.default 2 with
    | Some c -> c
    | None -> assert false
  in
  let inputs = [| 1; 2 |] in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.standard_consensus cert ~n:2 in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n:2 body in
  match Adversary.run ~record:false (uniform rng crash_prob) sim with
  | _ -> Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs
  | exception Invalid_argument _ ->
      (* the baseline's internal invariant broke: also a failure *)
      false

let () =
  let iters = 2000 in
  Format.printf "%-12s %-22s %s@." "crash rate" "Figure 2 (recoverable)" "Ruppert baseline";
  Format.printf "%s@." (String.make 58 '-');
  List.iter
    (fun crash_prob ->
      let rng = Random.State.make [| 42 |] in
      let ok_fig2 = ref 0 and ok_base = ref 0 in
      for _ = 1 to iters do
        if run_figure2 rng crash_prob then incr ok_fig2;
        if run_baseline rng crash_prob then incr ok_base
      done;
      Format.printf "%-12.2f %6d/%d ok %18d/%d ok@." crash_prob !ok_fig2 iters !ok_base iters)
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  Format.printf
    "@.The recoverable algorithm never fails; the baseline degrades with the crash rate.@.";
  (* The other adversary policies, on the recoverable algorithm: a storm
     (bursts of simultaneous victims) and a quiescent-window adversary
     (crashes only in the first half of each 8-step window).  Recording
     is on, so each run yields a replayable schedule. *)
  Format.printf "@.Hostile policies against the Figure 2 algorithm (seed 7):@.";
  let cert = Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 2) in
  List.iter
    (fun pol ->
      let inputs = [| 1; 2 |] in
      let outputs = Rcons.Algo.Outputs.make ~inputs in
      let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n:2 in
      let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
      let sim = Sim.create ~n:2 body in
      let o = Adversary.run (Adversary.create ~seed:7 pol) sim in
      let ok =
        Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs
      in
      Format.printf "  %-40s %s, %d crashes, %d steps@."
        (Format.asprintf "%a" Adversary.pp_policy pol)
        (if ok then "ok" else "VIOLATION")
        o.Adversary.crashes o.Adversary.steps)
    [
      Adversary.Storm { crash_prob = 0.3; burst = 2; max_crashes = 6 };
      Adversary.Quiescent { period = 8; active = 4; crash_prob = 0.3; max_crashes = 6 };
      Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.3; max_crashes = 6 };
    ]
