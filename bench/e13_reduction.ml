(* E13 -- partial-order + symmetry reduction ablation (ISSUE 7).

   One table: workload x crash bound x reduction mode -> nodes walked,
   completed schedules, distinct states, reduction counters, wall-clock,
   verdict.  Raw mode enumerates every interleaving (the paper-table
   numbers); dedup explores the graded state graph (PR "dedup"); por
   adds sleep-set partial-order reduction over step footprints; sym adds
   process-symmetry canonicalization where the workload's processes are
   interchangeable (certificate-derived classes).  The rows demonstrate
   the goal line of the reduction layer: 3-crash Figure 2 sweeps and an
   n = 4 RUniversal sweep inside the CI budget.

   Raw sweeps of the large configurations are far beyond the 20M-node
   cap (the 2-crash raw tree is already 5.4M nodes); those rows are
   listed as "(skipped: raw infeasible)" so the table still records the
   comparison point. *)

open Rcons.Runtime

let team_mk cert ~inputs () =
  let na, _ = Rcons.Check.Certificate.recording_teams cert in
  let n = Array.length inputs in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let tc = Rcons.Algo.Team_consensus.create cert in
  let body pid () =
    let team, slot =
      if pid < na then (Rcons.Spec.Team.A, pid) else (Rcons.Spec.Team.B, pid - na)
    in
    Rcons.Algo.Outputs.record outputs pid
      (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
  in
  ( Sim.create ~n body,
    fun () -> Rcons.Algo.Outputs.check_exn ~fail:Explore.fail outputs )

(* RUniversal counter, one Incr per process, checked for recoverable
   linearizability at every leaf (all current runs finished).  The
   history drives the invariant, so it registers with the active Heap
   arena: dedup would otherwise collapse states with different
   observable histories. *)
let runiversal_mk ~n () =
  let open Rcons.Universal in
  let history = Rcons.History.History.create () in
  Heap.register (fun () -> Heap.digest (Rcons.History.History.events history));
  let u = Runiversal.create ~history ~n Derived.counter in
  let scripts = Array.init n (fun _ -> [| Derived.Incr |]) in
  let runner = Script.create u ~n ~max_ops:1 in
  let sim = Sim.create ~n (fun pid () -> Script.run runner pid scripts.(pid)) in
  let spec = Derived.lin_spec Derived.counter in
  let check () =
    if Sim.all_finished sim then
      if not (Rcons.History.Linearizability.check_history spec history) then
        Explore.fail "history not recoverable-linearizable"
  in
  (sim, check)

type mode = { m_label : string; m_dedup : bool; m_por : bool; m_sym : bool }

let raw_m = { m_label = "raw"; m_dedup = false; m_por = false; m_sym = false }
let dedup_m = { m_label = "dedup"; m_dedup = true; m_por = false; m_sym = false }
let por_m = { m_label = "dedup+por"; m_dedup = true; m_por = true; m_sym = false }
let por_sym_m = { m_label = "dedup+por+sym"; m_dedup = true; m_por = true; m_sym = true }
let raw_por_m = { m_label = "raw+por"; m_dedup = false; m_por = true; m_sym = false }

let header () =
  Util.row "%-26s %-3s %-14s %12s %12s %10s %12s %9s %9s  %s@." "workload" "cr" "mode" "nodes"
    "schedules" "states" "por-pruned" "sym-hits" "seconds" "verdict"

let row ?max_nodes ~name ~classes ~mk ~max_crashes mode =
  let symmetry = if mode.m_sym then Some classes else None in
  match
    Util.time_it (fun () ->
        Explore.explore ~max_crashes ?max_nodes ~dedup:mode.m_dedup ~por:mode.m_por ?symmetry
          ~mk ())
  with
  | s, t ->
      Util.row "%-26s %-3d %-14s %12d %12d %10d %12d %9d %9.2f  %s@." name max_crashes
        mode.m_label s.Explore.nodes s.schedules s.distinct_states s.por_pruned s.symmetry_hits
        t "pass"
  | exception Explore.Violation v ->
      Util.row "%-26s %-3d %-14s %62s@." name max_crashes mode.m_label
        ("VIOLATION: " ^ v.Explore.v_msg)
  | exception Explore.Budget_exceeded s ->
      Util.row "%-26s %-3d %-14s %62s@." name max_crashes mode.m_label
        (Printf.sprintf "(node cap: > %d nodes, infeasible on this budget)" s.Explore.nodes)

let run () =
  Util.row "@.== E13: partial-order + symmetry reduction (sleep sets over step footprints) ==@.";
  header ();
  let s2 = Option.get (Rcons.Check.Recording.witness (Rcons.Spec.Sn.make 2) 2) in
  let sticky3 = Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 3) in
  let s4 = Option.get (Rcons.Check.Recording.witness (Rcons.Spec.Sn.make 4) 4) in
  let fig2_s2 = team_mk s2 ~inputs:[| 111; 222 |] in
  (* Interchangeable processes need the same code AND the same input:
     one input value per team. *)
  let mk_team cert =
    let na, nb = Rcons.Check.Certificate.recording_teams cert in
    let inputs = Array.init (na + nb) (fun i -> if i < na then 111 else 222) in
    team_mk cert ~inputs
  in
  let fig2_sticky3 = mk_team sticky3 in
  let fig2_s4 = mk_team s4 in
  let cls3 = Rcons.Check.Certificate.symmetry_classes sticky3 in
  let cls4 = Rcons.Check.Certificate.symmetry_classes s4 in
  let no_cls = [] in
  (* n = 2: no symmetry (singleton teams); raw+por shows the
     interleaving reduction alone, before state dedup. *)
  List.iter
    (fun (crashes, modes) ->
      List.iter
        (row ~name:"Figure 2 on S_2 (n=2)" ~classes:no_cls ~mk:fig2_s2 ~max_crashes:crashes)
        modes)
    [
      (1, [ raw_m; raw_por_m; dedup_m; por_m ]);
      (2, [ raw_m; raw_por_m; dedup_m; por_m ]);
      (3, [ dedup_m; por_m ]);
    ];
  (* n = 3, one two-member team: the reduction-factor ablation (the
     2-crash rows back the BENCH_parallel floor) and the goal-line
     exhaustive 3-crash sweep. *)
  List.iter
    (fun (crashes, modes) ->
      List.iter
        (row ~name:"Figure 2 on sticky (n=3)" ~classes:cls3 ~mk:fig2_sticky3
           ~max_crashes:crashes)
        modes)
    [ (2, [ dedup_m; por_m; por_sym_m ]); (3, [ dedup_m; por_m; por_sym_m ]) ];
  (* n = 4, two two-member teams: Theorem 8/14 boundary territory. *)
  List.iter
    (fun (crashes, modes) ->
      List.iter
        (row ~name:"Figure 2 on S_4 (n=4)" ~classes:cls4 ~mk:fig2_s4 ~max_crashes:crashes)
        modes)
    [ (1, [ dedup_m; por_m; por_sym_m ]) ];
  (* Universal construction: the boundary of the reduction.  The
     recoverable-linearizability invariant needs the full history in
     the state fingerprint, and a growing history (a) never revisits a
     state, so dedup degenerates to the raw tree, and (b) pins the
     total event order, so appends by different processes never
     commute and sleep sets barely prune.  The capped rows record that
     honestly: at n >= 3 even dedup+por blows the node cap, which is
     why the n = 4 sweep the reduction *does* unlock is Figure 2 on
     S_4 above, and why RUniversal at scale stays on the seeded random
     adversaries of E7. *)
  List.iter
    (fun (n, crashes, max_nodes, modes) ->
      List.iter
        (row
           ~name:(Printf.sprintf "RUniversal counter (n=%d)" n)
           ~classes:no_cls ~mk:(runiversal_mk ~n) ~max_crashes:crashes ~max_nodes)
        modes)
    [
      (2, 0, 500_000, [ dedup_m; por_m ]);
      (2, 1, 2_000_000, [ dedup_m; por_m ]);
      (3, 0, 500_000, [ dedup_m; por_m ]);
      (4, 1, 500_000, [ por_m ]);
    ];
  Util.row
    "@.Sleep-set por prunes interleavings, never states; symmetry quotients relabelings of@.";
  Util.row
    "interchangeable processes.  Raw mode stays the paper-table source (EXPERIMENTS.md E1-E12).@."
