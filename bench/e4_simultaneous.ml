(* E4 -- Figure 4 / Theorem 1: recoverable consensus under simultaneous
   crashes, built from standard consensus instances.

   The series reports, per process count and number of simultaneous
   crash events, the rounds (consensus instances) consumed and the total
   steps, over many runs -- the shape claimed by the paper/appendix: one
   round without crashes, rounds growing (at most linearly) with the
   number of crash events, unbounded in the limit (Golab's lower bound
   says bounded space is impossible). *)

open Rcons.Runtime
open Rcons.Algo

let make_consensus () =
  let c = One_shot.create () in
  { Simultaneous_rc.propose = (fun _pid v -> One_shot.decide c v) }

let run_once ~n ~crash_events ~seed =
  let inputs = Array.init n (fun i -> (i + 1) * 10) in
  let outputs = Outputs.make ~inputs in
  let rc = Simultaneous_rc.create ~n ~make_consensus in
  let body pid () = Outputs.record outputs pid (Simultaneous_rc.decide rc pid inputs.(pid)) in
  let sim = Sim.create ~n body in
  let rng = Random.State.make [| Util.seed seed |] in
  let crash_at =
    List.init crash_events (fun i -> 2 + (i * (4 + Random.State.int rng 5)))
  in
  ignore
    (Adversary.run ~record:false (Adversary.create (Adversary.Simultaneous { crash_at })) sim);
  let ok = Outputs.agreement_ok outputs && Outputs.validity_ok outputs in
  (ok, Simultaneous_rc.rounds_used rc, Sim.total_steps sim)

let run () =
  Util.section "E4 (Figure 4): RC under simultaneous crashes from consensus instances";
  Util.row "%-6s %-14s %-10s %-12s %-12s %s@." "n" "crash-events" "correct" "avg-rounds"
    "max-rounds" "avg-steps";
  List.iter
    (fun n ->
      List.iter
        (fun crash_events ->
          let iters = 200 in
          let ok = ref 0 and rounds = ref 0 and max_rounds = ref 0 and steps = ref 0 in
          for seed = 1 to iters do
            let o, r, s = run_once ~n ~crash_events ~seed in
            if o then incr ok;
            rounds := !rounds + r;
            max_rounds := max !max_rounds r;
            steps := !steps + s
          done;
          Util.row "%-6d %-14d %6d/%-4d %-12.2f %-12d %.1f@." n crash_events !ok iters
            (float_of_int !rounds /. float_of_int iters)
            !max_rounds
            (float_of_int !steps /. float_of_int iters))
        [ 0; 1; 2; 4; 8 ])
    [ 2; 4; 6 ]
