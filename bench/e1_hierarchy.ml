(* E1 -- Figure 1: the hierarchy table.

   For every catalogue type plus T_n and S_n, the maximum levels of the
   n-discerning and n-recording properties and the implied cons / rcons
   intervals.  The paper's claims visible in the table:
   - recording <= discerning (Observation 5),
   - discerning - 2 <= recording (Theorem 16 / Proposition 18),
   - rcons within [recording, recording + 1] and <= cons (Thms 8, 14,
     Corollary 17),
   - T_n: rcons < cons = n (Corollary 20); S_n: rcons = cons = n
     (Proposition 21). *)

let run ?(domains = 1) () =
  Util.section
    (if domains <= 1 then "E1 (Figure 1): discerning/recording levels and cons/rcons bounds"
     else
       Printf.sprintf
         "E1 (Figure 1): discerning/recording levels and cons/rcons bounds [%d domains]" domains);
  Util.row "%-20s %-9s %-11s %-10s %-8s %-8s %s@." "type" "readable" "discerning" "recording"
    "cons" "rcons" "check-time";
  let print ot limit =
    let r, dt = Util.time_it (fun () -> Rcons.classify ~domains ~limit ot) in
    Util.row "%-20s %-9b %-11s %-10s %-8s %-8s %.3fs@." r.Rcons.Check.Classify.type_name
      r.Rcons.Check.Classify.is_readable
      (Util.level_str r.Rcons.Check.Classify.discerning)
      (Util.level_str r.Rcons.Check.Classify.recording)
      (Util.bounds_str r.Rcons.Check.Classify.cons)
      (Util.bounds_str r.Rcons.Check.Classify.rcons)
      dt;
    r
  in
  let reports =
    List.map (fun e -> print e.Rcons.Spec.Catalogue.ot 5) Rcons.Spec.Catalogue.all
    @ List.map (fun n -> print (Rcons.Spec.Tn.make n) (n + 1)) [ 4; 5; 6 ]
    @ List.map (fun n -> print (Rcons.Spec.Sn.make n) (n + 1)) [ 2; 3; 4; 5; 6 ]
  in
  (* Figure 1's implications, checked on every reported type. *)
  let to_int = function Rcons.Check.Classify.Finite n -> n | Rcons.Check.Classify.At_least n -> n in
  let violations =
    List.filter
      (fun r ->
        let d = to_int r.Rcons.Check.Classify.discerning
        and rec_ = to_int r.Rcons.Check.Classify.recording in
        not (rec_ <= d && d - 2 <= rec_))
      reports
  in
  Util.row "@.Figure 1 implications (recording <= discerning <= recording + 2): %s@."
    (if violations = [] then "hold for all types above" else "VIOLATED")
