(* E9 -- Theorem 22: robustness up to 1.  For a set of readable types,
   rcons(set) lies in [max individual rcons lower bound, max + 1].

   For each sampled set the table shows the individual recording levels,
   the derived set-level rcons interval, a dynamic confirmation (an RC
   algorithm for max-level-many processes built from the strongest
   member, run under a crash adversary), and -- as an extra instrument --
   the recording level of the PRODUCT type of the set's members (one
   object carrying one component per member): the product inherits the
   strongest member's level and never jumps past the set-level bound. *)

open Rcons.Runtime

let dynamic_check cert n =
  let inputs = Array.init n (fun i -> i) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n body in
  let adv =
    Adversary.create ~seed:(Util.seed 77)
      (Adversary.Uniform { crash_prob = 0.2; max_crashes = 2 * n })
  in
  ignore (Adversary.run ~record:false adv sim);
  Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs

let run () =
  Util.section "E9 (Theorem 22): sets of readable types are robust up to 1";
  Util.row "%-28s %-20s %-12s %-18s %s@." "set" "individual levels" "rcons(set)" "dynamic"
    "product level";
  let sets =
    [
      [ ("S_2", Rcons.Spec.Sn.make 2); ("S_4", Rcons.Spec.Sn.make 4) ];
      [ ("register", Rcons.Spec.Register.default); ("S_3", Rcons.Spec.Sn.make 3) ];
      [ ("T_5", Rcons.Spec.Tn.make 5); ("S_3", Rcons.Spec.Sn.make 3) ];
      [ ("register", Rcons.Spec.Register.default); ("swap", Rcons.Spec.Swap.default) ];
    ]
  in
  List.iter
    (fun set ->
      let types = List.map snd set in
      let a = Rcons.Check.Robustness.analyse ~limit:5 types in
      let names = String.concat "+" (List.map fst set) in
      let levels =
        String.concat ","
          (List.map (fun (_, l) -> Format.asprintf "%a" Rcons.Check.Classify.pp_level l)
             a.Rcons.Check.Robustness.members)
      in
      let interval =
        Printf.sprintf "[%d,%s]" a.Rcons.Check.Robustness.rcons_lower
          (match a.Rcons.Check.Robustness.rcons_upper with
          | Some u -> string_of_int u
          | None -> "inf")
      in
      let dynamic =
        if a.Rcons.Check.Robustness.rcons_lower < 2 then "(trivial)"
        else
          match Rcons.Check.Robustness.best_certificate ~limit:5 types with
          | Some cert ->
              if dynamic_check cert a.Rcons.Check.Robustness.rcons_lower then "RC ok at max level"
              else "FAILED"
          | None -> "no certificate"
      in
      let product_level =
        match types with
        | [ t1; t2 ] ->
            Format.asprintf "%a"
              Rcons.Check.Classify.pp_level
              (Rcons.Check.Classify.max_recording ~limit:5 (Rcons.Spec.Product.make t1 t2))
        | _ -> "-"
      in
      Util.row "%-28s %-20s %-12s %-18s %s@." names levels interval dynamic product_level)
    sets;
  Util.row
    "@.Theorem 22: rcons(set) cannot exceed max+1 -- the critical-object argument localizes@.";
  Util.row "the power of a multi-type algorithm in a single object type.  The product column@.";
  Util.row "shows one-object combination inherits exactly the strongest member's level here.@."
