(* E14 -- recoverable replicated log: persistency policy x crash
   adversary, throughput and recovery work.

   The log (lib/log/rlog.ml) chains per-slot team-consensus instances
   under a quorum-counter committed prefix; this experiment measures it
   two ways and writes the machine-readable results to BENCH_log.json:

   Series 1 (randomized): for each persistency policy x adversary, a
   seeded sweep of full runs.  Throughput is reported as committed slots
   per 1000 *simulated* steps -- a pure function of the seeds, so the
   JSON artifact is byte-deterministic under `--seed 0` on any machine
   (wall-clock slots/sec goes to stdout only).  Recovery work is the
   histogram of per-process chain-replay counts (Rlog.recovery_steps):
   under crash churn a process replays the durable prefix its vote
   advertises on every restart, so heavier adversaries shift the
   histogram right without touching the committed prefix.

   Series 2 (exhaustive): small-size model checking of the same
   workloads through Explore (dedup + POR), recording node counts.  The
   annotated log passes every policy; the barrier-free variant's lossy
   violation is re-found here live (its ddmin-shrunk form is the
   committed witness _counterexamples/e14_log_lossy.json, replayed in
   CI).  Sizes follow the measured wall: slots=1, n=2, <= 1 crash rows
   run in seconds; the slots=2 and 2-crash points live in the CI
   explore-log job instead. *)

open Rcons.Runtime
module Rlog = Rcons.Log.Rlog

let cert_of ot n = Option.get (Rcons.Check.Recording.witness ot n)

let under ?(flush_cost = 1) policy f =
  match (policy, flush_cost) with
  | Persist.Eager, 1 -> f ()
  | p, fc -> Persist.scoped ~flush_cost:fc p f

let policy_str = Persist.policy_to_string
let policies = [ Persist.Eager; Persist.Lossy; Persist.Torn ]

(* Per-process recovery-step observations, bucketed 0..overflow. *)
let hist_buckets = 9 (* buckets 0..7 plus an 8+ overflow bucket *)

type random_row = {
  rr_name : string; (* workload label *)
  rr_policy : string;
  rr_adversary : string;
  rr_annotated : bool;
  rr_iters : int;
  rr_steps : int; (* total simulated steps across the sweep *)
  rr_crashes : int;
  rr_committed : int; (* sum of final committed prefixes *)
  rr_slots_per_kstep : float; (* committed slots per 1000 simulated steps *)
  rr_recovery_hist : int array; (* per-process replay counts, bucketed *)
  rr_recoveries : int; (* total body re-entries *)
  rr_violations : int; (* verdict or state-invariant failures *)
  rr_aborted : int; (* algorithm invariant raised mid-body (barrier-free) *)
  rr_stuck : int;
  rr_wall_s : float; (* stdout only; NOT written to the JSON artifact *)
}

(* Crash probabilities are deliberately low: a run is ~130 simulated
   steps, so prob 0.2 spends the whole crash budget in the opening
   stretch, before any vote is durable -- every recovery then replays
   nothing.  ~0.04 spreads the crashes across the chain and the replay
   histograms pick up the mid-chain and late-slot recoveries. *)
let adversaries =
  [
    ("storm", fun () -> Adversary.Storm { crash_prob = 0.03; burst = 2; max_crashes = 6 });
    ("targeted", fun () -> Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.06; max_crashes = 6 });
    ("uniform", fun () -> Adversary.Uniform { crash_prob = 0.04; max_crashes = 6 });
  ]

let sweep name cert ~slots ~annotated ~policy ~adv_name ~adv_policy ~iters ~seed =
  let steps = ref 0 and crashes = ref 0 and committed = ref 0 in
  let recoveries = ref 0 and violations = ref 0 and aborted = ref 0 and stuck = ref 0 in
  let hist = Array.make hist_buckets 0 in
  let adv = Adversary.create ~seed:(Util.seed seed) adv_policy in
  let (), wall =
    Util.time_it (fun () ->
        for _ = 1 to iters do
          under policy (fun () ->
              let t, sim = Rlog.instance ~annotated ~slots cert in
              let trace = ref [] in
              let note pid =
                Rlog.note_crash t ~pid;
                trace := Rlog.committed t :: !trace
              in
              match Adversary.run ~record:false ~on_crash:note adv sim with
              | out ->
                  steps := !steps + out.Adversary.steps;
                  crashes := !crashes + out.Adversary.crashes;
                  let c = Rlog.committed t in
                  committed := !committed + c;
                  let trace = List.rev (c :: !trace) in
                  let state_bad = ref false in
                  Rlog.check_exn ~fail:(fun _ -> state_bad := true) t;
                  let v = Rlog.verdict ~committed_trace:trace t in
                  if !state_bad || not (Rcons.History.Conditions.log_verdict_ok v) then
                    incr violations;
                  Array.iter
                    (fun r -> hist.(min r (hist_buckets - 1)) <- hist.(min r (hist_buckets - 1)) + 1)
                    (Rlog.recovery_steps t);
                  recoveries := !recoveries + Array.fold_left ( + ) 0 (Rlog.recoveries t)
              (* a crash revert violated an invariant the un-annotated
                 algorithm assumed durable (e.g. "R_A empty at return") *)
              | exception (Invalid_argument _ | Failure _) -> incr aborted
              | exception Adversary.Stuck _ -> incr stuck)
        done)
  in
  let per_kstep =
    if !steps > 0 then 1000.0 *. float_of_int !committed /. float_of_int !steps else 0.0
  in
  let row =
    {
      rr_name = name;
      rr_policy = policy_str policy;
      rr_adversary = adv_name;
      rr_annotated = annotated;
      rr_iters = iters;
      rr_steps = !steps;
      rr_crashes = !crashes;
      rr_committed = !committed;
      rr_slots_per_kstep = per_kstep;
      rr_recovery_hist = hist;
      rr_recoveries = !recoveries;
      rr_violations = !violations;
      rr_aborted = !aborted;
      rr_stuck = !stuck;
      rr_wall_s = wall;
    }
  in
  Util.row
    "%-22s %-7s %-9s %s  committed=%5d/%d  %5.2f slots/kstep  crashes=%4d replays=%4d  viol=%-3d abort=%-3d stuck=%-2d (%.1fs, %.0f slots/s)@."
    name (policy_str policy) adv_name
    (if annotated then "+barriers" else "bare     ")
    !committed (iters * slots) per_kstep !crashes
    (Array.to_list hist |> List.mapi (fun i c -> i * c) |> List.fold_left ( + ) 0)
    !violations !aborted !stuck wall
    (if wall > 0. then float_of_int !committed /. wall else 0.);
  row

(* --- Series 2: exhaustive small sizes --- *)

type exhaustive_row = {
  er_name : string;
  er_policy : string;
  er_annotated : bool;
  er_slots : int;
  er_max_crashes : int;
  er_nodes : int;
  er_schedules : int;
  er_violation : string option; (* one-line diagnosis when found *)
}

let exhaustive name cert ~slots ~annotated ~policy ~max_crashes =
  let mk () =
    let t, sim = Rlog.instance ~annotated ~slots cert in
    (sim, fun () -> Rlog.check_exn ~fail:Explore.fail t)
  in
  let run () =
    under policy (fun () -> Explore.explore ~max_crashes ~dedup:true ~por:true ~mk ())
  in
  let r, dt = Util.time_it (fun () -> try Ok (run ()) with Explore.Violation v -> Error v) in
  match r with
  | Ok stats ->
      Util.row "%-22s %-7s %s slots=%d crashes<=%d  no violation  %6d schedules %8d nodes (%.1fs)@."
        name (policy_str policy)
        (if annotated then "+barriers" else "bare     ")
        slots max_crashes stats.Explore.schedules stats.Explore.nodes dt;
      {
        er_name = name;
        er_policy = policy_str policy;
        er_annotated = annotated;
        er_slots = slots;
        er_max_crashes = max_crashes;
        er_nodes = stats.Explore.nodes;
        er_schedules = stats.Explore.schedules;
        er_violation = None;
      }
  | Error v ->
      Util.row "%-22s %-7s %s slots=%d crashes<=%d  VIOLATION at depth %d: %s (%.1fs)@." name
        (policy_str policy)
        (if annotated then "+barriers" else "bare     ")
        slots max_crashes
        (List.length v.Explore.v_schedule)
        v.Explore.v_msg dt;
      {
        er_name = name;
        er_policy = policy_str policy;
        er_annotated = annotated;
        er_slots = slots;
        er_max_crashes = max_crashes;
        er_nodes = 0;
        er_schedules = 0;
        er_violation = Some v.Explore.v_msg;
      }

(* --- JSON artifact (byte-deterministic: no wall-clock fields) --- *)

let write_json ~out ~slots random_rows exhaustive_rows =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"slots\": %d,\n" slots;
  p "  \"seed_offset\": %d,\n" !Util.seed_offset;
  p "  \"random\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"name\": %S, \"policy\": %S, \"adversary\": %S, \"annotated\": %b, \"iters\": %d,\n"
        r.rr_name r.rr_policy r.rr_adversary r.rr_annotated r.rr_iters;
      p
        "     \"steps\": %d, \"crashes\": %d, \"committed\": %d, \"slots_per_kstep\": %.3f,\n"
        r.rr_steps r.rr_crashes r.rr_committed r.rr_slots_per_kstep;
      p "     \"recoveries\": %d, \"violations\": %d, \"aborted\": %d, \"stuck\": %d,\n"
        r.rr_recoveries r.rr_violations r.rr_aborted r.rr_stuck;
      p "     \"recovery_steps_hist\": [%s]}%s\n"
        (String.concat ", " (Array.to_list (Array.map string_of_int r.rr_recovery_hist)))
        (if i = List.length random_rows - 1 then "" else ",")
      )
    random_rows;
  p "  ],\n";
  p "  \"exhaustive\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"name\": %S, \"policy\": %S, \"annotated\": %b, \"slots\": %d, \"max_crashes\": %d, \
         \"nodes\": %d, \"schedules\": %d, \"violation\": %s}%s\n"
        r.er_name r.er_policy r.er_annotated r.er_slots r.er_max_crashes r.er_nodes r.er_schedules
        (match r.er_violation with None -> "null" | Some m -> Printf.sprintf "%S" m)
        (if i = List.length exhaustive_rows - 1 then "" else ","))
    exhaustive_rows;
  p "  ]\n}\n";
  close_out oc;
  Util.row "@.wrote %s (wall-clock columns are stdout-only; the artifact is seed-deterministic)@."
    out

let run ?(out = "BENCH_log.json") () =
  Util.section "E14: recoverable replicated log -- policy x adversary";
  let slots = 3 in
  Util.row "[randomized sweeps, %d slots, 200 runs per row; throughput in simulated steps]@." slots;
  let cert2 = cert_of Rcons.Spec.Sticky_bit.t 2 in
  let cert3 = cert_of (Rcons.Spec.Sn.make 3) 3 in
  let random_rows = ref [] in
  let push r = random_rows := r :: !random_rows in
  (* n=2: the full policy x adversary matrix, annotated *)
  List.iter
    (fun policy ->
      List.iter
        (fun (adv_name, mk_adv) ->
          push
            (sweep "sticky-bit log (n=2)" cert2 ~slots ~annotated:true ~policy ~adv_name
               ~adv_policy:(mk_adv ()) ~iters:200 ~seed:1400))
        adversaries)
    policies;
  (* n=3: the storm column, annotated -- more processes, richer replay
     histograms under the same committed-prefix guarantee *)
  List.iter
    (fun policy ->
      push
        (sweep "S_3 log (n=3)" cert3 ~slots ~annotated:true ~policy ~adv_name:"storm"
           ~adv_policy:(Adversary.Storm { crash_prob = 0.03; burst = 2; max_crashes = 6 })
           ~iters:120 ~seed:1450))
    policies;
  (* negative control: the barrier-free log under the write-back caches;
     violations are counted, not fatal (the exhaustive row and the
     committed witness pin the bug down deterministically) *)
  List.iter
    (fun policy ->
      push
        (sweep "sticky-bit log (n=2)" cert2 ~slots ~annotated:false ~policy ~adv_name:"storm"
           ~adv_policy:(Adversary.Storm { crash_prob = 0.2; burst = 2; max_crashes = 6 })
           ~iters:200 ~seed:1475))
    [ Persist.Lossy; Persist.Torn ];
  let random_rows = List.rev !random_rows in
  Util.row "@.[exhaustive model checking, dedup + POR; slots=1, n=2]@.";
  (* explicit lets: [@] would evaluate (and print) the rows out of order *)
  let annotated_rows =
    List.map
      (fun policy ->
        exhaustive "sticky-bit log" cert2 ~slots:1 ~annotated:true ~policy ~max_crashes:1)
      policies
  in
  (* the barrier-free lossy violation, found live (the slots=2 shrunk
     agreement witness is _counterexamples/e14_log_lossy.json) *)
  let bare_row =
    exhaustive "sticky-bit log" cert2 ~slots:1 ~annotated:false ~policy:Persist.Lossy
      ~max_crashes:1
  in
  let exhaustive_rows = annotated_rows @ [ bare_row ] in
  (match
     List.find_opt
       (fun r -> (not r.er_annotated) && r.er_policy = "lossy" && r.er_violation = None)
       exhaustive_rows
   with
  | Some _ ->
      Util.row "NEGATIVE-CONTROL FAILURE: barrier-free lossy log found no violation@.";
      exit 1
  | None -> ());
  write_json ~out ~slots random_rows exhaustive_rows
