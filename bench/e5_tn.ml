(* E5 -- Figure 5 / Proposition 19 / Corollary 20: the separating type
   T_n is n-discerning but not (n-1)-recording, so rcons(T_n) < cons(T_n).

   Each row decides the four relevant properties from scratch and times
   the decision procedure (the checker's cost is the "benchmark" here --
   this is a theory paper, and these decisions are the computation its
   evaluation calls for). *)

let run ?(domains = 1) () =
  Util.section "E5 (Figure 5): T_n is n-discerning but not (n-1)-recording";
  Util.row "%-6s %-14s %-18s %-18s %-14s %-7s %-8s %s@." "n" "n-discerning"
    "(n+1)-discerning" "(n-1)-recording" "(n-2)-recording" "cons" "rcons" "time";
  List.iter
    (fun n ->
      let t = Rcons.Spec.Tn.make n in
      let (d_n, d_n1, r_n1, r_n2), dt =
        Util.time_it (fun () ->
            ( Rcons.Check.Discerning.is_discerning ~domains t n,
              Rcons.Check.Discerning.is_discerning ~domains t (n + 1),
              Rcons.Check.Recording.is_recording ~domains t (n - 1),
              Rcons.Check.Recording.is_recording ~domains t (n - 2) ))
      in
      let report = Rcons.classify ~domains ~limit:(n + 1) t in
      Util.row "%-6d %-14b %-18b %-18b %-14b %-7s %-8s %.2fs@." n d_n d_n1 r_n1 r_n2
        (Util.bounds_str report.Rcons.Check.Classify.cons)
        (Util.bounds_str report.Rcons.Check.Classify.rcons)
        dt)
    [ 4; 5; 6; 7 ];
  Util.row "@.paper: yes / no / no / yes on each row; cons = n and rcons in [n-2, n-1] < cons.@."
