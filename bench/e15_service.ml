(* E15: the crash-churn service soak (PR 9; EXPERIMENTS.md E15).

   Drives fleets of hosted Runiversal/Rlog instances -- effect-fiber
   client sessions, bounded admission, retry/timeout/backoff -- under
   every adversary x persistency-policy combination, with the online
   durability checkers live, and writes the machine-readable results to
   BENCH_service.json.

   Everything in the artifact is measured in simulated ticks/steps, so
   the file is seed-deterministic: identical on every machine and every
   domain count (the flagship row is run under 1 and 2 domains and the
   commit digests are compared to prove it).  Wall-clock appears on
   stdout only.

   Gates (exit 1):
   - the flagship storm x lossy soak must deliver >= 500 crash/recover
     events with zero checker violations and zero lost acknowledged ops;
   - the negative control (barrier-free universal instance under lossy
     churn) must be caught by the online checkers;
   - the flagship recovery-time p99 must not exceed the floor recorded
     in the committed BENCH_service.json (deterministic, so enforceable
     on any machine; RCONS_BENCH_NO_FLOOR=1 skips, for local
     experimentation with different configs). *)

open Rcons.Runtime
module Service = Rcons.Service
module Instance = Service.Instance
module Metrics = Service.Metrics
module Soak = Service.Soak

let cert2 = lazy (Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 2))

(* One fleet: [n] instances, every 4th a replicated log, the rest
   universal counters.  All per-instance randomness derives from
   [seed + id], so a row is a pure function of (seed, adversary,
   policy, n). *)
let fleet ~seed ~n ~adversary ~persist ~annotated =
  List.init n (fun id ->
      let base = Soak.default ~id ~seed in
      let base = { base with Instance.adversary; persist; annotated } in
      if id mod 4 = 3 then
        {
          base with
          Instance.kind = Instance.Log;
          cert = Some (Lazy.force cert2);
          sessions = 10;
          ops_per_session = 3;
          open_ops = 4;
          open_rate = 0.2;
        }
      else base)

type row = {
  w_adv : string;
  w_policy : string;
  w_instances : int;
  w_summary : Soak.summary;
  w_violation : string option;
}

let soak_cfgs ~name ~policy_name cfgs =
  let n = List.length cfgs in
  match Soak.run cfgs with
  | o ->
      {
        w_adv = name;
        w_policy = policy_name;
        w_instances = n;
        w_summary = o.summary;
        w_violation = None;
      }
  | exception Instance.Violation v ->
      {
        w_adv = name;
        w_policy = policy_name;
        w_instances = n;
        w_summary = Soak.summarize [];
        w_violation =
          Some (Printf.sprintf "instance %d tick %d: %s" v.instance v.tick v.msg);
      }

let soak_row ~name ~policy_name ~seed ~n ~adversary ~persist =
  soak_cfgs ~name ~policy_name (fleet ~seed ~n ~adversary ~persist ~annotated:true)

let adversaries ~seed:_ =
  [
    ("uniform", Adversary.Uniform { crash_prob = 0.04; max_crashes = 10 });
    ("storm", Adversary.Storm { crash_prob = 0.04; burst = 2; max_crashes = 12 });
    ("targeted", Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.06; max_crashes = 10 });
    ("simultaneous", Adversary.Simultaneous { crash_at = [ 40; 160; 640; 2560 ] });
  ]

let policies = [ ("eager", Persist.Eager); ("lossy", Persist.Lossy); ("torn", Persist.Torn) ]

let pct h p = Metrics.percentile h p

let print_row r =
  let s = r.w_summary in
  match r.w_violation with
  | Some m -> Util.row "  %-13s %-6s VIOLATION: %s@." r.w_adv r.w_policy m
  | None ->
      Util.row
        "  %-13s %-6s acked %4d/%-4d shed %3d retries %4d crashes %3d recov %3d lat p50/p99 \
         %3d/%4d rec p99 %4d gave-up %2d@."
        r.w_adv r.w_policy s.Soak.s_acked s.Soak.s_submitted s.Soak.s_shed s.Soak.s_retries
        s.Soak.s_crashes_delivered s.Soak.s_recoveries (pct s.Soak.s_latency 0.50)
        (pct s.Soak.s_latency 0.99) (pct s.Soak.s_recovery 0.99) s.Soak.s_gave_up

(* --- artifact --- *)

let hist_json h =
  "["
  ^ String.concat ", "
      (List.map (fun (v, c) -> Printf.sprintf "[%d, %d]" v c) (Metrics.sparse h))
  ^ "]"

let summary_json ?(indent = "     ") (s : Soak.summary) =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let throughput =
    if s.Soak.s_ticks = 0 then 0.0
    else 1000.0 *. float_of_int s.Soak.s_acked /. float_of_int s.Soak.s_ticks
  in
  let shed_rate =
    let attempts = s.Soak.s_admitted + s.Soak.s_shed in
    if attempts = 0 then 0.0 else float_of_int s.Soak.s_shed /. float_of_int attempts
  in
  p "{\n";
  p "%s\"instances\": %d, \"ticks\": %d, \"sim_steps\": %d,\n" indent s.Soak.s_instances
    s.Soak.s_ticks s.Soak.s_sim_steps;
  p "%s\"submitted\": %d, \"acked\": %d, \"completed\": %d, \"completed_unacked\": %d, \
     \"gave_up\": %d,\n"
    indent s.Soak.s_submitted s.Soak.s_acked s.Soak.s_completed s.Soak.s_completed_unacked
    s.Soak.s_gave_up;
  p "%s\"retries\": %d, \"timeouts\": %d, \"overloads\": %d, \"shed\": %d, \"admitted\": %d, \
     \"shed_rate\": %.4f,\n"
    indent s.Soak.s_retries s.Soak.s_timeouts s.Soak.s_overloads s.Soak.s_shed s.Soak.s_admitted
    shed_rate;
  p "%s\"crashes_delivered\": %d, \"crashes_requested\": %d, \"recoveries\": %d, \
     \"checks_run\": %d, \"generations\": %d, \"stuck\": %d,\n"
    indent s.Soak.s_crashes_delivered s.Soak.s_crashes_requested s.Soak.s_recoveries
    s.Soak.s_checks_run s.Soak.s_generations s.Soak.s_stuck;
  p "%s\"throughput_acked_per_ktick\": %.3f,\n" indent throughput;
  p "%s\"latency\": {\"p50\": %d, \"p99\": %d, \"p999\": %d, \"mean\": %.2f},\n" indent
    (pct s.Soak.s_latency 0.50) (pct s.Soak.s_latency 0.99) (pct s.Soak.s_latency 0.999)
    (Metrics.mean s.Soak.s_latency);
  p "%s\"recovery\": {\"p50\": %d, \"p99\": %d, \"p999\": %d, \"hist\": %s},\n" indent
    (pct s.Soak.s_recovery 0.50) (pct s.Soak.s_recovery 0.99) (pct s.Soak.s_recovery 0.999)
    (hist_json s.Soak.s_recovery);
  p "%s\"replay_slots\": {\"p50\": %d, \"p99\": %d, \"hist\": %s},\n" indent
    (pct s.Soak.s_replay 0.50) (pct s.Soak.s_replay 0.99) (hist_json s.Soak.s_replay);
  p "%s\"commit_digest\": %S}" indent s.Soak.s_commit_digest;
  Buffer.contents b

(* Carry the committed recovery-p99 floor forward: scan the existing
   artifact for the field (the artifact is our own output; a one-line
   scanner beats a JSON dependency). *)
let committed_floor out =
  if not (Sys.file_exists out) then None
  else begin
    let ic = open_in out in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let key = "\"recovery_p99_floor\": " in
    match String.index_opt s '\000' with
    | Some _ -> None
    | None -> (
        let rec find i =
          if i + String.length key > String.length s then None
          else if String.sub s i (String.length key) = key then begin
            let j = ref (i + String.length key) in
            let start = !j in
            while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
              incr j
            done;
            if !j > start then Some (int_of_string (String.sub s start (!j - start))) else None
          end
          else find (i + 1)
        in
        try find 0 with _ -> None)
  end

let write_json ~out rows ~flagship ~flagship_floor ~digest_1dom ~digest_2dom ~negative_caught =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"seed_offset\": %d,\n" !Util.seed_offset;
  p "  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"adversary\": %S, \"policy\": %S, \"instances\": %d,\n" r.w_adv r.w_policy
        r.w_instances;
      p "     \"violation\": %s,\n"
        (match r.w_violation with None -> "null" | Some m -> Printf.sprintf "%S" m);
      p "     \"summary\": %s}%s\n" (summary_json r.w_summary)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"flagship\": {\"adversary\": \"storm\", \"policy\": \"lossy\",\n";
  p "   \"commit_digest_1dom\": %S, \"commit_digest_2dom\": %S,\n" digest_1dom digest_2dom;
  p "   \"recovery_p99_floor\": %d,\n" flagship_floor;
  p "   \"summary\": %s},\n" (summary_json flagship);
  p "  \"negative_control\": {\"kind\": \"universal bare lossy storm\", \"caught\": %b}\n"
    negative_caught;
  p "}\n";
  close_out oc;
  Util.row "@.wrote %s (all figures in simulated ticks; seed-deterministic)@." out

(* --- the flagship soak: storm x lossy, >= 500 crash/recover events --- *)

let flagship_fleet ~seed =
  fleet ~seed ~n:16
    ~adversary:(Adversary.Storm { crash_prob = 0.08; burst = 3; max_crashes = 40 })
    ~persist:Persist.Lossy ~annotated:true

let run ?(out = "BENCH_service.json") () =
  Util.section "E15: crash-churn service soak (sessions, backoff, online checking)";
  let seed = Util.seed 1500 in
  let fail = ref false in

  Util.row "@.[adversary x persistency sweep; 8 instances each, annotated]@.";
  let rows =
    List.concat_map
      (fun (aname, adv) ->
        List.map
          (fun (pname, pol) ->
            let r =
              soak_row ~name:aname ~policy_name:pname ~seed:(seed + 17) ~n:8 ~adversary:adv
                ~persist:pol
            in
            print_row r;
            if r.w_violation <> None then begin
              Util.row "  ^ unexpected violation in an annotated soak@.";
              fail := true
            end;
            r)
          policies)
      (adversaries ~seed)
  in

  (* overload: 48 sessions hammering a 6-slot admission queue -- load
     shedding must engage (explicit Overloaded answers, no deadlock, no
     silent drops: every session still terminates) *)
  Util.row "@.[overload: 48 sessions x 6-slot queue, storm x lossy]@.";
  let overload =
    soak_cfgs ~name:"overload" ~policy_name:"lossy"
      (List.init 8 (fun id ->
           {
             (Soak.default ~id ~seed:(seed + 29)) with
             Instance.adversary =
               Adversary.Storm { crash_prob = 0.04; burst = 2; max_crashes = 12 };
             persist = Persist.Lossy;
             sessions = 48;
             queue_cap = 6;
           }))
  in
  print_row overload;
  if overload.w_violation <> None then fail := true;
  if overload.w_summary.Soak.s_shed = 0 || overload.w_summary.Soak.s_overloads = 0 then begin
    Util.row "  OVERLOAD FAILURE: admission control never shed@.";
    fail := true
  end;
  if overload.w_summary.Soak.s_stuck > 0 then begin
    Util.row "  OVERLOAD FAILURE: %d instances stuck@." overload.w_summary.Soak.s_stuck;
    fail := true
  end;
  let rows = rows @ [ overload ] in

  Util.row "@.[flagship: storm x lossy, 16 instances, >= 500 crash/recover events]@.";
  let (o1, dt1) = Util.time_it (fun () -> Soak.run ~domains:1 (flagship_fleet ~seed)) in
  let (o2, dt2) = Util.time_it (fun () -> Soak.run ~domains:2 (flagship_fleet ~seed)) in
  let s = o1.Soak.summary in
  Util.row
    "  crashes %d/%d recoveries %d acked %d/%d gave-up %d shed %d retries %d checks %d@."
    s.Soak.s_crashes_delivered s.Soak.s_crashes_requested s.Soak.s_recoveries s.Soak.s_acked
    s.Soak.s_submitted s.Soak.s_gave_up s.Soak.s_shed s.Soak.s_retries s.Soak.s_checks_run;
  Util.row "  latency p50/p99/p999 %d/%d/%d  recovery p50/p99 %d/%d  (%.2fs + %.2fs wall)@."
    (pct s.Soak.s_latency 0.50) (pct s.Soak.s_latency 0.99) (pct s.Soak.s_latency 0.999)
    (pct s.Soak.s_recovery 0.50) (pct s.Soak.s_recovery 0.99) dt1 dt2;
  if s.Soak.s_crashes_delivered < 500 then begin
    Util.row "  FLAGSHIP FAILURE: fewer than 500 crashes delivered@.";
    fail := true
  end;
  if s.Soak.s_stuck > 0 then begin
    Util.row "  FLAGSHIP FAILURE: %d instances stuck@." s.Soak.s_stuck;
    fail := true
  end;
  let d1 = s.Soak.s_commit_digest and d2 = o2.Soak.summary.Soak.s_commit_digest in
  if d1 <> d2 then begin
    Util.row "  DETERMINISM FAILURE: 1-domain and 2-domain digests differ@.";
    fail := true
  end
  else Util.row "  commit digest %s (identical under 1 and 2 domains)@." d1;

  (* negative control: drop the persist barriers, keep the lossy cache
     and the storm -- the online checkers must catch it *)
  let negative_caught =
    let cfg =
      {
        (Soak.default ~id:0 ~seed:(seed + 3)) with
        Instance.annotated = false;
        persist = Persist.Lossy;
        adversary = Adversary.Storm { crash_prob = 0.08; burst = 2; max_crashes = 30 };
      }
    in
    match Instance.run cfg with
    | _ ->
        Util.row "@.NEGATIVE-CONTROL FAILURE: barrier-free lossy soak passed the checkers@.";
        false
    | exception Instance.Violation v ->
        Util.row "@.[negative control] caught at tick %d: %s@." v.tick v.msg;
        true
    | exception e ->
        (* any other escape is a distinct failure, not a catch: classify
           it and keep going so the artifact still gets written *)
        Util.row
          "@.NEGATIVE-CONTROL FAILURE: barrier-free lossy soak died with %s instead of a \
           checker violation@."
          (Printexc.to_string e);
        false
  in
  if not negative_caught then fail := true;

  (* recovery-p99 floor: deterministic, so enforce exactly against the
     committed artifact and carry the committed value forward *)
  let measured = pct s.Soak.s_recovery 0.99 in
  let floor =
    match committed_floor out with
    | Some f ->
        if Sys.getenv_opt "RCONS_BENCH_NO_FLOOR" = None && measured > f then begin
          Util.row "@.RECOVERY FLOOR FAILURE: p99 %d > committed floor %d@." measured f;
          fail := true
        end;
        f
    | None ->
        Util.row "@.no committed floor found; recording recovery p99 %d as the floor@."
          measured;
        measured
  in

  write_json ~out rows ~flagship:s ~flagship_floor:floor ~digest_1dom:d1 ~digest_2dom:d2
    ~negative_caught;
  if !fail then exit 1
