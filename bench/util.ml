(* Small shared helpers for the experiment harness. *)

let section title =
  Format.printf "@.=== %s ===@." title;
  Format.printf "%s@." (String.make (String.length title + 8) '=')

let row fmt = Format.printf fmt

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let level_str l = Format.asprintf "%a" Rcons.Check.Classify.pp_level l
let bounds_str b = Format.asprintf "%a" Rcons.Check.Classify.pp_bounds_option b

(* Global seed offset ([--seed N] in main): every experiment derives its
   adversary seeds through [seed], so one flag reruns the whole harness
   on fresh randomness.  The default offset 0 reproduces EXPERIMENTS.md
   exactly. *)
let seed_offset = ref 0
let seed base = base + !seed_offset
