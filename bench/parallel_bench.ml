(* Sequential-vs-parallel wall-clock comparison for the work-stealing
   engine, written to BENCH_parallel.json so the performance trajectory
   of the parallel check/explore paths is measurable across commits.

   Every workload is run across a domains scaling curve (powers of two up
   to what the machine exposes) and all outputs are compared against the
   sequential run: the "identical" field is the determinism contract
   checked on real workloads, not just asserted.  Speedups are only
   meaningful when the machine actually exposes multiple cores; "cores"
   records what the OCaml runtime saw, so a 1-core CI box reporting
   ~1.0x ratios is interpretable (the curve then measures pool overhead,
   which the granularity cutoff should keep near zero).

   Speedup floors: each workload carries a floor -- read back from the
   committed BENCH_parallel.json when present, defaulted otherwise --
   and when the machine has at least [domains] cores the bench exits
   non-zero if a workload's speedup drops below its floor.  This is what
   makes the 8-core bench-multicore CI job a regression gate and not
   just a report (RCONS_BENCH_NO_FLOOR=1 skips enforcement for local
   experiments).

   Per-stage telemetry: each workload's run at the headline domain count
   is bracketed with Pool.Telemetry snapshots (jobs / chunk claims /
   steals / grace-period completions), and explore workloads add the
   dedup-engine stage counts (fingerprint hashes, visited-set claims,
   node expansions), so a scaling regression can be localized without
   re-profiling.

   Explore workloads additionally report state-space deduplication
   counters -- raw vs dedup node counts, hit rate, distinct states, and a
   seq-vs-par dedup identity check -- so the effect of [~dedup:true] on
   each workload is tracked alongside its wall-clock numbers. *)

(* Powers of two up to the machine's recommended domain count (so a
   4-core laptop benches 1/2/4, not a thrashing 8). *)
let domain_points =
  let top = Rcons.Par.Pool.available_domains () in
  let rec up d = if d >= top then [ top ] else d :: up (2 * d) in
  List.sort_uniq compare (up 1)

type dedup_stats = {
  raw_nodes : int;
  dd_nodes : int;
  dd_hits : int;
  dd_states : int;
  dd_identical : bool; (* dedup seq = dedup par (stats, bit for bit) *)
  (* Partial-order reduction counters on the same workload: raw+por
     measures interleavings explored vs. the raw bound, dedup+por the
     state-graph edges actually walked. *)
  rp_nodes : int;
  rp_schedules : int;
  rp_pruned : int;
  pd_nodes : int;
  pd_pruned : int;
  (* Incremental-fingerprint split of the sequential dedup run: slots
     re-digested because a mutation dirtied them vs served from cache.
     Saved >> full is the O(delta)-hashing contract being visible. *)
  dd_rehashes_full : int;
  dd_rehashes_saved : int;
}

(* A workload runs at a given domain count and yields (seconds, canonical
   rendering of the result); renderings are compared across the curve. *)
type workload = {
  w_name : string;
  w_run : int -> float * string;
  w_dedup : (int -> int -> dedup_stats) option; (* raw_nodes -> domains -> stats *)
}

let classify_workload name ot limit =
  {
    w_name = name;
    w_run =
      (fun domains ->
        let r, t = Util.time_it (fun () -> Rcons.classify ~domains ~limit ot) in
        (t, Format.asprintf "%a" Rcons.Check.Classify.pp_report r));
    w_dedup = None;
  }

let team_mk ot () =
  let cert = Option.get (Rcons.Check.Recording.witness ot 2) in
  let inputs = [| 111; 222 |] in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let tc = Rcons.Algo.Team_consensus.create cert in
  let body pid () =
    let team, slot = if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0) in
    Rcons.Algo.Outputs.record outputs pid
      (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
  in
  ( Rcons.Runtime.Sim.create ~n:2 body,
    fun () -> Rcons.Algo.Outputs.check_exn ~fail:Rcons.Runtime.Explore.fail outputs )

let render_stats (s : Rcons.Runtime.Explore.stats) =
  Printf.sprintf "{schedules=%d; nodes=%d; max_depth=%d; dedup_hits=%d; distinct_states=%d}"
    s.schedules s.nodes s.max_depth s.dedup_hits s.distinct_states

let explore_workload name ot ~max_crashes =
  let mk = team_mk ot in
  {
    w_name = name;
    w_run =
      (fun domains ->
        let s, t =
          Util.time_it (fun () -> Rcons.Runtime.Explore.explore ~max_crashes ~domains ~mk ())
        in
        (t, render_stats s));
    w_dedup =
      Some
        (fun raw_nodes domains ->
          let t0 = Rcons.Par.Pool.Telemetry.snapshot () in
          let dd_seq = Rcons.Runtime.Explore.explore ~max_crashes ~dedup:true ~mk () in
          let dt = Rcons.Par.Pool.Telemetry.(diff (snapshot ()) t0) in
          let dd_par =
            Rcons.Runtime.Explore.explore ~max_crashes ~dedup:true ~domains ~mk ()
          in
          let rp = Rcons.Runtime.Explore.explore ~max_crashes ~por:true ~mk () in
          let pd = Rcons.Runtime.Explore.explore ~max_crashes ~dedup:true ~por:true ~mk () in
          {
            raw_nodes;
            dd_nodes = dd_seq.nodes;
            dd_hits = dd_seq.dedup_hits;
            dd_states = dd_seq.distinct_states;
            dd_identical = dd_seq = dd_par;
            rp_nodes = rp.nodes;
            rp_schedules = rp.schedules;
            rp_pruned = rp.por_pruned;
            pd_nodes = pd.nodes;
            pd_pruned = pd.por_pruned;
            dd_rehashes_full = dt.Rcons.Par.Pool.Telemetry.rehashes_full;
            dd_rehashes_saved = dt.Rcons.Par.Pool.Telemetry.rehashes_saved;
          });
  }

let workloads =
  [
    classify_workload "classify T_6 (limit 7)" (Rcons.Spec.Tn.make 6) 7;
    classify_workload "classify S_4 (limit 5)" (Rcons.Spec.Sn.make 4) 5;
    classify_workload "classify sticky-bit (limit 6)" Rcons.Spec.Sticky_bit.t 6;
    explore_workload "explore Figure 2 on S_2 (1 crash)" (Rcons.Spec.Sn.make 2) ~max_crashes:1;
    explore_workload "explore Figure 2 on S_2 (2 crashes)" (Rcons.Spec.Sn.make 2) ~max_crashes:2;
  ]

(* Certificate-cache cold/warm comparison: one full-catalogue classify
   sweep (plus the parametric S_n / T_n mid-range) run three ways --
   seed-cold (fresh cache directory, every level computed and written),
   warm (same directory again, every level a revalidated hit) and
   cold-incremental (no cache at all, the pure in-memory incremental
   scan).  All three renderings must be byte-identical: the cache is a
   pure memo, never an answer source. *)
let cache_limit = 8

let cache_types () =
  List.map (fun e -> e.Rcons.Spec.Catalogue.ot) Rcons.Spec.Catalogue.all
  @ List.map Rcons.Spec.Sn.make [ 4; 5; 6; 7 ]
  @ List.map Rcons.Spec.Tn.make [ 4; 5; 6; 7 ]

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

type cache_row = {
  cc_name : string;
  cc_cold : float;  (* fresh cache dir: compute + store *)
  cc_warm : float;  (* same dir again: revalidated hits *)
  cc_nocache : float;  (* no cache: in-memory incremental scan *)
  cc_identical : bool;
  cc_entries : int;
}

let cert_cache_bench () =
  let dir = "_certs_bench" in
  rm_rf dir;
  let types = cache_types () in
  let render certs =
    String.concat "\n"
      (List.map
         (fun ot ->
           Format.asprintf "%a" Rcons.Check.Classify.pp_report
             (Rcons.classify ~limit:cache_limit ?certs ot))
         types)
  in
  let r_nocache, t_nocache = Util.time_it (fun () -> render None) in
  let r_cold, t_cold = Util.time_it (fun () -> render (Some dir)) in
  let r_warm, t_warm = Util.time_it (fun () -> render (Some dir)) in
  let entries = List.length (Rcons.Check.Cert_cache.list_dir dir) in
  rm_rf dir;
  {
    cc_name =
      Printf.sprintf "classify catalogue + S/T 4-7 (limit %d, %d types)" cache_limit
        (List.length types);
    cc_cold = t_cold;
    cc_warm = t_warm;
    cc_nocache = t_nocache;
    cc_identical = r_cold = r_warm && r_cold = r_nocache;
    cc_entries = entries;
  }

(* Reduction ablation: dedup-only vs dedup+por vs dedup+por+symmetry on
   the 2-crash Figure 2 workload with a two-member team (sticky bit,
   level 3 -- the smallest workload where both reductions bite; the
   singleton teams of S_2 give symmetry nothing to quotient).  Node
   counts are deterministic, so unlike the wall-clock speedup floors the
   reduction-factor floor is enforceable on any machine. *)
type reduction_row = {
  red_name : string;
  red_dedup : Rcons.Runtime.Explore.stats;
  red_por : Rcons.Runtime.Explore.stats;
  red_por_sym : Rcons.Runtime.Explore.stats;
  red_floor : float;
}

let reduction_ablation ~floor () =
  let cert = Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 3) in
  let classes = Rcons.Check.Certificate.symmetry_classes cert in
  let na, nb = Rcons.Check.Certificate.recording_teams cert in
  let inputs = Array.init (na + nb) (fun i -> if i < na then 111 else 222) in
  let mk () =
    let outputs = Rcons.Algo.Outputs.make ~inputs in
    let tc = Rcons.Algo.Team_consensus.create cert in
    let body pid () =
      let team, slot =
        if pid < na then (Rcons.Spec.Team.A, pid) else (Rcons.Spec.Team.B, pid - na)
      in
      Rcons.Algo.Outputs.record outputs pid
        (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
    in
    ( Rcons.Runtime.Sim.create ~n:(na + nb) body,
      fun () -> Rcons.Algo.Outputs.check_exn ~fail:Rcons.Runtime.Explore.fail outputs )
  in
  let explore ?(por = false) ?symmetry () =
    Rcons.Runtime.Explore.explore ~max_crashes:2 ~dedup:true ~por ?symmetry ~mk ()
  in
  {
    red_name = "Figure 2 on sticky-bit level 3 (2 crashes)";
    red_dedup = explore ();
    red_por = explore ~por:true ();
    red_por_sym = explore ~por:true ~symmetry:classes ();
    red_floor = floor;
  }

let reduction_factor r =
  if r.red_por_sym.Rcons.Runtime.Explore.nodes > 0 then
    float_of_int r.red_dedup.Rcons.Runtime.Explore.nodes
    /. float_of_int r.red_por_sym.Rcons.Runtime.Explore.nodes
  else 0.

(* Exploration-engine comparison: the same raw 2-crash Figure 2 / S_2
   workload walked sequentially by the checkpoint/restore engine
   (default) and by the replay oracle ([~undo:false]).  The two must
   render byte-identical statistics -- that's the correctness half --
   and the restore engine must beat replay by the recorded floor
   (default 2x): rolling a journal back to the fork point costs the
   steps since the fork, replay costs the whole prefix.  The floor is a
   sequential wall-clock ratio on one process, so unlike the scaling
   floors it is enforced regardless of core count
   (RCONS_BENCH_NO_FLOOR still escapes).  Each engine is timed
   best-of-2 to damp scheduler noise. *)
type engine_row = {
  eng_name : string;
  eng_undo : float;
  eng_replay : float;
  eng_identical : bool;
  eng_floor : float;
  eng_undo_t : Rcons.Par.Pool.Telemetry.snapshot; (* journal counters, undo run *)
}

let engine_bench ~floor () =
  let mk = team_mk (Rcons.Spec.Sn.make 2) in
  let time_engine undo =
    let best = ref infinity and render = ref "" in
    for _ = 1 to 2 do
      let s, t =
        Util.time_it (fun () -> Rcons.Runtime.Explore.explore ~max_crashes:2 ~undo ~mk ())
      in
      if t < !best then best := t;
      render := render_stats s
    done;
    (!best, !render)
  in
  let before = Rcons.Par.Pool.Telemetry.snapshot () in
  let undo_t, undo_render = time_engine true in
  let undo_tele = Rcons.Par.Pool.Telemetry.(diff (snapshot ()) before) in
  let replay_t, replay_render = time_engine false in
  {
    eng_name = "explore Figure 2 on S_2 (2 crashes, sequential)";
    eng_undo = undo_t;
    eng_replay = replay_t;
    eng_identical = undo_render = replay_render;
    eng_floor = floor;
    eng_undo_t = undo_tele;
  }

let engine_speedup e = if e.eng_undo > 0. then e.eng_replay /. e.eng_undo else 0.

let recorded_engine_floor path =
  if not (Sys.file_exists path) then None
  else
    let module J = Rcons.Runtime.Json in
    match J.parse (In_channel.with_open_text path In_channel.input_all) with
    | Error _ -> None
    | Ok j -> (
        try Option.map J.to_float (J.member "floor" (J.field "engine" j)) with _ -> None)

(* Speedup floors (enforced at the headline domain count on machines
   with at least that many cores).  The committed BENCH_parallel.json is
   the source of truth: a floor recorded there is read back and enforced
   on the next run, so tightening the gate is a one-line diff to the
   artifact.  Workloads without a recorded floor get a default: the
   explore fan-outs must actually scale, and the small classify scans
   must stay within the cutoff's tolerance (>= 0.83x of sequential,
   i.e. no more than ~1.2x slower). *)
let default_floor name =
  if name = "explore Figure 2 on S_2 (2 crashes)" then 3.0
  else if name = "explore Figure 2 on S_2 (1 crash)" then 1.5
  else if name = "classify T_6 (limit 7)" then 2.0
  else 0.83

let recorded_floors path =
  if not (Sys.file_exists path) then []
  else
    let module J = Rcons.Runtime.Json in
    match J.parse (In_channel.with_open_text path In_channel.input_all) with
    | Error _ -> []
    | Ok j -> (
        try
          J.to_list (J.field "workloads" j)
          |> List.filter_map (fun w ->
                 match J.member "floor" w with
                 | Some f -> Some (J.to_str (J.field "name" w), J.to_float f)
                 | None -> None)
        with _ -> [])

let recorded_reduction_floor path =
  if not (Sys.file_exists path) then None
  else
    let module J = Rcons.Runtime.Json in
    match J.parse (In_channel.with_open_text path In_channel.input_all) with
    | Error _ -> None
    | Ok j -> (
        try Option.map J.to_float (J.member "floor" (J.field "reduction" j)) with _ -> None)

type row = {
  r_name : string;
  r_seq : float;
  r_par : float;
  r_identical : bool;
  r_curve : (int * float) list;
  r_dedup : dedup_stats option;
  r_floor : float;
  r_stages : Rcons.Par.Pool.Telemetry.snapshot; (* around the par(domains) run *)
}

(* Raw [nodes] from a rendered stats string, for the dedup reduction
   ratio (avoids re-running the raw exploration a third time). *)
let nodes_of_rendering s =
  match String.index_opt s ';' with
  | None -> 0
  | Some _ -> (
      try Scanf.sscanf s "{schedules=%d; nodes=%d" (fun _ n -> n) with _ -> 0)

let schedules_of_rendering s =
  try Scanf.sscanf s "{schedules=%d" (fun n -> n) with _ -> 0

let run ?(domains = 4) ?(out = "BENCH_parallel.json") () =
  let cores = Rcons.Par.Pool.available_domains () in
  let floors = recorded_floors out in
  Util.section
    (Printf.sprintf "Parallel engine: domains scaling curve %s (machine has %d core(s))"
       (String.concat "/" (List.map string_of_int domain_points))
       cores);
  Util.row "%-40s %-10s %-10s %-9s %s@." "workload" "seq" (Printf.sprintf "par(%d)" domains)
    "speedup" "identical";
  let timed d w =
    let before = Rcons.Par.Pool.Telemetry.snapshot () in
    let t, r = w.w_run d in
    (d, (t, r, Rcons.Par.Pool.Telemetry.(diff (snapshot ()) before)))
  in
  let rows =
    List.map
      (fun w ->
        let curve = List.map (fun d -> timed d w) domain_points in
        let curve =
          if List.mem_assoc domains curve then curve else curve @ [ timed domains w ]
        in
        let _, (seq_t, seq_render, _) = List.find (fun (d, _) -> d = 1) curve in
        let _, (par_t, _, stages) = List.find (fun (d, _) -> d = domains) curve in
        let identical = List.for_all (fun (_, (_, r, _)) -> r = seq_render) curve in
        let dedup =
          Option.map (fun f -> f (nodes_of_rendering seq_render) domains) w.w_dedup
        in
        let floor =
          match List.assoc_opt w.w_name floors with
          | Some f -> f
          | None -> default_floor w.w_name
        in
        let speedup = if par_t > 0. then seq_t /. par_t else 0. in
        Util.row "%-40s %8.3fs %8.3fs %8.2fx %b@." w.w_name seq_t par_t speedup identical;
        List.iter
          (fun (d, (t, _, _)) ->
            Util.row "    domains=%d %8.3fs %8.2fx@." d t (if t > 0. then seq_t /. t else 0.))
          curve;
        Util.row "    stages(par %d): %d jobs, %d chunks, %d steals, %d seq-cutoffs; floor %.2fx@."
          domains stages.Rcons.Par.Pool.Telemetry.jobs stages.chunks stages.steals
          stages.seq_cutoffs floor;
        Util.row
          "    undo(par %d): %d restores, %d entries, %d bytes peak; rehashes %d full / %d saved, %d canon bytes saved@."
          domains stages.restores stages.undo_entries stages.undo_bytes_peak
          stages.rehashes_full stages.rehashes_saved stages.canon_saved_bytes;
        (match dedup with
        | None -> ()
        | Some dd ->
            Util.row "    dedup: %d -> %d nodes (%.1fx), %d hits, %d distinct states, par identical=%b@."
              dd.raw_nodes dd.dd_nodes
              (if dd.dd_nodes > 0 then float_of_int dd.raw_nodes /. float_of_int dd.dd_nodes
               else 0.)
              dd.dd_hits dd.dd_states dd.dd_identical;
            Util.row "    incremental hashing (seq dedup): %d slots re-digested, %d served from cache@."
              dd.dd_rehashes_full dd.dd_rehashes_saved;
            Util.row
              "    por: %d of %d raw interleavings explored (%d pruned); dedup+por %d nodes (%d pruned)@."
              dd.rp_schedules
              (schedules_of_rendering seq_render)
              dd.rp_pruned dd.pd_nodes dd.pd_pruned);
        {
          r_name = w.w_name;
          r_seq = seq_t;
          r_par = par_t;
          r_identical = identical && Option.fold ~none:true ~some:(fun d -> d.dd_identical) dedup;
          r_curve = List.map (fun (d, (t, _, _)) -> (d, t)) curve;
          r_dedup = dedup;
          r_floor = floor;
          r_stages = stages;
        })
      workloads
  in
  let cc = cert_cache_bench () in
  let cc_speedup = if cc.cc_warm > 0. then cc.cc_cold /. cc.cc_warm else 0. in
  Util.row "@.certificate cache: %s@." cc.cc_name;
  Util.row "    cold %8.4fs   warm %8.4fs   no-cache %8.4fs   warm speedup %8.2fx   %d entries, identical=%b@."
    cc.cc_cold cc.cc_warm cc.cc_nocache cc_speedup cc.cc_entries cc.cc_identical;
  let red =
    reduction_ablation
      ~floor:(Option.value (recorded_reduction_floor out) ~default:10.0)
      ()
  in
  let red_factor = reduction_factor red in
  Util.row "@.reduction ablation: %s@." red.red_name;
  Util.row
    "    dedup %d nodes -> dedup+por %d -> dedup+por+sym %d (%.1fx, floor %.1fx); %d por-pruned, %d symmetry hits@."
    red.red_dedup.Rcons.Runtime.Explore.nodes red.red_por.Rcons.Runtime.Explore.nodes
    red.red_por_sym.Rcons.Runtime.Explore.nodes red_factor red.red_floor
    red.red_por_sym.Rcons.Runtime.Explore.por_pruned
    red.red_por_sym.Rcons.Runtime.Explore.symmetry_hits;
  let eng = engine_bench ~floor:(Option.value (recorded_engine_floor out) ~default:2.0) () in
  let eng_ratio = engine_speedup eng in
  Util.row "@.exploration engine: %s@." eng.eng_name;
  Util.row "    restore %8.3fs   replay %8.3fs   speedup %8.2fx (floor %.1fx), identical=%b@."
    eng.eng_undo eng.eng_replay eng_ratio eng.eng_floor eng.eng_identical;
  Util.row "    journal: %d restores, %d entries, %d bytes peak@."
    eng.eng_undo_t.Rcons.Par.Pool.Telemetry.restores eng.eng_undo_t.undo_entries
    eng.eng_undo_t.undo_bytes_peak;
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"domains\": %d,\n" domains;
  p "  \"cores\": %d,\n" (Rcons.Par.Pool.available_domains ());
  p
    "  \"cert_cache\": {\"name\": %S, \"cold_s\": %.4f, \"warm_s\": %.4f, \"nocache_s\": %.4f, \
     \"warm_speedup\": %.2f, \"entries\": %d, \"identical\": %b},\n"
    cc.cc_name cc.cc_cold cc.cc_warm cc.cc_nocache cc_speedup cc.cc_entries cc.cc_identical;
  p
    "  \"reduction\": {\"name\": %S, \"dedup_nodes\": %d, \"dedup_por_nodes\": %d, \
     \"dedup_por_sym_nodes\": %d, \"por_pruned\": %d, \"symmetry_hits\": %d, \
     \"factor\": %.1f, \"floor\": %.1f},\n"
    red.red_name red.red_dedup.Rcons.Runtime.Explore.nodes
    red.red_por.Rcons.Runtime.Explore.nodes red.red_por_sym.Rcons.Runtime.Explore.nodes
    red.red_por_sym.Rcons.Runtime.Explore.por_pruned
    red.red_por_sym.Rcons.Runtime.Explore.symmetry_hits red_factor red.red_floor;
  p
    "  \"engine\": {\"name\": %S, \"restore_s\": %.4f, \"replay_s\": %.4f, \"speedup\": %.2f, \
     \"floor\": %.1f, \"identical\": %b, \"restores\": %d, \"undo_entries\": %d, \
     \"undo_bytes_peak\": %d},\n"
    eng.eng_name eng.eng_undo eng.eng_replay eng_ratio eng.eng_floor eng.eng_identical
    eng.eng_undo_t.Rcons.Par.Pool.Telemetry.restores eng.eng_undo_t.undo_entries
    eng.eng_undo_t.undo_bytes_peak;
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      let speedup = if r.r_par > 0. then r.r_seq /. r.r_par else 0. in
      p
        "    {\"name\": %S, \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f, \"floor\": %.2f, \
         \"identical\": %b,\n"
        r.r_name r.r_seq r.r_par speedup r.r_floor r.r_identical;
      p
        "     \"stages\": {\"jobs\": %d, \"chunks\": %d, \"steals\": %d, \"seq_cutoffs\": %d, \
         \"restores\": %d, \"undo_entries\": %d, \"undo_bytes_peak\": %d, \"rehashes_full\": %d, \
         \"rehashes_saved\": %d, \"canon_saved_bytes\": %d%s},\n"
        r.r_stages.Rcons.Par.Pool.Telemetry.jobs r.r_stages.chunks r.r_stages.steals
        r.r_stages.seq_cutoffs r.r_stages.restores r.r_stages.undo_entries
        r.r_stages.undo_bytes_peak r.r_stages.rehashes_full r.r_stages.rehashes_saved
        r.r_stages.canon_saved_bytes
        (match r.r_dedup with
        | None -> ""
        | Some dd ->
            (* Dedup-engine stage counts: every expanded node is hashed
               and offered to the visited set; claims are the wins. *)
            Printf.sprintf ", \"hashes\": %d, \"claims\": %d, \"expansions\": %d"
              (dd.dd_hits + dd.dd_states) dd.dd_states dd.dd_nodes);
      p "     \"scaling\": [%s]%s\n"
        (String.concat ", "
           (List.map (fun (d, t) -> Printf.sprintf "{\"domains\": %d, \"s\": %.4f}" d t) r.r_curve))
        (match r.r_dedup with None -> "" | Some _ -> ",");
      (match r.r_dedup with
      | None -> ()
      | Some dd ->
          p
            "     \"dedup\": {\"raw_nodes\": %d, \"dedup_nodes\": %d, \"dedup_hits\": %d, \
             \"distinct_states\": %d, \"hit_rate\": %.4f, \"node_reduction\": %.1f, \
             \"identical\": %b,\n      \"raw_por_nodes\": %d, \"raw_por_schedules\": %d, \
             \"por_pruned\": %d, \"dedup_por_nodes\": %d, \"dedup_por_pruned\": %d, \
             \"rehashes_full\": %d, \"rehashes_saved\": %d}\n"
            dd.raw_nodes dd.dd_nodes dd.dd_hits dd.dd_states
            (if dd.dd_nodes > 0 then float_of_int dd.dd_hits /. float_of_int dd.dd_nodes else 0.)
            (if dd.dd_nodes > 0 then float_of_int dd.raw_nodes /. float_of_int dd.dd_nodes
             else 0.)
            dd.dd_identical dd.rp_nodes dd.rp_schedules dd.rp_pruned dd.pd_nodes dd.pd_pruned
            dd.dd_rehashes_full dd.dd_rehashes_saved);
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc;
  Util.row "@.wrote %s@." out;
  if not cc.cc_identical then begin
    Util.row "CACHE VIOLATION: cold / warm / no-cache classifications differ@.";
    exit 1
  end;
  if List.for_all (fun r -> r.r_identical) rows then
    Util.row "all parallel results identical to sequential ones@."
  else begin
    Util.row "DETERMINISM VIOLATION: some parallel result differs from its sequential run@.";
    exit 1
  end;
  (* The reduction factor is a deterministic node-count ratio, so its
     floor holds on any machine (RCONS_BENCH_NO_FLOOR still escapes). *)
  if Sys.getenv_opt "RCONS_BENCH_NO_FLOOR" = None && red_factor < red.red_floor then begin
    Util.row "REDUCTION FLOOR VIOLATION: %s at %.1fx, floor %.1fx@." red.red_name red_factor
      red.red_floor;
    exit 1
  end;
  (* The engine comparison is correctness first, speed second: differing
     stats are a bug whatever the environment, while the wall-clock
     floor gets the usual escape hatch. *)
  if not eng.eng_identical then begin
    Util.row "ENGINE VIOLATION: restore and replay engines rendered different statistics@.";
    exit 1
  end;
  if Sys.getenv_opt "RCONS_BENCH_NO_FLOOR" = None && eng_ratio < eng.eng_floor then begin
    Util.row "ENGINE FLOOR VIOLATION: %s at %.2fx, floor %.1fx@." eng.eng_name eng_ratio
      eng.eng_floor;
    exit 1
  end;
  (* Speedup floors are only meaningful with real cores behind the
     domains; a 1-core laptop regenerating the artifact must not fail on
     ratios that measure nothing. *)
  let enforce = cores >= domains && Sys.getenv_opt "RCONS_BENCH_NO_FLOOR" = None in
  let below =
    List.filter (fun r -> (if r.r_par > 0. then r.r_seq /. r.r_par else 0.) < r.r_floor) rows
  in
  if enforce && below <> [] then begin
    List.iter
      (fun r ->
        Util.row "SPEEDUP FLOOR VIOLATION: %s at %.2fx, floor %.2fx@." r.r_name
          (if r.r_par > 0. then r.r_seq /. r.r_par else 0.)
          r.r_floor)
      below;
    exit 1
  end
  else if not enforce && below <> [] then
    Util.row "(%d workload(s) below floor; not enforced: cores=%d < domains=%d or RCONS_BENCH_NO_FLOOR)@."
      (List.length below) cores domains
