(* Sequential-vs-parallel wall-clock comparison for the domain-pool
   engine, written to BENCH_parallel.json so the performance trajectory
   of the parallel check/explore paths is measurable across commits.

   Every workload is run twice -- [domains = 1] and [domains = N] -- and
   the outputs are compared: the "identical" field is the determinism
   contract checked on real workloads, not just asserted.  Speedups are
   only meaningful when the machine actually exposes multiple cores;
   "cores" records what the OCaml runtime saw, so a 1-core CI box
   reporting a ~1.0x ratio is interpretable rather than alarming. *)

let classify_workload name ot limit =
  ( name,
    fun domains ->
      let render r = Format.asprintf "%a" Rcons.Check.Classify.pp_report r in
      let seq, seq_t = Util.time_it (fun () -> Rcons.classify ~limit ot) in
      let par, par_t = Util.time_it (fun () -> Rcons.classify ~domains ~limit ot) in
      (seq_t, par_t, render seq = render par) )

let explore_workload name ot ~max_crashes =
  ( name,
    fun domains ->
      let cert = Option.get (Rcons.Check.Recording.witness ot 2) in
      let mk () =
        let inputs = [| 111; 222 |] in
        let outputs = Rcons.Algo.Outputs.make ~inputs in
        let tc = Rcons.Algo.Team_consensus.create cert in
        let body pid () =
          let team, slot =
            if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0)
          in
          Rcons.Algo.Outputs.record outputs pid
            (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
        in
        ( Rcons.Runtime.Sim.create ~n:2 body,
          fun () -> Rcons.Algo.Outputs.check_exn ~fail:Rcons.Runtime.Explore.fail outputs )
      in
      let seq, seq_t = Util.time_it (fun () -> Rcons.Runtime.Explore.explore ~max_crashes ~mk ()) in
      let par, par_t =
        Util.time_it (fun () -> Rcons.Runtime.Explore.explore ~max_crashes ~domains ~mk ())
      in
      (seq_t, par_t, seq = par) )

let workloads =
  [
    classify_workload "classify T_6 (limit 7)" (Rcons.Spec.Tn.make 6) 7;
    classify_workload "classify S_4 (limit 5)" (Rcons.Spec.Sn.make 4) 5;
    classify_workload "classify sticky-bit (limit 6)" Rcons.Spec.Sticky_bit.t 6;
    explore_workload "explore Figure 2 on S_2 (2 crashes)" (Rcons.Spec.Sn.make 2) ~max_crashes:2;
  ]

let run ?(domains = 4) ?(out = "BENCH_parallel.json") () =
  Util.section
    (Printf.sprintf "Parallel engine: sequential vs %d domains (machine has %d core(s))" domains
       (Rcons.Par.Pool.available_domains ()));
  Util.row "%-40s %-10s %-10s %-9s %s@." "workload" "seq" "par" "speedup" "identical";
  let rows =
    List.map
      (fun (name, f) ->
        let seq_t, par_t, identical = f domains in
        let speedup = if par_t > 0. then seq_t /. par_t else 0. in
        Util.row "%-40s %8.3fs %8.3fs %8.2fx %b@." name seq_t par_t speedup identical;
        (name, seq_t, par_t, speedup, identical))
      workloads
  in
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"domains\": %d,\n" domains;
  p "  \"cores\": %d,\n" (Rcons.Par.Pool.available_domains ());
  p "  \"workloads\": [\n";
  List.iteri
    (fun i (name, seq_t, par_t, speedup, identical) ->
      p "    {\"name\": %S, \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f, \"identical\": %b}%s\n"
        name seq_t par_t speedup identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc;
  Util.row "@.wrote %s@." out;
  if List.for_all (fun (_, _, _, _, identical) -> identical) rows then
    Util.row "all parallel results identical to sequential ones@."
  else begin
    Util.row "DETERMINISM VIOLATION: some parallel result differs from its sequential run@.";
    exit 1
  end
