(* E3 -- Theorem 14 and the paper's title, dynamically: algorithms that
   are only as strong as standard consensus BREAK under crash-recovery.

   Series 1: Ruppert's (crash-free-correct) team consensus on the swap
   register vs the Figure 2 algorithm, across crash rates -- the baseline
   degrades, the recoverable algorithm does not (cf. examples/crash_storm).

   Series 2: negative control -- the Figure 2 algorithm with the |B| = 1
   guard of line 19 removed is caught by the model checker, reproducing
   the bad scenario discussed after Lemma 7. *)

open Rcons.Runtime

let uniform rng crash_prob =
  Adversary.of_rng ~rng (Adversary.Uniform { crash_prob; max_crashes = 6 })

let run_recoverable rng crash_prob =
  let cert = Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 2) in
  let inputs = [| 1; 2 |] in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n:2 in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n:2 body in
  ignore (Adversary.run ~record:false (uniform rng crash_prob) sim);
  Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs

let run_baseline rng crash_prob =
  let cert = Option.get (Rcons.Check.Discerning.witness Rcons.Spec.Swap.default 2) in
  let inputs = [| 1; 2 |] in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.standard_consensus cert ~n:2 in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n:2 body in
  match Adversary.run ~record:false (uniform rng crash_prob) sim with
  | _ -> Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs
  | exception Invalid_argument _ -> false

let run () =
  Util.section "E3 (Theorem 14): consensus algorithms break under crashes; RC algorithms don't";
  let iters = 2000 in
  Util.row "%-12s %-24s %s@." "crash-rate" "Figure 2 (sticky bit)" "Ruppert baseline (swap)";
  List.iter
    (fun crash_prob ->
      let rng = Random.State.make [| Util.seed 42 |] in
      let ok_rc = ref 0 and ok_base = ref 0 in
      for _ = 1 to iters do
        if run_recoverable rng crash_prob then incr ok_rc;
        if run_baseline rng crash_prob then incr ok_base
      done;
      Util.row "%-12.2f %6d/%-17d %6d/%d@." crash_prob !ok_rc iters !ok_base iters)
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  (* negative control: the broken Figure 2 variant is caught, the raw
     violating schedule is shrunk to a 1-minimal witness, and the result
     is saved as a replayable artifact under _counterexamples/. *)
  let module Cex = Rcons.Counterexample in
  let w = Cex.team2 ~faithful:false ~level:3 "sticky" in
  let mk = match Cex.mk w with Ok mk -> mk | Error e -> failwith e in
  (match Explore.explore ~max_crashes:0 ~mk ~fingerprint:(Cex.fingerprint w) () with
  | _ -> Util.row "@.negative control FAILED: broken variant not caught@."
  | exception Explore.Violation v ->
      Util.row "@.negative control: Figure 2 without the |B|=1 guard -> %s@." v.Explore.v_msg;
      Util.row "  raw counterexample: %d choices@." (List.length v.Explore.v_schedule);
      let cex = Cex.of_violation w v in
      (match Cex.minimize cex with
      | Error e -> Util.row "  shrink FAILED: %s@." e
      | Ok min ->
          Util.row "  shrunk to %d: %a@."
            (List.length min.Cex.schedule)
            Explore.pp_schedule min.Cex.schedule;
          (try Unix.mkdir "_counterexamples" 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let file = Filename.concat "_counterexamples" "e3_negative.json" in
          Cex.save ~file min;
          Util.row "  artifact: %s (rcons_cli explore --replay %s)@." file file))
