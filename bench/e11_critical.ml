(* E11 -- Figure 3 / Theorem 14's valency argument, exhibited.

   For real 2-process consensus systems, walk the bounded E_A-style
   schedule space to a critical execution and print the paper's proof
   picture: the bivalent prefix, the (differing, univalent) valencies of
   each process's next step, and the shared object each process is
   poised on.  As the "standard argument" demands, at criticality both
   processes are poised on the SAME consensus object -- never a
   register. *)

open Rcons.Runtime

let one_shot_mk () =
  let c = Rcons.Algo.One_shot.create () in
  let outs = Array.make 2 None in
  let body pid () = outs.(pid) <- Some (Rcons.Algo.One_shot.decide c pid) in
  (Sim.create ~n:2 body, fun () -> outs)

let fig2_mk ?domains ot name_for_errors =
  ignore name_for_errors;
  let cert = Option.get (Rcons.Check.Recording.witness ?domains ot 2) in
  fun () ->
    let tc = Rcons.Algo.Team_consensus.create cert in
    let outs = Array.make 2 None in
    let body pid () =
      let team, slot = if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0) in
      outs.(pid) <- Some (tc.Rcons.Algo.Team_consensus.decide team slot pid)
    in
    (Sim.create ~n:2 body, fun () -> outs)

let run ?domains () =
  Util.section "E11 (Figure 3): critical executions of real algorithms";
  List.iter
    (fun (name, mk) ->
      let report, dt = Util.time_it (fun () -> Rcons.Valency.Critical.find_critical ~mk ()) in
      Util.row "[%s]  (%.2fs)@.%a@." name dt Rcons.Valency.Critical.pp_report report)
    [
      ("one-shot consensus object", one_shot_mk);
      ("Figure 2 on S_2", fig2_mk ?domains (Rcons.Spec.Sn.make 2) "S_2");
      ("Figure 2 on the sticky bit", fig2_mk ?domains Rcons.Spec.Sticky_bit.t "sticky");
      ("Figure 2 on CAS", fig2_mk ?domains Rcons.Spec.Cas.default "cas");
    ];
  Util.row
    "At every critical execution both processes are poised on the same consensus@.";
  Util.row "object (labels above), never on a register: the structural step of Theorem 14.@."
