(* Benchmark harness entry point: regenerates every table and figure of
   the paper's results (experiments E1-E11, see DESIGN.md and
   EXPERIMENTS.md).

     dune exec bench/main.exe                     # all experiment tables
     dune exec bench/main.exe -- E4 E8            # selected experiments
     dune exec bench/main.exe -- --e1 --domains 4 # E1 on 4 domains
     dune exec bench/main.exe -- --parallel       # seq-vs-par comparison,
                                                  # writes BENCH_parallel.json
     dune exec bench/main.exe -- --timing         # Bechamel micro-benchmarks

   Experiment names are case-insensitive and leading dashes are ignored,
   so `E1`, `e1` and `--e1` all select the hierarchy table.  The
   [--domains N] flag fans the decision procedures of E1/E5/E6/E11 out
   across N OCaml 5 domains; every table is identical to the sequential
   one (the pool's determinism contract), only the check-times change.
   [--seed N] offsets every experiment's adversary seeds by N (default 0
   = the EXPERIMENTS.md tables); the exhaustive results are seed-free
   and do not change. *)

let experiments ~domains =
  [
    ("E1", fun () -> E1_hierarchy.run ~domains ());
    ("E2", E2_team_consensus.run);
    ("E3", E3_necessity.run);
    ("E4", E4_simultaneous.run);
    ("E5", fun () -> E5_tn.run ~domains ());
    ("E6", fun () -> E6_sn.run ~domains ());
    ("E7", E7_universal.run);
    ("E8", E8_stack.run);
    ("E9", E9_robustness.run);
    ("E10", E10_ablation.run);
    ("E11", fun () -> E11_critical.run ~domains ());
    ("E12", E12_persistency.run);
    ("E13", E13_reduction.run);
    ("E14", fun () -> E14_log.run ());
    ("E15", fun () -> E15_service.run ());
  ]

let canonical name =
  let stripped = ref name in
  while String.length !stripped > 0 && !stripped.[0] = '-' do
    stripped := String.sub !stripped 1 (String.length !stripped - 1)
  done;
  String.uppercase_ascii !stripped

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull out --domains N (or --domains=N); what remains selects
     experiments. *)
  let domains = ref 1 in
  let rec strip_domains = function
    | [] -> []
    | "--domains" :: v :: rest | "-j" :: v :: rest ->
        domains := int_of_string v;
        strip_domains rest
    | "--seed" :: v :: rest ->
        Util.seed_offset := int_of_string v;
        strip_domains rest
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--domains=" ->
        domains := int_of_string (String.sub arg 10 (String.length arg - 10));
        strip_domains rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--seed=" ->
        Util.seed_offset := int_of_string (String.sub arg 7 (String.length arg - 7));
        strip_domains rest
    | arg :: rest -> arg :: strip_domains rest
  in
  let args = strip_domains args in
  let experiments = experiments ~domains:!domains in
  match args with
  | [] ->
      Format.printf
        "Reproduction harness: When Is Recoverable Consensus Harder Than Consensus? (PODC 2022)@.";
      List.iter (fun (_, run) -> run ()) experiments;
      Format.printf "@.All experiment tables regenerated; compare against EXPERIMENTS.md.@."
  | [ "--timing" ] -> Timing.run ()
  | [ "--parallel" ] ->
      Parallel_bench.run ~domains:(if !domains > 1 then !domains else 4) ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (canonical name) experiments with
          | Some run -> run ()
          | None ->
              Format.eprintf "unknown experiment %S (known: %s, --parallel, --timing)@." name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        names
