(* E12 -- weak persistency: algorithm x persistency policy x crash
   pattern.

   The seed model (Eager) persists every shared write at its step; the
   Lossy/Torn policies interpose a volatile write-back cache, so a crash
   loses (all / a deterministic half of) the victim's un-flushed lines.

   Series 1: Figure 2 team consensus, un-annotated vs persist-annotated,
   under seeded random crash adversaries.  Violations of the un-annotated
   algorithm under Lossy/Torn surface two ways: as disagreement between
   survivors, or as an uncaught invariant exception in a process body
   ("R_A empty") when a crash reverts state the algorithm assumed durable
   -- the random drivers convert neither, so both are counted explicitly.

   Series 2: the RUniversal counter (Figure 7), plain vs durable
   linearizability of the recorded history.  Annotated responses flush
   before returning, so the annotated rows stay durably linearizable at
   every crash rate; plain linearizability is allowed to fail there
   (an un-flushed completed operation may legitimately vanish).

   Series 3: exhaustive model checking (<= 1 crash, with state-space
   dedup -- sound because cache state enters [Sim.fingerprint]): the
   un-annotated algorithm has a genuine violating schedule under Lossy
   (the shrunk witness is committed as
   _counterexamples/e12_fig2_lossy.json and replayed in CI); the
   annotated variant passes the same sweep, at the extra cost of its
   barrier steps (visible in the node counts, scaled by --flush-cost). *)

open Rcons.Runtime

let cert_of ot n = Option.get (Rcons.Check.Recording.witness ot n)

(* Run [f] under a fresh ambient cache of [policy]; Eager/1 runs bare,
   the seed model byte for byte. *)
let under ?(flush_cost = 1) policy f =
  match (policy, flush_cost) with
  | Persist.Eager, 1 -> f ()
  | p, fc -> Persist.scoped ~flush_cost:fc p f

let policy_str = Persist.policy_to_string
let policies = [ Persist.Eager; Persist.Lossy; Persist.Torn ]

(* --- Series 1: Figure 2 under random crash adversaries --- *)

let fig2_system ~annotated cert =
  let size_a, size_b = Rcons.Check.Certificate.recording_teams cert in
  let n = size_a + size_b in
  let inputs = Array.init n (fun i -> if i < size_a then 111 else 222) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let tc = Rcons.Algo.Team_consensus.create ~annotated cert in
  let body pid () =
    let team, slot =
      if pid < size_a then (Rcons.Spec.Team.A, pid) else (Rcons.Spec.Team.B, pid - size_a)
    in
    Rcons.Algo.Outputs.record outputs pid
      (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
  in
  (Sim.create ~n body, outputs)

let sweep_fig2 name cert ~annotated ~policy ~crash_prob ~iters ~seed =
  let ok = ref 0 and disagree = ref 0 and aborted = ref 0 and stuck = ref 0 in
  let crashes = ref 0 in
  for i = 1 to iters do
    under policy (fun () ->
        let sim, outputs = fig2_system ~annotated cert in
        let rng = Random.State.make [| Util.seed seed; i |] in
        match Drivers.random ~crash_prob ~max_crashes:6 ~rng sim with
        | c ->
            crashes := !crashes + c;
            if
              Rcons.Algo.Outputs.agreement_ok outputs
              && Rcons.Algo.Outputs.validity_ok outputs
            then incr ok
            else incr disagree
        | exception (Invalid_argument _ | Failure _) -> incr aborted
        | exception Drivers.Stuck _ -> incr stuck)
  done;
  Util.row
    "%-26s %-7s crash-rate=%-5.2f %5d/%d ok   disagree=%-4d abort=%-4d stuck=%-4d avg-crashes=%4.2f@."
    name (policy_str policy) crash_prob !ok iters !disagree !aborted !stuck
    (float_of_int !crashes /. float_of_int iters)

(* --- Series 2: RUniversal histories, plain vs durable linearizability --- *)

let sweep_universal ~annotated ~policy ~crash_prob ~iters ~seed =
  let open Rcons.Universal in
  let spec = Derived.lin_spec Derived.counter in
  let lin_ok = ref 0 and dlin_ok = ref 0 and aborted = ref 0 and stuck = ref 0 in
  let rng = Random.State.make [| Util.seed seed |] in
  for _ = 1 to iters do
    under policy (fun () ->
        let history = Rcons.History.History.create () in
        let u = Runiversal.create ~history ~annotated ~n:2 Derived.counter in
        let scripts = [| [| Derived.Incr; Derived.Get |]; [| Derived.Incr |] |] in
        let runner = Script.create u ~n:2 ~max_ops:2 in
        let sim = Sim.create ~n:2 (fun pid () -> Script.run runner pid scripts.(pid)) in
        (* crashes land in the history: durable linearizability needs
           them to decide which completed operations are optional *)
        let adv = Adversary.of_rng ~rng (Adversary.Uniform { crash_prob; max_crashes = 4 }) in
        match
          Adversary.run ~record:false
            ~on_crash:(fun pid -> Rcons.History.History.crash history ~pid)
            adv sim
        with
        | _ ->
            if Rcons.History.Linearizability.check_history spec history then incr lin_ok;
            if Rcons.History.Conditions.durably_linearizable spec history then incr dlin_ok
        | exception (Invalid_argument _ | Failure _) -> incr aborted
        (* a crash-revert loop that exhausts the step budget: a
           recoverable-wait-freedom failure of the un-annotated
           construction under weak persistency *)
        | exception Adversary.Stuck _ -> incr stuck)
  done;
  Util.row
    "%-26s %-7s crash-rate=%-5.2f lin=%4d/%-5d durable-lin=%4d/%-5d abort=%-3d stuck=%d@."
    (if annotated then "RUniversal +barriers" else "RUniversal")
    (policy_str policy) crash_prob !lin_ok iters !dlin_ok iters !aborted !stuck

(* --- Series 3: exhaustive <= 1 crash --- *)

let exhaustive name cert ~annotated ~policy ~flush_cost =
  let mk () =
    let sim, outputs = fig2_system ~annotated cert in
    (sim, fun () -> Rcons.Algo.Outputs.check_exn ~fail:Explore.fail outputs)
  in
  let run () =
    under ~flush_cost policy (fun () -> Explore.explore ~max_crashes:1 ~dedup:true ~mk ())
  in
  (match Util.time_it (fun () -> try Ok (run ()) with Explore.Violation v -> Error v) with
  | Ok stats, dt ->
      Util.row "%-26s %-7s flush-cost=%d  no violation   %6d schedules %8d nodes (%.1fs)@."
        name (policy_str policy) flush_cost stats.Explore.schedules stats.Explore.nodes dt
  | Error v, dt ->
      Util.row "%-26s %-7s flush-cost=%d  VIOLATION at depth %d: %s (%.1fs)@." name
        (policy_str policy) flush_cost
        (List.length v.Explore.v_schedule)
        v.Explore.v_msg dt)

let run () =
  Util.section "E12: weak persistency -- algorithm x policy x crash pattern";
  Util.row "[Figure 2 team consensus, random adversaries, 400 runs per row]@.";
  let certs =
    [ ("sticky-bit (n=2)", cert_of Rcons.Spec.Sticky_bit.t 2); ("S_3 (n=3)", cert_of (Rcons.Spec.Sn.make 3) 3) ]
  in
  List.iteri
    (fun i (name, cert) ->
      List.iter
        (fun annotated ->
          let name = if annotated then name ^ " +barriers" else name in
          List.iter
            (fun policy ->
              List.iter
                (fun crash_prob ->
                  sweep_fig2 name cert ~annotated ~policy ~crash_prob ~iters:400
                    ~seed:(1200 + i))
                [ 0.15; 0.4 ])
            policies)
        [ false; true ])
    certs;
  Util.row "@.[RUniversal counter, n = 2, 200 runs per row]@.";
  List.iter
    (fun annotated ->
      List.iter
        (fun policy ->
          List.iter
            (fun crash_prob ->
              sweep_universal ~annotated ~policy ~crash_prob ~iters:200 ~seed:1300)
            [ 0.1; 0.25 ])
        policies)
    [ false; true ];
  Util.row "@.[exhaustive model checking, <= 1 crash, dedup on]@.";
  let cert = cert_of Rcons.Spec.Sticky_bit.t 2 in
  List.iter
    (fun annotated ->
      let name = if annotated then "sticky-bit (n=2) +barriers" else "sticky-bit (n=2)" in
      List.iter (fun policy -> exhaustive name cert ~annotated ~policy ~flush_cost:1) policies)
    [ false; true ];
  (* barrier cost scales with --flush-cost; correctness does not *)
  exhaustive "sticky-bit (n=2) +barriers" cert ~annotated:true ~policy:Persist.Lossy
    ~flush_cost:3;
  Util.row
    "@.The un-annotated algorithm's Lossy violation above is the committed witness@.";
  Util.row
    "(_counterexamples/e12_fig2_lossy.json, ddmin-shrunk, replayed in CI); the@.";
  Util.row "annotated variant passes the identical sweep at every policy.@."
