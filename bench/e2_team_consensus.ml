(* E2 -- Figure 2 / Theorem 8: the recoverable team-consensus algorithm,
   driven by machine-derived certificates.

   Rows report, per certificate and crash rate, the number of random
   crash-injected executions driven and the number that satisfied
   agreement + validity (the paper's claim: all of them), plus average
   steps and crashes.  A final row gives the exhaustive model-checking
   count for one representative certificate. *)

open Rcons.Runtime

let cert_of ot n = Option.get (Rcons.Check.Recording.witness ot n)

let system cert =
  let size_a, size_b = Rcons.Check.Certificate.recording_teams cert in
  let n = size_a + size_b in
  let inputs = Array.init n (fun i -> if i < size_a then 111 else 222) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let tc = Rcons.Algo.Team_consensus.create cert in
  let body pid () =
    let team, slot =
      if pid < size_a then (Rcons.Spec.Team.A, pid) else (Rcons.Spec.Team.B, pid - size_a)
    in
    Rcons.Algo.Outputs.record outputs pid (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
  in
  (Sim.create ~n body, outputs)

let sweep name cert ~iters ~crash_prob ~seed =
  (* One adversary per sweep: its private RNG threads through all
     [iters] runs, reproducible from the seed. *)
  let adv =
    Adversary.create ~seed:(Util.seed seed)
      (Adversary.Uniform { crash_prob; max_crashes = 10 })
  in
  let ok = ref 0 and steps = ref 0 and crashes = ref 0 in
  for _ = 1 to iters do
    let sim, outputs = system cert in
    crashes := !crashes + (Adversary.run ~record:false adv sim).Adversary.crashes;
    steps := !steps + Sim.total_steps sim;
    if Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs then
      incr ok
  done;
  Util.row "%-18s crash-rate=%-5.2f %6d/%d correct   avg-steps=%5.1f avg-crashes=%4.2f@." name
    crash_prob !ok iters
    (float_of_int !steps /. float_of_int iters)
    (float_of_int !crashes /. float_of_int iters)

let run () =
  Util.section "E2 (Figure 2): recoverable team consensus under crash adversaries";
  let certs =
    [
      ("S_3", cert_of (Rcons.Spec.Sn.make 3) 3);
      ("S_5", cert_of (Rcons.Spec.Sn.make 5) 5);
      ("T_4 (at n=2)", cert_of (Rcons.Spec.Tn.make 4) 2);
      ("sticky-bit", cert_of Rcons.Spec.Sticky_bit.t 4);
      ("compare&swap", cert_of Rcons.Spec.Cas.default 3);
      ("readable-stack", cert_of Rcons.Spec.Stack.readable_variant 3);
    ]
  in
  List.iteri
    (fun i (name, cert) ->
      List.iter
        (fun crash_prob -> sweep name cert ~iters:1000 ~crash_prob ~seed:(100 + i))
        [ 0.0; 0.2; 0.4 ])
    certs;
  (* exhaustive model checking, one representative (two participants;
     deeper configurations live in the test suite) *)
  let cert = cert_of (Rcons.Spec.Sn.make 2) 2 in
  let mk () =
    let sim, outputs = system cert in
    (sim, fun () -> Rcons.Algo.Outputs.check_exn ~fail:Explore.fail outputs)
  in
  let stats, dt = Util.time_it (fun () -> Explore.explore ~max_crashes:1 ~mk ()) in
  Util.row
    "@.exhaustive (S_2 cert, 2 procs, <=1 crash): %d schedules, %d nodes, depth %d -- no violation (%.1fs)@."
    stats.Explore.schedules stats.Explore.nodes stats.Explore.max_depth dt
