(* E7 -- Figure 7 / Section 4: the recoverable universal construction.

   Series 1: throughput (simulator steps per completed operation) of a
   RUniversal counter as the process count and crash rate grow, with the
   recorded history checked for linearizability on every run.

   Series 2 (ablation): the default atomic one-shot RC instances vs RC
   instances built from the Figure 2 + tournament algorithm over the
   sticky bit's certificate -- the full paper pipeline, at the cost of
   more steps per next-pointer decision. *)

open Rcons.Runtime
open Rcons.Universal

let run_workload ~n ~ops_per_proc ~crash_prob ~make_rc ~seed =
  let history = Rcons.History.History.create () in
  let u = Runiversal.create ~history ?make_rc ~n Derived.counter in
  let scripts =
    Array.init n (fun pid ->
        Array.init ops_per_proc (fun k ->
            if (pid + k) mod 3 = 0 then Derived.Get else Derived.Incr))
  in
  let runner = Script.create u ~n ~max_ops:ops_per_proc in
  let sim = Sim.create ~n (fun pid () -> Script.run runner pid scripts.(pid)) in
  let adv =
    Adversary.create ~seed:(Util.seed seed)
      (Adversary.Uniform { crash_prob; max_crashes = 3 * n })
  in
  let crashes = (Adversary.run ~record:false adv sim).Adversary.crashes in
  let lin =
    Rcons.History.Linearizability.check_history (Derived.lin_spec Derived.counter) history
  in
  (Sim.total_steps sim, crashes, lin, Runiversal.applied_count u)

let series name make_rc =
  Util.row "@.[%s]@." name;
  Util.row "%-6s %-12s %-12s %-16s %-14s %s@." "n" "crash-rate" "avg-steps" "steps/operation"
    "avg-crashes" "linearizable";
  List.iter
    (fun n ->
      List.iter
        (fun crash_prob ->
          let iters = 60 in
          let ops_per_proc = 4 in
          let steps = ref 0 and crashes = ref 0 and lin_ok = ref 0 and applied = ref 0 in
          for seed = 1 to iters do
            let s, c, lin, a = run_workload ~n ~ops_per_proc ~crash_prob ~make_rc ~seed in
            steps := !steps + s;
            crashes := !crashes + c;
            applied := !applied + a;
            if lin then incr lin_ok
          done;
          Util.row "%-6d %-12.2f %-12.1f %-16.1f %-14.2f %d/%d@." n crash_prob
            (float_of_int !steps /. float_of_int iters)
            (float_of_int !steps /. float_of_int !applied)
            (float_of_int !crashes /. float_of_int iters)
            !lin_ok iters)
        [ 0.0; 0.1; 0.25 ])
    [ 2; 4; 6 ]

let figure2_rc () =
  let cert = Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 8) in
  fun () ->
    (* one tournament instance per node; capacities cover up to 8 pids *)
    let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n:8 in
    { Runiversal.propose = (fun pid v -> decide pid v) }

(* Section 4's condition gap, measured: how often do crash-recovery
   histories satisfy recoverable but NOT strict linearizability?  The
   paper: without volatile shared memory only the weaker condition is
   guaranteed -- and indeed the construction regularly produces
   non-strict histories once crashes occur. *)
let strictness_series () =
  Util.row "@.[strict vs recoverable linearizability (Section 4), n = 2]@.";
  Util.row "%-12s %-14s %-22s %s@." "crash-rate" "recoverable" "strict" "recoverable-only";
  let spec = Derived.lin_spec Derived.counter in
  List.iter
    (fun crash_prob ->
      let iters = 300 in
      let rec_ok = ref 0 and strict_ok = ref 0 in
      let rng = Random.State.make [| Util.seed 19 |] in
      for _ = 1 to iters do
        let history = Rcons.History.History.create () in
        let u = Runiversal.create ~history ~n:2 Derived.counter in
        let scripts = [| [| Derived.Incr; Derived.Incr |]; [| Derived.Incr; Derived.Get |] |] in
        let runner = Script.create u ~n:2 ~max_ops:2 in
        let sim = Sim.create ~n:2 (fun pid () -> Script.run runner pid scripts.(pid)) in
        (* the [on_crash] hook lands crashes in the history too *)
        let adv = Adversary.of_rng ~rng (Adversary.Uniform { crash_prob; max_crashes = 6 }) in
        ignore
          (Adversary.run ~record:false
             ~on_crash:(fun pid -> Rcons.History.History.crash history ~pid)
             adv sim);
        let v = Rcons.History.Conditions.classify spec history in
        if v.Rcons.History.Conditions.recoverable then incr rec_ok;
        if v.Rcons.History.Conditions.strict then incr strict_ok
      done;
      Util.row "%-12.2f %4d/%-9d %4d/%-17d %d@." crash_prob !rec_ok iters !strict_ok iters
        (!rec_ok - !strict_ok))
    [ 0.0; 0.1; 0.25 ]

let run () =
  Util.section "E7 (Figure 7): recoverable universal construction";
  series "atomic one-shot RC instances (default)" None;
  series "Figure 2 + tournament RC instances (sticky-bit certificate)" (Some (figure2_rc ()));
  strictness_series ()
