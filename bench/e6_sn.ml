(* E6 -- Figure 6 / Proposition 21: S_n is n-recording and not
   (n+1)-discerning, hence rcons(S_n) = cons(S_n) = n: every level of the
   RC hierarchy is populated.  Additionally the derived certificate is
   exercised end-to-end: the Figure 2 + tournament algorithm from S_n's
   witness solves n-process RC under a random crash adversary. *)

open Rcons.Runtime

let dynamic_check n cert =
  let iters = 200 in
  let adv =
    Adversary.create ~seed:(Util.seed n)
      (Adversary.Uniform { crash_prob = 0.2; max_crashes = 2 * n })
  in
  let ok = ref 0 in
  for _ = 1 to iters do
    let inputs = Array.init n (fun i -> 100 + i) in
    let outputs = Rcons.Algo.Outputs.make ~inputs in
    let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n in
    let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
    let sim = Sim.create ~n body in
    ignore (Adversary.run ~record:false adv sim);
    if Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs then
      incr ok
  done;
  (!ok, iters)

let run ?(domains = 1) () =
  Util.section "E6 (Figure 6): S_n populates level n of both hierarchies";
  Util.row "%-6s %-14s %-18s %-7s %-8s %-18s %s@." "n" "n-recording" "(n+1)-discerning" "cons"
    "rcons" "n-process RC runs" "time";
  List.iter
    (fun n ->
      let t = Rcons.Spec.Sn.make n in
      let (rec_n, disc_n1, cert), dt =
        Util.time_it (fun () ->
            ( Rcons.Check.Recording.is_recording ~domains t n,
              Rcons.Check.Discerning.is_discerning ~domains t (n + 1),
              Rcons.Check.Recording.witness ~domains t n ))
      in
      let report = Rcons.classify ~domains ~limit:(n + 1) t in
      let ok, iters = dynamic_check n (Option.get cert) in
      Util.row "%-6d %-14b %-18b %-7s %-8s %8d/%-9d %.2fs@." n rec_n disc_n1
        (Util.bounds_str report.Rcons.Check.Classify.cons)
        (Util.bounds_str report.Rcons.Check.Classify.rcons)
        ok iters dt)
    [ 2; 3; 4; 5; 6 ];
  Util.row "@.paper: yes / no on each row; cons = rcons = n; all runs correct.@."
