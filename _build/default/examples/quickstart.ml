(* Quickstart: the core workflow of the library in ~60 lines.

     dune exec examples/quickstart.exe

   1. Pick a shared object type and ask where it sits in the hierarchies.
   2. Derive a recoverable-consensus algorithm from its recording witness.
   3. Run it on the simulated crash-recovery system under an adversary
      that crashes processes at random, and check agreement/validity. *)

let () =
  (* 1. Classify a type: the sticky bit solves everything... *)
  let sticky = Rcons.Spec.Sticky_bit.t in
  Format.printf "%a@." Rcons.Check.Classify.pp_report (Rcons.classify ~limit:5 sticky);
  (* ...while the paper's stack (Appendix H) does not even solve
     2-process recoverable consensus: *)
  let stack_report = Rcons.Valency.Impossibility.analyse_stack () in
  Format.printf "%a@.@." Rcons.Valency.Impossibility.summary stack_report;

  (* 2. Five processes agree through crashes using sticky bits. *)
  let n = 5 in
  let decide =
    match Rcons.solve_rc sticky ~n with
    | Some decide -> decide
    | None -> failwith "sticky bit must be n-recording"
  in

  (* 3. Simulate: each process proposes 100 + its id, crashes may hit
     anyone at any step; every process restarts its code from scratch
     when it recovers (local memory is volatile, shared memory is not). *)
  let inputs = Array.init n (fun i -> 100 + i) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Rcons.Runtime.Sim.create ~n body in
  let rng = Random.State.make [| 2022 |] in
  let crashes =
    Rcons.Runtime.Drivers.random ~crash_prob:0.25 ~max_crashes:12 ~rng sim
  in

  Format.printf "ran %d processes with %d crashes injected@." n crashes;
  Array.iteri
    (fun pid outs ->
      Format.printf "  p%d decided %s (crashed %d times)@." pid
        (String.concat ", " (List.map string_of_int outs))
        (Rcons.Runtime.Sim.crash_count sim pid))
    outputs.Rcons.Algo.Outputs.outputs;
  assert (Rcons.Algo.Outputs.agreement_ok outputs);
  assert (Rcons.Algo.Outputs.validity_ok outputs);
  Format.printf "agreement and validity hold.@."
