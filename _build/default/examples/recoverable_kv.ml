(* A recoverable key-value store on non-volatile memory, built with the
   universal construction of Figure 7.

     dune exec examples/recoverable_kv.exe

   Four processes run a workload of puts/finds/deletes against one shared
   store.  The adversary crashes processes aggressively; every crashed
   process recovers, finishes its interrupted operation (the recovery path
   of the construction) and carries on with its script.  At the end the
   recorded concurrent history is checked for linearizability against the
   sequential map specification -- the recoverable object behaves exactly
   like an atomic one, crashes notwithstanding (Section 4 of the paper). *)

open Rcons.Universal

let () =
  let n = 4 in
  let history = Rcons.History.History.create () in
  let store = Rcons.make_recoverable ~history ~n (Derived.kv ()) in
  let keys = [| "apple"; "beech"; "cedar" |] in
  let scripts =
    Array.init n (fun pid ->
        Array.init 5 (fun k ->
            let key = keys.((pid + k) mod Array.length keys) in
            match k mod 3 with
            | 0 -> Derived.Put (key, (10 * pid) + k)
            | 1 -> Derived.Find key
            | _ -> Derived.Del key))
  in
  let runner = Script.create store ~n ~max_ops:5 in
  let sim = Rcons.Runtime.Sim.create ~n (fun pid () -> Script.run runner pid scripts.(pid)) in
  let rng = Random.State.make [| 7 |] in
  let crashes = Rcons.Runtime.Drivers.random ~crash_prob:0.2 ~max_crashes:16 ~rng sim in

  Format.printf "4 processes, 20 operations, %d crashes injected@." crashes;
  Format.printf "operations applied (in linearization order):@.";
  List.iter
    (fun nd ->
      let pid, k = nd.Runiversal.tag in
      Format.printf "  #%02d p%d/%d@."
        (Rcons.Runtime.Cell.peek nd.Runiversal.seq)
        pid k)
    (Runiversal.linearization store);
  let ok =
    Rcons.History.Linearizability.check_history (Derived.lin_spec (Derived.kv ())) history
  in
  Format.printf "history linearizable w.r.t. the sequential map: %b@." ok;
  assert ok
