(* Hierarchy explorer: where does a type sit in the consensus hierarchy
   vs the recoverable-consensus hierarchy?

     dune exec examples/hierarchy_explorer.exe            # whole catalogue
     dune exec examples/hierarchy_explorer.exe -- S 5     # one S_n
     dune exec examples/hierarchy_explorer.exe -- T 6     # one T_n
     dune exec examples/hierarchy_explorer.exe -- random 12  # random types

   The table reproduces experiment E1 (Figure 1 of the paper): for each
   type, the maximum n for which it is n-discerning / n-recording, and the
   implied cons / rcons intervals.  The paper's separations are visible in
   the output: T_n has rcons < cons (Proposition 19 / Corollary 20), S_n
   has rcons = cons = n (Proposition 21), and the gap is never more than 2
   for readable types (Corollary 17). *)

let print_header () =
  Format.printf "%-20s %-9s %-11s %-10s %-8s %s@." "type" "readable" "discerning" "recording"
    "cons" "rcons";
  Format.printf "%s@." (String.make 72 '-')

let print_report ot limit =
  let r = Rcons.classify ~limit ot in
  let level = Format.asprintf "%a" Rcons.Check.Classify.pp_level in
  let bounds b = Format.asprintf "%a" Rcons.Check.Classify.pp_bounds_option b in
  Format.printf "%-20s %-9b %-11s %-10s %-8s %s@." r.Rcons.Check.Classify.type_name
    r.Rcons.Check.Classify.is_readable
    (level r.Rcons.Check.Classify.discerning)
    (level r.Rcons.Check.Classify.recording)
    (bounds r.Rcons.Check.Classify.cons)
    (bounds r.Rcons.Check.Classify.rcons)

let catalogue () =
  print_header ();
  List.iter (fun e -> print_report e.Rcons.Spec.Catalogue.ot 5) Rcons.Spec.Catalogue.all;
  List.iter (fun n -> print_report (Rcons.Spec.Tn.make n) (n + 1)) [ 4; 5 ];
  List.iter (fun n -> print_report (Rcons.Spec.Sn.make n) (n + 1)) [ 2; 3; 4; 5 ]

let random_types count =
  print_header ();
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to count do
    let table = Rcons.Spec.Finite_type.random ~num_states:4 ~num_ops:2 rng in
    print_report (Rcons.Spec.Finite_type.of_table table) 5
  done

let () =
  match Sys.argv with
  | [| _ |] -> catalogue ()
  | [| _; "S"; n |] ->
      print_header ();
      let n = int_of_string n in
      print_report (Rcons.Spec.Sn.make n) (n + 1)
  | [| _; "T"; n |] ->
      print_header ();
      let n = int_of_string n in
      print_report (Rcons.Spec.Tn.make n) (n + 1)
  | [| _; "random"; count |] -> random_types (int_of_string count)
  | _ ->
      prerr_endline "usage: hierarchy_explorer [S n | T n | random count]";
      exit 2
