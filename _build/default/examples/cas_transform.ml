(* Section 5's transformation, in action: "any concurrent algorithm from
   read/write and CAS objects can become recoverable by replacing its CAS
   objects with their recoverable implementation".

     dune exec examples/cas_transform.exe

   The algorithm: a classic lock-free counter, incremented with a
   read-CAS retry loop.  Run twice:

   - on a plain atomic CAS object, with crash injection: a process that
     crashes after a successful CAS re-runs its loop and increments
     AGAIN -- the count drifts above the number of logical increments;
   - on the recoverable CAS: re-entering an attempt returns the recorded
     outcome instead of re-executing, so every logical increment takes
     effect exactly once, crashes notwithstanding. *)

open Rcons.Runtime

let n = 3
let increments_per_process = 5

(* --- the naive version: plain CAS, oblivious to recovery --- *)

let run_plain ~rng ~crash_prob =
  let c = Cell.make 0 in
  let progress = Array.init n (fun _ -> Cell.make 0) in
  let body pid () =
    let k = ref (Cell.read progress.(pid)) in
    while !k < increments_per_process do
      (* lock-free increment: read, then CAS *)
      let fine = ref false in
      while not !fine do
        let v = Cell.read c in
        fine := Sim.step (fun () -> if Cell.peek c = v then (Cell.poke c (v + 1); true) else false)
      done;
      Cell.write progress.(pid) (!k + 1);
      k := Cell.read progress.(pid)
    done
  in
  let sim = Sim.create ~n body in
  ignore (Drivers.random ~crash_prob ~max_crashes:12 ~rng sim);
  Cell.peek c

(* --- the transformed version: recoverable CAS --- *)

let run_recoverable ~rng ~crash_prob =
  let rcas = Rcons.Algo.Recoverable_cas.create ~n 0 in
  let progress = Array.init n (fun _ -> Cell.make 0) in
  (* each retry needs a fresh attempt number that survives crashes; the
     pending attempt is keyed by the increment index so that a crash
     between "increment done" and "pending slot cleared" cannot confuse
     two logical increments *)
  let attempt_counter = Array.init n (fun _ -> Cell.make 0) in
  let pending = Array.init n (fun _ -> Cell.make (-1, -1)) in
  let body pid () =
    let k = ref (Cell.read progress.(pid)) in
    while !k < increments_per_process do
      let fine = ref false in
      while not !fine do
        let stored_k, stored_a = Cell.read pending.(pid) in
        let a =
          if stored_k = !k && stored_a >= 0 then stored_a
          else begin
            let a = Cell.read attempt_counter.(pid) + 1 in
            Cell.write attempt_counter.(pid) a;
            Cell.write pending.(pid) (!k, a);
            a
          end
        in
        let outcome =
          match Rcons.Algo.Recoverable_cas.recover rcas pid ~attempt:a with
          | Rcons.Algo.Recoverable_cas.Succeeded -> true
          | Rcons.Algo.Recoverable_cas.Failed -> false
          | Rcons.Algo.Recoverable_cas.Unresolved ->
              let v = Rcons.Algo.Recoverable_cas.read_value rcas in
              Rcons.Algo.Recoverable_cas.cas rcas pid ~attempt:a ~expected:v ~desired:(v + 1)
        in
        if outcome then Cell.write progress.(pid) (!k + 1)
        else Cell.write pending.(pid) (!k, -1);
        fine := outcome
      done;
      k := Cell.read progress.(pid)
    done
  in
  let sim = Sim.create ~n body in
  ignore (Drivers.random ~crash_prob ~max_crashes:12 ~rng sim);
  (* read the final value out of simulation *)
  let v = ref 0 in
  let observer = Sim.create ~n:1 (fun _ () -> v := Rcons.Algo.Recoverable_cas.read_value rcas) in
  Drivers.round_robin observer;
  !v

let () =
  let expected = n * increments_per_process in
  Format.printf "%d processes x %d increments = %d expected@.@." n increments_per_process expected;
  Format.printf "%-12s %-28s %s@." "crash rate" "plain CAS (avg count)" "recoverable CAS (avg count)";
  Format.printf "%s@." (String.make 66 '-');
  List.iter
    (fun crash_prob ->
      let iters = 300 in
      let total_plain = ref 0 and total_rec = ref 0 and drift = ref 0 in
      let rng = Random.State.make [| 11 |] in
      for _ = 1 to iters do
        let p = run_plain ~rng ~crash_prob in
        let r = run_recoverable ~rng ~crash_prob in
        total_plain := !total_plain + p;
        total_rec := !total_rec + r;
        if p <> expected then incr drift
      done;
      Format.printf "%-12.2f %6.2f (drifted in %d/%d runs) %14.2f@." crash_prob
        (float_of_int !total_plain /. float_of_int iters)
        !drift iters
        (float_of_int !total_rec /. float_of_int iters))
    [ 0.0; 0.1; 0.3 ];
  Format.printf
    "@.The recoverable version lands on exactly %d every time: each attempt's outcome@." expected;
  Format.printf "is recorded, so a recovered process never re-applies a successful CAS.@."
