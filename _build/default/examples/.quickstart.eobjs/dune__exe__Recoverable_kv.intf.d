examples/recoverable_kv.mli:
