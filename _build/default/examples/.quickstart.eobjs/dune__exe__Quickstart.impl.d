examples/quickstart.ml: Array Format List Random Rcons String
