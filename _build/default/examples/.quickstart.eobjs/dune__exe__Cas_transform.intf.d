examples/cas_transform.mli:
