examples/crash_storm.ml: Array Drivers Format List Random Rcons Sim String
