examples/recoverable_kv.ml: Array Derived Format List Random Rcons Runiversal Script
