examples/hierarchy_explorer.ml: Format List Random Rcons String Sys
