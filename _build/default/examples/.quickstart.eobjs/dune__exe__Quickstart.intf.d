examples/quickstart.mli:
