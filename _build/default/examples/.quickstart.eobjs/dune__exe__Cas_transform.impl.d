examples/cas_transform.ml: Array Cell Drivers Format List Random Rcons Sim String
