lib/runtime/cell.ml: Sim
