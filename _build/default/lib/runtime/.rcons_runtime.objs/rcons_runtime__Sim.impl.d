lib/runtime/sim.ml: Array Effect List
