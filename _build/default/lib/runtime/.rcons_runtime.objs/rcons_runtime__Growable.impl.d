lib/runtime/growable.ml: Cell Hashtbl
