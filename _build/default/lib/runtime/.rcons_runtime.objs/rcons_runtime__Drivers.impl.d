lib/runtime/drivers.ml: List Random Sim
