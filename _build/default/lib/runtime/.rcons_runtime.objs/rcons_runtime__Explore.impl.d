lib/runtime/explore.ml: Format List Sim
