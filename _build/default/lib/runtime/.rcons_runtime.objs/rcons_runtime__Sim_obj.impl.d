lib/runtime/sim_obj.ml: Rcons_spec Sim
