lib/runtime/explore.mli: Format Sim
