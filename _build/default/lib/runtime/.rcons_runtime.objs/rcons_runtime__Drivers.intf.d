lib/runtime/drivers.mli: Random Sim
