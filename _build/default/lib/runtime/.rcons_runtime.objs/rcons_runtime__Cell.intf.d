lib/runtime/cell.mli:
