lib/runtime/growable.mli: Cell
