lib/runtime/sim.mli: Effect
