lib/runtime/sim_obj.mli: Rcons_spec
