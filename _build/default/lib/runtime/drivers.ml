(* Schedule drivers for the simulator: deterministic round-robin, seeded
   random adversaries with independent crash injection, and the
   simultaneous-crash model of Section 2. *)

exception Stuck of string
(* Raised when a bounded run does not terminate within its step budget --
   with finitely many crashes this indicates a violation of recoverable
   wait-freedom. *)

let unfinished t =
  let n = Sim.num_procs t in
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (if Sim.finished t i then acc else i :: acc) in
  ignore n;
  collect (n - 1) []

(* Step every unfinished process in turn until all finish. *)
let round_robin ?(max_steps = 1_000_000) t =
  let budget = ref max_steps in
  while not (Sim.all_finished t) do
    for i = 0 to Sim.num_procs t - 1 do
      if not (Sim.finished t i) then begin
        if !budget <= 0 then raise (Stuck "round_robin: step budget exhausted");
        decr budget;
        ignore (Sim.step_proc t i)
      end
    done
  done

(* Random adversary: at each point, with probability [crash_prob] (and
   while the crash budget lasts) crash a uniformly chosen started process;
   otherwise step a uniformly chosen unfinished process.  Because only
   finitely many crashes are injected, recoverable wait-freedom guarantees
   termination; exceeding [max_steps] raises [Stuck]. *)
let random ?(max_steps = 1_000_000) ?(crash_prob = 0.0) ?(max_crashes = 64) ~rng t =
  let crashes = ref 0 in
  let budget = ref max_steps in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  while not (Sim.all_finished t) do
    let started =
      List.filter (fun i -> Sim.started t i) (unfinished t)
    in
    if
      !crashes < max_crashes && started <> []
      && Random.State.float rng 1.0 < crash_prob
    then begin
      incr crashes;
      Sim.crash t (pick started)
    end
    else begin
      if !budget <= 0 then raise (Stuck "random: step budget exhausted");
      decr budget;
      ignore (Sim.step_proc t (pick (unfinished t)))
    end
  done;
  !crashes

(* After a completed run, crash a random subset of processes and drive the
   system back to completion: processes that produce an output, crash and
   run their algorithm again must output the same value (agreement covers
   repeated outputs of one process). *)
let crash_and_rerun ?(max_steps = 1_000_000) ~rng t =
  for i = 0 to Sim.num_procs t - 1 do
    if Random.State.bool rng then Sim.crash t i
  done;
  random ~max_steps ~crash_prob:0.0 ~rng t

(* Simultaneous-crash adversary: run round-robin, crashing *all* processes
   whenever the total step count reaches one of [crash_at] (ascending). *)
let simultaneous ?(max_steps = 1_000_000) ~crash_at t =
  let remaining = ref (List.sort_uniq compare crash_at) in
  let budget = ref max_steps in
  let n = Sim.num_procs t in
  let cursor = ref 0 in
  while not (Sim.all_finished t) do
    (match !remaining with
    | at :: rest when Sim.total_steps t >= at ->
        remaining := rest;
        Sim.crash_all t
    | _ -> ());
    (* Advance the round-robin cursor to the next unfinished process. *)
    let rec advance tries =
      if tries = 0 then ()
      else if Sim.finished t !cursor then begin
        cursor := (!cursor + 1) mod n;
        advance (tries - 1)
      end
    in
    advance n;
    if not (Sim.finished t !cursor) then begin
      if !budget <= 0 then raise (Stuck "simultaneous: step budget exhausted");
      decr budget;
      ignore (Sim.step_proc t !cursor);
      cursor := (!cursor + 1) mod n
    end
  done
