(* Unbounded array of shared cells, used for the infinite arrays of the
   paper (the D[1..infinity] register array and the consensus-instance
   sequence C_1, C_2, ... of Figure 4; footnote 2 explicitly allows an
   unbounded number of objects).  Entries are created on demand with a
   default generator; creation itself is not a process step -- only reads
   and writes of entries are. *)

type 'a t = { default : int -> 'a; table : (int, 'a Cell.t) Hashtbl.t }

let make default = { default; table = Hashtbl.create 16 }

let cell t i =
  match Hashtbl.find_opt t.table i with
  | Some c -> c
  | None ->
      let c = Cell.make (t.default i) in
      Hashtbl.add t.table i c;
      c

let read t i = Cell.read (cell t i)
let write t i v = Cell.write (cell t i) v
let peek t i = Cell.peek (cell t i)
