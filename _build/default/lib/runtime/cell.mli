(** Shared read/write registers in the simulated non-volatile memory.
    Every {!read}/{!write} is one atomic step of the calling process. *)

type 'a t

val make : 'a -> 'a t
val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

val peek : 'a t -> 'a
(** Direct access for set-up/checking code outside the simulation. *)

val poke : 'a t -> 'a -> unit
