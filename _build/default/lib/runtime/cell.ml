(* Shared read/write registers living in the simulated non-volatile memory.
   Every access is one atomic step of the calling process. *)

type 'a t = { mutable contents : 'a }

let make v = { contents = v }
let read c = Sim.step ~label:"register" (fun () -> c.contents)
let write c v = Sim.step ~label:"register" (fun () -> c.contents <- v)

(* Direct access for set-up and checking code running outside the
   simulation (not a process step). *)
let peek c = c.contents
let poke c v = c.contents <- v
