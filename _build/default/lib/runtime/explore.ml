(* Bounded exhaustive schedule exploration ("stateless model checking").

   The explorer enumerates every schedule of a freshly created system --
   each point chooses either a step of an unfinished process or a crash of
   a started, unfinished process (bounded by [max_crashes]) -- and runs a
   user invariant after every choice.  OCaml continuations are one-shot,
   so backtracking re-executes the schedule prefix from scratch on a fresh
   system; process bodies must therefore be deterministic.

   Pruning: crashing a process that has not taken a step since its last
   (re)start is a no-op in the model (it would restart at the beginning,
   where it already is), so such choices are skipped; this also prevents
   consecutive duplicate crashes. *)

type choice = Step_choice of int | Crash_choice of int

let pp_choice ppf = function
  | Step_choice i -> Format.fprintf ppf "step(p%d)" i
  | Crash_choice i -> Format.fprintf ppf "crash(p%d)" i

let pp_schedule ppf cs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_choice ppf cs

exception Violation of string * choice list

type stats = { schedules : int; nodes : int; max_depth : int }

let apply_choice t = function
  | Step_choice i -> ignore (Sim.step_proc t i)
  | Crash_choice i -> Sim.crash t i

(* [mk ()] must build a fresh system together with an invariant checker;
   the checker raises [Violation_found msg] (via [fail]) on a property
   violation.  It is run after every choice, so violations are reported at
   the earliest point they are observable. *)
exception Violation_found of string

let fail msg = raise (Violation_found msg)

exception Budget_exceeded of stats
(* Raised when the exploration tree exceeds [max_nodes]; callers choose
   bounds so that this does not happen in CI, but a runaway configuration
   fails fast instead of hanging. *)

let explore ?(max_crashes = 1) ?(max_steps = 10_000) ?(max_nodes = 20_000_000) ~mk () =
  let schedules = ref 0 and nodes = ref 0 and max_depth = ref 0 in
  let budget_check () =
    if !nodes > max_nodes then
      raise (Budget_exceeded { schedules = !schedules; nodes = !nodes; max_depth = !max_depth })
  in
  let replay prefix =
    let t, check = mk () in
    List.iter
      (fun c ->
        apply_choice t c;
        match check () with
        | () -> ()
        | exception Violation_found msg ->
            Sim.abandon t;
            raise (Violation (msg, List.rev prefix)))
      (List.rev prefix);
    (t, check)
  in
  let choices t crashes_used =
    let n = Sim.num_procs t in
    let rec collect i acc =
      if i < 0 then acc
      else
        let acc = if Sim.finished t i then acc else Step_choice i :: acc in
        let acc =
          if crashes_used < max_crashes && Sim.started t i && not (Sim.finished t i) then
            Crash_choice i :: acc
          else acc
        in
        collect (i - 1) acc
    in
    collect (n - 1) []
  in
  let rec go prefix depth crashes_used =
    if depth > max_steps then raise (Violation ("step bound exceeded (wait-freedom?)", List.rev prefix));
    if depth > !max_depth then max_depth := depth;
    let t, _check = replay prefix in
    let cs = choices t crashes_used in
    (* Release the replayed system's pending fibers before recursing:
       children replay their own copies. *)
    Sim.abandon t;
    match cs with
    | [] -> incr schedules
    | cs ->
        List.iter
          (fun c ->
            incr nodes;
            budget_check ();
            let crashes_used' =
              match c with Crash_choice _ -> crashes_used + 1 | Step_choice _ -> crashes_used
            in
            go (c :: prefix) (depth + 1) crashes_used')
          cs
  in
  go [] 0 0;
  { schedules = !schedules; nodes = !nodes; max_depth = !max_depth }
