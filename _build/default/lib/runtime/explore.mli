(** Bounded exhaustive schedule exploration (stateless model checking).

    Enumerates every schedule of a freshly created system -- each point
    chooses a step of an unfinished process or a crash of a started,
    unfinished process (at most [max_crashes] crashes) -- and runs the
    user invariant after every choice.  OCaml continuations are one-shot,
    so backtracking re-executes the schedule prefix on a fresh system;
    process bodies must be deterministic.

    Pruning: crashing a process that has not stepped since its last
    (re)start is a no-op in the model and is skipped, which also prunes
    consecutive duplicate crashes. *)

type choice = Step_choice of int | Crash_choice of int

val pp_choice : Format.formatter -> choice -> unit
val pp_schedule : Format.formatter -> choice list -> unit

exception Violation of string * choice list
(** An invariant violation, with the schedule that triggered it. *)

type stats = { schedules : int; nodes : int; max_depth : int }

exception Violation_found of string
(** Raised by invariant checkers (via {!fail}) inside [mk]'s checker. *)

val fail : string -> 'a

exception Budget_exceeded of stats
(** The exploration tree exceeded [max_nodes]; fail fast instead of
    hanging.  Catching it turns the run into bounded (partial)
    exploration: no violation found within the budget. *)

val apply_choice : Sim.t -> choice -> unit

val explore :
  ?max_crashes:int ->
  ?max_steps:int ->
  ?max_nodes:int ->
  mk:(unit -> Sim.t * (unit -> unit)) ->
  unit ->
  stats
(** [explore ~mk ()] where [mk ()] builds a fresh system together with an
    invariant checker (raising via {!fail}).  Exceeding [max_steps] on a
    single schedule raises {!Violation} ("wait-freedom"); defaults:
    [max_crashes = 1], [max_steps = 10_000], [max_nodes = 20_000_000]. *)
