(** Team labels for the two-team partitions of Definitions 2 and 4 and
    the team-consensus algorithms. *)

type t = A | B

val opposite : t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
