(* Team labels shared by the separating types T_n and S_n and by the
   checkers and algorithms. *)

type t = A | B

let opposite = function A -> B | B -> A
let compare = Stdlib.compare
let pp ppf t = Format.pp_print_string ppf (match t with A -> "A" | B -> "B")
let to_string = function A -> "A" | B -> "B"
