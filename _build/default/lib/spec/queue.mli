(** FIFO queue of small integers: [Enq v] returns [Enqueued], [Deq]
    returns the dequeued value (or [Dequeued None] when empty).

    Like the paper's stack, the queue is not readable:
    [cons(queue) = 2] and, by the same crash-equivalence argument as for
    the stack (Appendix H), [rcons(queue) = 1]. *)

type op = Enq of int | Deq
type resp = Enqueued | Dequeued of int option

val spec :
  domain:int ->
  readable:bool ->
  (module Object_type.S with type state = int list and type op = op and type resp = resp)

val make : domain:int -> ?readable:bool -> unit -> Object_type.t
val default : Object_type.t
val readable_variant : Object_type.t
