(** Readable swap register: [Swap v] stores [v] and returns the previous
    contents.  Consensus number 2 (Herlihy); not 2-recording (later swaps
    obliterate the evidence of who went first), so
    [rcons(swap)] is 1 or 2 -- whether 2-recording is necessary for
    2-process RC is the open question of Section 5 of the paper, and the
    readable swap stays inconclusive under the valency sweep. *)

type op = Swap of int

val make : domain:int -> Object_type.t
val default : Object_type.t
