(** The separating type T_n of Proposition 19 (Figure 5 of the paper).

    T_n is n-discerning but not (n-1)-recording, so
    [cons(T_n) = n] while [rcons(T_n) < n] (Corollary 20): the witness
    that a type's recoverable-consensus number can be strictly below its
    consensus number.

    States are [(winner, row, col)] with [winner] in [{A, B}],
    [0 <= row < ceil(n/2)], [0 <= col < floor(n/2)], plus the forgetful
    initial state [(bot, 0, 0)].  [winner] records which of [op_A]/[op_B]
    came first; [col] counts subsequent [op_A] applications and [row]
    counts [op_B] applications; wrapping either counter resets the object
    to [(bot, 0, 0)] ("the object forgets"). *)

type winner = Bot | Won of Team.t
type state = { winner : winner; row : int; col : int }
type op = OpA | OpB
type resp = Team.t

val initial : state
(** The forgetful state [(bot, 0, 0)]. *)

val make : int -> Object_type.t
(** [make n] builds T_n.
    @raise Invalid_argument if [n < 2]. *)
