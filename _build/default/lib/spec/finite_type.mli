(** Finite object types given by an explicit transition table, plus a
    random generator for property-based meta-testing of the decision
    procedures: the structural theorems of the paper (Observations 5 and
    6, Theorem 16, Proposition 18) hold for {e every} deterministic type,
    so they must hold for arbitrary random tables. *)

type table = {
  table_name : string;
  num_states : int;
  num_ops : int;
  transition : (int * int) array array;
      (** [transition.(q).(op) = (next state, response)] *)
  initials : int list;  (** candidate initial states *)
}

val of_table : table -> Object_type.t
(** Build a readable type from a table.
    @raise Invalid_argument on malformed tables (out-of-range targets,
    wrong dimensions, bad initial states). *)

val random : ?num_resps:int -> num_states:int -> num_ops:int -> Random.State.t -> table
(** Uniformly random transition table; deterministic given the RNG
    state.  [num_resps] defaults to 2. *)
