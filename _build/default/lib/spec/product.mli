(** Product of two object types: one object holding a component of each;
    every operation acts on one component, READ returns both (so the
    product is readable iff both components are).

    The product is at least as strong as each component for both
    properties -- a team assignment using only one side's operations
    reproduces that side's witness -- which makes it a useful instrument
    for the Theorem 22 robustness experiments: using "several types" is
    at least as strong as using the product, and the set-level upper
    bound (max individual rcons + 1) applies to both. *)

type ('a, 'b) sum = L of 'a | R of 'b

val make : Object_type.t -> Object_type.t -> Object_type.t
