(** One-shot consensus object: [Propose v] returns the first proposed
    value, which is recorded forever.  [cons = rcons = infinity]; the
    hardware-style primitive behind the [One_shot] recoverable consensus
    used inside the universal construction. *)

type op = Propose of int

val make : domain:int -> Object_type.t
val default : Object_type.t
