(** The type S_n of Proposition 21 (Figure 6 of the paper).

    S_n is n-recording and not (n+1)-discerning, so
    [rcons(S_n) = cons(S_n) = n]: every level of the recoverable
    consensus hierarchy is populated, and the two hierarchies agree on
    S_n.

    States are [(winner, row)] with [winner] in [{A, B}] and
    [0 <= row < n].  From the initial state [(B, 0)], [winner] records
    whether the first update was [op_A] and [row] counts [op_B]
    applications; a second [op_A] or an n-th [op_B] resets the object to
    [(B, 0)].  All operations return [Ack], so only the readable state
    carries information. *)

type state = { winner : Team.t; row : int }
type op = OpA | OpB
type resp = Ack

val initial : state
(** The initial state [(B, 0)]. *)

val make : int -> Object_type.t
(** [make n] builds S_n.
    @raise Invalid_argument if [n < 2]. *)
