(** Sticky bit: the first [Stick] wins and the state never changes
    afterwards.  The winning value is recorded forever, so the type is
    n-recording for every n: [cons = rcons = infinity]. *)

type op = Stick of int

val t : Object_type.t
