(** Compare-and-swap register: [Cas (expected, v)] installs [v] and
    returns [true] iff the current contents equal [expected].

    With [q0 = None] and each team assigned [Cas (None, team's value)],
    the first successful CAS is recorded forever: the type is n-recording
    for every n, so [cons = rcons = infinity].  This is the type whose
    recoverable power underpins the practical systems cited in Section 5
    (recoverable CAS makes any read/CAS algorithm recoverable). *)

type op = Cas of int option * int

val make : domain:int -> Object_type.t
val default : Object_type.t
