(** Test-and-set bit: [Tas] sets the bit and returns the previous value.

    The classic consensus-number-2 type, with no READ operation.  The
    final state after any nonempty sequence of TAS operations is [true]
    regardless of order, so the state records nothing about which team
    went first: the type is not 2-recording, and the Appendix-H-style
    valency sweep shows [rcons(TAS) = 1] (consistent with the
    impossibility of recoverable test-and-set from test-and-set of
    Attiya, Ben-Baruch and Hendler, cited in the paper). *)

type op = Tas

val t : Object_type.t
