(** Max register: [Write_max v] raises the state to [max state v] and
    returns the previous value.  2-discerning through responses
    (cons = 2), but the final state is order-oblivious, so not
    2-recording, and -- readable or not -- the crash-confinement sweep
    settles rcons = 1: after both writes the states agree, and reads
    cannot tell equal states apart. *)

type op = Write_max of int

val make : domain:int -> Object_type.t
val default : Object_type.t
