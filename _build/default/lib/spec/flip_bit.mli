(** Flip bit: [Flip] inverts the bit and returns the previous value.
    Responses reveal the order (2-discerning, cons = 2) but flips commute
    on the state, so nothing survives a crash: rcons = 1 via the valency
    sweep.  Another witness that the RC hierarchy sits below the
    consensus hierarchy at level 2. *)

type op = Flip

val t : Object_type.t
