lib/spec/queue.mli: Object_type
