lib/spec/max_register.mli: Object_type
