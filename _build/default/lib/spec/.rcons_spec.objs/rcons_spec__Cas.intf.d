lib/spec/cas.mli: Object_type
