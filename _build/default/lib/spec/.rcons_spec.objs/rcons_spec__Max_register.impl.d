lib/spec/max_register.ml: Format List Object_type Printf Stdlib
