lib/spec/product.mli: Object_type
