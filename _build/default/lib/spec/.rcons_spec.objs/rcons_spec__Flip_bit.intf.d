lib/spec/flip_bit.mli: Object_type
