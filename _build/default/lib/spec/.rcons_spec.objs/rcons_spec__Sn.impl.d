lib/spec/sn.ml: Format Object_type Printf Stdlib Team
