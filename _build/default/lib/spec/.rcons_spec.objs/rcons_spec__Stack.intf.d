lib/spec/stack.mli: Object_type
