lib/spec/sticky_bit.ml: Format Object_type Stdlib
