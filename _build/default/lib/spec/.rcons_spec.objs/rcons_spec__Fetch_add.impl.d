lib/spec/fetch_add.ml: Format List Object_type Printf Stdlib
