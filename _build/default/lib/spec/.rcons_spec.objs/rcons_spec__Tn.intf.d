lib/spec/tn.mli: Object_type Team
