lib/spec/team.mli: Format
