lib/spec/catalogue.mli: Object_type
