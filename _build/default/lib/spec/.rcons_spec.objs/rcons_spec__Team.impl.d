lib/spec/team.ml: Format Stdlib
