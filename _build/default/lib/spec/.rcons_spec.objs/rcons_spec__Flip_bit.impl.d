lib/spec/flip_bit.ml: Format Object_type Stdlib
