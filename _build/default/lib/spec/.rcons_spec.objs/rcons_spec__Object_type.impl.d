lib/spec/object_type.ml: Format
