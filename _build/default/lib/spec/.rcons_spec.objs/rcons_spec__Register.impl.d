lib/spec/register.ml: Format List Object_type Printf Stdlib
