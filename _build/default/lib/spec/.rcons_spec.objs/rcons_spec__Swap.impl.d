lib/spec/swap.ml: Format List Object_type Printf Stdlib
