lib/spec/finite_type.ml: Array Format Fun List Object_type Printf Random Stdlib
