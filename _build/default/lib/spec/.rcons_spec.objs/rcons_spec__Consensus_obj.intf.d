lib/spec/consensus_obj.mli: Object_type
