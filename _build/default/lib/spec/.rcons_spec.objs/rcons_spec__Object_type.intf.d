lib/spec/object_type.mli: Format
