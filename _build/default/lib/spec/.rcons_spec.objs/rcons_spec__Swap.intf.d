lib/spec/swap.mli: Object_type
