lib/spec/fetch_add.mli: Object_type
