lib/spec/stack.ml: Format List Object_type Printf Stdlib
