lib/spec/cas.ml: Format Fun List Object_type Printf Stdlib
