lib/spec/test_and_set.ml: Format Object_type Stdlib
