lib/spec/sn.mli: Object_type Team
