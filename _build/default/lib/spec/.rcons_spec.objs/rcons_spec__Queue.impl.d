lib/spec/queue.ml: Format List Object_type Printf Stdlib
