lib/spec/test_and_set.mli: Object_type
