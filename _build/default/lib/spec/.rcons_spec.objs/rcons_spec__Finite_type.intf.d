lib/spec/finite_type.mli: Object_type Random
