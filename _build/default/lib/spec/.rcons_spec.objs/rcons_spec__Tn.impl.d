lib/spec/tn.ml: Format Object_type Printf Stdlib Team
