lib/spec/sticky_bit.mli: Object_type
