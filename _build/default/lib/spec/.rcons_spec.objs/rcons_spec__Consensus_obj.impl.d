lib/spec/consensus_obj.ml: Format List Object_type Stdlib
