lib/spec/product.ml: Format List Object_type Printf
