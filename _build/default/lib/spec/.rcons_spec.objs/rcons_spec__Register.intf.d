lib/spec/register.mli: Object_type
