lib/spec/catalogue.ml: Cas Consensus_obj Fetch_add Flip_bit List Max_register Object_type Queue Register Sn Stack Sticky_bit Swap Test_and_set Tn
