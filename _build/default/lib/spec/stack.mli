(** Stack of small integers: [Push v] returns [Pushed], [Pop] returns
    the popped value (or [Popped None] when empty).

    The paper's stack (Appendix H / Figure 8) is {b not} readable:
    [cons(stack) = 2] (Herlihy) yet [rcons(stack) = 1], reproduced by the
    crash-equivalence analysis in [Rcons_valency.Impossibility].  The
    bare transition system is nonetheless n-recording for every n -- the
    bottom element records which team pushed first -- so adding a READ
    ({!readable_variant}) yields a strictly stronger type with
    [cons = rcons = infinity]; Theorem 8's sufficiency needs the READ. *)

type op = Push of int | Pop
type resp = Pushed | Popped of int option

val spec :
  domain:int ->
  readable:bool ->
  (module Object_type.S with type state = int list and type op = op and type resp = resp)
(** Typed module, exposed so that the valency analysis can canonicalize
    the [int list] states. *)

val make : domain:int -> ?readable:bool -> unit -> Object_type.t
(** [readable] defaults to [false], the paper's stack. *)

val default : Object_type.t
(** Non-readable, domain 2: the subject of Appendix H. *)

val readable_variant : Object_type.t
(** The same transition system equipped with a READ. *)
