(** Read/write register over a small value domain.

    Writes overwrite one another, so the register is not even
    2-discerning: [cons(register) = rcons(register) = 1] (Herlihy). *)

type op = Write of int
type resp = unit

val make : domain:int -> Object_type.t
(** [make ~domain] is a readable register whose checker universe contains
    [Write 0 .. Write (domain - 1)]. *)

val default : Object_type.t
(** [make ~domain:2]. *)
