(** Fetch-and-add counter modulo [modulus]: [Add k] returns the old
    value.  Consensus number 2 (Herlihy).  Additions commute, so the
    final state is independent of the order: never 2-recording, and the
    valency sweep settles [rcons = 1]. *)

type op = Add of int

val make : modulus:int -> increments:int list -> Object_type.t
val default : Object_type.t
(** Modulo 8 with increments [{1, 2}]. *)
