(** Crash-aware correctness conditions from Section 4 of the paper:
    strict linearizability (an operation pending at its process's crash
    linearizes before the crash or not at all) versus recoverable
    linearizability (the recovery may complete it later).

    The paper observes that without volatile shared memory RUniversal
    satisfies only the weaker condition; the test suite exhibits
    concrete RUniversal histories that are recoverably but not strictly
    linearizable, and the experiment harness measures how often they
    occur.  Durable linearizability coincides with the plain check on
    this library's histories (no caching is modelled); see the
    implementation header. *)

val strict_operations :
  ('o, 'r) History.t -> ('o, 'r) History.operation list
(** Operations with intervals tightened to end at the first crash of
    their process while pending. *)

val strictly_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool
val recoverably_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool

type verdict = { recoverable : bool; strict : bool }

val classify : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> verdict
