lib/history/history.mli:
