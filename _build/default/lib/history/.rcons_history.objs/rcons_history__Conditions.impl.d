lib/history/conditions.ml: History Linearizability List
