lib/history/conditions.mli: History Linearizability
