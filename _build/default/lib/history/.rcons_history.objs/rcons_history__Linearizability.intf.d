lib/history/linearizability.mli: History
