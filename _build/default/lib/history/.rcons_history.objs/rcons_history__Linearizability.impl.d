lib/history/linearizability.ml: Array Hashtbl History
