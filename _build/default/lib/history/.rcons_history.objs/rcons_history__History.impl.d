lib/history/history.ml: Array Hashtbl List
