(* Linearizability checking (Wing-Gong style search with memoization).

   A history is linearizable w.r.t. a sequential specification if there is
   a total order of its operations that (i) respects real time (if o1's
   response precedes o2's invocation, o1 comes first), (ii) is legal for
   the specification, and (iii) matches every completed operation's
   response.  Pending operations (no response -- e.g. cut off by a final
   crash) may either take effect or be dropped, as in the definitions of
   persistent/recoverable linearizability used in Section 4: an operation
   interrupted by a crash is linearized at most once, and our histories
   close crash-interrupted operations at their recovery's response, so a
   response always certifies the operation took effect exactly once.

   The search linearizes operations one at a time: a candidate must not be
   preceded in real time by the response of another not-yet-linearized
   operation.  Visited (linearized-set, object-state) pairs are memoized;
   histories are limited to 62 operations (bitmask representation). *)

type ('s, 'o, 'r) spec = {
  init : 's;
  apply : 's -> 'o -> 's * 'r;
  equal_resp : 'r -> 'r -> bool;
}

let check (type s o r) (spec : (s, o, r) spec) (ops : (o, r) History.operation list) =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Linearizability.check: more than 62 operations";
  let completed_mask = ref 0 in
  Array.iteri (fun i (o : (o, r) History.operation) -> if o.resp <> None then completed_mask := !completed_mask lor (1 lsl i)) ops;
  let goal mask = mask land !completed_mask = !completed_mask in
  let visited : (int * s, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* Candidate i is minimal if no not-yet-linearized operation j responded
     before i was invoked. *)
  let minimal mask i =
    let oi = ops.(i) in
    let ok = ref true in
    for j = 0 to n - 1 do
      if j <> i && mask land (1 lsl j) = 0 && ops.(j).res < oi.inv then ok := false
    done;
    !ok
  in
  let rec search mask state =
    goal mask
    ||
    if Hashtbl.mem visited (mask, state) then false
    else begin
      Hashtbl.add visited (mask, state) ();
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && minimal mask idx then begin
          let o = ops.(idx) in
          let state', resp' = spec.apply state o.op in
          match o.resp with
          | Some r ->
              if spec.equal_resp r resp' then
                found := search (mask lor (1 lsl idx)) state'
          | None ->
              (* A pending operation may take effect with any response... *)
              if search (mask lor (1 lsl idx)) state' then found := true
        end
      done;
      !found
    end
  in
  search 0 spec.init

(* Check an entire recorded history against a specification. *)
let check_history spec history = check spec (History.operations history)
