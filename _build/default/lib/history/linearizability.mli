(** Linearizability checking (Wing-Gong style search with memoization).

    A history is linearizable w.r.t. a sequential specification if some
    total order of its operations (i) respects real time, (ii) is legal
    for the specification, and (iii) matches every completed operation's
    response.  Pending operations -- no response, e.g. cut off by a final
    crash -- may either take effect or be dropped, matching the
    persistent/recoverable linearizability conditions discussed in
    Section 4: our histories close crash-interrupted operations at their
    recovery's response, so a response always certifies the operation
    took effect exactly once. *)

type ('s, 'o, 'r) spec = {
  init : 's;
  apply : 's -> 'o -> 's * 'r;
  equal_resp : 'r -> 'r -> bool;
}

val check : ('s, 'o, 'r) spec -> ('o, 'r) History.operation list -> bool
(** @raise Invalid_argument on histories of more than 62 operations
    (bitmask representation). *)

val check_history : ('s, 'o, 'r) spec -> ('o, 'r) History.t -> bool
