(* Crash-aware correctness conditions from Section 4 of the paper.

   The paper discusses several safety conditions for the crash-recovery
   setting and places RUniversal among them:

   - *Strict linearizability* (Aguilera and Frolund): an operation in
     progress when its process crashes is either linearized before the
     crash or not at all.  With volatile shared memory available,
     Berryhill, Golab and Tripunitara's construction achieves it; without
     volatile memory (our setting: everything is non-volatile and
     recovery completes interrupted operations) only weaker conditions
     hold -- and indeed the test suite exhibits RUniversal histories that
     are recoverably but not strictly linearizable.

   - *Recoverable linearizability* / nesting-safe recoverable
     linearizability: a crashed operation may be linearized within an
     interval that includes its recovery attempts; in our histories the
     recovery's response closes the original invocation, so this is the
     plain {!Linearizability.check} on the recorded history.

   - *Durable linearizability* (Izraelevitz, Mendes, Scott): defined for
     system-wide crashes; the effects of operations completed before a
     crash survive it.  Our histories are totally ordered in global time
     and responses always certify completion, so on the histories this
     library produces durability coincides with the plain check; the
     distinction only reappears with caching/buffering, which the
     simulator does not model (documented substitution).

   This module implements the strict variant by re-interpreting each
   operation's latest admissible linearization point: its response index,
   or the first crash of its process after the invocation, whichever is
   earlier. *)

(* The first crash of [pid] after event index [i], if any. *)
let first_crash_after events pid i =
  let rec go idx = function
    | [] -> None
    | History.Crash { pid = p } :: _ when p = pid && idx > i -> Some idx
    | _ :: rest -> go (idx + 1) rest
  in
  go 0 events

(* Tighten each operation's interval for strict linearizability: an
   operation whose process crashed while it was pending must linearize
   before that crash.  Operations whose process never crashed mid-flight
   are unchanged. *)
let strict_operations history =
  let events = History.events history in
  History.operations history
  |> List.map (fun (op : _ History.operation) ->
         match first_crash_after events op.op_pid op.inv with
         | Some crash_idx when crash_idx < op.res ->
             (* the crash hit while the operation was pending: its
                linearization deadline is the crash, and since the effect
                must be visible before the crash, later responses serve
                only as reads of the recorded result *)
             { op with res = crash_idx }
         | Some _ | None -> op)

let strictly_linearizable spec history =
  Linearizability.check spec (strict_operations history)

let recoverably_linearizable = Linearizability.check_history

(* Classification of one history against both conditions; strict implies
   recoverable (tighter intervals only restrict the search). *)
type verdict = { recoverable : bool; strict : bool }

let classify spec history =
  let recoverable = recoverably_linearizable spec history in
  let strict = recoverable && strictly_linearizable spec history in
  { recoverable; strict }
