(* Reachability searches underlying the decision procedures.

   [Make (T)] provides, for a fixed deterministic type T:
   - [reachable]: the set Q_X(q0, op_1, ..., op_n) of Definition 4 -- all
     states reachable by applying operations of *distinct* processes in
     some order, the first of which belongs to team X;
   - [responses]: the set R_{X,j} of Definition 2 -- all pairs (r, q) such
     that some sequence of distinct-process operations starting with a
     process of team X and including process j makes op_j return r and
     leaves the object in state q.

   Both searches work on the multiset abstraction: a team is a multiset of
   operations, and "distinct processes" becomes "use each multiset element
   at most once".  Sequences are prefix-closed (every prefix of a valid
   sequence is a valid sequence), so states/pairs are collected at every
   node of the search tree, and memoization on (state, remaining counts)
   keeps the exploration polynomial in the reachable fragment. *)

module Make (T : Rcons_spec.Object_type.S) = struct
  module State_set = Set.Make (struct
    type t = T.state

    let compare = T.compare_state
  end)

  module Pair_set = Set.Make (struct
    type t = T.resp * T.state

    let compare (r1, s1) (r2, s2) =
      let c = T.compare_resp r1 r2 in
      if c <> 0 then c else T.compare_state s1 s2
  end)

  (* A team's operations with multiplicities.  [ops] holds the distinct
     operations; [counts] the number of processes assigned each one. *)
  type multiset = { ops : T.op array; counts : int array }

  let multiset_of_list ops =
    let sorted = List.sort T.compare_op ops in
    let rec group = function
      | [] -> []
      | op :: rest ->
          let same, others = List.partition (fun o -> T.compare_op o op = 0) rest in
          (op, 1 + List.length same) :: group others
    in
    let grouped = group sorted in
    { ops = Array.of_list (List.map fst grouped); counts = Array.of_list (List.map snd grouped) }

  let total ms = Array.fold_left ( + ) 0 ms.counts

  (* Search nodes are (state, remaining counts of team 1, remaining counts
     of team 2[, extra]); [extra] distinguishes tracked-operation status in
     the R_{X,j} search. *)
  module Node = struct
    type t = T.state * int list * int list * int

    let compare (s1, a1, b1, x1) (s2, a2, b2, x2) =
      let c = T.compare_state s1 s2 in
      if c <> 0 then c
      else
        let c = Stdlib.compare a1 a2 in
        if c <> 0 then c
        else
          let c = Stdlib.compare b1 b2 in
          if c <> 0 then c else Stdlib.compare x1 x2
    [@@warning "-unused-value-declaration"]
  end

  module Node_set = Set.Make (Node)

  let dec counts i = List.mapi (fun j c -> if j = i then c - 1 else c) counts
  let counts_list ms = Array.to_list ms.counts

  (* Q_X: states reachable when the first operation comes from [first] and
     subsequent operations come from what remains of [first] and [other]. *)
  let reachable ~q0 ~(first : multiset) ~(other : multiset) =
    let visited = ref Node_set.empty in
    let found = ref State_set.empty in
    let rec explore s ca cb =
      let key = (s, ca, cb, 0) in
      if not (Node_set.mem key !visited) then begin
        visited := Node_set.add key !visited;
        found := State_set.add s !found;
        List.iteri
          (fun i c ->
            if c > 0 then
              let s', _ = T.apply s first.ops.(i) in
              explore s' (dec ca i) cb)
          ca;
        List.iteri
          (fun i c ->
            if c > 0 then
              let s', _ = T.apply s other.ops.(i) in
              explore s' ca (dec cb i))
          cb
      end
    in
    Array.iteri
      (fun i op ->
        if first.counts.(i) > 0 then
          let s', _ = T.apply q0 op in
          explore s' (dec (counts_list first) i) (counts_list other))
      first.ops;
    !found

  (* R_{X,j} where process j is one instance of operation [tracked_op] on
     team [tracked_team].  [team_a]/[team_b] are the full team multisets
     (including the tracked instance, which is removed here); [first] names
     the team X whose member must move first. *)
  let responses ~q0 ~(team_a : multiset) ~(team_b : multiset) ~first
      ~(tracked_team : Rcons_spec.Team.t) ~(tracked_op : T.op) =
    let remove_tracked ms =
      let idx = ref (-1) in
      Array.iteri (fun i op -> if T.compare_op op tracked_op = 0 then idx := i) ms.ops;
      if !idx < 0 || ms.counts.(!idx) = 0 then
        invalid_arg "Search.responses: tracked operation not in its team";
      let counts = Array.copy ms.counts in
      counts.(!idx) <- counts.(!idx) - 1;
      { ms with counts }
    in
    let ta, tb =
      match tracked_team with
      | Rcons_spec.Team.A -> (remove_tracked team_a, team_b)
      | Rcons_spec.Team.B -> (team_a, remove_tracked team_b)
    in
    let visited = ref Node_set.empty in
    let found = ref Pair_set.empty in
    (* [tracked] = None while op_j has not been applied; Some r afterwards.
       The node key encodes it as an int: -1 pending, i >= 0 the index of r
       in a small response table. *)
    let resp_table : T.resp list ref = ref [] in
    let resp_index r =
      let rec find i = function
        | [] ->
            resp_table := !resp_table @ [ r ];
            i
        | r' :: rest -> if T.compare_resp r r' = 0 then i else find (i + 1) rest
      in
      find 0 !resp_table
    in
    let rec explore s ca cb tracked =
      let code = match tracked with None -> -1 | Some (i, _) -> i in
      let key = (s, ca, cb, code) in
      if not (Node_set.mem key !visited) then begin
        visited := Node_set.add key !visited;
        (match tracked with
        | Some (_, r) -> found := Pair_set.add (r, s) !found
        | None -> ());
        List.iteri
          (fun i c ->
            if c > 0 then
              let s', _ = T.apply s ta.ops.(i) in
              explore s' (dec ca i) cb tracked)
          ca;
        List.iteri
          (fun i c ->
            if c > 0 then
              let s', _ = T.apply s tb.ops.(i) in
              explore s' ca (dec cb i) tracked)
          cb;
        if tracked = None then begin
          let s', r = T.apply s tracked_op in
          explore s' ca cb (Some (resp_index r, r))
        end
      end
    in
    (* First step: a process of team [first] moves, which is either a
       regular instance of that team's multiset or the tracked process when
       it belongs to team [first]. *)
    let start_regular ms ms_counts other_counts flip =
      Array.iteri
        (fun i op ->
          if ms.counts.(i) > 0 then
            let s', _ = T.apply q0 op in
            if flip then explore s' other_counts (dec ms_counts i) None
            else explore s' (dec ms_counts i) other_counts None)
        ms.ops
    in
    (match first with
    | Rcons_spec.Team.A -> start_regular ta (counts_list ta) (counts_list tb) false
    | Rcons_spec.Team.B -> start_regular tb (counts_list tb) (counts_list ta) true);
    if tracked_team = first then begin
      let s', r = T.apply q0 tracked_op in
      explore s' (counts_list ta) (counts_list tb) (Some (resp_index r, r))
    end;
    !found
end
