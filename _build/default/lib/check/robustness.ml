(* Theorem 22: how the power of a set of deterministic readable types to
   solve RC relates to the individual types.

   If n = max { rcons(T) : T in the set } exists, then
   n <= rcons(set) <= n + 1: the lower bound because an algorithm may
   simply use the strongest member, the upper bound by the
   critical-object argument (a putative (n+2)-process algorithm has a
   critical execution whose critical object has a single type, which the
   Theorem 14 machinery shows to be (n+1)-recording, contradicting
   maximality).

   Computationally we expose: the individual recording levels, the
   derived set-level rcons interval, and the strongest member's
   certificate at the set's level (which realizes the lower bound through
   the Figure 2 + tournament algorithm). *)

open Rcons_spec

type analysis = {
  members : (string * Classify.level) list; (* recording level per type *)
  set_level : Classify.level; (* max individual recording level *)
  rcons_lower : int; (* realized by the strongest member (Thm 8) *)
  rcons_upper : int option; (* Thm 22's n + 1, None when unbounded *)
  best : Object_type.t option; (* a member attaining the set level *)
}

let level_value = function Classify.Finite k -> k | Classify.At_least k -> k

let analyse ?limit (types : Object_type.t list) =
  if types = [] then invalid_arg "Robustness.analyse: empty set";
  let members =
    List.map (fun ot -> (Object_type.name ot, Classify.max_recording ?limit ot)) types
  in
  let set_level, best =
    List.fold_left2
      (fun (acc_level, acc_best) (_, level) ot ->
        if level_value level > level_value acc_level then (level, Some ot)
        else (acc_level, acc_best))
      (Classify.Finite 0, None)
      members types
  in
  let k = level_value set_level in
  let unbounded = match set_level with Classify.At_least _ -> true | Classify.Finite _ -> false in
  {
    members;
    set_level;
    rcons_lower = max 1 k;
    rcons_upper = (if unbounded then None else Some (max 1 (k + 1)));
    best;
  }

(* A certificate realizing the set's lower bound, from its strongest
   member (readable members only: Theorem 8 needs the READ). *)
let best_certificate ?limit types =
  let a = analyse ?limit types in
  match a.best with
  | Some ot when Object_type.readable ot && level_value a.set_level >= 2 ->
      Recording.witness ot (level_value a.set_level)
  | Some _ | None -> None

let pp ppf a =
  let member ppf (name, level) = Format.fprintf ppf "%s:%a" name Classify.pp_level level in
  Format.fprintf ppf "{%a} -> rcons(set) in [%d,%s]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") member)
    a.members a.rcons_lower
    (match a.rcons_upper with Some u -> string_of_int u | None -> "inf")
