(** Enumeration helpers for the property-checker searches.

    Both Q_X (Definition 4) and R_{X,j} (Definition 2) depend only on the
    multiset of operations assigned to each team -- process indices enter
    the definitions only through "each process appears at most once" --
    so enumerating multisets instead of per-process vectors is an
    exponential symmetry reduction with the same answer (checked against
    brute-force vector enumeration in the test suite). *)

val multisets : int -> 'a list -> 'a list list
(** [multisets k universe]: all multisets of size [k] over [universe],
    each represented as a list; there are C(|universe| + k - 1, k). *)

val team_splits : int -> (int * int) list
(** [team_splits n]: the splits of [n] processes into two non-empty team
    sizes [(a, b)] with [a <= b].  Ordered splits with [a > b] are
    redundant because Definitions 2 and 4 are team-swap invariant. *)

val pairs : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product, in order. *)
