lib/check/recording.mli: Certificate Rcons_spec
