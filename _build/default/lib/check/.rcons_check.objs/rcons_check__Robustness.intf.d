lib/check/robustness.mli: Certificate Classify Format Rcons_spec
