lib/check/enumerate.mli:
