lib/check/classify.ml: Discerning Format Object_type Rcons_spec Recording
