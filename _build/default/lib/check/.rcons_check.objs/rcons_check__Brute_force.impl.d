lib/check/brute_force.ml: Array Fun List Object_type Option Rcons_spec
