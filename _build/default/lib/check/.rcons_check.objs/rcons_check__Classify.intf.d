lib/check/classify.mli: Format Rcons_spec
