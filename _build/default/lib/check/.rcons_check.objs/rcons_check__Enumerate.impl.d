lib/check/enumerate.ml: Fun List
