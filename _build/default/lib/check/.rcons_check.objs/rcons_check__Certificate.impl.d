lib/check/certificate.ml: Array Format List Rcons_spec Search
