lib/check/recording.ml: Certificate Enumerate List Object_type Option Rcons_spec Search
