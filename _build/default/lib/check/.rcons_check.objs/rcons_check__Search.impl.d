lib/check/search.ml: Array List Rcons_spec Set Stdlib
