lib/check/discerning.ml: Array Certificate Enumerate List Object_type Option Rcons_spec Search Team
