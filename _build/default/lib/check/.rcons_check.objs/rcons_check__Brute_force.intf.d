lib/check/brute_force.mli: Rcons_spec
