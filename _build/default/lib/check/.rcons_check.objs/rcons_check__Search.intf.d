lib/check/search.mli: Rcons_spec Set
