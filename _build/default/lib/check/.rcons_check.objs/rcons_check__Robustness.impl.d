lib/check/robustness.ml: Classify Format List Object_type Rcons_spec Recording
