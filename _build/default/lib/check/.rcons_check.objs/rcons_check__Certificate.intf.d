lib/check/certificate.mli: Format Rcons_spec
