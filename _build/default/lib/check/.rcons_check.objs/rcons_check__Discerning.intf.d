lib/check/discerning.mli: Certificate Rcons_spec
