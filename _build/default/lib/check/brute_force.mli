(** Oracle implementations of Definitions 2 and 4 by literal enumeration
    -- no multiset symmetry reduction, no memoization, every ordered
    operation assignment, every partition and every permutation of every
    subset of processes directly from the definitions' text.

    Exponentially slower than {!Recording} / {!Discerning}, but
    independent: property-based tests compare the two on random small
    types, guarding the symmetry arguments used by the fast code. *)

val is_recording : Rcons_spec.Object_type.t -> int -> bool
(** Definition 4, literally.  Use only for small n and small universes.
    @raise Invalid_argument if [n < 2]. *)

val is_discerning : Rcons_spec.Object_type.t -> int -> bool
(** Definition 2, literally.
    @raise Invalid_argument if [n < 2]. *)
