(** Theorem 22: the power of a set of deterministic readable types to
    solve RC is within 1 of the strongest member --
    [n <= rcons(set) <= n + 1] where [n] is the maximum individual
    recording level (lower bound: use the strongest member through
    Theorem 8; upper bound: the critical-object argument of the proof). *)

type analysis = {
  members : (string * Classify.level) list;
  set_level : Classify.level;
  rcons_lower : int;
  rcons_upper : int option;  (** [None] when the set level is unbounded *)
  best : Rcons_spec.Object_type.t option;
}

val level_value : Classify.level -> int

val analyse : ?limit:int -> Rcons_spec.Object_type.t list -> analysis
(** @raise Invalid_argument on the empty set. *)

val best_certificate :
  ?limit:int -> Rcons_spec.Object_type.t list -> Certificate.recording option
(** A certificate realizing the lower bound, from the strongest readable
    member. *)

val pp : Format.formatter -> analysis -> unit
