(** Decision procedure for the n-recording property (Definition 4 of the
    paper).

    A deterministic type T is n-recording if there exist a state [q0], a
    partition of n processes into two non-empty teams A and B, and
    operations op_1, ..., op_n such that
    + Q_A and Q_B are disjoint,
    + [q0] is not in Q_A, or |B| = 1,
    + [q0] is not in Q_B, or |A| = 1.

    The search enumerates candidate initial states, team sizes (up to the
    team-swap symmetry) and operation multisets per team, deciding each
    candidate exactly by computing Q_A and Q_B.  Answers are exact with
    respect to the type's declared finite operation universe. *)

val check_candidate :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  q0:'s ->
  ops_a:'o list ->
  ops_b:'o list ->
  ('s, 'o) Certificate.recording_data option
(** Decide one candidate assignment; [Some data] iff it satisfies all
    three conditions of Definition 4. *)

val witness : Rcons_spec.Object_type.t -> int -> Certificate.recording option
(** [witness t n]: a certificate that [t] is n-recording, or [None] if
    no candidate over the declared universes satisfies Definition 4.
    @raise Invalid_argument if [n < 2]. *)

val is_recording : Rcons_spec.Object_type.t -> int -> bool
