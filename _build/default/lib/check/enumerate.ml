(* Enumeration helpers for the property-checker searches.

   Both Q_X (Definition 4) and R_{X,j} (Definition 2) depend only on the
   multiset of operations assigned to each team: process indices enter the
   definitions only through the constraint that each process appears at
   most once in a sequence.  Enumerating multisets instead of vectors is an
   exponential symmetry reduction with the same answer. *)

(* All multisets of size [k] over [universe], each as a sorted list. *)
let rec multisets k universe =
  match universe with
  | [] -> if k = 0 then [ [] ] else []
  | op :: rest ->
      let with_j j =
        let prefix = List.init j (fun _ -> op) in
        List.map (fun ms -> prefix @ ms) (multisets (k - j) rest)
      in
      List.concat_map with_j (List.init (k + 1) Fun.id)

(* Splits of [n] processes into two non-empty team sizes (a, b), a <= b.
   The properties of Definitions 2 and 4 are invariant under swapping the
   two teams, so ordered splits with a > b are redundant. *)
let team_splits n =
  let rec go a acc = if a > n - a then List.rev acc else go (a + 1) ((a, n - a) :: acc) in
  go 1 []

(* Cartesian product used when pairing the two teams' multisets. *)
let pairs xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
