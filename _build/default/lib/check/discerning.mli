(** Decision procedure for the n-discerning property (Definition 2 of
    the paper, from Ruppert's characterization of the readable types that
    solve n-process consensus, Theorem 3).

    T is n-discerning if there exist [q0], a two-team partition and
    operations op_1, ..., op_n such that R_{A,j} and R_{B,j} are disjoint
    for every process j, where R_{X,j} collects the (response of op_j,
    final state) pairs over all distinct-process sequences that start
    with a team-X process and include j.  Processes assigned the same
    operation on the same team have identical R-sets, so one tracked
    instance per distinct (team, operation) suffices. *)

val check_candidate :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  q0:'s ->
  ops_a:'o list ->
  ops_b:'o list ->
  ('s, 'o, 'r) Certificate.discerning_data option

val witness : Rcons_spec.Object_type.t -> int -> Certificate.discerning option
(** @raise Invalid_argument if [n < 2]. *)

val is_discerning : Rcons_spec.Object_type.t -> int -> bool
