(* Sequential specifications of the recoverable objects derived from
   RUniversal in the examples, tests and benchmarks: a counter, a stack, a
   FIFO queue and a small key-value store.  Any sequential specification
   works (that is the point of universality); these four cover the shapes
   used in the paper's motivation (ordinary data structures made
   recoverable for non-volatile memory). *)

type counter_op = Incr | Get

let counter : (int, counter_op, int) Runiversal.seq_spec =
  {
    init = 0;
    apply =
      (fun s op -> match op with Incr -> (s + 1, s + 1) | Get -> (s, s));
  }

type 'a stack_op = Push of 'a | Pop

let stack () : ('a list, 'a stack_op, 'a option) Runiversal.seq_spec =
  {
    init = [];
    apply =
      (fun s op ->
        match (op, s) with
        | Push v, _ -> (v :: s, None)
        | Pop, [] -> ([], None)
        | Pop, v :: rest -> (rest, Some v));
  }

type 'a queue_op = Enq of 'a | Deq

let queue () : ('a list, 'a queue_op, 'a option) Runiversal.seq_spec =
  {
    init = [];
    apply =
      (fun s op ->
        match (op, s) with
        | Enq v, _ -> (s @ [ v ], None)
        | Deq, [] -> ([], None)
        | Deq, v :: rest -> (rest, Some v));
  }

type ('k, 'v) kv_op = Put of 'k * 'v | Del of 'k | Find of 'k

let kv () : (('k * 'v) list, ('k, 'v) kv_op, 'v option) Runiversal.seq_spec =
  {
    init = [];
    apply =
      (fun s op ->
        match op with
        | Put (k, v) -> ((k, v) :: List.remove_assoc k s, None)
        | Del k -> (List.remove_assoc k s, List.assoc_opt k s)
        | Find k -> (s, List.assoc_opt k s));
  }

(* Linearizability specs matching the sequential specs, for the checker. *)
let lin_spec (spec : ('s, 'o, 'r) Runiversal.seq_spec) :
    ('s, 'o, 'r) Rcons_history.Linearizability.spec =
  { init = spec.init; apply = spec.apply; equal_resp = ( = ) }
