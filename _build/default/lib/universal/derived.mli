(** Sequential specifications of the recoverable objects derived from
    RUniversal in the examples, tests and benchmarks: a counter, a
    stack, a FIFO queue and a small key-value store.  Any sequential
    specification works -- that is the point of universality. *)

type counter_op = Incr | Get

val counter : (int, counter_op, int) Runiversal.seq_spec
(** [Incr] returns the new value; [Get] the current one. *)

type 'a stack_op = Push of 'a | Pop

val stack : unit -> ('a list, 'a stack_op, 'a option) Runiversal.seq_spec

type 'a queue_op = Enq of 'a | Deq

val queue : unit -> ('a list, 'a queue_op, 'a option) Runiversal.seq_spec

type ('k, 'v) kv_op = Put of 'k * 'v | Del of 'k | Find of 'k

val kv : unit -> (('k * 'v) list, ('k, 'v) kv_op, 'v option) Runiversal.seq_spec

val lin_spec :
  ('s, 'o, 'r) Runiversal.seq_spec -> ('s, 'o, 'r) Rcons_history.Linearizability.spec
(** Linearizability spec matching a sequential spec (responses compared
    with structural equality). *)
