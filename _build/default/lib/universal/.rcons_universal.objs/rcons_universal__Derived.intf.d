lib/universal/derived.mli: Rcons_history Runiversal
