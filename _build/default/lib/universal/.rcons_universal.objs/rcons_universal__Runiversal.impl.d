lib/universal/runiversal.ml: Array Cell Hashtbl List Option Rcons_algo Rcons_history Rcons_runtime
