lib/universal/script.ml: Array Cell Rcons_runtime Runiversal
