lib/universal/script.mli: Runiversal
