lib/universal/runiversal.mli: Rcons_history Rcons_runtime
