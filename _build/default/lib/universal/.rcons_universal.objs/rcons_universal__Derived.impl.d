lib/universal/derived.ml: List Rcons_history Runiversal
