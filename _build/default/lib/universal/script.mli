(** Crash-restartable workloads over a RUniversal object.

    A process body performing several operations in sequence must not
    re-execute completed operations when restarted after a crash.  The
    runner keeps a per-process non-volatile progress counter: a restarted
    body skips to the first incomplete operation, whose idempotent
    {!Runiversal.invoke} is the recovery path of Figure 7. *)

type ('s, 'o, 'r) t

val create : ('s, 'o, 'r) Runiversal.t -> n:int -> max_ops:int -> ('s, 'o, 'r) t

val run : ('s, 'o, 'r) t -> int -> 'o array -> unit
(** [run t pid ops]: execute [ops] in order as process [pid]; safe to
    re-enter from the beginning after a crash. *)

val response : ('s, 'o, 'r) t -> int -> int -> 'r option
(** [response t pid k]: the recorded response of [pid]'s [k]-th
    operation, if completed (meta-observation). *)
