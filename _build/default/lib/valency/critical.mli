(** The valency argument of Theorem 14 (Figure 3), exhibited on real
    algorithms: explore a bounded E_A-style schedule space (steps of all
    processes, budgeted crashes of p0 only), compute decision sets of
    prefixes, walk to a *critical execution* -- a bivalent prefix all of
    whose one-step extensions are univalent -- and report what every
    process is poised on.

    On correct consensus/RC systems the walk terminates and, matching
    the proof's "standard argument", the report shows every process
    poised on the same consensus object (labelled steps; registers and
    reads cannot separate valencies).  Keep the systems tiny: the
    decision-set computation replays the whole subtree. *)

type choice = Step_of of int | Crash_p0

val pp_choice : Format.formatter -> choice -> unit

module Int_set : Set.S with type elt = int

type report = {
  prefix : choice list;  (** the critical execution, oldest choice first *)
  decision_sets : Int_set.t list;
      (** valency of each process's next step (singleton = univalent) *)
  poised_on : string option list;
      (** label of the shared access each process is suspended on *)
}

exception Search_space_exhausted of string

val decisions :
  ?max_crashes:int ->
  ?max_depth:int ->
  mk:(unit -> Rcons_runtime.Sim.t * (unit -> int option array)) ->
  choice list ->
  Int_set.t
(** Decision set of a prefix (most recent choice first, as built
    internally; pass [] for the initial configuration). *)

val find_critical :
  ?max_crashes:int ->
  ?max_depth:int ->
  mk:(unit -> Rcons_runtime.Sim.t * (unit -> int option array)) ->
  unit ->
  report
(** @raise Search_space_exhausted when the initial configuration is
    univalent or the bounds are hit. *)

val pp_report : Format.formatter -> report -> unit
