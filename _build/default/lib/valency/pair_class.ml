(* Mechanization of the case analysis of Appendix H / Figure 8: why two
   processes cannot solve recoverable consensus using stacks (or queues)
   and registers.

   The valency framework (Theorem 14) produces a critical execution after
   which p1 is poised to apply op1 and p2 to apply op2 on the same object
   in state q, with the two next-step extensions having different
   valencies v1 <> v2.  The proof derives a contradiction by exhibiting,
   for every possible (q, op1, op2), a pair of continuations that force
   v1 = v2.  Each such forcing argument is one of:

   - [Commute] (Figure 8a): op1;op2 and op2;op1 leave the object in the
     same state.  p2 has taken a step in both extensions, so p1 may crash;
     after the crash the shared state is identical and p1's recovery run
     (solo, to completion) outputs the same value in both.

   - [Overwrite] (Figure 8b): op1 alone and op2;op1 leave the same state
     AND op1 returns the same response in both.  No crash is needed: p1's
     local state and the shared state are identical, so p1's solo run
     outputs the same value.

   - [Crash_confined] (Figures 8c-8f): the states s12 (after op1;op2) and
     s21 (after op2;op1) differ, but the difference is *confined*.  p1
     continues solo; as long as its operations return equal responses in
     the two hypothetical extensions, p1 cannot distinguish them, so by
     recoverable wait-freedom it either outputs (the same value in both,
     forcing v1 = v2) or eventually performs an operation whose responses
     differ.  At such a divergence the adversary crashes p1, erasing what
     it learned; each divergence therefore costs one crash, and crashes
     must be funded by steps of other processes (the constraint defining
     the execution set E_A in Theorem 14).  Formally we use the relation
        CE(a, b, k)  iff  a = b, or for every operation o:
                          resp_a(o) = resp_b(o) and CE(a', b', k), or
                          k > 0 and CE(a', b', k - 1),
     computed coinductively: cycles through response-equal edges witness
     "p1 never learns anything", while response-divergent edges consume
     the finite crash budget k, so non-converging divergent cycles (e.g.
     a sticky bit, which records the winner forever) correctly fail.
     For READABLE types p1 additionally has the READ operation, whose
     response is the state itself: on an unequal pair a read always
     diverges while changing nothing, so it burns one crash per probe and
     confinement can only be established through genuine convergence --
     a readable type whose states permanently record the difference
     (S_2, CAS, sticky bit, readable swap) correctly stays inconclusive.
     The stack and queue are NOT readable (Appendix H's subjects), so
     their update-only analysis stands: push/pop (Figure 8c) needs one
     crash; push/push (Figure 8f) needs two.  For list-shaped states
     pairs are canonicalized by stripping common prefixes and suffixes,
     which is sound because both components evolve under the same
     operations.

   - [Inconclusive]: none of the above could be established within the
     bounds; the type may well solve 2-process RC (e.g. the sticky bit's
     (0, 1) pair never classifies: the winner is recorded forever).

   If *every* reachable (q, op1, op2) classifies as one of the first
   three, no critical configuration can exist, so (by the scaffolding of
   Theorem 14 and Appendix H) 2-process recoverable consensus is
   unsolvable from the type and registers: rcons = 1. *)

open Rcons_spec

type kind =
  | Commute
  | Overwrite of [ `Op1_overwrites | `Op2_overwrites ]
  | Crash_confined of { crashes : int; pairs : int }
      (* crashes: divergent responses p1 must be crashed over (the crash
         budget the argument consumes); pairs: size of the confinement
         proof *)
  | Inconclusive

let pp_kind ppf = function
  | Commute -> Format.pp_print_string ppf "commute"
  | Overwrite `Op1_overwrites -> Format.pp_print_string ppf "op1-overwrites-op2"
  | Overwrite `Op2_overwrites -> Format.pp_print_string ppf "op2-overwrites-op1"
  | Crash_confined { crashes; pairs } ->
      Format.fprintf ppf "crash-confined(%d crashes, %d pairs)" crashes pairs
  | Inconclusive -> Format.pp_print_string ppf "INCONCLUSIVE"

let forces_equal_valency = function
  | Commute | Overwrite _ | Crash_confined _ -> true
  | Inconclusive -> false

(* Crash-confinement check (see the header), computed as a greatest
   fixpoint over the finite graph of reachable canonicalized state pairs.

   Nodes are (a, b, k) with a <> b after canonicalization and k the
   remaining crash budget.  Each operation o induces a requirement:
   - if applying o converges the pair (a' = b'), the requirement is
     satisfied outright (crash p1 right after o);
   - if the responses agree, the requirement is membership of
     (a', b', k) in the relation;
   - if the responses diverge, the requirement is k > 0 and membership of
     (a', b', k - 1);
   and for readable types a READ requirement: k > 0 and membership of
   (a, b, k - 1).  The relation is the largest node set satisfying all
   requirements; nodes violating one are removed until a fixpoint.
   [canon] keeps the pair space finite for list-shaped states;
   [max_pairs] aborts (returning None = inconclusive) if the reachable
   graph grows beyond the bound. *)
let crash_confined (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r)
    ?(canon = fun a b -> (a, b)) ?(max_pairs = 20_000) ?(max_depth = 64) ~crash_budget
    (a0 : s) (b0 : s) =
  let exception Too_many_pairs in
  let module Node_map = Map.Make (struct
    type t = s * s * int

    let compare (a1, b1, k1) (a2, b2, k2) =
      let c = T.compare_state a1 a2 in
      if c <> 0 then c
      else
        let c = T.compare_state b1 b2 in
        if c <> 0 then c else Stdlib.compare k1 k2
  end) in
  (* requirements.(node) = list of [None] (unsatisfiable) or [Some target]
     (target node must stay in the relation) *)
  let requirements = ref Node_map.empty in
  let node_count = ref 0 in
  (* [depth] caps the DFS: un-canonicalizable state pairs can grow without
     bound (e.g. push chains on a stack analysed without [canon]), making
     key comparisons ever more expensive; nodes beyond the cap are
     pessimistically treated as unsatisfiable, which can only push the
     verdict towards Inconclusive and is therefore sound. *)
  let rec build depth (a, b, k) =
    let a, b = canon a b in
    if T.compare_state a b = 0 then ()
    else if Node_map.mem (a, b, k) !requirements then ()
    else begin
      if !node_count >= max_pairs then raise Too_many_pairs;
      incr node_count;
      (* insert a placeholder first to cut cycles *)
      requirements := Node_map.add (a, b, k) [] !requirements;
      let reqs = ref [] in
      if depth >= max_depth then reqs := [ None ]
      else begin
        let add_target (a', b', k') =
          let a', b' = canon a' b' in
          if T.compare_state a' b' <> 0 then begin
            reqs := Some (a', b', k') :: !reqs;
            build (depth + 1) (a', b', k')
          end
        in
        List.iter
          (fun op ->
            let a', ra = T.apply a op in
            let b', rb = T.apply b op in
            if T.compare_resp ra rb = 0 then add_target (a', b', k)
            else if k > 0 then add_target (a', b', k - 1)
            else reqs := None :: !reqs)
          T.update_ops;
        if T.readable then
          if k > 0 then add_target (a, b, k - 1) else reqs := None :: !reqs
      end;
      requirements := Node_map.add (a, b, k) !reqs !requirements
    end
  in
  let start k =
    let a, b = canon a0 b0 in
    (a, b, k)
  in
  match
    for k = 0 to crash_budget do
      build 0 (start k)
    done
  with
  | exception Too_many_pairs -> None
  | () ->
      (* Greatest fixpoint, computed as the complement of the least
         fixpoint of "dead": a node is dead if one of its requirements is
         unsatisfiable or points to a dead node (requirements are
         conjunctive).  Linear BFS over reverse dependencies. *)
      let ids = Hashtbl.create 256 in
      let nodes = ref [] in
      Node_map.iter
        (fun node reqs ->
          Hashtbl.replace ids node (List.length !nodes);
          nodes := (node, reqs) :: !nodes)
        !requirements;
      let count = List.length !nodes in
      let node_arr = Array.make (max count 1) ((start 0), []) in
      List.iteri (fun i n -> node_arr.(count - 1 - i) <- n) !nodes;
      (* re-index so Hashtbl ids match array positions *)
      Array.iteri (fun i (node, _) -> Hashtbl.replace ids node i) node_arr;
      let dead = Array.make (max count 1) false in
      let rev_deps = Array.make (max count 1) [] in
      let initially_dead = ref [] in
      Array.iteri
        (fun i (_, reqs) ->
          List.iter
            (function
              | None -> if not dead.(i) then (dead.(i) <- true; initially_dead := i :: !initially_dead)
              | Some target ->
                  let t = Hashtbl.find ids target in
                  rev_deps.(t) <- i :: rev_deps.(t))
            reqs)
        node_arr;
      (* [Queue] is shadowed by the catalogue's queue type; a simple
         worklist works just as well. *)
      let worklist = ref !initially_dead in
      let rec drain () =
        match !worklist with
        | [] -> ()
        | d :: rest ->
            worklist := rest;
            List.iter
              (fun p ->
                if not dead.(p) then begin
                  dead.(p) <- true;
                  worklist := p :: !worklist
                end)
              rev_deps.(d);
            drain ()
      in
      drain ();
      let is_alive node =
        match Hashtbl.find_opt ids node with Some i -> not dead.(i) | None -> false
      in
      (* Smallest sufficient budget, for reporting. *)
      let a, b = canon a0 b0 in
      if T.compare_state a b = 0 then Some (0, 0)
      else
        let rec min_budget k =
          if k > crash_budget then None
          else if is_alive (start k) then Some (k, !node_count)
          else min_budget (k + 1)
        in
        min_budget 0

(* Classify one critical configuration (q, op1, op2). *)
let classify (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r)
    ?canon ?max_pairs ?max_depth ?(crash_budget = 2) (q : s) (op1 : o) (op2 : o) =
  let s1, r1_solo = T.apply q op1 in
  let s2, _ = T.apply q op2 in
  let s12, _ = T.apply s1 op2 in
  let s21, r1_after2 = T.apply s2 op1 in
  if T.compare_state s12 s21 = 0 then Commute
  else if T.compare_state s1 s21 = 0 && T.compare_resp r1_solo r1_after2 = 0 then
    Overwrite `Op1_overwrites
  else
    let s2', r2_solo = T.apply q op2 in
    let s2_after1, r2_after1 = T.apply s1 op2 in
    if T.compare_state s2' s2_after1 = 0 && T.compare_resp r2_solo r2_after1 = 0 then
      Overwrite `Op2_overwrites
    else
      (* One extra crash of p1 is spent right after op1;op2 / op2;op1 when
         op1's own responses differ between the two orders, to erase that
         knowledge before the solo run begins (for e.g. push/push the
         responses agree and no initial crash is needed). *)
      let initial_crash = if T.compare_resp r1_solo r1_after2 = 0 then 0 else 1 in
      match crash_confined (module T) ?canon ?max_pairs ?max_depth ~crash_budget s12 s21 with
      | Some (crashes, pairs) -> Crash_confined { crashes = crashes + initial_crash; pairs }
      | None -> Inconclusive
