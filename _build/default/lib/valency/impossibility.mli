(** The Appendix H experiment: sweep every reachable critical
    configuration of a type and classify it with {!Pair_class}.  When
    every configuration forces equal valencies, no critical execution of
    a putative 2-process RC algorithm exists, so (by the scaffolding of
    Theorem 14 and Appendix H) [rcons = 1] -- exactly how the paper
    proves [rcons(stack) = 1] and notes the same for the queue. *)

type line = {
  state_str : string;
  op1_str : string;
  op2_str : string;
  kind : Pair_class.kind;
}

type report = {
  subject : string;
  states_explored : int;
  lines : line list;
  conclusive : bool;  (** all configurations force equal valencies *)
}

val reachable_states :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  state_depth:int ->
  's list
(** States reachable from the candidate initial states by at most
    [state_depth] operations of the universe. *)

val analyse_typed :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  ?canon:('s -> 's -> 's * 's) ->
  ?max_pairs:int ->
  ?max_depth:int ->
  ?state_depth:int ->
  unit ->
  report

val analyse :
  ?max_pairs:int -> ?max_depth:int -> ?state_depth:int -> Rcons_spec.Object_type.t -> report
(** Generic entry point (no canonicalization).  For the stack and queue
    use {!analyse_stack} / {!analyse_queue}: without canonicalization
    their pair spaces grow unboundedly and configurations come back
    inconclusive. *)

val strip_common_affixes : int list -> int list -> int list * int list
(** Canonicalization for list-shaped states: both components of a
    confinement pair evolve under the same operations, so common
    prefixes and suffixes can be stripped. *)

val analyse_stack :
  ?domain:int -> ?max_pairs:int -> ?max_depth:int -> ?state_depth:int -> unit -> report
val analyse_queue :
  ?domain:int -> ?max_pairs:int -> ?max_depth:int -> ?state_depth:int -> unit -> report

val pp_report : Format.formatter -> report -> unit
(** Every configuration, one line each. *)

val summary : Format.formatter -> report -> unit
(** One-line summary with per-kind counts and the conclusion. *)
