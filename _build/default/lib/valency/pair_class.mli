(** Mechanization of the case analysis of Appendix H / Figure 8: why two
    processes cannot solve recoverable consensus using stacks (or
    queues) and registers.

    The valency framework (Theorem 14) yields a critical execution after
    which p1 is poised to apply [op1] and p2 to apply [op2] on the same
    object in state [q], with the two next-step extensions of different
    valencies.  The proof refutes criticality by exhibiting, for every
    (q, op1, op2), continuations forcing equal valencies; each forcing
    argument is one of the classification kinds below.  See the
    implementation header for the full discussion, including the role of
    the crash budget and why readable types that permanently record the
    difference (sticky bit, CAS, S_n, readable swap) correctly stay
    {!Inconclusive}. *)

type kind =
  | Commute
      (** op1;op2 and op2;op1 reach the same state (Figure 8a): crash p1
          after both, its solo recovery run outputs the same value. *)
  | Overwrite of [ `Op1_overwrites | `Op2_overwrites ]
      (** One order reaches the state of the overwriting op alone, with
          equal responses for the overwriter (Figure 8b): no crash
          needed, the overwriter's solo run cannot distinguish. *)
  | Crash_confined of { crashes : int; pairs : int }
      (** The difference between the two extensions is confined
          (Figures 8c-8f): p1's solo runs stay in lockstep except at
          response divergences, each of which the adversary erases with
          one crash ([crashes] total), until the states coincide.
          [pairs] is the size of the confinement proof. *)
  | Inconclusive
      (** No forcing argument found: the type may solve 2-process RC. *)

val pp_kind : Format.formatter -> kind -> unit
val forces_equal_valency : kind -> bool

val crash_confined :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  ?canon:('s -> 's -> 's * 's) ->
  ?max_pairs:int ->
  ?max_depth:int ->
  crash_budget:int ->
  's ->
  's ->
  (int * int) option
(** Greatest-fixpoint confinement check over the canonicalized pair
    graph; [Some (crashes, pairs)] with the smallest sufficient budget,
    or [None] (including when the graph exceeds [max_pairs]). *)

val classify :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  ?canon:('s -> 's -> 's * 's) ->
  ?max_pairs:int ->
  ?max_depth:int ->
  ?crash_budget:int ->
  's ->
  'o ->
  'o ->
  kind
(** Classify one critical configuration; [crash_budget] defaults to 2
    (enough for all of Figure 8). *)
