lib/valency/pair_class.ml: Array Format Hashtbl List Map Object_type Rcons_spec Stdlib
