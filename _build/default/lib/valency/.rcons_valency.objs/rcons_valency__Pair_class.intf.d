lib/valency/pair_class.mli: Format Rcons_spec
