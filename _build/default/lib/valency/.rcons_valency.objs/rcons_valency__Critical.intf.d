lib/valency/critical.mli: Format Rcons_runtime Set
