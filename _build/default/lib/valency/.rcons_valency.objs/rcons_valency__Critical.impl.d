lib/valency/critical.ml: Array Format Fun Int List Rcons_runtime Set Sim String
