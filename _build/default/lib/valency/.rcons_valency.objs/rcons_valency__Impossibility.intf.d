lib/valency/impossibility.mli: Format Pair_class Rcons_spec
