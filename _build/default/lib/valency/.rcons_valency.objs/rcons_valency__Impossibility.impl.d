lib/valency/impossibility.ml: Format List Object_type Pair_class Queue Rcons_spec Set Stack
