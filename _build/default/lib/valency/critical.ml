(* The valency argument of Theorem 14 (Figure 3), exhibited on real
   algorithms.

   For a consensus/RC system built by [mk], explore a bounded,
   E_A-style schedule space (steps of every process; crashes of p0 only,
   within a budget) and compute each prefix's *decision set*: the set of
   output values reachable in its extensions.  A prefix is bivalent if
   its decision set has at least two elements; a *critical execution* is
   a bivalent prefix all of whose one-step extensions are univalent.

   The proof's "standard argument" says that at criticality every process
   must be poised to perform an update on the SAME object O (registers
   and reads cannot separate valencies).  With labelled steps the
   explorer reports exactly what each process is poised on, letting the
   tests reproduce that structural claim on, e.g., the Figure 2 algorithm
   running on S_2: both processes end up poised on the S_2 object.

   The space is tiny by construction (2-3 processes, short bodies, small
   crash budget), and exhibiting a critical execution within a subspace
   is legitimate: valencies are defined relative to the explored space,
   exactly as the proof defines them relative to E_A. *)

open Rcons_runtime

type choice = Step_of of int | Crash_p0

let pp_choice ppf = function
  | Step_of i -> Format.fprintf ppf "step(p%d)" i
  | Crash_p0 -> Format.pp_print_string ppf "crash(p0)"

module Int_set = Set.Make (Int)

type report = {
  prefix : choice list;
  decision_sets : Int_set.t list; (* decision set after each next-step of p0, p1, ... *)
  poised_on : string option list; (* label of each process's pending access *)
}

exception Search_space_exhausted of string

let apply_choice sim = function
  | Step_of i -> ignore (Sim.step_proc sim i)
  | Crash_p0 -> Sim.crash sim 0

let replay ~mk prefix =
  let sim, read_outputs = mk () in
  List.iter (apply_choice sim) (List.rev prefix);
  (sim, read_outputs)

(* Enabled choices at a node, within the restricted space: any unfinished
   process may step; p0 may crash if it has started, is unfinished, and
   the crash budget remains. *)
let choices sim crashes_used max_crashes =
  let n = Sim.num_procs sim in
  let steps = List.filter_map (fun i -> if Sim.finished sim i then None else Some (Step_of i)) (List.init n Fun.id) in
  let crashes =
    if crashes_used < max_crashes && Sim.started sim 0 && not (Sim.finished sim 0) then
      [ Crash_p0 ]
    else []
  in
  steps @ crashes

let count_crashes prefix =
  List.length (List.filter (function Crash_p0 -> true | Step_of _ -> false) prefix)

(* Decision set of a prefix: union of output values over all maximal
   extensions in the space. *)
let decisions ?(max_crashes = 1) ?(max_depth = 200) ~mk prefix0 =
  let rec go prefix depth crashes_used =
    if depth > max_depth then
      raise (Search_space_exhausted "depth bound hit (non-terminating algorithm?)");
    let sim, read_outputs = replay ~mk prefix in
    let cs = choices sim crashes_used max_crashes in
    if cs = [] then begin
      let outs = read_outputs () in
      Sim.abandon sim;
      Array.to_list outs |> List.filter_map Fun.id |> Int_set.of_list
    end
    else begin
      Sim.abandon sim;
      List.fold_left
        (fun acc c ->
          let crashes' = match c with Crash_p0 -> crashes_used + 1 | Step_of _ -> crashes_used in
          Int_set.union acc (go (c :: prefix) (depth + 1) crashes'))
        Int_set.empty cs
    end
  in
  go prefix0 (List.length prefix0) (count_crashes prefix0)

(* Walk from the empty prefix towards a critical execution: while the
   current (bivalent) node has a bivalent child, descend; when all
   children are univalent, we are critical. *)
let find_critical ?(max_crashes = 1) ?(max_depth = 200) ~mk () =
  let rec walk prefix crashes_used depth =
    if depth > max_depth then raise (Search_space_exhausted "no critical execution within bounds");
    let sim, _ = replay ~mk prefix in
    let cs = choices sim crashes_used max_crashes in
    Sim.abandon sim;
    if cs = [] then raise (Search_space_exhausted "reached a maximal execution while bivalent");
    let child_sets =
      List.map
        (fun c ->
          let crashes' = match c with Crash_p0 -> crashes_used + 1 | Step_of _ -> crashes_used in
          (c, decisions ~max_crashes ~max_depth ~mk (c :: prefix) |> fun s -> (crashes', s)))
        cs
    in
    match
      List.find_opt (fun (_, (_, set)) -> Int_set.cardinal set >= 2) child_sets
    with
    | Some (c, (crashes', _)) -> walk (c :: prefix) crashes' (depth + 1)
    | None -> (prefix, child_sets)
  in
  let root_set = decisions ~max_crashes ~max_depth ~mk [] in
  if Int_set.cardinal root_set < 2 then
    raise (Search_space_exhausted "initial configuration is already univalent");
  let prefix, child_sets = walk [] 0 0 in
  (* Report: per-process next-step decision sets and poised-on labels.
     A process whose label is None has not reached its first shared
     access; probing it with one step is shared-state neutral (the first
     step only runs local code up to the first suspension), and each
     probe uses its own replay. *)
  let sim, _ = replay ~mk prefix in
  let n = Sim.num_procs sim in
  Sim.abandon sim;
  let decision_sets =
    List.init n (fun i ->
        match List.assoc_opt (Step_of i) (List.map (fun (c, (_, s)) -> (c, s)) child_sets) with
        | Some s -> s
        | None -> Int_set.empty)
  in
  let poised_on =
    List.init n (fun i ->
        let sim, _ = replay ~mk prefix in
        let label =
          match Sim.pending_label sim i with
          | Some l -> Some l
          | None ->
              if Sim.finished sim i then None
              else begin
                ignore (Sim.step_proc sim i);
                Sim.pending_label sim i
              end
        in
        Sim.abandon sim;
        label)
  in
  { prefix = List.rev prefix; decision_sets; poised_on }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>critical execution (%d choices): %a@,"
    (List.length r.prefix)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_choice)
    r.prefix;
  List.iteri
    (fun i (set, label) ->
      Format.fprintf ppf "  p%d: next-step valency {%s}, poised on %s@," i
        (String.concat "," (List.map string_of_int (Int_set.elements set)))
        (match label with Some l -> l | None -> "-"))
    (List.combine r.decision_sets r.poised_on);
  Format.fprintf ppf "@]"
