(* The Appendix H experiment: sweep every reachable critical configuration
   of a type and classify it.  If every configuration forces v1 = v2, no
   critical execution of a putative 2-process RC algorithm can exist, so
   rcons(T) = 1 -- this is exactly how the paper proves rcons(stack) = 1
   and remarks that the same argument gives rcons(queue) = 1. *)

open Rcons_spec

type line = { state_str : string; op1_str : string; op2_str : string; kind : Pair_class.kind }

type report = {
  subject : string;
  states_explored : int;
  lines : line list;
  conclusive : bool; (* all configurations force v1 = v2 *)
}

(* States reachable from the candidate initial states by at most
   [state_depth] operations from the universe. *)
let reachable_states (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r)
    ~state_depth =
  let module State_set = Set.Make (struct
    type t = s

    let compare = T.compare_state
  end) in
  let seen = ref State_set.empty in
  let rec go d q =
    if not (State_set.mem q !seen) then begin
      seen := State_set.add q !seen;
      if d > 0 then List.iter (fun op -> go (d - 1) (fst (T.apply q op))) T.update_ops
    end
  in
  List.iter (go state_depth) T.candidate_initial_states;
  State_set.elements !seen

let analyse_typed (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ?canon
    ?max_pairs ?max_depth ?(state_depth = 3) () =
  let states = reachable_states (module T) ~state_depth in
  let lines =
    List.concat_map
      (fun q ->
        List.concat_map
          (fun op1 ->
            List.map
              (fun op2 ->
                let kind = Pair_class.classify (module T) ?canon ?max_pairs ?max_depth q op1 op2 in
                {
                  state_str = Format.asprintf "%a" T.pp_state q;
                  op1_str = Format.asprintf "%a" T.pp_op op1;
                  op2_str = Format.asprintf "%a" T.pp_op op2;
                  kind;
                })
              T.update_ops)
          T.update_ops)
      states
  in
  {
    subject = T.name;
    states_explored = List.length states;
    lines;
    conclusive = List.for_all (fun l -> Pair_class.forces_equal_valency l.kind) lines;
  }

let analyse ?max_pairs ?max_depth ?state_depth (Object_type.Pack (module T)) =
  analyse_typed (module T) ?max_pairs ?max_depth ?state_depth ()

(* Canonicalization for list-shaped states (our stacks and queues): both
   components of a confinement pair evolve under the same operations, so
   shared prefixes and suffixes can be stripped; this turns the growing
   pair space of e.g. repeated pushes into a finite cycle. *)
let strip_common_affixes (a : int list) (b : int list) =
  let rec strip_prefix = function
    | x :: a', y :: b' when x = y -> strip_prefix (a', b')
    | pair -> pair
  in
  let a, b = strip_prefix (a, b) in
  let a', b' = strip_prefix (List.rev a, List.rev b) in
  (List.rev a', List.rev b')

(* The paper's two subjects, analysed with the list canonicalization. *)
let analyse_stack ?(domain = 2) ?max_pairs ?max_depth ?state_depth () =
  let (module T) = Stack.spec ~domain ~readable:false in
  analyse_typed (module T) ~canon:strip_common_affixes ?max_pairs ?max_depth ?state_depth ()

let analyse_queue ?(domain = 2) ?max_pairs ?max_depth ?state_depth () =
  let (module T) = Queue.spec ~domain ~readable:false in
  analyse_typed (module T) ~canon:strip_common_affixes ?max_pairs ?max_depth ?state_depth ()

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %d reachable states, %d configurations, %s@,"
    r.subject r.states_explored (List.length r.lines)
    (if r.conclusive then "ALL force v1 = v2 => rcons = 1" else "inconclusive configurations remain");
  List.iter
    (fun l ->
      Format.fprintf ppf "  q=%-12s op1=%-8s op2=%-8s  %a@," l.state_str l.op1_str l.op2_str
        Pair_class.pp_kind l.kind)
    r.lines;
  Format.fprintf ppf "@]"

let summary ppf r =
  let count k = List.length (List.filter (fun l -> l.kind = k) r.lines) in
  let commute = count Pair_class.Commute in
  let ov =
    List.length
      (List.filter (fun l -> match l.kind with Pair_class.Overwrite _ -> true | _ -> false) r.lines)
  in
  let cc =
    List.length
      (List.filter
         (fun l -> match l.kind with Pair_class.Crash_confined _ -> true | _ -> false)
         r.lines)
  in
  let inc = count Pair_class.Inconclusive in
  Format.fprintf ppf
    "%-22s states=%-3d configs=%-4d commute=%-4d overwrite=%-4d crash-confined=%-4d inconclusive=%-4d => %s"
    r.subject r.states_explored (List.length r.lines) commute ov cc inc
    (if r.conclusive then "rcons = 1" else "no conclusion")
