(* Lifting team consensus to full (recoverable) consensus: the tournament
   of Appendix B (Proposition 30).

   The k processes of a node are split into two parts A' and B' with
   |A'| <= |A| and |B'| <= |B|, where (|A|, |B|) are the team capacities of
   the underlying team-consensus instances; each part recursively agrees on
   a value and the two parts then run team consensus.  The split always
   exists when k <= |A| + |B|.  A team-consensus instance also works when
   only a subset of each team participates (the missing processes simply
   take no steps), which the recursion relies on.

   All shared objects are created up front (they live in non-volatile
   memory); re-running [decide] after a crash re-enters the same instances,
   so the construction is recoverable whenever the underlying instances
   are. *)

open Rcons_check

type 'v decide = int -> 'v -> 'v
(* [decide pid v] run from inside simulated process [pid]. *)

type 'v team_instance = {
  decide_team : Rcons_spec.Team.t -> int -> 'v -> 'v;
  cap_a : int;
  cap_b : int;
}

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let rec drop n xs = if n = 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let index_of pid pids =
  let rec go i = function
    | [] -> invalid_arg "Tournament.index_of"
    | p :: rest -> if p = pid then i else go (i + 1) rest
  in
  go 0 pids

let rec build ~make_instance ~cap_a ~cap_b pids : 'v decide =
  match pids with
  | [] -> invalid_arg "Tournament.build: empty process set"
  | [ _ ] -> fun _pid v -> v
  | _ ->
      let k = List.length pids in
      if k > cap_a + cap_b then invalid_arg "Tournament.build: too many processes";
      (* |A'| = min(|A|, k-1) >= 1 and |B'| = k - |A'| is then both >= 1
         and <= |B| (Proposition 30). *)
      let a' = min cap_a (k - 1) in
      let left = take a' pids and right = drop a' pids in
      let decide_left = build ~make_instance ~cap_a ~cap_b left in
      let decide_right = build ~make_instance ~cap_a ~cap_b right in
      let inst : 'v team_instance = make_instance () in
      fun pid v ->
        if List.mem pid left then
          inst.decide_team Rcons_spec.Team.A (index_of pid left) (decide_left pid v)
        else inst.decide_team Rcons_spec.Team.B (index_of pid right) (decide_right pid v)

(* Mask unstable inputs with the input-register transformation, so the
   precondition "a process's input does not change across runs" holds even
   if the caller passes different values after a recovery. *)
let with_stable_inputs n (decide : 'v decide) : 'v decide =
  let regs = Stable_input.make n in
  fun pid v -> decide pid (Stable_input.fix regs pid v)

(* n-process recoverable consensus from a recording certificate
   (Theorem 8 + Proposition 30). *)
let recoverable_consensus ?faithful (cert : Certificate.recording) ~n : 'v decide =
  let size_a, size_b = Certificate.recording_teams cert in
  let make_instance () =
    let tc = Team_consensus.create ?faithful cert in
    { decide_team = tc.Team_consensus.decide; cap_a = tc.size_a; cap_b = tc.size_b }
  in
  with_stable_inputs n (build ~make_instance ~cap_a:size_a ~cap_b:size_b (List.init n Fun.id))

(* n-process standard consensus from a discerning certificate (Theorem 3);
   correct under halting failures only. *)
let standard_consensus (cert : Certificate.discerning) ~n : 'v decide =
  let make_instance () =
    let rc = Ruppert_consensus.create cert in
    let decide_team team slot v =
      let j = match team with Rcons_spec.Team.A -> slot | Rcons_spec.Team.B -> rc.size_a + slot in
      rc.Ruppert_consensus.decide j v
    in
    { decide_team; cap_a = rc.size_a; cap_b = rc.size_b }
  in
  let cap_a, cap_b = Certificate.discerning_teams cert in
  build ~make_instance ~cap_a ~cap_b (List.init n Fun.id)
