(** Recoverable consensus under {e simultaneous} crashes from standard
    consensus instances: the algorithm of Figure 4 (Theorem 1 /
    Appendix A).

    Round r uses a fresh consensus instance C_r and a register D[r]
    recording its output; Round[j] remembers the largest round process j
    entered, so a recovered process never accesses an instance twice
    (Lemma 27) and catches its preference up from D[r-1] instead.  A
    process returns after completing a round no process has moved
    beyond.  The arrays are unbounded (footnote 2; Golab proved bounded
    space impossible for this transformation).

    Instances are pluggable: any standard consensus algorithm works,
    because each process invokes each instance at most once and a
    process crashed mid-invocation looks like a stalled process to a
    wait-free algorithm. *)

type 'v consensus = { propose : int -> 'v -> 'v }

type 'v t

val create : n:int -> make_consensus:(unit -> 'v consensus) -> 'v t

val decide : 'v t -> int -> 'v -> 'v
(** [decide t j v]: Figure 4's Decide(v) for process [j]; restarting
    from the beginning after a crash is the model's recovery. *)

val rounds_used : 'v t -> int
(** Largest round entered so far: the number of consensus instances the
    execution consumed (grows with the number of simultaneous-crash
    events; see experiment E4). *)
