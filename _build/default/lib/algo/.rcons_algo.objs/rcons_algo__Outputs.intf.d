lib/algo/outputs.mli:
