lib/algo/one_shot.ml: Cell Rcons_runtime Sim
