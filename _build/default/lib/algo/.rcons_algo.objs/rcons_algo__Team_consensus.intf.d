lib/algo/team_consensus.mli: Rcons_check Rcons_spec
