lib/algo/tournament.mli: Rcons_check Rcons_spec
