lib/algo/stable_input.ml: Array Cell Rcons_runtime
