lib/algo/simultaneous_rc.ml: Array Cell Growable Hashtbl Option Rcons_runtime
