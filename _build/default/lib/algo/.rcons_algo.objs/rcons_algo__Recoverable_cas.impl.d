lib/algo/recoverable_cas.ml: Array Cell Rcons_runtime Sim
