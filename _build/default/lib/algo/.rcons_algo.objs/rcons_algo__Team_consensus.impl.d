lib/algo/team_consensus.ml: Array Cell Certificate List Rcons_check Rcons_runtime Rcons_spec Sim_obj
