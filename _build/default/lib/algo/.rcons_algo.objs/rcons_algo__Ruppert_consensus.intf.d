lib/algo/ruppert_consensus.mli: Rcons_check
