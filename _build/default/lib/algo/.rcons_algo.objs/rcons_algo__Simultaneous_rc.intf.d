lib/algo/simultaneous_rc.mli:
