lib/algo/tournament.ml: Certificate Fun List Rcons_check Rcons_spec Ruppert_consensus Stable_input Team_consensus
