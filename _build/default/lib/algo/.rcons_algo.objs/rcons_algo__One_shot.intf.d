lib/algo/one_shot.mli:
