lib/algo/outputs.ml: Array List
