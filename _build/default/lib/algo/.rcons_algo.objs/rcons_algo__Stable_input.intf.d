lib/algo/stable_input.mli:
