lib/algo/recoverable_cas.mli:
