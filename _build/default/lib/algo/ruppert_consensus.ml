(* Standard (crash-free) team consensus from a readable n-discerning type:
   the algorithm sketched before Theorem 3 in the paper, from Ruppert's
   characterization.  Each process writes its input in its team's register,
   performs its assigned operation on O, reads O, and decides from the
   (response, read state) pair which team updated O first.

   This is the baseline against which the recoverable algorithm is
   compared: it is correct under halting failures but has no crash-recovery
   guarantees (a process that crashes and re-runs may update O twice,
   destroying the evidence of which team went first). *)

open Rcons_runtime
open Rcons_check

type 'v t = {
  decide : int -> 'v -> 'v; (* global process slot, as in the certificate *)
  size_a : int;
  size_b : int;
}

let create (Certificate.Discerning ((module T), d)) : 'v t =
  let o = Sim_obj.make (module T) d.dq0 in
  let r_a : 'v option Cell.t = Cell.make None in
  let r_b : 'v option Cell.t = Cell.make None in
  let pair_mem set (r, q) =
    List.exists (fun (r', q') -> T.compare_resp r r' = 0 && T.compare_state q q' = 0) set
  in
  let decide j v =
    let team, op = d.procs.(j) in
    let my_reg = match team with Rcons_spec.Team.A -> r_a | Rcons_spec.Team.B -> r_b in
    Cell.write my_reg (Some v);
    let resp = Sim_obj.apply o op in
    let q = Sim_obj.read o in
    let winner_reg =
      if pair_mem d.r_a.(j) (resp, q) then r_a
      else if pair_mem d.r_b.(j) (resp, q) then r_b
      else invalid_arg "Ruppert consensus: observation in neither R-set"
    in
    match Cell.read winner_reg with
    | Some w -> w
    | None -> invalid_arg "Ruppert consensus: winner register empty"
  in
  let count team =
    Array.fold_left (fun acc (t, _) -> if t = team then acc + 1 else acc) 0 d.procs
  in
  { decide; size_a = count Rcons_spec.Team.A; size_b = count Rcons_spec.Team.B }
