(** The input-register transformation from the introduction of the
    paper: RC algorithms assume a process's input does not change across
    its runs; a per-process non-volatile register makes that hold even
    for callers that pass different values after a recovery. *)

type 'v t

val make : int -> 'v t
(** One register per process, initially unwritten. *)

val fix : 'v t -> int -> 'v -> 'v
(** [fix t i v]: read process [i]'s register; if unwritten, write [v];
    return the register's (now stable) value.  Must run inside the
    simulated process [i]; single-writer. *)
