(** One-shot recoverable consensus from a single atomic consensus-style
    primitive (a sticky cell: the first proposal is recorded forever).
    The "hardware" RC instance used for the next-pointers of the
    universal construction (Section 4) and as the default C_r of
    Figure 4.  Recoverability is immediate: the winner persists in
    non-volatile memory and repeated proposals return it. *)

type 'v t

val create : unit -> 'v t

val decide : 'v t -> 'v -> 'v
(** Atomic propose (one step): returns the recorded winner, installing
    [v] if none yet. *)

val poll : 'v t -> 'v option
(** Read the decision without proposing (one step). *)

val peek : 'v t -> 'v option
(** Out-of-simulation inspection. *)
