(* The input-register transformation described in the introduction of the
   paper: RC algorithms assume a process's input value does not change
   across its runs.  To lift that precondition, each process keeps a
   non-volatile register holding its input; at the start of each run it
   reads the register and writes its input only if the register is still
   unwritten, then uses the register's value as its input.  The register
   is single-writer, so the read-back below always succeeds. *)

open Rcons_runtime

type 'v t = 'v option Cell.t array

let make n : 'v t = Array.init n (fun _ -> Cell.make None)

let fix (t : 'v t) i v =
  match Cell.read t.(i) with
  | Some stable -> stable
  | None -> (
      Cell.write t.(i) (Some v);
      match Cell.read t.(i) with
      | Some stable -> stable
      | None -> assert false (* single writer: our write is visible *))
