(** Lifting team consensus to full (recoverable) consensus: the
    tournament of Appendix B (Proposition 30).

    The k processes of a node split into parts A' and B' with
    [|A'| <= |A|] and [|B'| <= |B|] (the underlying instances' team
    capacities); each part recursively agrees, then the parts run team
    consensus.  A split exists whenever [k <= |A| + |B|], and instances
    tolerate subset participation.  All shared objects are created up
    front in non-volatile memory, so re-running [decide] after a crash
    re-enters the same instances: the construction is recoverable
    whenever its instances are. *)

type 'v decide = int -> 'v -> 'v
(** [decide pid v], run from inside simulated process [pid]. *)

type 'v team_instance = {
  decide_team : Rcons_spec.Team.t -> int -> 'v -> 'v;
  cap_a : int;
  cap_b : int;
}

val build : make_instance:(unit -> 'v team_instance) -> cap_a:int -> cap_b:int -> int list -> 'v decide
(** Recursive tournament over the given process ids.
    @raise Invalid_argument if more than [cap_a + cap_b] processes. *)

val with_stable_inputs : int -> 'v decide -> 'v decide
(** Wrap with the input-register transformation ({!Stable_input}). *)

val recoverable_consensus :
  ?faithful:bool -> Rcons_check.Certificate.recording -> n:int -> 'v decide
(** n-process recoverable consensus from a recording certificate
    (Theorem 8 + Proposition 30), inputs stabilized. *)

val standard_consensus : Rcons_check.Certificate.discerning -> n:int -> 'v decide
(** n-process standard consensus from a discerning certificate
    (Theorem 3); correct under halting failures only. *)
