(** A recoverable compare-and-swap object from an ordinary atomic CAS
    and registers, in the style of Attiya, Ben-Baruch and Hendler's
    construction (Section 5 of the paper: replacing CAS objects with
    recoverable CAS makes any read/CAS algorithm recoverable).

    Values in the underlying object are tagged with (owner, attempt);
    before overwriting a tagged value, a process records the observation
    in the owner's evidence row.  Together these give detectability: a
    process that crashed right after a successful CAS discovers the
    outcome on recovery even if its value has been overwritten since.

    Invocations are identified by strictly increasing per-process attempt
    numbers and are idempotent: re-entering {!cas} with the same attempt
    (what a restarted process does) returns the recorded outcome.  On
    tag-induced interference the operation retries while the current
    value still equals [expected] (lock-free, as in the original). *)

type 'v t

val create : ?equal:('v -> 'v -> bool) -> n:int -> 'v -> 'v t
(** [create ~n initial]: a recoverable CAS over values of type ['v] for
    processes [0 .. n-1]. *)

val read_value : 'v t -> 'v
(** Read the current value (one step). *)

val cas : 'v t -> int -> attempt:int -> expected:'v -> desired:'v -> bool
(** [cas t pid ~attempt ~expected ~desired]: recoverable CAS; [true] iff
    this attempt installed [desired].  Idempotent per (pid, attempt);
    attempts of one process must use increasing numbers. *)

(** Post-crash status of an attempt, per the detectability guarantee. *)
type status = Succeeded | Failed | Unresolved

val recover : 'v t -> int -> attempt:int -> status
(** Never re-executes anything; [Unresolved] means the attempt provably
    took no effect yet (it may be re-issued). *)
