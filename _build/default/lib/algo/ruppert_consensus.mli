(** Standard (crash-free) team consensus from a readable n-discerning
    type: the algorithm behind Theorem 3.  Each process writes its input
    in its team's register, performs its assigned operation on O, reads
    O, and decides from the (response, state) pair which team updated O
    first.

    This is the baseline the recoverable algorithm is compared against:
    correct under halting failures, but with {e no} crash-recovery
    guarantees -- a recovered process updates O a second time and
    destroys the evidence (see the crash-storm experiment).  Under
    crashes it may violate agreement or fail internally
    ([Invalid_argument]: an observation in neither R-set, or an unwritten
    winner register). *)

type 'v t = {
  decide : int -> 'v -> 'v;  (** global process index, as in the certificate *)
  size_a : int;
  size_b : int;
}

val create : Rcons_check.Certificate.discerning -> 'v t
