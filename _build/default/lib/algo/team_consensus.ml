(* Recoverable team consensus from a readable n-recording type: the
   algorithm of Figure 2 of the paper, instantiated with a machine-derived
   recording certificate (Theorem 8).

   The code in the paper assumes q0 is not in Q_B; when the certificate has
   q0 in Q_B (and hence, by condition 1, not in Q_A) the roles of the two
   teams are swapped internally.  Processes on team A update O when they
   find it in state q0.  Processes on team B do likewise, except that a
   *lone* process on team B instead yields to team A when it sees that some
   team-A process has already written its input (line 19-20 of Figure 2);
   this is what makes the algorithm safe when q0 can recur in Q_A.

   [faithful] (default true) keeps the |B| = 1 guard of line 19.  Setting
   it to false reproduces the broken variant discussed after Lemma 7: with
   two processes on team B the yield rule violates agreement, and the
   bounded model checker finds the counterexample -- a negative control
   showing the simulator can detect real bugs. *)

open Rcons_runtime
open Rcons_check

type 'v t = {
  decide : Rcons_spec.Team.t -> int -> 'v -> 'v;
      (* [decide team slot v]: run DECIDE(v) as the [slot]-th process of
         [team] (slots index the certificate's per-team operation lists).
         Must be called from inside a simulated process; on crash the
         caller's whole run restarts, which re-enters this code from the
         beginning exactly as in the model. *)
  size_a : int;
  size_b : int;
}

let create ?(faithful = true) (Certificate.Recording ((module T), d)) : 'v t =
  (* Orient the teams so that q0 is not in Q_(code team B). *)
  let ops_a, ops_b, q_a, swap =
    if d.q0_in_q_b then (d.ops_b, d.ops_a, d.q_b, true) else (d.ops_a, d.ops_b, d.q_a, false)
  in
  let ops_a = Array.of_list ops_a and ops_b = Array.of_list ops_b in
  let o = Sim_obj.make (module T) d.q0 in
  let r_a : 'v option Cell.t = Cell.make None in
  let r_b : 'v option Cell.t = Cell.make None in
  let in_q_a q = List.exists (fun q' -> T.compare_state q' q = 0) q_a in
  let is_q0 q = T.compare_state q d.q0 = 0 in
  let return_team_a () =
    match Cell.read r_a with Some v -> v | None -> invalid_arg "Figure 2: R_A empty at return"
  in
  let return_team_b () =
    match Cell.read r_b with Some v -> v | None -> invalid_arg "Figure 2: R_B empty at return"
  in
  let finish q = if in_q_a q then return_team_a () else return_team_b () in
  (* Figure 2, lines 4-13: code for process [slot] of team A. *)
  let decide_a slot v =
    Cell.write r_a (Some v);
    let q = Sim_obj.read o in
    let q =
      if is_q0 q then begin
        ignore (Sim_obj.apply o ops_a.(slot));
        Sim_obj.read o
      end
      else q
    in
    finish q
  in
  (* Figure 2, lines 15-28: code for process [slot] of team B. *)
  let decide_b slot v =
    Cell.write r_b (Some v);
    let q = Sim_obj.read o in
    if is_q0 q then
      if (Array.length ops_b = 1 || not faithful) && Cell.read r_a <> None then
        return_team_a () (* line 20: the lone team-B process yields *)
      else begin
        ignore (Sim_obj.apply o ops_b.(slot));
        finish (Sim_obj.read o)
      end
    else finish q
  in
  let decide team slot v =
    let effective =
      if swap then Rcons_spec.Team.opposite team else team
    in
    match effective with
    | Rcons_spec.Team.A -> decide_a slot v
    | Rcons_spec.Team.B -> decide_b slot v
  in
  (* Sizes are reported in the certificate's labelling (callers address
     teams and slots as in the certificate; the swap is internal). *)
  { decide; size_a = List.length d.ops_a; size_b = List.length d.ops_b }
