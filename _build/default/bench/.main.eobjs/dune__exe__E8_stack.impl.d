bench/e8_stack.ml: List Rcons Util
