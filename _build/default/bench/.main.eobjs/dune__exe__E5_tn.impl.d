bench/e5_tn.ml: List Rcons Util
