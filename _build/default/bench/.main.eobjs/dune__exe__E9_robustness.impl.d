bench/e9_robustness.ml: Array Drivers Format List Printf Random Rcons Sim String Util
