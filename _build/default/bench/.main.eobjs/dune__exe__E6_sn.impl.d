bench/e6_sn.ml: Array Drivers List Option Random Rcons Sim Util
