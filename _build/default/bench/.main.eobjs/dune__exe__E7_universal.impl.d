bench/e7_universal.ml: Array Derived Drivers List Option Random Rcons Runiversal Script Sim Util
