bench/timing.ml: Analyze Array Bechamel Bechamel_notty Benchmark Instance Lazy List Measure Notty_unix Option Rcons Staged Test Time Toolkit Unix Util
