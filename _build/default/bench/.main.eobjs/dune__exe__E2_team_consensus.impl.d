bench/e2_team_consensus.ml: Array Drivers Explore List Option Random Rcons Sim Util
