bench/e1_hierarchy.ml: List Rcons Util
