bench/e10_ablation.ml: List Printf Rcons Util
