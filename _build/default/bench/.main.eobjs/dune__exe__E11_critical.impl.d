bench/e11_critical.ml: Array List Option Rcons Sim Util
