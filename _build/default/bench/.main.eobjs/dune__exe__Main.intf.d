bench/main.mli:
