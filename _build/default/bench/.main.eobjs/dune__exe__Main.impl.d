bench/main.ml: Array E10_ablation E11_critical E1_hierarchy E2_team_consensus E3_necessity E4_simultaneous E5_tn E6_sn E7_universal E8_stack E9_robustness Format List String Sys Timing
