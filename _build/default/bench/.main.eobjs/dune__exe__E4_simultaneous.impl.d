bench/e4_simultaneous.ml: Array Drivers List One_shot Outputs Random Rcons Sim Simultaneous_rc Util
