bench/e3_necessity.ml: Array Drivers Explore List Option Random Rcons Sim Util
