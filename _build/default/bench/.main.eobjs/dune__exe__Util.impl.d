bench/util.ml: Format Rcons String Unix
