(* Benchmark harness entry point: regenerates every table and figure of
   the paper's results (experiments E1-E9, see DESIGN.md and
   EXPERIMENTS.md).

     dune exec bench/main.exe              # all experiment tables
     dune exec bench/main.exe -- E4 E8     # selected experiments
     dune exec bench/main.exe -- --timing  # Bechamel micro-benchmarks *)

let experiments =
  [
    ("E1", E1_hierarchy.run);
    ("E2", E2_team_consensus.run);
    ("E3", E3_necessity.run);
    ("E4", E4_simultaneous.run);
    ("E5", E5_tn.run);
    ("E6", E6_sn.run);
    ("E7", E7_universal.run);
    ("E8", E8_stack.run);
    ("E9", E9_robustness.run);
    ("E10", E10_ablation.run);
    ("E11", E11_critical.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Format.printf
        "Reproduction harness: When Is Recoverable Consensus Harder Than Consensus? (PODC 2022)@.";
      List.iter (fun (_, run) -> run ()) experiments;
      Format.printf "@.All experiment tables regenerated; compare against EXPERIMENTS.md.@."
  | [ "--timing" ] -> Timing.run ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some run -> run ()
          | None ->
              Format.eprintf "unknown experiment %S (known: %s, --timing)@." name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        names
