(* E8 -- Figure 8 / Appendix H: rcons(stack) = rcons(queue) = 1.

   The sweep classifies every reachable critical configuration (state,
   op1, op2); when every configuration forces v1 = v2, no critical
   execution of a 2-process RC algorithm can exist.  The summary rows
   reproduce the paper's case analysis; soundness witnesses (types that
   DO solve 2-process RC staying inconclusive) are printed alongside.
   For contrast, cons(stack) = 2 is confirmed by the discerning checker. *)

let run () =
  Util.section "E8 (Figure 8 / Appendix H): two-process impossibility sweeps";
  let reports =
    [
      Rcons.Valency.Impossibility.analyse_stack ();
      Rcons.Valency.Impossibility.analyse_queue ();
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Test_and_set.t;
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Register.default;
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Fetch_add.default;
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Swap.default;
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Sticky_bit.t;
      Rcons.Valency.Impossibility.analyse Rcons.Spec.Cas.default;
      Rcons.Valency.Impossibility.analyse (Rcons.Spec.Sn.make 2);
    ]
  in
  List.iter (fun r -> Util.row "%a@." Rcons.Valency.Impossibility.summary r) reports;
  Util.row "@.contrast: stack is 2-discerning (cons = 2): %b; queue: %b@."
    (Rcons.Check.Discerning.is_discerning Rcons.Spec.Stack.default 2)
    (Rcons.Check.Discerning.is_discerning Rcons.Spec.Queue.default 2);
  (* the detailed Figure 8 case table for the stack, one row per case *)
  Util.row "@.Figure 8 cases on the stack (q = [1; 0] means 1 on top):@.";
  let (module T) = Rcons.Spec.Stack.spec ~domain:2 ~readable:false in
  let classify q o1 o2 =
    Rcons.Valency.Pair_class.classify (module T)
      ~canon:Rcons.Valency.Impossibility.strip_common_affixes q o1 o2
  in
  List.iter
    (fun (label, q, o1, o2) ->
      Util.row "  %-34s %a@." label Rcons.Valency.Pair_class.pp_kind (classify q o1 o2))
    [
      ("(a) pop / pop", [ 0; 1 ], Rcons.Spec.Stack.Pop, Rcons.Spec.Stack.Pop);
      ("(b) push / pop, empty", [], Rcons.Spec.Stack.Push 0, Rcons.Spec.Stack.Pop);
      ("(c) push / pop, non-empty", [ 1 ], Rcons.Spec.Stack.Push 0, Rcons.Spec.Stack.Pop);
      ("(d) pop / push, empty", [], Rcons.Spec.Stack.Pop, Rcons.Spec.Stack.Push 1);
      ("(e) pop / push, non-empty", [ 0 ], Rcons.Spec.Stack.Pop, Rcons.Spec.Stack.Push 1);
      ("(f) push / push", [ 0 ], Rcons.Spec.Stack.Push 0, Rcons.Spec.Stack.Push 1);
    ]
