(* E10 (ablation) -- what the design choices in the decision procedures
   buy.  The multiset symmetry reduction shrinks the candidate space from
   |ops|^n assignments x 2^n - 2 partitions (the brute-force oracle
   enumerates exactly these, straight from the definitions) down to
   multiset pairs over unordered team splits; memoized prefix-closed
   search replaces the per-sequence re-execution.  Both implementations
   agree -- the table reports the measured speedup. *)

let candidate_counts ~ops ~n =
  let pow b e = int_of_float (float_of_int b ** float_of_int e) in
  let brute = pow ops n * (pow 2 n - 2) in
  let binom a b =
    let rec go acc i = if i > b then acc else go (acc * (a - i + 1) / i) (i + 1) in
    go 1 1
  in
  let fast =
    List.fold_left
      (fun acc (a, b) -> acc + (binom (ops + a - 1) a * binom (ops + b - 1) b))
      0
      (Rcons.Check.Enumerate.team_splits n)
  in
  (brute, fast)

let run () =
  Util.section "E10 (ablation): symmetry reduction and memoized search vs brute force";
  Util.row "%-14s %-4s %-22s %-12s %-12s %-9s %s@." "type" "n" "candidates (brute/fast)"
    "brute time" "fast time" "speedup" "agree";
  let subjects =
    [
      (Rcons.Spec.Sn.make 3, 3);
      (Rcons.Spec.Sn.make 4, 4);
      (Rcons.Spec.Tn.make 4, 3);
      (Rcons.Spec.Sticky_bit.t, 3);
      (Rcons.Spec.Swap.default, 3);
    ]
  in
  List.iter
    (fun (ot, n) ->
      let name = Rcons.Spec.Object_type.name ot in
      let ops =
        match ot with Rcons.Spec.Object_type.Pack (module T) -> List.length T.update_ops
      in
      let brute_cands, fast_cands = candidate_counts ~ops ~n in
      let brute_result, brute_time =
        Util.time_it (fun () -> Rcons.Check.Brute_force.is_recording ot n)
      in
      let fast_result, fast_time =
        Util.time_it (fun () -> Rcons.Check.Recording.is_recording ot n)
      in
      Util.row "%-14s %-4d %10d / %-9d %-12.4f %-12.4f %-9s %b@." name n brute_cands fast_cands
        brute_time fast_time
        (if fast_time > 0. then Printf.sprintf "%.0fx" (brute_time /. fast_time) else "-")
        (brute_result = fast_result))
    subjects;
  Util.row "@.Both implementations decide Definition 4 identically (also property-tested on@.";
  Util.row "hundreds of random transition tables); the reduction is what makes levels up@.";
  Util.row "to n = 8 decidable in milliseconds.@."
