(* Bechamel micro-benchmarks: one [Test.make] per paper table/figure,
   timing the computation that regenerates it (decision procedures,
   algorithm executions, sweeps).  Run with `main.exe --timing`. *)

open Bechamel
open Toolkit

let cert_s3 = lazy (Option.get (Rcons.Check.Recording.witness (Rcons.Spec.Sn.make 3) 3))
let cert_sticky = lazy (Option.get (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 4))

let run_team_consensus () =
  let cert = Lazy.force cert_s3 in
  let size_a, size_b = Rcons.Check.Certificate.recording_teams cert in
  let n = size_a + size_b in
  let inputs = Array.init n (fun i -> i) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let tc = Rcons.Algo.Team_consensus.create cert in
  let body pid () =
    let team, slot =
      if pid < size_a then (Rcons.Spec.Team.A, pid) else (Rcons.Spec.Team.B, pid - size_a)
    in
    Rcons.Algo.Outputs.record outputs pid (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
  in
  let sim = Rcons.Runtime.Sim.create ~n body in
  Rcons.Runtime.Drivers.round_robin sim

let run_tournament_rc () =
  let cert = Lazy.force cert_sticky in
  let n = 4 in
  let inputs = Array.init n (fun i -> i) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let decide = Rcons.Algo.Tournament.recoverable_consensus cert ~n in
  let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Rcons.Runtime.Sim.create ~n body in
  Rcons.Runtime.Drivers.round_robin sim

let run_simultaneous () =
  let n = 4 in
  let make_consensus () =
    let c = Rcons.Algo.One_shot.create () in
    { Rcons.Algo.Simultaneous_rc.propose = (fun _ v -> Rcons.Algo.One_shot.decide c v) }
  in
  let inputs = Array.init n (fun i -> i) in
  let outputs = Rcons.Algo.Outputs.make ~inputs in
  let rc = Rcons.Algo.Simultaneous_rc.create ~n ~make_consensus in
  let body pid () =
    Rcons.Algo.Outputs.record outputs pid (Rcons.Algo.Simultaneous_rc.decide rc pid inputs.(pid))
  in
  let sim = Rcons.Runtime.Sim.create ~n body in
  Rcons.Runtime.Drivers.simultaneous ~crash_at:[ 5; 15 ] sim

let run_universal () =
  let n = 4 in
  let u = Rcons.Universal.Runiversal.create ~n Rcons.Universal.Derived.counter in
  let runner = Rcons.Universal.Script.create u ~n ~max_ops:3 in
  let sim =
    Rcons.Runtime.Sim.create ~n (fun pid () ->
        Rcons.Universal.Script.run runner pid
          [| Rcons.Universal.Derived.Incr; Rcons.Universal.Derived.Get; Rcons.Universal.Derived.Incr |])
  in
  Rcons.Runtime.Drivers.round_robin sim

let tests () =
  [
    Test.make ~name:"E1/fig1: classify sticky bit (limit 4)"
      (Staged.stage (fun () -> ignore (Rcons.classify ~limit:4 Rcons.Spec.Sticky_bit.t)));
    Test.make ~name:"E2/fig2: team consensus run (S_3 cert)" (Staged.stage run_team_consensus);
    Test.make ~name:"E2/fig2: tournament RC run (n=4, sticky)" (Staged.stage run_tournament_rc);
    Test.make ~name:"E4/fig4: simultaneous-crash RC run (n=4)" (Staged.stage run_simultaneous);
    Test.make ~name:"E5/fig5: T_6 6-discerning decision"
      (Staged.stage (fun () ->
           ignore (Rcons.Check.Discerning.is_discerning (Rcons.Spec.Tn.make 6) 6)));
    Test.make ~name:"E6/fig6: S_5 5-recording witness"
      (Staged.stage (fun () ->
           ignore (Rcons.Check.Recording.witness (Rcons.Spec.Sn.make 5) 5)));
    Test.make ~name:"E7/fig7: universal counter workload (n=4)" (Staged.stage run_universal);
    Test.make ~name:"E8/fig8: stack impossibility sweep"
      (Staged.stage (fun () -> ignore (Rcons.Valency.Impossibility.analyse_stack ())));
    Test.make ~name:"S5/rcas: one recoverable CAS (solo)"
      (Staged.stage (fun () ->
           let t = Rcons.Algo.Recoverable_cas.create ~n:1 0 in
           let sim =
             Rcons.Runtime.Sim.create ~n:1 (fun pid () ->
                 ignore (Rcons.Algo.Recoverable_cas.cas t pid ~attempt:1 ~expected:0 ~desired:1))
           in
           Rcons.Runtime.Drivers.round_robin sim));
    Test.make ~name:"E9/thm22: recording level of a 3-type set"
      (Staged.stage (fun () ->
           List.iter
             (fun ot -> ignore (Rcons.Check.Classify.max_recording ~limit:4 ot))
             [ Rcons.Spec.Register.default; Rcons.Spec.Swap.default; Rcons.Spec.Sn.make 3 ]));
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"rcons" ~fmt:"%s %s" (tests ()) in
  let raw_results = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  Analyze.merge ols instances results

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock)

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results

let run () =
  Util.section "Timing (Bechamel): cost of regenerating each table/figure";
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results = benchmark () in
  img (window, results) |> Notty_unix.eol |> Notty_unix.output_image
