(* Property-based meta-checks of the decision procedures.

   The structural theorems of the paper hold for EVERY deterministic type,
   so they must hold for arbitrary random transition tables; a violation
   would expose a bug in a checker (or a misreading of a definition):

   - Observation 5: n-recording implies n-discerning.
   - Observation 6: n-recording implies (n-1)-recording (n >= 3); the
     discerning property is downward closed by the same argument.
   - Theorem 16: n-discerning implies (n-2)-recording (n >= 4).
   - Proposition 18: 3-discerning implies 2-recording.
   - Corollary 17 shape: the recording level is within 2 of the
     discerning level from below, and never above it.
   - Every witness the recording checker emits must self-validate. *)

open Rcons_check

let table_gen ~max_states ~max_ops =
  QCheck2.Gen.(
    let* num_states = int_range 2 max_states in
    let* num_ops = int_range 1 max_ops in
    let* num_resps = int_range 1 2 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed; num_states; num_ops |] in
    return (Rcons_spec.Finite_type.random ~num_resps ~num_states ~num_ops rng))

let print_table (t : Rcons_spec.Finite_type.table) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%d states, %d ops:" t.num_states t.num_ops);
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun o (q', r) -> Buffer.add_string buf (Printf.sprintf " q%d-o%d->(q%d,r%d)" q o q' r))
        row)
    t.transition;
  Buffer.contents buf

let mk_test ?(count = 60) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:print_table (table_gen ~max_states:4 ~max_ops:2) prop)

let obs5 table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> (not (Recording.is_recording ot n)) || Discerning.is_discerning ot n)
    [ 2; 3; 4 ]

let obs6_recording_monotone table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> (not (Recording.is_recording ot n)) || Recording.is_recording ot (n - 1))
    [ 3; 4 ]

let discerning_monotone table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> (not (Discerning.is_discerning ot n)) || Discerning.is_discerning ot (n - 1))
    [ 3; 4 ]

let thm16 table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> (not (Discerning.is_discerning ot n)) || Recording.is_recording ot (n - 2))
    [ 4; 5 ]

let prop18 table =
  let ot = Rcons_spec.Finite_type.of_table table in
  (not (Discerning.is_discerning ot 3)) || Recording.is_recording ot 2

let corollary17_shape table =
  let ot = Rcons_spec.Finite_type.of_table table in
  let to_int = function Classify.Finite n -> n | Classify.At_least n -> n in
  let d = to_int (Classify.max_discerning ~limit:5 ot) in
  let r = to_int (Classify.max_recording ~limit:5 ot) in
  r <= d && d - 2 <= r

let witnesses_validate table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n ->
      match Recording.witness ot n with
      | None -> true
      | Some cert -> Certificate.validate_recording cert)
    [ 2; 3; 4 ]

(* The recording property is decided identically when teams are swapped:
   candidate enumeration already collapses the symmetry, so check it via
   explicit candidates on random tables. *)
let swap_symmetry table =
  let ot = Rcons_spec.Finite_type.of_table table in
  match ot with
  | Rcons_spec.Object_type.Pack (module T) ->
      let ops = T.update_ops in
      let q0 = List.hd T.candidate_initial_states in
      List.for_all
        (fun o1 ->
          List.for_all
            (fun o2 ->
              let c1 = Recording.check_candidate (module T) ~q0 ~ops_a:[ o1 ] ~ops_b:[ o2 ] in
              let c2 = Recording.check_candidate (module T) ~q0 ~ops_a:[ o2 ] ~ops_b:[ o1 ] in
              Option.is_some c1 = Option.is_some c2)
            ops)
        ops

let suite =
  [
    mk_test "Observation 5: recording => discerning" obs5;
    mk_test "Observation 6: recording downward closed" obs6_recording_monotone;
    mk_test "discerning downward closed" discerning_monotone;
    mk_test ~count:40 "Theorem 16: n-discerning => (n-2)-recording" thm16;
    mk_test "Proposition 18: 3-discerning => 2-recording" prop18;
    mk_test ~count:40 "Corollary 17 shape: d - 2 <= r <= d" corollary17_shape;
    mk_test "recording witnesses self-validate" witnesses_validate;
    mk_test "2-recording is team-swap symmetric" swap_symmetry;
  ]
