(* Tests of the Q_X and R_{X,j} set computations (Definitions 2 and 4)
   against hand-computed values on small types. *)

open Rcons_spec
open Rcons_check

(* Hand-computed Q sets for S_3 with the canonical assignment of
   Proposition 21: q0 = (B,0), team A = {op_A}, team B = {op_B, op_B}.
   Q_A = {(A,0), (A,1), (A,2)} and Q_B = {(B,0), (B,1), (B,2)}. *)
let test_q_sets_s3 () =
  match Sn.make 3 with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let opa, opb =
        match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops"
      in
      let q0 = List.hd T.candidate_initial_states in
      let ms_a = S.multiset_of_list [ opa ] and ms_b = S.multiset_of_list [ opb; opb ] in
      let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
      let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
      Alcotest.(check int) "|Q_A| = 3" 3 (S.State_set.cardinal q_a);
      Alcotest.(check int) "|Q_B| = 3" 3 (S.State_set.cardinal q_b);
      Alcotest.(check bool) "disjoint" true S.State_set.(is_empty (inter q_a q_b));
      Alcotest.(check bool) "q0 in Q_B (wrap via op_B then op_A)" true (S.State_set.mem q0 q_b);
      Alcotest.(check bool) "q0 not in Q_A" false (S.State_set.mem q0 q_a)

(* Sticky bit, one process per team with different values:
   Q_A = {0-stuck}, Q_B = {1-stuck}. *)
let test_q_sets_sticky () =
  match Sticky_bit.t with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let q0 = List.hd T.candidate_initial_states in
      let s0, s1 = match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops" in
      let ms_a = S.multiset_of_list [ s0 ] and ms_b = S.multiset_of_list [ s1 ] in
      let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
      let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
      Alcotest.(check int) "|Q_A| = 1" 1 (S.State_set.cardinal q_a);
      Alcotest.(check int) "|Q_B| = 1" 1 (S.State_set.cardinal q_b);
      Alcotest.(check bool) "disjoint" true S.State_set.(is_empty (inter q_a q_b))

(* The 2-recording witness for the readable stack discovered during
   development: q0 = [0], team A = {push 1}, team B = {pop}.
   Q_A = {[1,0], [0]} and Q_B = {[], [1]}. *)
let test_q_sets_stack_witness () =
  let (module T) = Stack.spec ~domain:2 ~readable:true in
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list [ Stack.Push 1 ] and ms_b = S.multiset_of_list [ Stack.Pop ] in
  let q_a = S.reachable ~q0:[ 0 ] ~first:ms_a ~other:ms_b in
  let q_b = S.reachable ~q0:[ 0 ] ~first:ms_b ~other:ms_a in
  Alcotest.(check bool) "[1;0] in Q_A" true (S.State_set.mem [ 1; 0 ] q_a);
  Alcotest.(check bool) "[0] in Q_A (pop after push returns to q0)" true (S.State_set.mem [ 0 ] q_a);
  Alcotest.(check bool) "[] in Q_B" true (S.State_set.mem [] q_b);
  Alcotest.(check bool) "[1] in Q_B" true (S.State_set.mem [ 1 ] q_b);
  Alcotest.(check int) "|Q_A| = 2" 2 (S.State_set.cardinal q_a);
  Alcotest.(check int) "|Q_B| = 2" 2 (S.State_set.cardinal q_b)

(* Multiset grouping. *)
let test_multiset_of_list () =
  match Sn.make 3 with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let opa, opb = match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops" in
      let ms = S.multiset_of_list [ opb; opa; opb ] in
      Alcotest.(check int) "two distinct ops" 2 (Array.length ms.S.ops);
      Alcotest.(check int) "total 3" 3 (S.total ms)

(* R-sets for test-and-set, hand-computed in the development notes:
   with both processes assigned TAS from q0 = false,
   R_{A, p_A} = {(false, true)}  (p_A goes first, possibly followed by B)
   R_{B, p_A} = {(true, true)}   (B went first, so A's TAS returns true) *)
let test_r_sets_tas () =
  match Test_and_set.t with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let q0 = List.hd T.candidate_initial_states in
      let tas = List.hd T.update_ops in
      let ms = S.multiset_of_list [ tas ] in
      let r_a =
        S.responses ~q0 ~team_a:ms ~team_b:ms ~first:Team.A ~tracked_team:Team.A
          ~tracked_op:tas
      in
      let r_b =
        S.responses ~q0 ~team_a:ms ~team_b:ms ~first:Team.B ~tracked_team:Team.A
          ~tracked_op:tas
      in
      Alcotest.(check int) "|R_A| = 1" 1 (S.Pair_set.cardinal r_a);
      Alcotest.(check int) "|R_B| = 1" 1 (S.Pair_set.cardinal r_b);
      Alcotest.(check bool) "disjoint" true S.Pair_set.(is_empty (inter r_a r_b))

(* R-sets for the register: writes overwrite, so the tracked write's
   response (unit) and the possible final states overlap across teams. *)
let test_r_sets_register_overlap () =
  match Register.default with
  | Object_type.Pack (module T) -> (
      match T.update_ops with
      | [ w0; w1 ] ->
          let module S = Search.Make (T) in
          let q0 = List.hd T.candidate_initial_states in
          let ms_a = S.multiset_of_list [ w0 ] and ms_b = S.multiset_of_list [ w1 ] in
          let r_a =
            S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.A ~tracked_team:Team.A
              ~tracked_op:w0
          in
          let r_b =
            S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.B ~tracked_team:Team.A
              ~tracked_op:w0
          in
          Alcotest.(check bool) "R-sets overlap for a register" false
            S.Pair_set.(is_empty (inter r_a r_b))
      | _ -> Alcotest.fail "register universe")

(* The tracked instance must belong to its declared team. *)
let test_responses_rejects_missing_tracked () =
  match Sticky_bit.t with
  | Object_type.Pack (module T) -> (
      match T.update_ops with
      | [ s0; s1 ] ->
          let module S = Search.Make (T) in
          let q0 = List.hd T.candidate_initial_states in
          let ms_a = S.multiset_of_list [ s0 ] and ms_b = S.multiset_of_list [ s0 ] in
          Alcotest.check_raises "tracked not in team"
            (Invalid_argument "Search.responses: tracked operation not in its team") (fun () ->
              ignore
                (S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.A
                   ~tracked_team:Team.B ~tracked_op:s1))
      | _ -> Alcotest.fail "ops")

(* Q_X is prefix-closed: every state reachable in k steps is reachable in
   <= k steps; spot-check that intermediate states are present. *)
let test_q_prefix_closed () =
  let (module T) = Stack.spec ~domain:2 ~readable:true in
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list [ Stack.Push 0; Stack.Push 1 ] in
  let ms_b = S.multiset_of_list [ Stack.Push 0 ] in
  let q_a = S.reachable ~q0:[] ~first:ms_a ~other:ms_b in
  (* one-step states must be present alongside deeper ones *)
  Alcotest.(check bool) "[0] present" true (S.State_set.mem [ 0 ] q_a);
  Alcotest.(check bool) "[1] present" true (S.State_set.mem [ 1 ] q_a);
  Alcotest.(check bool) "[0;1] present" true (S.State_set.mem [ 0; 1 ] q_a);
  (* q0 itself is never in Q_X unless re-reached by updates *)
  Alcotest.(check bool) "q0 = [] not reachable with pushes only" false (S.State_set.mem [] q_a)

let suite =
  [
    Alcotest.test_case "Q sets for S_3 (hand-computed)" `Quick test_q_sets_s3;
    Alcotest.test_case "Q sets for sticky bit" `Quick test_q_sets_sticky;
    Alcotest.test_case "Q sets: readable-stack witness" `Quick test_q_sets_stack_witness;
    Alcotest.test_case "multiset grouping" `Quick test_multiset_of_list;
    Alcotest.test_case "R sets for TAS (hand-computed)" `Quick test_r_sets_tas;
    Alcotest.test_case "R sets overlap for register" `Quick test_r_sets_register_overlap;
    Alcotest.test_case "responses rejects missing tracked op" `Quick
      test_responses_rejects_missing_tracked;
    Alcotest.test_case "Q sets are prefix-closed" `Quick test_q_prefix_closed;
  ]
