(* Tests of the crash-aware correctness conditions (Section 4): strict
   vs recoverable linearizability, including the paper's claim that
   without volatile shared memory the universal construction achieves
   only the weaker condition. *)

open Rcons_history

type op = Inc | Get

let counter_spec : (int, op, int) Linearizability.spec =
  {
    init = 0;
    apply = (fun s op -> match op with Inc -> (s + 1, s + 1) | Get -> (s, s));
    equal_resp = ( = );
  }

let build script =
  let h = History.create () in
  let tags = Hashtbl.create 8 in
  List.iter
    (function
      | `Inv (pid, key, op) -> Hashtbl.replace tags key (History.invoke h ~pid op)
      | `Res (pid, key, resp) -> History.respond h ~pid ~tag:(Hashtbl.find tags key) resp
      | `Crash pid -> History.crash h ~pid)
    script;
  h

(* An operation completed by recovery AFTER observable later activity:
   recoverably linearizable, NOT strictly linearizable.  p0's Inc is
   pending at its crash; p1's Get = 0 responds after the crash, forcing
   the Inc after the Get in real... no: the Get's 0 allows Inc later --
   strictness instead requires the Inc before the crash, and the Get
   completing strictly after the crash must then see 1. *)
let test_strict_rejects_post_crash_effect () =
  let h =
    build
      [
        `Inv (0, "i", Inc);
        `Crash 0;
        `Inv (1, "g", Get);
        `Res (1, "g", 0);
        `Res (0, "i", 1);
        (* recovery completed the Inc after the Get observed 0 *)
      ]
  in
  Alcotest.(check bool) "recoverable" true (Conditions.recoverably_linearizable counter_spec h);
  Alcotest.(check bool) "not strict" false (Conditions.strictly_linearizable counter_spec h)

let test_strict_accepts_pre_crash_effect () =
  let h =
    build
      [
        `Inv (0, "i", Inc);
        `Crash 0;
        `Inv (1, "g", Get);
        `Res (1, "g", 1);
        (* the Inc took effect before the crash; recovery just returns it *)
        `Res (0, "i", 1);
      ]
  in
  let v = Conditions.classify counter_spec h in
  Alcotest.(check bool) "recoverable" true v.Conditions.recoverable;
  Alcotest.(check bool) "strict" true v.Conditions.strict

let test_strict_equals_plain_without_crashes () =
  let h =
    build
      [ `Inv (0, "a", Inc); `Inv (1, "b", Get); `Res (1, "b", 1); `Res (0, "a", 1) ]
  in
  Alcotest.(check bool) "plain" true (Conditions.recoverably_linearizable counter_spec h);
  Alcotest.(check bool) "strict too" true (Conditions.strictly_linearizable counter_spec h)

let test_strict_operations_tighten () =
  let h = build [ `Inv (0, "i", Inc); `Crash 0; `Res (0, "i", 1) ] in
  match Conditions.strict_operations h with
  | [ op ] -> Alcotest.(check int) "deadline is the crash index" 1 op.History.res
  | ops -> Alcotest.fail (Printf.sprintf "expected 1 op, got %d" (List.length ops))

let test_crash_after_response_irrelevant () =
  (* a crash after the operation completed does not tighten it *)
  let h = build [ `Inv (0, "i", Inc); `Res (0, "i", 1); `Crash 0 ] in
  match Conditions.strict_operations h with
  | [ op ] -> Alcotest.(check int) "deadline is the response" 1 op.History.res
  | _ -> Alcotest.fail "expected 1 op"

(* THE PAPER'S CLAIM, exhibited on the real construction: drive
   RUniversal so that p0 announces an Incr and crashes before it is
   appended; p1 then appends p0's operation via helping, observes its
   effect, and only later p0's recovery completes the invocation.  The
   recorded history is recoverably linearizable (always) but not
   strictly linearizable: the Incr's effect became visible after p0's
   crash. *)
let test_runiversal_not_strict () =
  let open Rcons_runtime in
  let found_witness = ref false in
  (* try a few controlled schedules: let p0 take k steps (announce but do
     not finish), crash it, run p1 to completion, then finish p0 *)
  let k = ref 3 in
  while (not !found_witness) && !k < 24 do
    let history = Rcons_history.History.create () in
    let u = Rcons_universal.Runiversal.create ~history ~n:2 Rcons_universal.Derived.counter in
    let runner = Rcons_universal.Script.create u ~n:2 ~max_ops:2 in
    let scripts =
      [|
        [| Rcons_universal.Derived.Incr |];
        [| Rcons_universal.Derived.Incr; Rcons_universal.Derived.Get |];
      |]
    in
    let t = Sim.create ~n:2 (fun pid () -> Rcons_universal.Script.run runner pid scripts.(pid)) in
    for _ = 1 to !k do
      if not (Sim.finished t 0) then ignore (Sim.step_proc t 0)
    done;
    Sim.crash t 0;
    (* the simulator does not know about the high-level history; record
       the crash marker that the strictness analysis keys on *)
    Rcons_history.History.crash history ~pid:0;
    let guard = ref 0 in
    while (not (Sim.finished t 1)) && !guard < 10_000 do
      ignore (Sim.step_proc t 1);
      incr guard
    done;
    Drivers.round_robin t;
    let spec = Rcons_universal.Derived.lin_spec Rcons_universal.Derived.counter in
    let v = Rcons_history.Conditions.classify spec history in
    Alcotest.(check bool) "always recoverably linearizable" true v.Rcons_history.Conditions.recoverable;
    if not v.Rcons_history.Conditions.strict then found_witness := true;
    incr k
  done;
  Alcotest.(check bool)
    "some schedule witnesses recoverable-but-not-strict (Section 4's claim)" true !found_witness

let suite =
  [
    Alcotest.test_case "strict rejects post-crash effects" `Quick
      test_strict_rejects_post_crash_effect;
    Alcotest.test_case "strict accepts pre-crash effects" `Quick test_strict_accepts_pre_crash_effect;
    Alcotest.test_case "strict = plain without crashes" `Quick test_strict_equals_plain_without_crashes;
    Alcotest.test_case "strict_operations tighten deadlines" `Quick test_strict_operations_tighten;
    Alcotest.test_case "crash after response irrelevant" `Quick test_crash_after_response_irrelevant;
    Alcotest.test_case "RUniversal: recoverable but NOT strict (Section 4)" `Quick
      test_runiversal_not_strict;
  ]
