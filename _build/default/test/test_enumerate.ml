(* Tests for the combinatorial enumeration helpers used by the property
   checkers. *)

open Rcons_check

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
  go 1 1

let test_multiset_counts () =
  (* |multisets k over m elements| = C(m + k - 1, k) *)
  List.iter
    (fun (k, m) ->
      let universe = List.init m Fun.id in
      Alcotest.(check int)
        (Printf.sprintf "count k=%d m=%d" k m)
        (binomial (m + k - 1) k)
        (List.length (Enumerate.multisets k universe)))
    [ (1, 1); (2, 2); (3, 2); (2, 3); (4, 3); (5, 2) ]

let test_multisets_are_multisets () =
  let ms = Enumerate.multisets 3 [ 0; 1 ] in
  List.iter
    (fun m -> Alcotest.(check int) "size 3" 3 (List.length m))
    ms;
  (* no duplicates among the multisets themselves *)
  let canon = List.map (List.sort compare) ms in
  Alcotest.(check int) "all distinct" (List.length canon)
    (List.length (List.sort_uniq compare canon))

let test_multisets_empty_universe () =
  Alcotest.(check int) "k=0 over empty" 1 (List.length (Enumerate.multisets 0 []));
  Alcotest.(check int) "k>0 over empty" 0 (List.length (Enumerate.multisets 2 []))

let test_team_splits () =
  Alcotest.(check (list (pair int int))) "n=2" [ (1, 1) ] (Enumerate.team_splits 2);
  Alcotest.(check (list (pair int int))) "n=5" [ (1, 4); (2, 3) ] (Enumerate.team_splits 5);
  Alcotest.(check (list (pair int int))) "n=6" [ (1, 5); (2, 4); (3, 3) ] (Enumerate.team_splits 6)

let test_splits_cover_n () =
  List.iter
    (fun n ->
      List.iter
        (fun (a, b) ->
          Alcotest.(check int) "a + b = n" n (a + b);
          Alcotest.(check bool) "both non-empty, a <= b" true (a >= 1 && a <= b))
        (Enumerate.team_splits n))
    [ 2; 3; 4; 7; 10 ]

let test_pairs () =
  Alcotest.(check int) "product size" 6 (List.length (Enumerate.pairs [ 1; 2 ] [ 3; 4; 5 ]));
  Alcotest.(check (list (pair int int))) "order" [ (1, 3); (1, 4) ] (Enumerate.pairs [ 1 ] [ 3; 4 ])

let suite =
  [
    Alcotest.test_case "multiset counts (stars and bars)" `Quick test_multiset_counts;
    Alcotest.test_case "multisets have the right size, no dups" `Quick test_multisets_are_multisets;
    Alcotest.test_case "multisets over empty universe" `Quick test_multisets_empty_universe;
    Alcotest.test_case "team splits" `Quick test_team_splits;
    Alcotest.test_case "splits cover n" `Quick test_splits_cover_n;
    Alcotest.test_case "pairs" `Quick test_pairs;
  ]
