(* Tests of history recording and the linearizability checker, on
   hand-built histories with known verdicts. *)

open Rcons_history

type op = Inc | Get

let counter_spec : (int, op, int) Linearizability.spec =
  {
    init = 0;
    apply = (fun s op -> match op with Inc -> (s + 1, s + 1) | Get -> (s, s));
    equal_resp = ( = );
  }

(* Build a history from a script of events. *)
let build script =
  let h = History.create () in
  let tags = Hashtbl.create 8 in
  List.iter
    (function
      | `Inv (pid, key, op) -> Hashtbl.replace tags key (History.invoke h ~pid op)
      | `Res (pid, key, resp) -> History.respond h ~pid ~tag:(Hashtbl.find tags key) resp
      | `Crash pid -> History.crash h ~pid)
    script;
  h

let check_lin name expected script =
  Alcotest.(check bool) name expected (Linearizability.check_history counter_spec (build script))

let test_sequential_good () =
  check_lin "inc then get" true
    [ `Inv (0, "a", Inc); `Res (0, "a", 1); `Inv (0, "b", Get); `Res (0, "b", 1) ]

let test_sequential_bad_response () =
  check_lin "get returns wrong value" false
    [ `Inv (0, "a", Inc); `Res (0, "a", 1); `Inv (0, "b", Get); `Res (0, "b", 0) ]

let test_concurrent_reorder_ok () =
  (* overlapping inc and get: get may linearize before or after *)
  check_lin "overlap allows 0" true
    [ `Inv (0, "a", Inc); `Inv (1, "b", Get); `Res (1, "b", 0); `Res (0, "a", 1) ];
  check_lin "overlap allows 1" true
    [ `Inv (0, "a", Inc); `Inv (1, "b", Get); `Res (1, "b", 1); `Res (0, "a", 1) ]

let test_real_time_order_enforced () =
  (* get completing strictly after inc completed must see the increment *)
  check_lin "stale read rejected" false
    [ `Inv (0, "a", Inc); `Res (0, "a", 1); `Inv (1, "b", Get); `Res (1, "b", 0) ]

let test_two_incs () =
  check_lin "two incs return 1 and 2 in some order" true
    [ `Inv (0, "a", Inc); `Inv (1, "b", Inc); `Res (0, "a", 2); `Res (1, "b", 1) ];
  check_lin "both returning 1 impossible" false
    [ `Inv (0, "a", Inc); `Inv (1, "b", Inc); `Res (0, "a", 1); `Res (1, "b", 1) ]

let test_pending_may_take_effect () =
  (* a pending inc (no response: the process crashed) may explain a get of 1 *)
  check_lin "pending inc explains get 1" true
    [ `Inv (0, "a", Inc); `Crash 0; `Inv (1, "b", Get); `Res (1, "b", 1) ]

let test_pending_may_be_dropped () =
  check_lin "pending inc may also never happen" true
    [ `Inv (0, "a", Inc); `Crash 0; `Inv (1, "b", Get); `Res (1, "b", 0) ]

let test_pending_cannot_double () =
  (* one pending inc cannot explain two increments *)
  check_lin "pending inc linearized at most once" false
    [
      `Inv (0, "a", Inc);
      `Crash 0;
      `Inv (1, "b", Get);
      `Res (1, "b", 1);
      `Inv (1, "c", Get);
      `Res (1, "c", 2);
    ]

let test_crash_closed_operation () =
  (* an operation interrupted by a crash and completed on recovery appears
     as one operation whose response arrives late; it must take effect
     exactly once *)
  check_lin "crash-closed op counted once" true
    [
      `Inv (0, "a", Inc);
      `Crash 0;
      `Inv (1, "b", Get);
      `Res (1, "b", 0);
      `Res (0, "a", 1);
      `Inv (1, "c", Get);
      `Res (1, "c", 1);
    ]

let test_operations_extraction () =
  let h =
    build [ `Inv (0, "a", Inc); `Inv (1, "b", Get); `Res (0, "a", 1); `Crash 1 ]
  in
  let ops = History.operations h in
  Alcotest.(check int) "two operations" 2 (List.length ops);
  let pending = List.filter (fun (o : (op, int) History.operation) -> o.resp = None) ops in
  Alcotest.(check int) "one pending" 1 (List.length pending);
  Alcotest.(check int) "crash count" 1 (History.num_crashes h)

let test_response_without_invocation_rejected () =
  let h = History.create () in
  History.respond h ~pid:0 ~tag:99 1;
  Alcotest.check_raises "rejects orphan response"
    (Invalid_argument "History.operations: response without invocation") (fun () ->
      ignore (History.operations h))

let test_empty_history_linearizable () =
  Alcotest.(check bool) "empty" true (Linearizability.check counter_spec [])

let test_too_many_operations_rejected () =
  let ops =
    List.init 63 (fun i ->
        {
          History.op_pid = 0;
          op_tag = i;
          op = Inc;
          resp = Some (i + 1);
          inv = 2 * i;
          res = (2 * i) + 1;
        })
  in
  Alcotest.check_raises "63 ops rejected"
    (Invalid_argument "Linearizability.check: more than 62 operations") (fun () ->
      ignore (Linearizability.check counter_spec ops))

(* A register spec exercises response equality on a different shape. *)
type reg_op = Write of int | Read

let reg_spec : (int, reg_op, int option) Linearizability.spec =
  {
    init = 0;
    apply = (fun s op -> match op with Write v -> (v, None) | Read -> (s, Some s));
    equal_resp = ( = );
  }

let test_register_new_old_inversion () =
  (* classic non-linearizable register history: two sequential reads see
     the new value then the old value *)
  let ops =
    [
      { History.op_pid = 0; op_tag = 0; op = Write 1; resp = Some None; inv = 0; res = 7 };
      { History.op_pid = 1; op_tag = 1; op = Read; resp = Some (Some 1); inv = 1; res = 2 };
      { History.op_pid = 1; op_tag = 2; op = Read; resp = Some (Some 0); inv = 3; res = 4 };
    ]
  in
  Alcotest.(check bool) "new-old inversion rejected" false (Linearizability.check reg_spec ops)

let suite =
  [
    Alcotest.test_case "sequential good" `Quick test_sequential_good;
    Alcotest.test_case "sequential bad response" `Quick test_sequential_bad_response;
    Alcotest.test_case "concurrent reorder ok" `Quick test_concurrent_reorder_ok;
    Alcotest.test_case "real-time order enforced" `Quick test_real_time_order_enforced;
    Alcotest.test_case "two increments" `Quick test_two_incs;
    Alcotest.test_case "pending op may take effect" `Quick test_pending_may_take_effect;
    Alcotest.test_case "pending op may be dropped" `Quick test_pending_may_be_dropped;
    Alcotest.test_case "pending op linearized at most once" `Quick test_pending_cannot_double;
    Alcotest.test_case "crash-closed op counted once" `Quick test_crash_closed_operation;
    Alcotest.test_case "operation extraction" `Quick test_operations_extraction;
    Alcotest.test_case "orphan response rejected" `Quick test_response_without_invocation_rejected;
    Alcotest.test_case "empty history" `Quick test_empty_history_linearizable;
    Alcotest.test_case "operation count cap" `Quick test_too_many_operations_rejected;
    Alcotest.test_case "register new-old inversion" `Quick test_register_new_old_inversion;
  ]
