(* Tests of the Appendix H / Figure 8 impossibility machinery
   (experiment E8). *)

open Rcons_spec
open Rcons_valency

let stack_t = Stack.spec ~domain:2 ~readable:false
let canon = Impossibility.strip_common_affixes

let classify_stack ?crash_budget q o1 o2 =
  let (module T) = stack_t in
  Pair_class.classify (module T) ~canon ?crash_budget q o1 o2

(* --- individual Figure 8 cases --- *)

let test_pop_pop_commutes () =
  (* Figure 8(a) *)
  match classify_stack [ 0; 1 ] Stack.Pop Stack.Pop with
  | Pair_class.Commute -> ()
  | k -> Alcotest.fail (Format.asprintf "expected commute, got %a" Pair_class.pp_kind k)

let test_push_pop_empty_overwrites () =
  (* Figure 8(b): on the empty stack, push(v) overwrites pop *)
  match classify_stack [] (Stack.Push 0) Stack.Pop with
  | Pair_class.Overwrite `Op1_overwrites -> ()
  | k -> Alcotest.fail (Format.asprintf "expected overwrite, got %a" Pair_class.pp_kind k)

let test_push_pop_nonempty_crash_confined () =
  (* Figure 8(c): one solo pop converges the two extensions; one crash *)
  match classify_stack [ 1 ] (Stack.Push 0) Stack.Pop with
  | Pair_class.Crash_confined _ -> ()
  | k -> Alcotest.fail (Format.asprintf "expected crash-confined, got %a" Pair_class.pp_kind k)

let test_push_push_needs_two_crashes () =
  (* Figure 8(f): the two pushed elements differ in order; popping them
     diverges twice, so the argument consumes two crashes *)
  match classify_stack [] (Stack.Push 0) (Stack.Push 1) with
  | Pair_class.Crash_confined { crashes; _ } ->
      Alcotest.(check bool) "at least two crashes" true (crashes >= 2)
  | k -> Alcotest.fail (Format.asprintf "expected crash-confined, got %a" Pair_class.pp_kind k)

let test_same_push_commutes () =
  match classify_stack [ 0 ] (Stack.Push 1) (Stack.Push 1) with
  | Pair_class.Commute -> ()
  | k -> Alcotest.fail (Format.asprintf "expected commute, got %a" Pair_class.pp_kind k)

(* --- full sweeps --- *)

let test_stack_fully_conclusive () =
  let r = Impossibility.analyse_stack () in
  Alcotest.(check bool) "rcons(stack) = 1" true r.Impossibility.conclusive;
  Alcotest.(check bool) "non-trivial sweep" true (List.length r.Impossibility.lines > 50)

let test_queue_fully_conclusive () =
  let r = Impossibility.analyse_queue () in
  Alcotest.(check bool) "rcons(queue) = 1" true r.Impossibility.conclusive

let test_tas_conclusive () =
  (* Golab showed rcons(TAS) = 1; our sweep agrees: the single TAS op
     commutes with itself *)
  let r = Impossibility.analyse Test_and_set.t in
  Alcotest.(check bool) "rcons(TAS) = 1" true r.Impossibility.conclusive

let test_swap_inconclusive () =
  (* the readable swap register permanently records the LAST updater, so
     a solo reader can always tell the two extensions apart: the sweep
     must stay inconclusive (whether 2-recording is necessary for
     2-process RC is the paper's open question, Section 5) *)
  let r = Impossibility.analyse Swap.default in
  Alcotest.(check bool) "readable swap must not classify" false r.Impossibility.conclusive

let test_flip_bit_conclusive () =
  let r = Impossibility.analyse Flip_bit.t in
  Alcotest.(check bool) "rcons(flip) = 1" true r.Impossibility.conclusive

let test_max_register_conclusive () =
  (* readable, cons = 2, yet the state is order-oblivious: all critical
     configurations commute, so rcons(max register) = 1 -- a readable
     type where the sweep settles the open [1,2] interval *)
  let r = Impossibility.analyse Max_register.default in
  Alcotest.(check bool) "rcons(max-reg) = 1" true r.Impossibility.conclusive

let test_fetch_add_conclusive () =
  let r = Impossibility.analyse Fetch_add.default in
  Alcotest.(check bool) "rcons(f&a) = 1" true r.Impossibility.conclusive

(* Types that DO solve 2-process RC must not classify: soundness of the
   whole approach depends on these staying inconclusive. *)
let test_sticky_inconclusive () =
  let r = Impossibility.analyse Sticky_bit.t in
  Alcotest.(check bool) "sticky bit must not classify" false r.Impossibility.conclusive

let test_cas_inconclusive () =
  let r = Impossibility.analyse Cas.default in
  Alcotest.(check bool) "CAS must not classify" false r.Impossibility.conclusive

let test_consensus_obj_inconclusive () =
  let r = Impossibility.analyse Consensus_obj.default in
  Alcotest.(check bool) "consensus object must not classify" false r.Impossibility.conclusive

let test_sn_inconclusive () =
  (* S_2 solves 2-process RC (Proposition 21) *)
  let r = Impossibility.analyse (Sn.make 2) in
  Alcotest.(check bool) "S_2 must not classify" false r.Impossibility.conclusive

(* Soundness cross-check over the catalogue: no type with a 2-recording
   witness AND readability may be fully conclusive. *)
let test_no_false_impossibility () =
  List.iter
    (fun e ->
      let ot = e.Catalogue.ot in
      if Object_type.readable ot && Rcons_check.Recording.is_recording ot 2 then begin
        let r = Impossibility.analyse ot in
        Alcotest.(check bool)
          (Object_type.name ot ^ " is RC-capable, must stay inconclusive")
          false r.Impossibility.conclusive
      end)
    Catalogue.all

(* --- canonicalization --- *)

let test_strip_common_affixes () =
  Alcotest.(check (pair (list int) (list int))) "prefix" ([ 1 ], [ 2 ])
    (canon [ 0; 1 ] [ 0; 2 ]);
  Alcotest.(check (pair (list int) (list int))) "suffix" ([ 1 ], [ 2 ])
    (canon [ 1; 5; 6 ] [ 2; 5; 6 ]);
  Alcotest.(check (pair (list int) (list int))) "both" ([ 1 ], [ 2 ])
    (canon [ 9; 1; 5 ] [ 9; 2; 5 ]);
  Alcotest.(check (pair (list int) (list int))) "equal lists vanish" ([], [])
    (canon [ 3; 4 ] [ 3; 4 ]);
  Alcotest.(check (pair (list int) (list int))) "swapped middle survives" ([ 1; 2 ], [ 2; 1 ])
    (canon [ 0; 1; 2; 3 ] [ 0; 2; 1; 3 ])

let test_crash_budget_zero_strict () =
  (* with no crash budget, only response-equal confinement is accepted:
     push/pop on a non-empty stack diverges at the convergence pop, so it
     needs at least one crash *)
  match classify_stack ~crash_budget:0 [ 1 ] (Stack.Push 0) Stack.Pop with
  | Pair_class.Inconclusive -> ()
  | k -> Alcotest.fail (Format.asprintf "expected inconclusive at budget 0, got %a" Pair_class.pp_kind k)

let test_reachable_states_grow_with_depth () =
  let (module T) = stack_t in
  let s2 = Impossibility.reachable_states (module T) ~state_depth:2 in
  let s3 = Impossibility.reachable_states (module T) ~state_depth:3 in
  Alcotest.(check bool) "monotone" true (List.length s3 > List.length s2)

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_summary_format () =
  let r = Impossibility.analyse_stack () in
  let s = Format.asprintf "%a" Impossibility.summary r in
  Alcotest.(check bool) "mentions conclusion" true (contains_substring s "rcons = 1")

let suite =
  [
    Alcotest.test_case "Fig 8a: pop/pop commute" `Quick test_pop_pop_commutes;
    Alcotest.test_case "Fig 8b: push overwrites pop on empty" `Quick test_push_pop_empty_overwrites;
    Alcotest.test_case "Fig 8c: push/pop crash-confined" `Quick test_push_pop_nonempty_crash_confined;
    Alcotest.test_case "Fig 8f: push/push needs two crashes" `Quick test_push_push_needs_two_crashes;
    Alcotest.test_case "same push commutes" `Quick test_same_push_commutes;
    Alcotest.test_case "stack sweep conclusive (rcons = 1)" `Quick test_stack_fully_conclusive;
    Alcotest.test_case "queue sweep conclusive (rcons = 1)" `Quick test_queue_fully_conclusive;
    Alcotest.test_case "TAS sweep conclusive" `Quick test_tas_conclusive;
    Alcotest.test_case "readable swap stays inconclusive" `Quick test_swap_inconclusive;
    Alcotest.test_case "flip bit sweep conclusive" `Quick test_flip_bit_conclusive;
    Alcotest.test_case "max register sweep conclusive" `Quick test_max_register_conclusive;
    Alcotest.test_case "fetch&add sweep conclusive" `Quick test_fetch_add_conclusive;
    Alcotest.test_case "sticky bit stays inconclusive" `Quick test_sticky_inconclusive;
    Alcotest.test_case "CAS stays inconclusive" `Quick test_cas_inconclusive;
    Alcotest.test_case "consensus object stays inconclusive" `Quick test_consensus_obj_inconclusive;
    Alcotest.test_case "S_2 stays inconclusive" `Quick test_sn_inconclusive;
    Alcotest.test_case "no false impossibilities on the catalogue" `Quick test_no_false_impossibility;
    Alcotest.test_case "strip_common_affixes" `Quick test_strip_common_affixes;
    Alcotest.test_case "crash budget 0 is strict" `Quick test_crash_budget_zero_strict;
    Alcotest.test_case "reachable states grow with depth" `Quick test_reachable_states_grow_with_depth;
    Alcotest.test_case "summary format" `Quick test_summary_format;
  ]
