(* Tests of the critical-execution explorer (Theorem 14 / Figure 3
   exhibited): on correct 2-process consensus systems a critical
   execution exists within the bounded E_A-style space, the two
   next-step valencies differ, and both processes are poised on the SAME
   consensus object -- never on a register ("a standard argument shows
   that ... each process is about to perform an operation on the same
   object O, and that step cannot be a read"). *)

open Rcons_runtime
open Rcons_valency

let one_shot_mk () =
  let c = Rcons_algo.One_shot.create () in
  let outs = Array.make 2 None in
  let body pid () = outs.(pid) <- Some (Rcons_algo.One_shot.decide c pid) in
  (Sim.create ~n:2 body, fun () -> outs)

let fig2_mk () =
  let cert = Option.get (Rcons_check.Recording.witness (Rcons_spec.Sn.make 2) 2) in
  let tc = Rcons_algo.Team_consensus.create cert in
  let outs = Array.make 2 None in
  let body pid () =
    let team, slot = if pid = 0 then (Rcons_spec.Team.A, 0) else (Rcons_spec.Team.B, 0) in
    outs.(pid) <- Some (tc.Rcons_algo.Team_consensus.decide team slot pid)
  in
  (Sim.create ~n:2 body, fun () -> outs)

let sticky_fig2_mk () =
  let cert = Option.get (Rcons_check.Recording.witness Rcons_spec.Sticky_bit.t 2) in
  let tc = Rcons_algo.Team_consensus.create cert in
  let outs = Array.make 2 None in
  let body pid () =
    let team, slot = if pid = 0 then (Rcons_spec.Team.A, 0) else (Rcons_spec.Team.B, 0) in
    outs.(pid) <- Some (tc.Rcons_algo.Team_consensus.decide team slot pid)
  in
  (Sim.create ~n:2 body, fun () -> outs)

let check_criticality name report ~object_label =
  (* next-step valencies are singletons and differ *)
  (match report.Critical.decision_sets with
  | [ s0; s1 ] ->
      Alcotest.(check int) (name ^ ": p0 univalent") 1 (Critical.Int_set.cardinal s0);
      Alcotest.(check int) (name ^ ": p1 univalent") 1 (Critical.Int_set.cardinal s1);
      Alcotest.(check bool) (name ^ ": valencies differ") false
        (Critical.Int_set.equal s0 s1)
  | _ -> Alcotest.fail "expected 2 processes");
  (* both poised on the same consensus object, not a register *)
  List.iteri
    (fun i label ->
      match label with
      | Some l ->
          Alcotest.(check string) (Printf.sprintf "%s: p%d poised on O" name i) object_label l
      | None -> Alcotest.fail (name ^ ": missing label"))
    report.Critical.poised_on

let test_one_shot_critical () =
  let r = Critical.find_critical ~mk:one_shot_mk () in
  check_criticality "one-shot" r ~object_label:"one-shot-consensus"

let test_fig2_s2_critical () =
  let r = Critical.find_critical ~mk:fig2_mk () in
  check_criticality "fig2/S_2" r ~object_label:"S_2"

let test_fig2_sticky_critical () =
  let r = Critical.find_critical ~mk:sticky_fig2_mk () in
  check_criticality "fig2/sticky" r ~object_label:"sticky-bit"

let test_initial_configuration_bivalent () =
  (* distinct inputs make the initial configuration bivalent: p0 solo
     decides 0, p1 solo decides 1 (the existence argument in Thm 14) *)
  let s = Critical.decisions ~mk:one_shot_mk [] in
  Alcotest.(check int) "two reachable decisions" 2 (Critical.Int_set.cardinal s)

let test_univalent_system_rejected () =
  (* same inputs: only one decision reachable; no critical execution *)
  let mk () =
    let c = Rcons_algo.One_shot.create () in
    let outs = Array.make 2 None in
    let body pid () = outs.(pid) <- Some (Rcons_algo.One_shot.decide c 7) in
    (Sim.create ~n:2 body, fun () -> outs)
  in
  match Critical.find_critical ~mk () with
  | _ -> Alcotest.fail "expected Search_space_exhausted"
  | exception Critical.Search_space_exhausted _ -> ()

let test_decisions_monotone () =
  (* a prefix's decision set contains each extension's decision set *)
  let root = Critical.decisions ~mk:one_shot_mk [] in
  let after_p0 = Critical.decisions ~mk:one_shot_mk [ Critical.Step_of 0 ] in
  Alcotest.(check bool) "subset" true (Critical.Int_set.subset after_p0 root)

let suite =
  [
    Alcotest.test_case "one-shot: critical execution found" `Quick test_one_shot_critical;
    Alcotest.test_case "Figure 2 on S_2: poised on the S_2 object" `Quick test_fig2_s2_critical;
    Alcotest.test_case "Figure 2 on sticky bit: poised on the sticky bit" `Quick
      test_fig2_sticky_critical;
    Alcotest.test_case "initial configuration is bivalent" `Quick
      test_initial_configuration_bivalent;
    Alcotest.test_case "univalent system has no critical execution" `Quick
      test_univalent_system_rejected;
    Alcotest.test_case "decision sets are monotone" `Quick test_decisions_monotone;
  ]
