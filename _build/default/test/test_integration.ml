(* End-to-end integration tests: the full pipeline of the paper, from the
   decision procedure to a running algorithm to a model-checked execution,
   plus consistency between the static classification and the dynamic
   behaviour. *)

open Rcons_runtime

(* For every readable catalogue type with a 2-recording witness, derive
   the certificate and model-check the Figure 2 algorithm exhaustively
   (one crash); for every type without one, the valency sweep must be
   conclusive or the type non-readable.  Static and dynamic answers must
   cohere. *)
let test_static_dynamic_coherence () =
  List.iter
    (fun e ->
      let ot = e.Rcons_spec.Catalogue.ot in
      let name = Rcons_spec.Object_type.name ot in
      match Rcons_check.Recording.witness ot 2 with
      | Some cert when Rcons_spec.Object_type.readable ot ->
          let stats =
            Helpers.exhaustive
              ~mk:(fun () -> Helpers.team_system cert ~use_a:1 ~use_b:1 ())
              ~max_crashes:1
          in
          Alcotest.(check bool) (name ^ ": model-checked") true (stats.Explore.schedules > 0)
      | Some _ -> () (* recording but not readable: Theorem 8 inapplicable *)
      | None ->
          (* no 2-recording witness: the valency sweep may or may not
             settle rcons = 1 (a readable type can keep evidence alive
             without being 2-recording, e.g. swap), but whenever it IS
             conclusive it must not contradict an RC-capable type *)
          let r = Rcons_valency.Impossibility.analyse ot in
          if r.Rcons_valency.Impossibility.conclusive then
            Alcotest.(check bool)
              (name ^ ": conclusive only without a readable 2-recording witness")
              true
              ((not (Rcons_spec.Object_type.readable ot))
              || Rcons_check.Recording.witness ot 2 = None))
    Rcons_spec.Catalogue.all

(* Full pipeline on S_n for several n: witness -> validate -> tournament
   -> random adversary. *)
let test_sn_pipeline () =
  List.iter
    (fun n ->
      let ot = Rcons_spec.Sn.make n in
      let cert = Helpers.cert_of ot n in
      Alcotest.(check bool) "certificate validates" true
        (Rcons_check.Certificate.validate_recording cert);
      Helpers.random_sweep
        ~mk:(fun () -> Helpers.rc_system cert ~n ())
        ~iters:100 ~crash_prob:0.2 ~max_crashes:(2 * n) ~seed:n)
    [ 2; 3; 4; 5 ]

(* The toplevel facade. *)
let test_facade_solve_rc () =
  match Rcons.solve_rc Rcons_spec.Sticky_bit.t ~n:3 with
  | None -> Alcotest.fail "sticky bit must solve 3-process RC"
  | Some decide ->
      let inputs = [| 1; 2; 3 |] in
      let outs = Rcons_algo.Outputs.make ~inputs in
      let body pid () = Rcons_algo.Outputs.record outs pid (decide pid inputs.(pid)) in
      let t = Sim.create ~n:3 body in
      Drivers.round_robin t;
      Alcotest.(check bool) "agreement" true (Rcons_algo.Outputs.agreement_ok outs)

let test_facade_solve_rc_refuses_register () =
  Alcotest.(check bool) "register cannot solve 2-process RC" true
    (Rcons.solve_rc Rcons_spec.Register.default ~n:2 = None)

let test_facade_classify () =
  let r = Rcons.classify ~limit:3 Rcons_spec.Register.default in
  Alcotest.(check string) "name" "register(2)" r.Rcons_check.Classify.type_name

let test_facade_make_recoverable () =
  let u = Rcons.make_recoverable ~n:2 Rcons_universal.Derived.counter in
  let runner = Rcons_universal.Script.create u ~n:2 ~max_ops:2 in
  let t =
    Sim.create ~n:2 (fun pid () ->
        Rcons_universal.Script.run runner pid [| Rcons_universal.Derived.Incr; Rcons_universal.Derived.Get |])
  in
  Drivers.round_robin t;
  Alcotest.(check int) "4 ops applied" 4 (Rcons_universal.Runiversal.applied_count u)

(* T_n's gap, dynamically: T_4 is 2-recording, so 2 processes can solve RC
   with it (Figure 2 + certificate), even though rcons(T_4) < cons(T_4). *)
let test_tn_two_process_rc () =
  let cert = Helpers.cert_of (Rcons_spec.Tn.make 4) 2 in
  Helpers.random_sweep
    ~mk:(fun () -> Helpers.team_system cert ())
    ~iters:300 ~crash_prob:0.2 ~max_crashes:6 ~seed:44

(* Simultaneous-crash RC (Figure 4) built on RC instances that are
   themselves built from the Figure 2 algorithm: the deepest composition
   in the repository. *)
let test_deep_composition () =
  let n = 2 in
  let cert = Helpers.cert_of (Rcons_spec.Sn.make n) n in
  let make_consensus () =
    let decide = Rcons_algo.Tournament.recoverable_consensus cert ~n in
    { Rcons_algo.Simultaneous_rc.propose = decide }
  in
  let inputs = [| 41; 42 |] in
  let outputs = Rcons_algo.Outputs.make ~inputs in
  let rc = Rcons_algo.Simultaneous_rc.create ~n ~make_consensus in
  let body pid () =
    Rcons_algo.Outputs.record outputs pid (Rcons_algo.Simultaneous_rc.decide rc pid inputs.(pid))
  in
  let t = Sim.create ~n body in
  Drivers.simultaneous ~crash_at:[ 6; 21 ] t;
  Alcotest.(check bool) "agreement" true (Rcons_algo.Outputs.agreement_ok outputs);
  Alcotest.(check bool) "validity" true (Rcons_algo.Outputs.validity_ok outputs)

(* Theorem 22, experimentally: for a finite set of readable types, the
   recording level of the set as used by our algorithms is the max of the
   individual levels (each algorithm instance uses one object type plus
   registers), and rcons bounds combine accordingly. *)
let test_set_bounds_shape () =
  let types = [ Rcons_spec.Sn.make 3; Rcons_spec.Sn.make 4; Rcons_spec.Register.default ] in
  let lower =
    List.fold_left
      (fun acc ot ->
        match Rcons_check.Classify.max_recording ~limit:5 ot with
        | Rcons_check.Classify.Finite k -> max acc k
        | Rcons_check.Classify.At_least k -> max acc k)
      1 types
  in
  Alcotest.(check int) "max individual recording level" 4 lower;
  (* the set solves RC for [lower] processes: use the best type *)
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 4) 4 in
  Helpers.random_sweep
    ~mk:(fun () -> Helpers.rc_system cert ~n:4 ())
    ~iters:50 ~crash_prob:0.15 ~max_crashes:8 ~seed:91

let suite =
  [
    Alcotest.test_case "static/dynamic coherence over the catalogue" `Quick
      test_static_dynamic_coherence;
    Alcotest.test_case "S_n pipeline, n = 2..5" `Quick test_sn_pipeline;
    Alcotest.test_case "facade: solve_rc" `Quick test_facade_solve_rc;
    Alcotest.test_case "facade: solve_rc refuses register" `Quick test_facade_solve_rc_refuses_register;
    Alcotest.test_case "facade: classify" `Quick test_facade_classify;
    Alcotest.test_case "facade: make_recoverable" `Quick test_facade_make_recoverable;
    Alcotest.test_case "T_4 solves 2-process RC" `Quick test_tn_two_process_rc;
    Alcotest.test_case "deep composition: Fig 4 over Fig 2" `Quick test_deep_composition;
    Alcotest.test_case "Theorem 22 shape" `Quick test_set_bounds_shape;
  ]
