(* Unit tests for the small supporting surfaces: team labels, output
   logs, printers, and defensive argument checks. *)

open Rcons_spec

(* --- Team --- *)

let test_team_opposite () =
  Alcotest.(check bool) "A<->B" true (Team.opposite Team.A = Team.B);
  Alcotest.(check bool) "B<->A" true (Team.opposite Team.B = Team.A);
  Alcotest.(check string) "to_string" "A" (Team.to_string Team.A);
  Alcotest.(check string) "pp" "B" (Format.asprintf "%a" Team.pp Team.B)

(* --- Outputs --- *)

let test_outputs_agreement () =
  let o = Rcons_algo.Outputs.make ~inputs:[| 1; 2 |] in
  Alcotest.(check bool) "empty agrees" true (Rcons_algo.Outputs.agreement_ok o);
  Rcons_algo.Outputs.record o 0 1;
  Rcons_algo.Outputs.record o 1 1;
  Rcons_algo.Outputs.record o 0 1;
  Alcotest.(check bool) "all equal" true (Rcons_algo.Outputs.agreement_ok o);
  Rcons_algo.Outputs.record o 1 2;
  Alcotest.(check bool) "disagreement detected" false (Rcons_algo.Outputs.agreement_ok o)

let test_outputs_validity () =
  let o = Rcons_algo.Outputs.make ~inputs:[| 1; 2 |] in
  Rcons_algo.Outputs.record o 0 2;
  Alcotest.(check bool) "input value ok" true (Rcons_algo.Outputs.validity_ok o);
  Rcons_algo.Outputs.record o 1 7;
  Alcotest.(check bool) "invented value caught" false (Rcons_algo.Outputs.validity_ok o)

let test_outputs_self_agreement () =
  (* repeated outputs of ONE process must also agree: the RC agreement
     property explicitly covers multiple runs of the same process *)
  let o = Rcons_algo.Outputs.make ~inputs:[| 1 |] in
  Rcons_algo.Outputs.record o 0 1;
  Rcons_algo.Outputs.record o 0 1;
  Alcotest.(check bool) "same twice" true (Rcons_algo.Outputs.agreement_ok o);
  Alcotest.(check int) "all collects both" 2 (List.length (Rcons_algo.Outputs.all o));
  Alcotest.(check bool) "decided" true (Rcons_algo.Outputs.decided o 0)

let test_outputs_check_exn () =
  let o = Rcons_algo.Outputs.make ~inputs:[| 1; 2 |] in
  Rcons_algo.Outputs.record o 0 1;
  Rcons_algo.Outputs.record o 1 2;
  let messages = ref [] in
  Rcons_algo.Outputs.check_exn ~fail:(fun m -> messages := m :: !messages) o;
  Alcotest.(check (list string)) "agreement reported first" [ "agreement violated" ] !messages

(* --- printers --- *)

let test_certificate_printer () =
  let cert = Option.get (Rcons_check.Recording.witness (Sn.make 3) 3) in
  let s = Format.asprintf "%a" Rcons_check.Certificate.pp_recording cert in
  Alcotest.(check bool) "mentions the type" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 3 <= String.length s && (String.sub s i 3 = "S_3" || contains (i + 1))
    in
    contains 0)

let test_level_printers () =
  Alcotest.(check string) "finite" "3"
    (Format.asprintf "%a" Rcons_check.Classify.pp_level (Rcons_check.Classify.Finite 3));
  Alcotest.(check string) "at least" ">=5"
    (Format.asprintf "%a" Rcons_check.Classify.pp_level (Rcons_check.Classify.At_least 5))

let test_schedule_printer () =
  let s =
    Format.asprintf "%a" Rcons_runtime.Explore.pp_schedule
      [ Rcons_runtime.Explore.Step_choice 0; Rcons_runtime.Explore.Crash_choice 1 ]
  in
  Alcotest.(check string) "schedule" "step(p0); crash(p1)" s

let test_kind_printer () =
  Alcotest.(check string) "commute" "commute"
    (Format.asprintf "%a" Rcons_valency.Pair_class.pp_kind Rcons_valency.Pair_class.Commute);
  Alcotest.(check string) "inconclusive" "INCONCLUSIVE"
    (Format.asprintf "%a" Rcons_valency.Pair_class.pp_kind Rcons_valency.Pair_class.Inconclusive)

(* --- defensive checks --- *)

let test_max_level_rejects_bad_limit () =
  Alcotest.check_raises "limit 1" (Invalid_argument "Classify.max_level: limit must be >= 2")
    (fun () -> ignore (Rcons_check.Classify.max_level ~limit:1 (fun _ -> true)))

let test_one_shot_poll () =
  let open Rcons_runtime in
  let c = Rcons_algo.One_shot.create () in
  let seen = ref [] in
  let body _pid () =
    seen := Rcons_algo.One_shot.poll c :: !seen;
    ignore (Rcons_algo.One_shot.decide c 9);
    seen := Rcons_algo.One_shot.poll c :: !seen
  in
  let sim = Sim.create ~n:1 body in
  Drivers.round_robin sim;
  Alcotest.(check (list (option int))) "poll before/after" [ Some 9; None ] !seen;
  Alcotest.(check (option int)) "peek" (Some 9) (Rcons_algo.One_shot.peek c)

let test_one_shot_first_wins () =
  let open Rcons_runtime in
  let c = Rcons_algo.One_shot.create () in
  let outs = Array.make 2 0 in
  let body pid () = outs.(pid) <- Rcons_algo.One_shot.decide c (100 + pid) in
  let sim = Sim.create ~n:2 body in
  Drivers.round_robin sim;
  Alcotest.(check int) "agree" outs.(0) outs.(1);
  Alcotest.(check bool) "one of the proposals" true (outs.(0) = 100 || outs.(0) = 101)

(* --- stable input --- *)

let test_stable_input_single_writer () =
  let open Rcons_runtime in
  let regs = Rcons_algo.Stable_input.make 2 in
  let seen = ref [] in
  let body pid () =
    (* bind first: [a := b :: !a] would read [!a] before the suspending
       call and lose the concurrent update *)
    let v = Rcons_algo.Stable_input.fix regs pid (10 * (pid + 1)) in
    seen := v :: !seen
  in
  let sim = Sim.create ~n:2 body in
  Drivers.round_robin sim;
  Alcotest.(check bool) "each got its own" true
    (List.sort compare !seen = [ 10; 20 ])

let suite =
  [
    Alcotest.test_case "team labels" `Quick test_team_opposite;
    Alcotest.test_case "outputs: agreement" `Quick test_outputs_agreement;
    Alcotest.test_case "outputs: validity" `Quick test_outputs_validity;
    Alcotest.test_case "outputs: self agreement across runs" `Quick test_outputs_self_agreement;
    Alcotest.test_case "outputs: check_exn" `Quick test_outputs_check_exn;
    Alcotest.test_case "certificate printer" `Quick test_certificate_printer;
    Alcotest.test_case "level printers" `Quick test_level_printers;
    Alcotest.test_case "schedule printer" `Quick test_schedule_printer;
    Alcotest.test_case "kind printer" `Quick test_kind_printer;
    Alcotest.test_case "max_level rejects bad limit" `Quick test_max_level_rejects_bad_limit;
    Alcotest.test_case "one-shot: poll/peek" `Quick test_one_shot_poll;
    Alcotest.test_case "one-shot: first wins" `Quick test_one_shot_first_wins;
    Alcotest.test_case "stable input: single writer" `Quick test_stable_input_single_writer;
  ]
