(* Tests of the decision procedures for n-discerning and n-recording
   against the values known from the literature (see the catalogue), and
   of the derived cons/rcons bounds.  These are the headline checks of
   experiment E1: the checkers must place every classical type at its
   published level and reproduce Propositions 19 and 21. *)

open Rcons_spec
open Rcons_check

let level = Alcotest.testable Classify.pp_level Classify.equal_level

(* --- discerning levels of the classics --- *)

let test_register_not_2_discerning () =
  Alcotest.(check bool) "register" false (Discerning.is_discerning Register.default 2)

let test_tas_exactly_2_discerning () =
  Alcotest.(check bool) "2 yes" true (Discerning.is_discerning Test_and_set.t 2);
  Alcotest.(check bool) "3 no" false (Discerning.is_discerning Test_and_set.t 3)

let test_swap_exactly_2_discerning () =
  Alcotest.(check bool) "2 yes" true (Discerning.is_discerning Swap.default 2);
  Alcotest.(check bool) "3 no" false (Discerning.is_discerning Swap.default 3)

let test_fetch_add_exactly_2_discerning () =
  Alcotest.(check bool) "2 yes" true (Discerning.is_discerning Fetch_add.default 2);
  Alcotest.(check bool) "3 no" false (Discerning.is_discerning Fetch_add.default 3)

let test_flip_bit_levels () =
  Alcotest.(check bool) "flip 2-discerning" true (Discerning.is_discerning Flip_bit.t 2);
  Alcotest.(check bool) "flip not 3-discerning" false (Discerning.is_discerning Flip_bit.t 3);
  Alcotest.(check bool) "flip not 2-recording" false (Recording.is_recording Flip_bit.t 2)

let test_max_register_levels () =
  Alcotest.(check bool) "max-reg 2-discerning" true (Discerning.is_discerning Max_register.default 2);
  Alcotest.(check bool) "max-reg not 3-discerning" false
    (Discerning.is_discerning Max_register.default 3);
  Alcotest.(check bool) "max-reg not 2-recording" false
    (Recording.is_recording Max_register.default 2)

let test_sticky_discerning_high () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Discerning.is_discerning Sticky_bit.t n))
    [ 2; 3; 4; 5; 6 ]

let test_cas_discerning_high () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Discerning.is_discerning Cas.default n))
    [ 2; 3; 4; 5 ]

(* --- recording levels --- *)

let test_register_not_2_recording () =
  Alcotest.(check bool) "register" false (Recording.is_recording Register.default 2)

let test_tas_not_2_recording () =
  Alcotest.(check bool) "tas" false (Recording.is_recording Test_and_set.t 2)

let test_swap_not_2_recording () =
  Alcotest.(check bool) "swap" false (Recording.is_recording Swap.default 2)

let test_fetch_add_not_2_recording () =
  Alcotest.(check bool) "faa" false (Recording.is_recording Fetch_add.default 2)

let test_sticky_recording_high () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Recording.is_recording Sticky_bit.t n))
    [ 2; 3; 4; 5; 6 ]

let test_cas_recording_high () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Recording.is_recording Cas.default n))
    [ 2; 3; 4; 5 ]

(* The bare (non-readable) stack transition system is n-recording -- the
   bottom element records the first pusher -- readability, not the
   recording property, is what it lacks (see the stack module notes). *)
let test_stack_transition_system_recording () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Recording.is_recording Stack.default n))
    [ 2; 3; 4 ]

(* --- Proposition 19: T_n is n-discerning but not (n-1)-recording --- *)

let test_tn_levels () =
  List.iter
    (fun n ->
      let t = Tn.make n in
      Alcotest.(check bool) (Printf.sprintf "T_%d is %d-discerning" n n) true
        (Discerning.is_discerning t n);
      Alcotest.(check bool)
        (Printf.sprintf "T_%d is not %d-discerning" n (n + 1))
        false
        (Discerning.is_discerning t (n + 1));
      Alcotest.(check bool)
        (Printf.sprintf "T_%d is not %d-recording" n (n - 1))
        false
        (Recording.is_recording t (n - 1));
      (* Theorem 16 guarantees (n-2)-recording for n >= 4 *)
      if n >= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "T_%d is %d-recording" n (n - 2))
          true
          (Recording.is_recording t (n - 2)))
    [ 4; 5; 6 ]

(* --- Proposition 21: S_n is n-recording and not (n+1)-discerning --- *)

let test_sn_levels () =
  List.iter
    (fun n ->
      let t = Sn.make n in
      Alcotest.(check bool) (Printf.sprintf "S_%d is %d-recording" n n) true
        (Recording.is_recording t n);
      Alcotest.(check bool)
        (Printf.sprintf "S_%d is not %d-discerning" n (n + 1))
        false
        (Discerning.is_discerning t (n + 1)))
    [ 2; 3; 4; 5 ]

(* --- classify: levels --- *)

let test_classify_levels () =
  let expect name ot limit disc rec_ =
    let r = Classify.classify ~limit ot in
    Alcotest.check level (name ^ " discerning") disc r.Classify.discerning;
    Alcotest.check level (name ^ " recording") rec_ r.Classify.recording
  in
  expect "register" Register.default 4 (Classify.Finite 1) (Classify.Finite 1);
  expect "tas" Test_and_set.t 4 (Classify.Finite 2) (Classify.Finite 1);
  expect "swap" Swap.default 4 (Classify.Finite 2) (Classify.Finite 1);
  expect "sticky" Sticky_bit.t 5 (Classify.At_least 5) (Classify.At_least 5);
  expect "T_5" (Tn.make 5) 6 (Classify.Finite 5) (Classify.Finite 3);
  expect "S_4" (Sn.make 4) 5 (Classify.Finite 4) (Classify.Finite 4)

(* --- classify: bounds --- *)

let test_classify_bounds_register () =
  let r = Classify.classify ~limit:3 Register.default in
  Alcotest.(check bool) "cons exact 1" true (r.Classify.cons = Some { Classify.lower = 1; upper = Some 1 });
  Alcotest.(check bool) "rcons exact 1" true (r.Classify.rcons = Some { Classify.lower = 1; upper = Some 1 })

let test_classify_bounds_sn () =
  (* rcons(S_n) = cons(S_n) = n exactly (Proposition 21): the interval
     collapses because rcons <= cons. *)
  let r = Classify.classify ~limit:5 (Sn.make 4) in
  Alcotest.(check bool) "cons = 4" true (r.Classify.cons = Some { Classify.lower = 4; upper = Some 4 });
  Alcotest.(check bool) "rcons = 4" true (r.Classify.rcons = Some { Classify.lower = 4; upper = Some 4 })

let test_classify_bounds_tn () =
  (* rcons(T_n) in [n-2, n-1] < cons(T_n) = n (Corollary 20). *)
  let r = Classify.classify ~limit:6 (Tn.make 5) in
  Alcotest.(check bool) "cons = 5" true (r.Classify.cons = Some { Classify.lower = 5; upper = Some 5 });
  Alcotest.(check bool) "rcons = [3,4]" true
    (r.Classify.rcons = Some { Classify.lower = 3; upper = Some 4 })

let test_classify_non_readable_no_bounds () =
  let r = Classify.classify ~limit:3 Test_and_set.t in
  Alcotest.(check bool) "cons n/a" true (r.Classify.cons = None);
  Alcotest.(check bool) "rcons n/a" true (r.Classify.rcons = None)

(* --- certificates --- *)

let test_recording_witness_validates () =
  List.iter
    (fun (ot, n) ->
      match Recording.witness ot n with
      | None -> Alcotest.fail (Object_type.name ot ^ ": expected a witness")
      | Some cert ->
          Alcotest.(check bool)
            (Object_type.name ot ^ " certificate self-validates")
            true
            (Certificate.validate_recording cert))
    [
      (Sticky_bit.t, 2);
      (Sticky_bit.t, 4);
      (Cas.default, 3);
      (Sn.make 3, 3);
      (Sn.make 5, 5);
      (Stack.readable_variant, 3);
      (Consensus_obj.default, 4);
    ]

let test_recording_witness_team_sizes () =
  match Recording.witness (Sn.make 4) 4 with
  | None -> Alcotest.fail "S_4 must be 4-recording"
  | Some cert ->
      let a, b = Certificate.recording_teams cert in
      Alcotest.(check int) "teams cover n" 4 (a + b);
      Alcotest.(check bool) "both non-empty" true (a >= 1 && b >= 1)

let test_discerning_witness_shape () =
  match Discerning.witness Test_and_set.t 2 with
  | None -> Alcotest.fail "TAS must be 2-discerning"
  | Some (Certificate.Discerning (_, d)) ->
      Alcotest.(check int) "2 processes" 2 (Array.length d.Certificate.procs);
      Array.iteri
        (fun j _ ->
          Alcotest.(check bool)
            (Printf.sprintf "R_A(%d) and R_B(%d) disjoint" j j)
            true
            (List.for_all (fun p -> not (List.mem p d.Certificate.r_b.(j))) d.Certificate.r_a.(j)))
        d.Certificate.procs

let test_witness_rejects_n_below_2 () =
  Alcotest.check_raises "recording n=1" (Invalid_argument "Recording.witness: n must be >= 2")
    (fun () -> ignore (Recording.witness Sticky_bit.t 1));
  Alcotest.check_raises "discerning n=1" (Invalid_argument "Discerning.witness: n must be >= 2")
    (fun () -> ignore (Discerning.witness Sticky_bit.t 1))

(* --- set-level robustness (Theorem 22 interface) --- *)

let test_bounds_printer () =
  let s = Format.asprintf "%a" Classify.pp_bounds { Classify.lower = 2; upper = Some 3 } in
  Alcotest.(check string) "interval" "[2,3]" s;
  let s = Format.asprintf "%a" Classify.pp_bounds { Classify.lower = 4; upper = Some 4 } in
  Alcotest.(check string) "point" "4" s;
  let s = Format.asprintf "%a" Classify.pp_bounds { Classify.lower = 5; upper = None } in
  Alcotest.(check string) "at least" ">=5" s

let suite =
  [
    Alcotest.test_case "register not 2-discerning" `Quick test_register_not_2_discerning;
    Alcotest.test_case "TAS exactly 2-discerning" `Quick test_tas_exactly_2_discerning;
    Alcotest.test_case "swap exactly 2-discerning" `Quick test_swap_exactly_2_discerning;
    Alcotest.test_case "fetch&add exactly 2-discerning" `Quick test_fetch_add_exactly_2_discerning;
    Alcotest.test_case "flip bit levels" `Quick test_flip_bit_levels;
    Alcotest.test_case "max register levels" `Quick test_max_register_levels;
    Alcotest.test_case "sticky bit discerning for all tested n" `Quick test_sticky_discerning_high;
    Alcotest.test_case "CAS discerning for all tested n" `Quick test_cas_discerning_high;
    Alcotest.test_case "register not 2-recording" `Quick test_register_not_2_recording;
    Alcotest.test_case "TAS not 2-recording" `Quick test_tas_not_2_recording;
    Alcotest.test_case "swap not 2-recording" `Quick test_swap_not_2_recording;
    Alcotest.test_case "fetch&add not 2-recording" `Quick test_fetch_add_not_2_recording;
    Alcotest.test_case "sticky bit recording for all tested n" `Quick test_sticky_recording_high;
    Alcotest.test_case "CAS recording for all tested n" `Quick test_cas_recording_high;
    Alcotest.test_case "stack transition system is recording" `Quick
      test_stack_transition_system_recording;
    Alcotest.test_case "Prop 19: T_n levels" `Slow test_tn_levels;
    Alcotest.test_case "Prop 21: S_n levels" `Quick test_sn_levels;
    Alcotest.test_case "classify: levels" `Slow test_classify_levels;
    Alcotest.test_case "classify: register bounds" `Quick test_classify_bounds_register;
    Alcotest.test_case "classify: S_n bounds collapse" `Quick test_classify_bounds_sn;
    Alcotest.test_case "classify: T_n bounds gap" `Slow test_classify_bounds_tn;
    Alcotest.test_case "classify: non-readable types get no bounds" `Quick
      test_classify_non_readable_no_bounds;
    Alcotest.test_case "recording witnesses self-validate" `Quick test_recording_witness_validates;
    Alcotest.test_case "recording witness team sizes" `Quick test_recording_witness_team_sizes;
    Alcotest.test_case "discerning witness shape" `Quick test_discerning_witness_shape;
    Alcotest.test_case "witness rejects n < 2" `Quick test_witness_rejects_n_below_2;
    Alcotest.test_case "bounds printer" `Quick test_bounds_printer;
  ]
