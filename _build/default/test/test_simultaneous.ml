(* Tests of the Figure 4 algorithm: recoverable consensus under
   simultaneous crashes built from standard consensus instances
   (Theorem 1, experiment E4). *)

open Rcons_runtime
open Rcons_algo

let make_consensus () =
  let c = One_shot.create () in
  { Simultaneous_rc.propose = (fun _pid v -> One_shot.decide c v) }

let system ~n =
  let inputs = Array.init n (fun i -> (i + 1) * 10) in
  let outputs = Outputs.make ~inputs in
  let rc = Simultaneous_rc.create ~n ~make_consensus in
  let body pid () = Outputs.record outputs pid (Simultaneous_rc.decide rc pid inputs.(pid)) in
  let sim = Sim.create ~n body in
  (sim, outputs, rc)

let check outputs =
  Alcotest.(check bool) "agreement" true (Outputs.agreement_ok outputs);
  Alcotest.(check bool) "validity" true (Outputs.validity_ok outputs);
  Alcotest.(check bool) "all decided" true
    (Array.for_all (fun l -> l <> []) outputs.Outputs.outputs)

let test_no_crashes () =
  List.iter
    (fun n ->
      let sim, outputs, rc = system ~n in
      Drivers.round_robin sim;
      check outputs;
      Alcotest.(check int) (Printf.sprintf "n=%d one round suffices" n) 1
        (Simultaneous_rc.rounds_used rc))
    [ 1; 2; 3; 5 ]

let test_single_simultaneous_crash () =
  List.iter
    (fun crash_at ->
      let sim, outputs, _ = system ~n:3 in
      Drivers.simultaneous ~crash_at:[ crash_at ] sim;
      check outputs)
    [ 1; 2; 3; 5; 8; 13 ]

let test_repeated_simultaneous_crashes () =
  let sim, outputs, rc = system ~n:4 in
  Drivers.simultaneous ~crash_at:[ 3; 9; 17; 26; 40 ] sim;
  check outputs;
  Alcotest.(check bool) "multiple rounds consumed" true (Simultaneous_rc.rounds_used rc >= 2)

let test_rounds_grow_with_crashes () =
  (* the round count is the algorithm's space/time cost; it must grow at
     most linearly in the crash count and be >= 1 *)
  let rounds_for crashes =
    let sim, outputs, rc = system ~n:3 in
    let crash_at = List.init crashes (fun i -> 4 + (7 * i)) in
    Drivers.simultaneous ~crash_at sim;
    check outputs;
    Simultaneous_rc.rounds_used rc
  in
  let r0 = rounds_for 0 and r4 = rounds_for 4 in
  Alcotest.(check int) "no crashes, one round" 1 r0;
  Alcotest.(check bool) "crashes consume rounds" true (r4 >= r0);
  Alcotest.(check bool) "boundedly many rounds" true (r4 <= 6)

let test_every_process_may_crash_midway () =
  (* crash exactly when some processes are inside C_r.decide *)
  List.iter
    (fun seed ->
      let sim, outputs, _ = system ~n:4 in
      let crash_at = [ (seed mod 7) + 1; (seed mod 7) + 9 ] in
      Drivers.simultaneous ~crash_at sim;
      check outputs)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_pluggable_consensus_ruppert () =
  (* plug the Ruppert sticky-bit tournament in as C_r: the full paper
     stack (characterization -> certificate -> algorithm) as the
     consensus building block of Figure 4 *)
  let n = 3 in
  let cert = Helpers.disc_cert_of Rcons_spec.Sticky_bit.t n in
  let make_consensus () =
    let decide = Tournament.standard_consensus cert ~n in
    { Simultaneous_rc.propose = decide }
  in
  let inputs = [| 5; 6; 7 |] in
  let outputs = Outputs.make ~inputs in
  let rc = Simultaneous_rc.create ~n ~make_consensus in
  let body pid () = Outputs.record outputs pid (Simultaneous_rc.decide rc pid inputs.(pid)) in
  let sim = Sim.create ~n body in
  Drivers.simultaneous ~crash_at:[ 5; 19 ] sim;
  check outputs

let test_agreement_across_restart_outputs () =
  (* a process that decides, is wiped by a later simultaneous crash and
     re-runs must output the same value again *)
  let sim, outputs, _ = system ~n:2 in
  Drivers.round_robin sim;
  Sim.crash_all sim;
  Drivers.round_robin sim;
  check outputs;
  Array.iter
    (fun outs -> Alcotest.(check bool) "decided at least twice" true (List.length outs >= 2))
    outputs.Outputs.outputs

let suite =
  [
    Alcotest.test_case "no crashes: one round" `Quick test_no_crashes;
    Alcotest.test_case "single simultaneous crash" `Quick test_single_simultaneous_crash;
    Alcotest.test_case "repeated simultaneous crashes" `Quick test_repeated_simultaneous_crashes;
    Alcotest.test_case "round count vs crash count" `Quick test_rounds_grow_with_crashes;
    Alcotest.test_case "crashes inside consensus calls" `Quick test_every_process_may_crash_midway;
    Alcotest.test_case "pluggable C_r: Ruppert tournament" `Quick test_pluggable_consensus_ruppert;
    Alcotest.test_case "agreement across restarts" `Quick test_agreement_across_restart_outputs;
  ]
