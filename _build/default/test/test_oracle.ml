(* Oracle tests: the production decision procedures (multiset symmetry
   reduction, memoized search, prefix-closed collection) against the
   brute-force implementations that follow the text of Definitions 2 and
   4 literally.  Agreement on random small types validates the symmetry
   arguments the fast checkers rely on. *)

open Rcons_check

let table_gen =
  QCheck2.Gen.(
    let* num_states = int_range 2 3 in
    let* num_ops = int_range 1 2 in
    let* num_resps = int_range 1 2 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed; num_states; num_ops; 7 |] in
    return (Rcons_spec.Finite_type.random ~num_resps ~num_states ~num_ops rng))

let print_table (t : Rcons_spec.Finite_type.table) =
  Format.asprintf "%d states %d ops %s" t.num_states t.num_ops
    (String.concat ";"
       (Array.to_list t.transition
       |> List.concat_map (fun row ->
              Array.to_list row |> List.map (fun (q, r) -> Printf.sprintf "%d/%d" q r))))

let mk_test ?(count = 40) name prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print:print_table table_gen prop)

let recording_agrees table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> Recording.is_recording ot n = Brute_force.is_recording ot n)
    [ 2; 3 ]

let discerning_agrees table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n -> Discerning.is_discerning ot n = Brute_force.is_discerning ot n)
    [ 2; 3 ]

(* The oracle also agrees on the real separating types at small n. *)
let test_oracle_on_sn () =
  let ot = Rcons_spec.Sn.make 3 in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "S_3 recording n=%d" n)
        (Brute_force.is_recording ot n) (Recording.is_recording ot n);
      Alcotest.(check bool)
        (Printf.sprintf "S_3 discerning n=%d" n)
        (Brute_force.is_discerning ot n)
        (Discerning.is_discerning ot n))
    [ 2; 3 ]

let test_oracle_on_tas_swap () =
  List.iter
    (fun ot ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Rcons_spec.Object_type.name ot ^ Printf.sprintf " recording n=%d" n)
            (Brute_force.is_recording ot n) (Recording.is_recording ot n);
          Alcotest.(check bool)
            (Rcons_spec.Object_type.name ot ^ Printf.sprintf " discerning n=%d" n)
            (Brute_force.is_discerning ot n)
            (Discerning.is_discerning ot n))
        [ 2; 3 ])
    [ Rcons_spec.Test_and_set.t; Rcons_spec.Swap.default; Rcons_spec.Flip_bit.t ]

let test_oracle_rejects_small_n () =
  Alcotest.check_raises "n=1" (Invalid_argument "Brute_force.is_recording") (fun () ->
      ignore (Brute_force.is_recording Rcons_spec.Sticky_bit.t 1))

let suite =
  [
    mk_test "recording: fast = brute force (random types)" recording_agrees;
    mk_test "discerning: fast = brute force (random types)" discerning_agrees;
    Alcotest.test_case "oracle on S_3" `Quick test_oracle_on_sn;
    Alcotest.test_case "oracle on TAS/swap/flip" `Quick test_oracle_on_tas_swap;
    Alcotest.test_case "oracle rejects n = 1" `Quick test_oracle_rejects_small_n;
  ]
