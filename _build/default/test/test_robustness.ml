(* Tests of the Theorem 22 machinery (set-level bounds) and the product
   combinator. *)

open Rcons_spec
open Rcons_check

let test_set_bounds_basic () =
  let a = Robustness.analyse ~limit:5 [ Register.default; Sn.make 3 ] in
  Alcotest.(check int) "lower = 3" 3 a.Robustness.rcons_lower;
  Alcotest.(check (option int)) "upper = 4" (Some 4) a.Robustness.rcons_upper;
  Alcotest.(check bool) "best is S_3" true
    (match a.Robustness.best with Some ot -> Object_type.name ot = "S_3" | None -> false)

let test_set_bounds_unbounded_member () =
  let a = Robustness.analyse ~limit:4 [ Sticky_bit.t; Register.default ] in
  Alcotest.(check (option int)) "no finite upper bound" None a.Robustness.rcons_upper;
  Alcotest.(check int) "lower at the scan limit" 4 a.Robustness.rcons_lower

let test_set_bounds_all_weak () =
  let a = Robustness.analyse ~limit:4 [ Register.default; Swap.default ] in
  Alcotest.(check int) "lower 1" 1 a.Robustness.rcons_lower;
  Alcotest.(check (option int)) "upper 2" (Some 2) a.Robustness.rcons_upper

let test_best_certificate_runs () =
  match Robustness.best_certificate ~limit:5 [ Register.default; Sn.make 4 ] with
  | None -> Alcotest.fail "expected a certificate from S_4"
  | Some cert ->
      Alcotest.(check bool) "validates" true (Certificate.validate_recording cert);
      let a, b = Certificate.recording_teams cert in
      Alcotest.(check int) "covers 4 processes" 4 (a + b)

let test_empty_set_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Robustness.analyse: empty set") (fun () ->
      ignore (Robustness.analyse []))

(* --- product combinator --- *)

let test_product_semantics () =
  match Product.make Sticky_bit.t Register.default with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      (* applying a left op must not disturb the right component *)
      let left_op = List.hd T.update_ops in
      let q1, _ = T.apply q0 left_op in
      Alcotest.(check bool) "state changed" true (T.compare_state q0 q1 <> 0);
      Alcotest.(check int) "universe is the sum" 4 (List.length T.update_ops)

let test_product_inherits_recording () =
  (* S_3 is 3-recording; the product with a weak register must be too
     (use only the S_3 side) *)
  let p = Product.make (Sn.make 3) Register.default in
  Alcotest.(check bool) "product is 3-recording" true (Recording.is_recording p 3);
  Alcotest.(check bool) "product readable" true (Object_type.readable p)

let test_product_respects_thm22_upper () =
  (* rcons(product of two level-<=k readable types) <= k + 1 would follow
     from Theorem 22 for the SET; for the product object itself we verify
     the checker's level directly: register x swap has recording level 1
     (neither side records) *)
  let p = Product.make Register.default Swap.default in
  Alcotest.(check bool) "not 2-recording" false (Recording.is_recording p 2)

let test_product_with_nonreadable_not_readable () =
  let p = Product.make Register.default Test_and_set.t in
  Alcotest.(check bool) "not readable" false (Object_type.readable p)

let test_product_certificate_runs_dynamically () =
  let p = Product.make (Sn.make 3) Register.default in
  let cert = Helpers.cert_of p 3 in
  Helpers.random_sweep
    ~mk:(fun () -> Helpers.team_system cert ())
    ~iters:150 ~crash_prob:0.2 ~max_crashes:6 ~seed:61

let suite =
  [
    Alcotest.test_case "set bounds: register + S_3" `Quick test_set_bounds_basic;
    Alcotest.test_case "set bounds: unbounded member" `Quick test_set_bounds_unbounded_member;
    Alcotest.test_case "set bounds: all weak" `Quick test_set_bounds_all_weak;
    Alcotest.test_case "best certificate validates" `Quick test_best_certificate_runs;
    Alcotest.test_case "empty set rejected" `Quick test_empty_set_rejected;
    Alcotest.test_case "product semantics" `Quick test_product_semantics;
    Alcotest.test_case "product inherits recording" `Quick test_product_inherits_recording;
    Alcotest.test_case "product of weak types stays weak" `Quick test_product_respects_thm22_upper;
    Alcotest.test_case "product readability" `Quick test_product_with_nonreadable_not_readable;
    Alcotest.test_case "product certificate runs (Fig 2)" `Quick
      test_product_certificate_runs_dynamically;
  ]
