(* Shared harness code for the algorithm tests: build simulated systems
   running consensus algorithms, drive them with the various adversaries,
   and check the RC properties (agreement, validity, and -- via bounded
   step budgets -- recoverable wait-freedom). *)

open Rcons_runtime
open Rcons_check

(* A consensus system under test: fresh shared state plus an invariant
   checker suitable for both the random drivers and the explorer. *)
type 'v system = { sim : Sim.t; outputs : 'v Rcons_algo.Outputs.t; check : unit -> unit }

let check_now outputs () = Rcons_algo.Outputs.check_exn ~fail:Explore.fail outputs

(* System running full (tournament-lifted) recoverable consensus from a
   recording certificate, with distinct inputs 10, 20, 30, ... *)
let rc_system ?faithful (cert : Certificate.recording) ~n () =
  let inputs = Array.init n (fun i -> (i + 1) * 10) in
  let outputs = Rcons_algo.Outputs.make ~inputs in
  let decide = Rcons_algo.Tournament.recoverable_consensus ?faithful cert ~n in
  let body pid () = Rcons_algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
  let sim = Sim.create ~n body in
  { sim; outputs; check = check_now outputs }

(* System running a bare Figure 2 team-consensus instance: process pids
   are laid out team A first, then team B; [use_a] and [use_b] select how
   many processes of each team actually participate (subset participation
   is allowed, see Proposition 30). *)
let team_system ?faithful (cert : Certificate.recording) ?use_a ?use_b () =
  let size_a, size_b = Certificate.recording_teams cert in
  let use_a = Option.value use_a ~default:size_a in
  let use_b = Option.value use_b ~default:size_b in
  assert (use_a >= 1 && use_a <= size_a && use_b >= 1 && use_b <= size_b);
  let n = use_a + use_b in
  let inputs = Array.init n (fun i -> if i < use_a then 111 else 222) in
  let outputs = Rcons_algo.Outputs.make ~inputs in
  let tc = Rcons_algo.Team_consensus.create ?faithful cert in
  let body pid () =
    let team, slot =
      if pid < use_a then (Rcons_spec.Team.A, pid) else (Rcons_spec.Team.B, pid - use_a)
    in
    Rcons_algo.Outputs.record outputs pid (tc.Rcons_algo.Team_consensus.decide team slot inputs.(pid))
  in
  let sim = Sim.create ~n body in
  { sim; outputs; check = check_now outputs }

(* Drive [mk]-built systems through [iters] random crash-injected runs. *)
let random_sweep ~mk ~iters ~crash_prob ~max_crashes ~seed =
  let rng = Random.State.make [| seed |] in
  for _ = 1 to iters do
    let sys = mk () in
    ignore (Drivers.random ~crash_prob ~max_crashes ~rng sys.sim);
    sys.check ();
    (* crash some processes after completion and re-run: repeated outputs
       of one process must also agree *)
    ignore (Drivers.crash_and_rerun ~rng sys.sim);
    sys.check ()
  done

(* Exhaustively model-check a system builder. *)
let exhaustive ~mk ~max_crashes =
  Explore.explore ~max_crashes ~mk:(fun () ->
      let sys = mk () in
      (sys.sim, sys.check))
    ()

let cert_of ot n =
  match Recording.witness ot n with
  | Some c -> c
  | None ->
      Alcotest.fail
        (Printf.sprintf "%s: expected an %d-recording witness" (Rcons_spec.Object_type.name ot) n)

let disc_cert_of ot n =
  match Discerning.witness ot n with
  | Some c -> c
  | None ->
      Alcotest.fail
        (Printf.sprintf "%s: expected an %d-discerning witness" (Rcons_spec.Object_type.name ot) n)
