(* Entry point for the whole test suite.  Each sub-file exports a [suite]
   value; run everything under one Alcotest binary so that `dune runtest`
   covers the full repository. *)

let () =
  Alcotest.run "rcons"
    [
      ("spec", Test_spec.suite);
      ("misc", Test_misc.suite);
      ("enumerate", Test_enumerate.suite);
      ("search", Test_search.suite);
      ("checkers", Test_checkers.suite);
      ("theorems", Test_theorems.suite);
      ("oracle", Test_oracle.suite);
      ("runtime", Test_runtime.suite);
      ("team-consensus", Test_team_consensus.suite);
      ("tournament", Test_tournament.suite);
      ("simultaneous", Test_simultaneous.suite);
      ("recoverable-cas", Test_rcas.suite);
      ("history", Test_history.suite);
      ("lin-oracle", Test_lin_oracle.suite);
      ("conditions", Test_conditions.suite);
      ("universal", Test_universal.suite);
      ("valency", Test_valency.suite);
      ("critical", Test_critical.suite);
      ("robustness", Test_robustness.suite);
      ("injection", Test_injection.suite);
      ("integration", Test_integration.suite);
    ]
