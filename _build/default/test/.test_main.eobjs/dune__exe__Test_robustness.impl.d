test/test_robustness.ml: Alcotest Certificate Helpers List Object_type Product Rcons_check Rcons_spec Recording Register Robustness Sn Sticky_bit Swap Test_and_set
