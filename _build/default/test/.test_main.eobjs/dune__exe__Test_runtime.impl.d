test/test_runtime.ml: Alcotest Array Cell Drivers Explore Growable List Printf Random Rcons_runtime Rcons_spec Sim Sim_obj
