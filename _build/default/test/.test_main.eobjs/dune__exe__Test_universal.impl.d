test/test_universal.ml: Alcotest Array Cell Derived Drivers Explore Helpers List Random Rcons_algo Rcons_history Rcons_runtime Rcons_spec Rcons_universal Runiversal Script Sim
