test/test_conditions.ml: Alcotest Array Conditions Drivers Hashtbl History Linearizability List Printf Rcons_history Rcons_runtime Rcons_universal Sim
