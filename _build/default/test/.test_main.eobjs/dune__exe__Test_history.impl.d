test/test_history.ml: Alcotest Hashtbl History Linearizability List Rcons_history
