test/test_search.ml: Alcotest Array List Object_type Rcons_check Rcons_spec Register Search Sn Stack Sticky_bit Team Test_and_set
