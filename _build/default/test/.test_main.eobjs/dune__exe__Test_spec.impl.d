test/test_spec.ml: Alcotest Array Cas Catalogue Fetch_add Finite_type Format List Object_type Printf Queue Random Rcons_spec Register Sn Stack Sticky_bit Swap Test_and_set Tn
