test/test_enumerate.ml: Alcotest Enumerate Fun List Printf Rcons_check
