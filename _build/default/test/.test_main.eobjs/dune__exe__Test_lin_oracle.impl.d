test/test_lin_oracle.ml: Hashtbl History Linearizability List Printf QCheck2 QCheck_alcotest Random Rcons_history String
