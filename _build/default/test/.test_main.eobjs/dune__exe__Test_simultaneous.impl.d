test/test_simultaneous.ml: Alcotest Array Drivers Helpers List One_shot Outputs Printf Rcons_algo Rcons_runtime Rcons_spec Sim Simultaneous_rc Tournament
