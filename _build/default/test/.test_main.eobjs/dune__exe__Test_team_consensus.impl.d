test/test_team_consensus.ml: Alcotest Array Drivers Explore Helpers List Rcons_algo Rcons_check Rcons_runtime Rcons_spec Sim
