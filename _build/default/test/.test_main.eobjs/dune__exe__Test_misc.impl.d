test/test_misc.ml: Alcotest Array Drivers Format List Option Rcons_algo Rcons_check Rcons_runtime Rcons_spec Rcons_valency Sim Sn String Team
