test/test_critical.ml: Alcotest Array Critical List Option Printf Rcons_algo Rcons_check Rcons_runtime Rcons_spec Rcons_valency Sim
