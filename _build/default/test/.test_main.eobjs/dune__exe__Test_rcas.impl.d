test/test_rcas.ml: Alcotest Array Cell Drivers Printf Random Rcons_algo Rcons_history Rcons_runtime Recoverable_cas Sim
