test/test_theorems.ml: Array Buffer Certificate Classify Discerning List Option Printf QCheck2 QCheck_alcotest Random Rcons_check Rcons_spec Recording
