test/test_integration.ml: Alcotest Array Drivers Explore Helpers List Rcons Rcons_algo Rcons_check Rcons_runtime Rcons_spec Rcons_universal Rcons_valency Sim
