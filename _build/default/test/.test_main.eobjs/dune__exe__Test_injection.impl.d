test/test_injection.ml: Alcotest Array Drivers Explore Helpers List Rcons_algo Rcons_history Rcons_runtime Rcons_spec Rcons_universal Sim
