test/test_tournament.ml: Alcotest Array Drivers Explore Helpers List Outputs Printf Random Rcons_algo Rcons_check Rcons_runtime Rcons_spec Sim Stable_input String Tournament
