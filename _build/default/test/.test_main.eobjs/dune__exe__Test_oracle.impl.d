test/test_oracle.ml: Alcotest Array Brute_force Discerning Format List Printf QCheck2 QCheck_alcotest Random Rcons_check Rcons_spec Recording String
