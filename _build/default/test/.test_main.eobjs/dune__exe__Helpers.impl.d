test/helpers.ml: Alcotest Array Certificate Discerning Drivers Explore Option Printf Random Rcons_algo Rcons_check Rcons_runtime Rcons_spec Recording Sim
