(* Tests of RUniversal (Figure 7): sequential sanity of the derived
   objects, wait-freedom via helping, crash-recovery idempotence, and
   linearizability of recorded histories under adversarial schedules
   (experiment E7). *)

open Rcons_runtime
open Rcons_universal

let run_counter ?(n = 2) ?history ?make_rc scripts =
  let u = Runiversal.create ?history ?make_rc ~n Derived.counter in
  let max_ops = Array.fold_left (fun m s -> max m (Array.length s)) 0 scripts in
  let runner = Script.create u ~n ~max_ops in
  let body pid () = Script.run runner pid scripts.(pid) in
  (u, runner, Sim.create ~n body)

let test_counter_sequential () =
  let scripts = [| [| Derived.Incr; Derived.Incr; Derived.Get |]; [| Derived.Incr; Derived.Get |] |] in
  let u, runner, t = run_counter scripts in
  Drivers.round_robin t;
  Alcotest.(check int) "all ops applied" 5 (Runiversal.applied_count u);
  (match (Script.response runner 0 2, Script.response runner 1 1) with
  | Some a, Some b ->
      Alcotest.(check bool) "final gets see all increments eventually" true (a = 3 || b = 3)
  | _ -> Alcotest.fail "missing responses");
  (* sequence numbers are a contiguous 2..6 *)
  let seqs =
    List.map (fun nd -> Cell.peek nd.Runiversal.seq) (Runiversal.linearization u)
  in
  Alcotest.(check (list int)) "contiguous seq numbers" [ 2; 3; 4; 5; 6 ] seqs

let test_stack_object () =
  let spec = Derived.stack () in
  let u = Runiversal.create ~n:1 spec in
  let script = [| Derived.Push 1; Derived.Push 2; Derived.Pop; Derived.Pop; Derived.Pop |] in
  let runner = Script.create u ~n:1 ~max_ops:5 in
  let t = Sim.create ~n:1 (fun pid () -> Script.run runner pid script) in
  Drivers.round_robin t;
  Alcotest.(check (option (option int))) "pop 2 first" (Some (Some 2)) (Script.response runner 0 2);
  Alcotest.(check (option (option int))) "pop 1 second" (Some (Some 1)) (Script.response runner 0 3);
  Alcotest.(check (option (option int))) "pop empty" (Some None) (Script.response runner 0 4)

let test_queue_object () =
  let spec = Derived.queue () in
  let u = Runiversal.create ~n:1 spec in
  let script = [| Derived.Enq 1; Derived.Enq 2; Derived.Deq; Derived.Deq |] in
  let runner = Script.create u ~n:1 ~max_ops:4 in
  let t = Sim.create ~n:1 (fun pid () -> Script.run runner pid script) in
  Drivers.round_robin t;
  Alcotest.(check (option (option int))) "deq 1 first" (Some (Some 1)) (Script.response runner 0 2);
  Alcotest.(check (option (option int))) "deq 2 second" (Some (Some 2)) (Script.response runner 0 3)

let test_kv_object () =
  let spec = Derived.kv () in
  let u = Runiversal.create ~n:1 spec in
  let script =
    [| Derived.Put ("x", 1); Derived.Put ("y", 2); Derived.Find "x"; Derived.Del "x"; Derived.Find "x" |]
  in
  let runner = Script.create u ~n:1 ~max_ops:5 in
  let t = Sim.create ~n:1 (fun pid () -> Script.run runner pid script) in
  Drivers.round_robin t;
  Alcotest.(check (option (option int))) "find x" (Some (Some 1)) (Script.response runner 0 2);
  Alcotest.(check (option (option int))) "find deleted" (Some None) (Script.response runner 0 4)

let test_invoke_idempotent_across_crashes () =
  (* crash at every step of a single increment: the counter must still end
     at exactly 1, however many times the process restarts *)
  let u = Runiversal.create ~n:1 Derived.counter in
  let runner = Script.create u ~n:1 ~max_ops:1 in
  let t = Sim.create ~n:1 (fun pid () -> Script.run runner pid [| Derived.Incr |]) in
  for _ = 1 to 15 do
    if not (Sim.all_finished t) then begin
      (* make partial progress, then crash mid-operation *)
      for _ = 1 to 3 do
        if not (Sim.all_finished t) then ignore (Sim.step_proc t 0)
      done;
      if not (Sim.all_finished t) then Sim.crash t 0
    end
  done;
  Drivers.round_robin t;
  Alcotest.(check int) "exactly one increment despite repeated mid-operation crashes" 1
    (Runiversal.applied_count u);
  Alcotest.(check (option int)) "response recorded" (Some 1) (Script.response runner 0 0)

let test_helping_wait_freedom () =
  (* p1 announces an operation and then stalls (never scheduled again);
     p0, running alone, must still complete its own operations thanks to
     the round-robin helping -- and will in fact append p1's node too *)
  let u = Runiversal.create ~n:2 Derived.counter in
  let runner = Script.create u ~n:2 ~max_ops:3 in
  let scripts = [| Array.make 3 Derived.Incr; [| Derived.Incr |] |] in
  let t = Sim.create ~n:2 (fun pid () -> Script.run runner pid scripts.(pid)) in
  (* let p1 announce (a few steps), then run p0 exclusively *)
  for _ = 1 to 6 do
    if not (Sim.finished t 1) then ignore (Sim.step_proc t 1)
  done;
  let guard = ref 0 in
  while (not (Sim.finished t 0)) && !guard < 10_000 do
    ignore (Sim.step_proc t 0);
    incr guard
  done;
  Alcotest.(check bool) "p0 finished without p1" true (Sim.finished t 0);
  Alcotest.(check bool) "p1's announced op was helped in" true (Runiversal.applied_count u >= 3)

let lin_ok history = Rcons_history.Linearizability.check_history (Derived.lin_spec Derived.counter) history

let test_linearizable_random_crashes () =
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 300 do
    let history = Rcons_history.History.create () in
    let scripts =
      Array.init 3 (fun pid ->
          Array.init 3 (fun k -> if (pid + k) mod 2 = 0 then Derived.Incr else Derived.Get))
    in
    let _, _, t = run_counter ~n:3 ~history scripts in
    ignore (Drivers.random ~crash_prob:0.15 ~max_crashes:9 ~rng t);
    if not (lin_ok history) then Alcotest.fail "non-linearizable history under crashes"
  done

let test_linearizable_exhaustive_small () =
  (* Two processes, one op each.  The universal construction's bodies are
     long (each field access is a step), so full exploration with a crash
     is infeasible; explore a bounded prefix of the schedule tree and
     accept budget exhaustion as "no violation found within the budget". *)
  let mk () =
    let history = Rcons_history.History.create () in
    let scripts = [| [| Derived.Incr |]; [| Derived.Get |] |] in
    let _, _, t = run_counter ~n:2 ~history scripts in
    let check () = if Sim.all_finished t && not (lin_ok history) then Explore.fail "not linearizable" in
    (t, check)
  in
  match Explore.explore ~max_crashes:1 ~max_nodes:400_000 ~mk () with
  | stats -> Alcotest.(check bool) "schedules explored" true (stats.Explore.schedules > 50)
  | exception Explore.Budget_exceeded stats ->
      Alcotest.(check bool) "no violation within the node budget" true
        (stats.Explore.nodes > 400_000)

let test_figure2_rc_instances () =
  (* plug the Figure 2 + tournament RC (from the sticky bit's certificate)
     in as the per-node RC instance: the full paper pipeline end-to-end *)
  let n = 2 in
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t n in
  let make_rc () =
    let decide = Rcons_algo.Tournament.recoverable_consensus cert ~n in
    { Runiversal.propose = (fun pid v -> decide pid v) }
  in
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 50 do
    let history = Rcons_history.History.create () in
    let scripts = [| [| Derived.Incr; Derived.Get |]; [| Derived.Incr |] |] in
    let _, _, t = run_counter ~n ~history ~make_rc scripts in
    ignore (Drivers.random ~crash_prob:0.1 ~max_crashes:4 ~rng t);
    if not (lin_ok history) then Alcotest.fail "non-linearizable with Figure 2 RC instances"
  done

let test_linearization_matches_history_count () =
  let history = Rcons_history.History.create () in
  let scripts = [| [| Derived.Incr; Derived.Get |]; [| Derived.Incr |] |] in
  let u, _, t = run_counter ~n:2 ~history scripts in
  Drivers.round_robin t;
  let ops = Rcons_history.History.operations history in
  Alcotest.(check int) "history ops = applied ops" (Runiversal.applied_count u) (List.length ops);
  Alcotest.(check bool) "all completed" true
    (List.for_all (fun (o : _ Rcons_history.History.operation) -> o.resp <> None) ops)

let test_simultaneous_crashes_universal () =
  (* the universal construction also survives the simultaneous-crash model *)
  let history = Rcons_history.History.create () in
  let scripts = Array.init 3 (fun _ -> [| Derived.Incr; Derived.Get |]) in
  let _, _, t = run_counter ~n:3 ~history scripts in
  Drivers.simultaneous ~crash_at:[ 4; 15 ] t;
  Alcotest.(check bool) "linearizable after crash_all" true (lin_ok history)

let suite =
  [
    Alcotest.test_case "counter: sequential" `Quick test_counter_sequential;
    Alcotest.test_case "stack object" `Quick test_stack_object;
    Alcotest.test_case "queue object" `Quick test_queue_object;
    Alcotest.test_case "kv object" `Quick test_kv_object;
    Alcotest.test_case "invoke is crash-idempotent" `Quick test_invoke_idempotent_across_crashes;
    Alcotest.test_case "helping gives wait-freedom" `Quick test_helping_wait_freedom;
    Alcotest.test_case "linearizable under random crashes" `Quick test_linearizable_random_crashes;
    Alcotest.test_case "linearizable: exhaustive small" `Quick test_linearizable_exhaustive_small;
    Alcotest.test_case "Figure 2 RC instances end-to-end" `Quick test_figure2_rc_instances;
    Alcotest.test_case "linearization matches history" `Quick test_linearization_matches_history_count;
    Alcotest.test_case "simultaneous crashes" `Quick test_simultaneous_crashes_universal;
  ]
