(* Tests of the recoverable CAS construction (Section 5): sequential
   semantics, idempotence across crashes at every step position,
   detectability via [recover], and linearizability of concurrent
   histories under random crash injection. *)

open Rcons_runtime
open Rcons_algo

(* Linearizability spec of a CAS object over integers. *)
let cas_spec : (int, int * int, bool) Rcons_history.Linearizability.spec =
  {
    init = 0;
    apply = (fun s (exp, des) -> if s = exp then (des, true) else (s, false));
    equal_resp = ( = );
  }

let test_sequential_semantics () =
  let t = Recoverable_cas.create ~n:2 0 in
  let results = ref [] in
  let body _pid () =
    results := [];
    results := Recoverable_cas.cas t 0 ~attempt:1 ~expected:0 ~desired:5 :: !results;
    results := Recoverable_cas.cas t 0 ~attempt:2 ~expected:0 ~desired:6 :: !results;
    results := Recoverable_cas.cas t 0 ~attempt:3 ~expected:5 ~desired:7 :: !results;
    results := [ Recoverable_cas.read_value t = 7 ] @ !results
  in
  let sim = Sim.create ~n:1 body in
  Drivers.round_robin sim;
  Alcotest.(check (list bool)) "success, failure, success, final value"
    [ true; true; false; true ] !results

let test_idempotent_reentry () =
  let t = Recoverable_cas.create ~n:1 0 in
  let r1 = ref None and r2 = ref None in
  let body _pid () =
    let a = Recoverable_cas.cas t 0 ~attempt:1 ~expected:0 ~desired:9 in
    let b = Recoverable_cas.cas t 0 ~attempt:1 ~expected:0 ~desired:9 in
    r1 := Some a;
    r2 := Some b
  in
  let sim = Sim.create ~n:1 body in
  Drivers.round_robin sim;
  Alcotest.(check (option bool)) "first" (Some true) !r1;
  Alcotest.(check (option bool)) "re-entry returns recorded outcome" (Some true) !r2;
  let v = ref 0 in
  let observer = Sim.create ~n:1 (fun _ () -> v := Recoverable_cas.read_value t) in
  Drivers.round_robin observer;
  Alcotest.(check int) "effect applied once" 9 !v

(* Crash-at-every-position: a single process performs one CAS; crash it
   at every possible step and drive to completion; the final value must
   be installed exactly once and the response true. *)
let test_crash_every_position_solo () =
  let baseline =
    let t = Recoverable_cas.create ~n:1 0 in
    let sim =
      Sim.create ~n:1 (fun pid () -> ignore (Recoverable_cas.cas t pid ~attempt:1 ~expected:0 ~desired:1))
    in
    Drivers.round_robin sim;
    Sim.total_steps sim
  in
  for crash_at = 1 to baseline do
    let t = Recoverable_cas.create ~n:1 0 in
    let out = ref None in
    let sim =
      Sim.create ~n:1 (fun pid () ->
          out := Some (Recoverable_cas.cas t pid ~attempt:1 ~expected:0 ~desired:1))
    in
    let budget = ref 1000 in
    while not (Sim.all_finished sim) do
      decr budget;
      if !budget <= 0 then Alcotest.fail "budget";
      if Sim.total_steps sim = crash_at then Sim.crash sim 0;
      ignore (Sim.step_proc sim 0)
    done;
    Alcotest.(check (option bool))
      (Printf.sprintf "crash at %d: true" crash_at)
      (Some true) !out
  done

(* Two contending processes, crashes injected at random: record a history
   of all invocations and check CAS linearizability. *)
let test_concurrent_linearizable () =
  let rng = Random.State.make [| 4 |] in
  for _iter = 1 to 400 do
    let n = 2 in
    let t = Recoverable_cas.create ~n 0 in
    let history = Rcons_history.History.create () in
    (* scripts of (expected, desired) pairs over a tiny domain so that
       both outcomes occur *)
    let scripts =
      Array.init n (fun pid ->
          Array.init 3 (fun k ->
              let exp = Random.State.int rng 3 in
              let des = 1 + Random.State.int rng 2 + (10 * pid) + k in
              (exp, des)))
    in
    let progress = Array.init n (fun _ -> Cell.make 0) in
    let hist_tags = Array.make_matrix n 3 (-1) in
    let body pid () =
      let k = ref (Cell.read progress.(pid)) in
      while !k < Array.length scripts.(pid) do
        let exp, des = scripts.(pid).(!k) in
        if hist_tags.(pid).(!k) < 0 then
          hist_tags.(pid).(!k) <- Rcons_history.History.invoke history ~pid (exp, des);
        let r = Recoverable_cas.cas t pid ~attempt:(!k + 1) ~expected:exp ~desired:des in
        Rcons_history.History.respond history ~pid ~tag:hist_tags.(pid).(!k) r;
        Cell.write progress.(pid) (!k + 1);
        k := Cell.read progress.(pid)
      done
    in
    let sim = Sim.create ~n body in
    ignore (Drivers.random ~crash_prob:0.15 ~max_crashes:6 ~rng sim);
    if not (Rcons_history.Linearizability.check_history cas_spec history) then
      Alcotest.fail "recoverable CAS history not linearizable"
  done

(* Detectability: crash a process at every position of its CAS and ask
   [recover]; the answer must never claim success for an attempt whose
   effect is absent, nor miss a success whose effect is present. *)
let test_recover_statuses () =
  let baseline =
    let t = Recoverable_cas.create ~n:1 0 in
    let sim =
      Sim.create ~n:1 (fun pid () -> ignore (Recoverable_cas.cas t pid ~attempt:1 ~expected:0 ~desired:1))
    in
    Drivers.round_robin sim;
    Sim.total_steps sim
  in
  for crash_at = 1 to baseline do
    let t = Recoverable_cas.create ~n:1 0 in
    let sim =
      Sim.create ~n:1 (fun pid () ->
          ignore (Recoverable_cas.cas t pid ~attempt:1 ~expected:0 ~desired:1))
    in
    let steps = ref 0 in
    while !steps < crash_at && not (Sim.all_finished sim) do
      ignore (Sim.step_proc sim 0);
      incr steps
    done;
    Sim.crash sim 0;
    (* query recover and the installed value from an observer process,
       without re-running the crashed operation *)
    let status = ref Recoverable_cas.Unresolved in
    let installed = ref 0 in
    let observer =
      Sim.create ~n:1 (fun _ () ->
          status := Recoverable_cas.recover t 0 ~attempt:1;
          installed := Recoverable_cas.read_value t)
    in
    Drivers.round_robin observer;
    (match !status with
    | Recoverable_cas.Succeeded ->
        Alcotest.(check int) (Printf.sprintf "crash@%d: success claim is real" crash_at) 1 !installed
    | Recoverable_cas.Failed ->
        Alcotest.(check int) (Printf.sprintf "crash@%d: failure claim is real" crash_at) 0 !installed
    | Recoverable_cas.Unresolved ->
        (* the solo process is the only writer: Unresolved must mean the
           effect is genuinely absent *)
        Alcotest.(check int) (Printf.sprintf "crash@%d: unresolved => no effect" crash_at) 0 !installed)
  done

(* The evidence mechanism: p0 CASes successfully and crashes; p1
   overwrites p0's value; p0's recovery must still report success. *)
let test_evidence_survives_overwrite () =
  let t = Recoverable_cas.create ~n:2 0 in
  (* p0 completes its CAS... *)
  let sim0 =
    Sim.create ~n:1 (fun _ () -> ignore (Recoverable_cas.cas t 0 ~attempt:1 ~expected:0 ~desired:1))
  in
  Drivers.round_robin sim0;
  (* ...crashes (loses the result), then p1 overwrites *)
  let sim1 =
    Sim.create ~n:1 (fun _ () -> ignore (Recoverable_cas.cas t 1 ~attempt:1 ~expected:1 ~desired:2))
  in
  Drivers.round_robin sim1;
  let v = ref 0 in
  let check = Sim.create ~n:1 (fun _ () -> v := Recoverable_cas.read_value t) in
  Drivers.round_robin check;
  Alcotest.(check int) "p1 overwrote" 2 !v;
  let status = ref Recoverable_cas.Unresolved in
  let observer = Sim.create ~n:1 (fun _ () -> status := Recoverable_cas.recover t 0 ~attempt:1) in
  Drivers.round_robin observer;
  Alcotest.(check bool) "p0's success survives the overwrite" true
    (!status = Recoverable_cas.Succeeded)

let suite =
  [
    Alcotest.test_case "sequential semantics" `Quick test_sequential_semantics;
    Alcotest.test_case "idempotent re-entry" `Quick test_idempotent_reentry;
    Alcotest.test_case "crash at every position (solo)" `Quick test_crash_every_position_solo;
    Alcotest.test_case "concurrent histories linearizable" `Quick test_concurrent_linearizable;
    Alcotest.test_case "recover never lies" `Quick test_recover_statuses;
    Alcotest.test_case "evidence survives overwrite" `Quick test_evidence_survives_overwrite;
  ]
