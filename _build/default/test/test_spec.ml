(* Unit tests for the sequential object-type specifications: every
   catalogue type's transition function is checked against hand-computed
   transitions, with particular care for T_n (Figure 5) and S_n (Figure 6)
   whose behaviour the propositions of the paper depend on. *)

open Rcons_spec

let apply_seq (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) q ops =
  List.fold_left (fun q op -> fst (T.apply q op)) q ops

let check_state (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) msg
    expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (got %s, want %s)" msg
       (Format.asprintf "%a" T.pp_state actual)
       (Format.asprintf "%a" T.pp_state expected))
    true
    (T.compare_state expected actual = 0)

(* --- register --- *)

let test_register_overwrites () =
  match Register.default with
  | Object_type.Pack (module T) -> (
      let q0 = List.hd T.candidate_initial_states in
      match T.update_ops with
      | w0 :: w1 :: _ ->
          let s01 = apply_seq (module T) q0 [ w0; w1 ] in
          let s1 = apply_seq (module T) q0 [ w1 ] in
          check_state (module T) "w0;w1 = w1 (last write wins)" s1 s01;
          let s10 = apply_seq (module T) q0 [ w1; w0 ] in
          let s0 = apply_seq (module T) q0 [ w0 ] in
          check_state (module T) "w1;w0 = w0" s0 s10
      | _ -> Alcotest.fail "register universe too small")

let test_register_name () =
  Alcotest.(check string) "name" "register(2)" (Object_type.name Register.default)

let test_register_domain () =
  match Register.make ~domain:4 with
  | Object_type.Pack (module T) ->
      Alcotest.(check int) "4 write ops" 4 (List.length T.update_ops)

(* --- sticky bit --- *)

let test_sticky_first_wins () =
  match Sticky_bit.t with
  | Object_type.Pack (module T) -> (
      let q0 = List.hd T.candidate_initial_states in
      match T.update_ops with
      | [ s0; s1 ] ->
          let q_after_0 = apply_seq (module T) q0 [ s0 ] in
          let q_after_01 = apply_seq (module T) q0 [ s0; s1 ] in
          check_state (module T) "second stick is a no-op" q_after_0 q_after_01;
          let _, first_resp = T.apply q0 s0 in
          let _, second_resp = T.apply q_after_0 s1 in
          Alcotest.(check bool) "second stick returns the stuck value" true
            (T.compare_resp first_resp second_resp = 0)
      | _ -> Alcotest.fail "sticky universe")

(* --- test-and-set --- *)

let test_tas () =
  match Test_and_set.t with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let op = List.hd T.update_ops in
      let q1, r1 = T.apply q0 op in
      let q2, r2 = T.apply q1 op in
      check_state (module T) "TAS is idempotent on the state" q1 q2;
      Alcotest.(check bool) "first and second TAS responses differ" true
        (T.compare_resp r1 r2 <> 0)

(* --- stack (Figure 8 subject) --- *)

let test_stack_lifo () =
  let (module T) = Stack.spec ~domain:2 ~readable:false in
  let q = apply_seq (module T) [] [ Stack.Push 0; Stack.Push 1 ] in
  check_state (module T) "push order" [ 1; 0 ] q;
  let q', r = T.apply q Stack.Pop in
  check_state (module T) "pop removes top" [ 0 ] q';
  Alcotest.(check bool) "pop returns last pushed" true (r = Stack.Popped (Some 1));
  let _, r_empty = T.apply [] Stack.Pop in
  Alcotest.(check bool) "pop on empty" true (r_empty = Stack.Popped None)

let test_stack_not_readable () =
  Alcotest.(check bool) "paper's stack has no READ" false (Object_type.readable Stack.default);
  Alcotest.(check bool) "readable variant has READ" true
    (Object_type.readable Stack.readable_variant)

(* --- queue --- *)

let test_queue_fifo () =
  let (module T) = Queue.spec ~domain:2 ~readable:false in
  let q = apply_seq (module T) [] [ Queue.Enq 0; Queue.Enq 1 ] in
  check_state (module T) "enq order" [ 0; 1 ] q;
  let q', r = T.apply q Queue.Deq in
  check_state (module T) "deq removes front" [ 1 ] q';
  Alcotest.(check bool) "deq returns first enqueued" true (r = Queue.Dequeued (Some 0));
  let _, r_empty = T.apply [] Queue.Deq in
  Alcotest.(check bool) "deq on empty" true (r_empty = Queue.Dequeued None)

let test_queue_not_readable () =
  Alcotest.(check bool) "paper's queue has no READ" false (Object_type.readable Queue.default)

(* --- compare&swap --- *)

let test_cas_semantics () =
  match Cas.default with
  | Object_type.Pack (module T) -> (
      (* The universe is built with Cas (None, 0) first. *)
      let q0 = List.hd T.candidate_initial_states in
      match T.update_ops with
      | install :: _ ->
          let q1, _ = T.apply q0 install in
          let q2, _ = T.apply q1 install in
          check_state (module T) "failed CAS leaves the state" q1 q2;
          let _, r_first = T.apply q0 install in
          let _, r_second = T.apply q1 install in
          Alcotest.(check bool) "success then failure" true (T.compare_resp r_first r_second <> 0)
      | [] -> Alcotest.fail "cas universe empty")

let test_cas_universe_size () =
  match Cas.make ~domain:2 with
  | Object_type.Pack (module T) ->
      (* For each of 2 new values: 1 None-expectation + 2 Some-expectations. *)
      Alcotest.(check int) "6 CAS ops" 6 (List.length T.update_ops)

(* --- fetch&add --- *)

let test_fetch_add_commutes () =
  match Fetch_add.default with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      List.iter
        (fun (o1, o2) ->
          let a = apply_seq (module T) q0 [ o1; o2 ] in
          let b = apply_seq (module T) q0 [ o2; o1 ] in
          check_state (module T) "adds commute" a b)
        (List.concat_map (fun o1 -> List.map (fun o2 -> (o1, o2)) T.update_ops) T.update_ops)

let test_fetch_add_wraps () =
  match Fetch_add.make ~modulus:3 ~increments:[ 2 ] with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let op = List.hd T.update_ops in
      let q = apply_seq (module T) q0 [ op; op; op ] in
      check_state (module T) "3 adds of 2 mod 3 = 0" q0 q

(* --- swap --- *)

let test_swap_returns_old () =
  match Swap.default with
  | Object_type.Pack (module T) -> (
      let q0 = List.hd T.candidate_initial_states in
      match T.update_ops with
      | o1 :: o2 :: _ ->
          (* swap's response depends on the previous contents *)
          let _, r_from_empty = T.apply q0 o2 in
          let q1, _ = T.apply q0 o1 in
          let _, r_after_o1 = T.apply q1 o2 in
          Alcotest.(check bool) "responses reveal previous contents" true
            (T.compare_resp r_from_empty r_after_o1 <> 0);
          let q12 = apply_seq (module T) q0 [ o1; o2 ] in
          let q2 = apply_seq (module T) q0 [ o2 ] in
          check_state (module T) "second swap overwrites" q2 q12
      | _ -> Alcotest.fail "swap universe")

(* --- T_n (Figure 5) --- *)

let tn_ops (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) =
  match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "T_n ops"

let test_tn_figure5_transitions () =
  (* Hand-check the n = 6 transition diagram of Figure 5: op_A cycles col
     mod floor(6/2) = 3, op_B cycles row mod ceil(6/2) = 3, and wrapping
     around forgets everything. *)
  match Tn.make 6 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let opa, opb = tn_ops (module T) in
      let q = apply_seq (module T) q0 [ opa; opa; opa; opa ] in
      check_state (module T) "op_A^4 wraps to bottom (n=6)" q0 q;
      let q = apply_seq (module T) q0 [ opb; opb; opb; opb ] in
      check_state (module T) "op_B^4 wraps to bottom (n=6)" q0 q;
      let q = apply_seq (module T) q0 [ opa; opb; opb ] in
      let _, r = T.apply q opb in
      (* reference response "A": what the very first op_A returns *)
      let _, resp_a = T.apply q0 opa in
      Alcotest.(check bool) "op_B still sees winner A" true (T.compare_resp r resp_a = 0)

let test_tn_responses_track_winner () =
  match Tn.make 4 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let opa, opb = tn_ops (module T) in
      let _, r1 = T.apply q0 opa in
      let q1, r1b = T.apply q0 opb in
      Alcotest.(check bool) "first op_A and first op_B responses differ" true
        (T.compare_resp r1 r1b <> 0);
      let _, r2 = T.apply q1 opa in
      Alcotest.(check bool) "op_A after op_B returns B's label" true (T.compare_resp r2 r1b = 0)

let test_tn_forgetting_boundary () =
  (* n = 4: floor = ceil = 2.  One op_A to win, two more to wrap. *)
  match Tn.make 4 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let opa, _ = tn_ops (module T) in
      let q2 = apply_seq (module T) q0 [ opa; opa ] in
      Alcotest.(check bool) "after 2 op_A not yet forgotten" true (T.compare_state q2 q0 <> 0);
      let q3 = apply_seq (module T) q0 [ opa; opa; opa ] in
      check_state (module T) "after 3 op_A forgotten (n=4)" q0 q3

(* --- S_n (Figure 6) --- *)

let sn_ops (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) =
  match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "S_n ops"

let test_sn_figure6_transitions () =
  match Sn.make 4 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let opa, opb = sn_ops (module T) in
      let q1 = apply_seq (module T) q0 [ opa ] in
      Alcotest.(check bool) "op_A records winner A" true (T.compare_state q1 q0 <> 0);
      let q2 = apply_seq (module T) q0 [ opa; opa ] in
      check_state (module T) "second op_A forgets" q0 q2;
      let q = apply_seq (module T) q1 [ opb; opb; opb ] in
      Alcotest.(check bool) "winner survives n-1 op_B's" true (T.compare_state q q1 <> 0);
      let q = apply_seq (module T) q0 [ opb; opb; opb; opb ] in
      check_state (module T) "op_B^n wraps to (B,0)" q0 q

let test_sn_winner_survives_partial_rows () =
  match Sn.make 5 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let opa, opb = sn_ops (module T) in
      (* winner A preserved through 4 op_B's, erased at the 5th *)
      let q = apply_seq (module T) q0 (opa :: List.init 4 (fun _ -> opb)) in
      Alcotest.(check bool) "still winner A at row 4" true (T.compare_state q q0 <> 0);
      let q = apply_seq (module T) q0 (opa :: List.init 5 (fun _ -> opb)) in
      check_state (module T) "5th op_B resets to (B,0)" q0 q

let test_sn_all_ops_return_ack () =
  match Sn.make 3 with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      List.iter
        (fun op ->
          let q1, r = T.apply q0 op in
          let _, r' = T.apply q1 op in
          Alcotest.(check bool) "ack everywhere" true (T.compare_resp r r' = 0))
        T.update_ops

(* --- finite types --- *)

let test_finite_type_validation () =
  let bad =
    {
      Finite_type.table_name = "bad";
      num_states = 2;
      num_ops = 1;
      transition = [| [| (5, 0) |]; [| (0, 0) |] |];
      initials = [ 0 ];
    }
  in
  Alcotest.check_raises "bad target state rejected"
    (Invalid_argument "Finite_type: bad target state") (fun () ->
      ignore (Finite_type.of_table bad))

let test_finite_type_apply () =
  let t =
    {
      Finite_type.table_name = "mod2";
      num_states = 2;
      num_ops = 1;
      transition = [| [| (1, 0) |]; [| (0, 1) |] |];
      initials = [ 0 ];
    }
  in
  match Finite_type.of_table t with
  | Object_type.Pack (module T) ->
      let q0 = List.hd T.candidate_initial_states in
      let op = List.hd T.update_ops in
      let q2 = apply_seq (module T) q0 [ op; op ] in
      check_state (module T) "two ops cycle back" q0 q2;
      let q1 = apply_seq (module T) q0 [ op ] in
      Alcotest.(check bool) "one op moves" true (T.compare_state q1 q0 <> 0)

let test_finite_type_random_deterministic () =
  let rng1 = Random.State.make [| 5 |] and rng2 = Random.State.make [| 5 |] in
  let t1 = Finite_type.random ~num_states:4 ~num_ops:3 rng1 in
  let t2 = Finite_type.random ~num_states:4 ~num_ops:3 rng2 in
  Alcotest.(check bool) "same seed, same table" true (t1.transition = t2.transition)

let test_finite_type_random_in_range () =
  let rng = Random.State.make [| 11 |] in
  let t = Finite_type.random ~num_resps:3 ~num_states:5 ~num_ops:2 rng in
  Array.iter
    (Array.iter (fun (q', r) ->
         Alcotest.(check bool) "state in range" true (q' >= 0 && q' < 5);
         Alcotest.(check bool) "resp in range" true (r >= 0 && r < 3)))
    t.transition

(* --- catalogue --- *)

let test_catalogue_names_unique () =
  let names = List.map (fun e -> Object_type.name e.Catalogue.ot) Catalogue.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_catalogue_find () =
  let e = Catalogue.find "sticky-bit" in
  Alcotest.(check bool) "finds sticky bit" true (Object_type.name e.Catalogue.ot = "sticky-bit")

let test_tn_rejects_small_n () =
  Alcotest.check_raises "T_1 rejected" (Invalid_argument "Tn.make: n must be >= 2") (fun () ->
      ignore (Tn.make 1))

let test_sn_rejects_small_n () =
  Alcotest.check_raises "S_1 rejected" (Invalid_argument "Sn.make: n must be >= 2") (fun () ->
      ignore (Sn.make 1))

let suite =
  [
    Alcotest.test_case "register: writes overwrite" `Quick test_register_overwrites;
    Alcotest.test_case "register: name" `Quick test_register_name;
    Alcotest.test_case "register: domain size" `Quick test_register_domain;
    Alcotest.test_case "sticky: first stick wins" `Quick test_sticky_first_wins;
    Alcotest.test_case "test-and-set semantics" `Quick test_tas;
    Alcotest.test_case "stack: LIFO" `Quick test_stack_lifo;
    Alcotest.test_case "stack: readability flags" `Quick test_stack_not_readable;
    Alcotest.test_case "queue: FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "queue: not readable" `Quick test_queue_not_readable;
    Alcotest.test_case "cas: failed CAS is a no-op" `Quick test_cas_semantics;
    Alcotest.test_case "cas: universe size" `Quick test_cas_universe_size;
    Alcotest.test_case "fetch&add: commutes" `Quick test_fetch_add_commutes;
    Alcotest.test_case "fetch&add: wraps modulo" `Quick test_fetch_add_wraps;
    Alcotest.test_case "swap: returns old value" `Quick test_swap_returns_old;
    Alcotest.test_case "T_n: Figure 5 transitions (n=6)" `Quick test_tn_figure5_transitions;
    Alcotest.test_case "T_n: responses track winner" `Quick test_tn_responses_track_winner;
    Alcotest.test_case "T_n: forgetting boundary (n=4)" `Quick test_tn_forgetting_boundary;
    Alcotest.test_case "S_n: Figure 6 transitions (n=4)" `Quick test_sn_figure6_transitions;
    Alcotest.test_case "S_n: winner survives partial rows" `Quick test_sn_winner_survives_partial_rows;
    Alcotest.test_case "S_n: all ops return ack" `Quick test_sn_all_ops_return_ack;
    Alcotest.test_case "finite type: validation" `Quick test_finite_type_validation;
    Alcotest.test_case "finite type: apply" `Quick test_finite_type_apply;
    Alcotest.test_case "finite type: deterministic generator" `Quick
      test_finite_type_random_deterministic;
    Alcotest.test_case "finite type: generator ranges" `Quick test_finite_type_random_in_range;
    Alcotest.test_case "catalogue: unique names" `Quick test_catalogue_names_unique;
    Alcotest.test_case "catalogue: find" `Quick test_catalogue_find;
    Alcotest.test_case "T_n rejects n < 2" `Quick test_tn_rejects_small_n;
    Alcotest.test_case "S_n rejects n < 2" `Quick test_sn_rejects_small_n;
  ]
