(* Permutation oracle for the linearizability checker: enumerate every
   subset of pending operations and every permutation of the chosen
   operations, and check real-time order, legality and responses
   directly.  Exponential, but independent of the Wing-Gong search; the
   two must agree on random small histories. *)

open Rcons_history

type op = Inc | Get

let counter_spec : (int, op, int) Linearizability.spec =
  {
    init = 0;
    apply = (fun s op -> match op with Inc -> (s + 1, s + 1) | Get -> (s, s));
    equal_resp = ( = );
  }

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( != ) x) xs)))
        xs

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s

let naive_linearizable (spec : (int, op, int) Linearizability.spec) ops =
  let completed, pending = List.partition (fun (o : _ History.operation) -> o.resp <> None) ops in
  List.exists
    (fun chosen_pending ->
      let chosen = completed @ chosen_pending in
      List.exists
        (fun order ->
          (* real time: if a.res < b.inv then a must precede b *)
          let respects_real_time =
            let rec check = function
              | [] -> true
              | (a : _ History.operation) :: rest ->
                  List.for_all (fun (b : _ History.operation) -> not (b.res < a.inv)) rest
                  && check rest
            in
            check order
          in
          respects_real_time
          &&
          let rec legal state = function
            | [] -> true
            | (o : _ History.operation) :: rest -> (
                let state', r = spec.apply state o.op in
                match o.resp with
                | Some expected -> spec.equal_resp expected r && legal state' rest
                | None -> legal state' rest)
          in
          legal spec.init order)
        (permutations chosen))
    (subsets pending)

(* Random well-formed histories: 2 processes, 1-3 sequential counter ops
   each, a random interleaving, responses drawn from a small range so
   that both legal and illegal histories are produced. *)
let history_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed; 23 |] in
    let num_ops pid = 1 + Random.State.int rng 2 + (pid * 0) in
    let scripts =
      List.init 2 (fun pid ->
          List.init (num_ops pid) (fun k ->
              ( pid,
                k,
                (if Random.State.bool rng then Inc else Get),
                Random.State.int rng 4 )))
    in
    (* random interleaving of per-process event sequences; each op yields
       Inv then Res (Res possibly dropped for the last op of a process) *)
    let streams =
      List.map
        (fun ops ->
          let drop_last = Random.State.int rng 3 = 0 in
          let events =
            List.concat_map (fun (pid, k, op, resp) -> [ `I (pid, k, op); `R (pid, k, resp) ]) ops
          in
          if drop_last then List.filteri (fun i _ -> i < List.length events - 1) events
          else events)
        scripts
    in
    let rec interleave acc streams =
      let nonempty = List.filter (( <> ) []) streams in
      if nonempty = [] then List.rev acc
      else
        let idx = Random.State.int rng (List.length nonempty) in
        let chosen = List.nth nonempty idx in
        let ev, rest = (List.hd chosen, List.tl chosen) in
        let streams' = List.map (fun s -> if s == chosen then rest else s) nonempty in
        interleave (ev :: acc) streams'
    in
    return (interleave [] streams))

let to_operations events =
  let h = History.create () in
  let tags = Hashtbl.create 8 in
  List.iter
    (function
      | `I (pid, k, op) -> Hashtbl.replace tags (pid, k) (History.invoke h ~pid op)
      | `R (pid, k, resp) -> History.respond h ~pid ~tag:(Hashtbl.find tags (pid, k)) resp)
    events;
  History.operations h

let print_events evs =
  String.concat " "
    (List.map
       (function
         | `I (p, k, op) -> Printf.sprintf "I%d.%d%s" p k (match op with Inc -> "+" | Get -> "?")
         | `R (p, k, r) -> Printf.sprintf "R%d.%d=%d" p k r)
       evs)

let checker_agrees_with_oracle events =
  let ops = to_operations events in
  Linearizability.check counter_spec ops = naive_linearizable counter_spec ops

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"Wing-Gong checker = permutation oracle"
         ~print:print_events history_gen checker_agrees_with_oracle);
  ]
