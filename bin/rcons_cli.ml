(* Command-line interface to the library.

     rcons classify [--limit N] [TYPE ...]   hierarchy table (E1)
     rcons solve --type TYPE --n N [...]     run RC under a crash adversary
     rcons impossible [TYPE ...]             Appendix H valency sweeps (E8)
     rcons explore --type TYPE [...]         bounded exhaustive model check
     rcons certs list|revalidate|gc          persisted certificate cache

   TYPE names: register, tas, swap, faa, stack, queue, readable-stack,
   readable-queue, sticky, cas, consensus, S<n>, T<n> (e.g. S4, T6). *)

open Cmdliner

let parse_type name =
  (* One shared resolver (also used by counterexample artifacts), so a
     type name means the same thing on the command line and in a
     committed witness file. *)
  match Rcons.Spec.Catalogue.of_name name with
  | Ok ot -> Ok ot
  | Error msg -> Error (`Msg msg)

let type_conv =
  let printer ppf ot = Format.pp_print_string ppf (Rcons.Spec.Object_type.name ot) in
  Arg.conv (parse_type, printer)

let default_types () = List.map (fun e -> e.Rcons.Spec.Catalogue.ot) Rcons.Spec.Catalogue.all

(* Shared persistency flags: which write-back cache model to run the
   simulation under, and how many steps each persist barrier costs.
   [with_persist] installs the requested ambient cache around a run;
   the default (eager, cost 1) installs nothing, keeping the seed
   behaviour byte-identical. *)
module Persist = Rcons.Runtime.Persist

let persist_conv =
  let parse s =
    match Persist.policy_of_string s with
    | p -> Ok p
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Persist.policy_to_string p))

let persist_arg =
  Arg.(
    value
    & opt persist_conv Persist.Eager
    & info [ "persist" ] ~docv:"MODEL"
        ~doc:
          "Persistency model: $(b,eager) (every write durable at its step; the default, and the \
           seed behaviour), $(b,lossy) (writes sit in a volatile write-back cache and are lost \
           when their writer crashes before flushing), or $(b,torn) (a crash persists some \
           cached lines and loses others).")

let flush_cost_arg =
  Arg.(
    value & opt int 1
    & info [ "flush-cost" ] ~docv:"STEPS"
        ~doc:"Number of simulation steps each persist barrier (flush/fence) takes (default 1).")

let with_persist persist flush_cost f =
  match (persist, flush_cost) with
  | Persist.Eager, 1 -> f ()
  | p, fc -> Persist.scoped ~flush_cost:fc p f

(* Shared --domains flag: every answer is independent of it (the domain
   pool's determinism contract); it only changes wall-clock time. *)
let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains"; "j" ]
        ~doc:
          "Number of OCaml 5 domains for the witness searches / the schedule explorer (1 = \
           sequential; results are identical either way).")

let no_undo_arg =
  Arg.(
    value & flag
    & info [ "no-undo" ]
        ~doc:
          "Explore with the from-root replay engine instead of the default journaled \
           checkpoint/restore engine.  Slower, kept as the correctness oracle: statistics, \
           violations and checkpoints are byte-identical either way (also: RCONS_NO_UNDO=1).")

(* Shared certificate-cache flags: where the persisted per-level scan
   results live, and an off switch.  Entries are revalidated against the
   live module before being trusted, so a cache can never change an
   answer -- only skip recomputation. *)
let certs_dir_arg =
  Arg.(
    value & opt string "_certs"
    & info [ "certs-dir" ] ~docv:"DIR"
        ~doc:
          "Directory of persisted scan certificates keyed by behavioural fingerprint (default \
           $(b,_certs)).  Every entry is revalidated before use; failed entries are recomputed.")

let no_certs_arg =
  Arg.(
    value & flag
    & info [ "no-certs" ] ~doc:"Disable the certificate cache (neither read nor write it).")

let certs_of no_certs dir = if no_certs then None else Some dir

(* --- classify --- *)

let classify_cmd =
  let run limit domains no_certs certs_dir types =
    if limit < 2 then begin
      (* Keep the library's invariant ([Classify.max_level] raises on
         limit < 2) out of user-facing output: one line, exit 2. *)
      Format.eprintf "rcons classify: --limit must be >= 2 (got %d)@." limit;
      2
    end
    else begin
      let types = if types = [] then default_types () else types in
      let certs = certs_of no_certs certs_dir in
      List.iter
        (fun ot ->
          Format.printf "%a@." Rcons.Check.Classify.pp_report
            (Rcons.classify ~domains ~limit ?certs ot))
        types;
      0
    end
  in
  let limit = Arg.(value & opt int 5 & info [ "limit" ] ~doc:"Largest n to test (>= 2).") in
  let types = Arg.(value & pos_all type_conv [] & info [] ~docv:"TYPE") in
  Cmd.v
    (Cmd.info "classify" ~doc:"Discerning/recording levels and cons/rcons bounds (experiment E1)")
    Term.(const run $ limit $ domains_arg $ no_certs_arg $ certs_dir_arg $ types)

(* --- solve --- *)

let solve_cmd =
  let run ot n crash_prob seed persist flush_cost no_certs certs_dir =
    let certs = certs_of no_certs certs_dir in
    match Rcons.solve_rc ?certs ot ~n with
    | None ->
        Format.eprintf "%s is not %d-recording: no certificate, cannot solve %d-process RC@."
          (Rcons.Spec.Object_type.name ot) n n;
        1
    | Some decide ->
        with_persist persist flush_cost @@ fun () ->
        let inputs = Array.init n (fun i -> 100 + i) in
        let outputs = Rcons.Algo.Outputs.make ~inputs in
        let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
        let sim = Rcons.Runtime.Sim.create ~n body in
        let rng = Random.State.make [| seed |] in
        let crashes =
          Rcons.Runtime.Drivers.random ~crash_prob ~max_crashes:(4 * n) ~rng sim
        in
        Format.printf "%d processes, %d crashes:@." n crashes;
        Array.iteri
          (fun pid outs ->
            Format.printf "  p%d -> %s@." pid (String.concat "," (List.map string_of_int outs)))
          outputs.Rcons.Algo.Outputs.outputs;
        Format.printf "agreement=%b validity=%b@."
          (Rcons.Algo.Outputs.agreement_ok outputs)
          (Rcons.Algo.Outputs.validity_ok outputs);
        if Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs
        then 0
        else 1
  in
  let ot = Arg.(required & opt (some type_conv) None & info [ "type" ] ~doc:"Object type.") in
  let n = Arg.(value & opt int 3 & info [ "procs"; "n" ] ~doc:"Number of processes.") in
  let crash_prob =
    Arg.(value & opt float 0.2 & info [ "crash-prob" ] ~doc:"Per-step crash probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Adversary seed.") in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run recoverable consensus under a random crash adversary")
    Term.(
      const run $ ot $ n $ crash_prob $ seed $ persist_arg $ flush_cost_arg $ no_certs_arg
      $ certs_dir_arg)

(* --- impossible --- *)

let impossible_cmd =
  let run verbose =
    let reports =
      [
        Rcons.Valency.Impossibility.analyse_stack ();
        Rcons.Valency.Impossibility.analyse_queue ();
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Test_and_set.t;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Register.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Fetch_add.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Swap.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Sticky_bit.t;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Cas.default;
      ]
    in
    List.iter
      (fun r ->
        if verbose then Format.printf "%a@." Rcons.Valency.Impossibility.pp_report r
        else Format.printf "%a@." Rcons.Valency.Impossibility.summary r)
      reports;
    0
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every configuration.") in
  Cmd.v
    (Cmd.info "impossible" ~doc:"Appendix H valency sweeps: which types have rcons = 1 (E8)")
    Term.(const run $ verbose)

(* --- explore / log: shared exhaustive machinery --- *)

module E = Rcons.Runtime.Explore
module Cex = Rcons.Counterexample

(* Exhaustively explore a counterexample workload (team consensus or
   replicated log), with the budget/checkpoint/resume/shrink plumbing.
   [resume_hint] is the command prefix echoed in the "resume with:"
   line.  Exit codes: 0 done (violation or not), 1 workload does not
   build, 2 bad input (corrupt checkpoint, invalid combination), 3
   interrupted with a checkpoint saved. *)
let run_exhaustive ~resume_hint w ~max_crashes ~domains ~dedup ~por ~symmetry ~node_budget
    ~time_budget ~checkpoint ~resume ~save_cex ~persist ~flush_cost ~no_undo =
  if por && resume <> None then begin
    (* A reduced run prunes a different frontier than the checkpointed
       one walked; silently resuming would under-count.  Refuse. *)
    Format.eprintf "--resume cannot be combined with --por: reduced runs are not resumable@.";
    2
  end
  else begin
    let classes =
      if not symmetry then Ok None
      else match Cex.symmetry_classes w with Error e -> Error e | Ok cls -> Ok (Some cls)
    in
    match (Cex.mk w, classes) with
    | Error e, _ | _, Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok mk, Ok classes -> (
        (* A corrupt or truncated checkpoint must fail with one
           diagnostic line and exit 2 (unusable input), not a
           backtrace -- same contract as a corrupt artifact. *)
        match Option.map (fun file -> E.load_checkpoint ~file) resume with
        | exception (Invalid_argument msg | Sys_error msg | Failure msg) ->
            Format.eprintf "cannot load checkpoint: %s@." msg;
            2
        | resume_from -> (
            match
              (* The ambient cache makes the explorer record the policy
                 in provenance; each replayed system still gets its own
                 fresh cache (from the workload builder). *)
              with_persist persist flush_cost @@ fun () ->
              E.explore ~max_crashes ~domains ~dedup ~por ?symmetry:classes ?node_budget
                ?time_budget ?resume_from ~fingerprint:(Cex.fingerprint w)
                ?undo:(if no_undo then Some false else None)
                ~mk ()
            with
            | stats ->
                Format.printf "exhaustive: %d schedules, %d nodes, max depth %d -- no violation@."
                  stats.E.schedules stats.E.nodes stats.E.max_depth;
                if dedup then
                  Format.printf
                    "dedup: %d distinct states, %d hits (node counts are state-graph edges)@."
                    stats.E.distinct_states stats.E.dedup_hits;
                if por || symmetry then
                  Format.printf "reduction: %d por-pruned, %d symmetry hits@." stats.E.por_pruned
                    stats.E.symmetry_hits;
                0
            | exception E.Interrupted cp ->
                let file = Option.value checkpoint ~default:"explore.ckpt.json" in
                E.save_checkpoint ~file cp;
                let s = E.checkpoint_stats cp in
                Format.printf
                  "interrupted: %d schedules, %d nodes explored so far; checkpoint -> %s@.resume \
                   with: %s --max-crashes %d%s --resume %s@."
                  s.E.schedules s.E.nodes file resume_hint max_crashes
                  (if dedup then " --dedup" else "")
                  file;
                3
            | exception E.Violation v ->
                Format.printf "VIOLATION: %s at %a@." v.E.v_msg E.pp_schedule v.E.v_schedule;
                (match v.E.v_provenance with
                | Some p -> Format.printf "provenance: %a@." Rcons.Runtime.Schedule.pp_provenance p
                | None -> ());
                (match save_cex with
                | None -> ()
                | Some file -> (
                    let cex = Cex.of_violation w v in
                    match Cex.minimize cex with
                    | Ok m ->
                        Cex.save ~file m;
                        Format.printf "shrunk %d -> %d choices; witness -> %s@."
                          (List.length cex.Cex.schedule)
                          (List.length m.Cex.schedule)
                          file
                    | Error e ->
                        Cex.save ~file cex;
                        Format.printf "shrink failed (%s); unshrunk witness -> %s@." e file));
                0
            | exception E.Budget_exceeded stats ->
                Format.eprintf
                  "node budget exceeded after %d nodes (%d schedules): partial exploration, no \
                   violation found within the budget; raise --node-budget or add --dedup/--por@."
                  stats.E.nodes stats.E.schedules;
                3
            | exception Invalid_argument msg ->
                Format.eprintf "%s@." msg;
                2))
  end

(* --- explore --- *)

let explore_cmd =
  let replay_artifact file =
    (* Malformed input must fail with one diagnostic line, not a
       backtrace: [Json.parse_exn] reports the offset and the expected
       token ([Invalid_argument]), semantic problems (missing fields,
       wrong field types, unknown names) surface as [Invalid_argument]
       or [Failure], and unreadable files as [Sys_error].  All exit 2:
       the artifact is unusable, which is distinct from a stale witness
       (exit 1). *)
    match Cex.load ~file with
    | exception (Sys_error msg | Invalid_argument msg | Failure msg) ->
        Format.eprintf "cannot load %s: %s@." file msg;
        2
    | cex -> (
        Format.printf "replaying %s: %d-choice schedule%s on %s (%s)@." file
          (List.length cex.Cex.schedule)
          (match cex.Cex.shrunk_from with
          | Some n -> Printf.sprintf " (shrunk from %d)" n
          | None -> "")
          cex.Cex.workload.Cex.type_name
          (if cex.Cex.workload.Cex.faithful then "faithful" else "broken variant");
        match Cex.replay cex with
        | `Violated msg ->
            Format.printf "violation reproduced: %s@." msg;
            0
        | `Passed ->
            Format.printf "STALE WITNESS: the schedule no longer violates@.";
            1
        | exception Invalid_argument msg ->
            Format.eprintf "%s@." msg;
            2)
  in
  let run name max_crashes domains dedup por symmetry broken level node_budget time_budget
      checkpoint resume save_cex replay_file persist annotated flush_cost no_undo =
    match (replay_file, name) with
    | Some file, _ -> replay_artifact file
    | None, None ->
        Format.eprintf "one of --type or --replay is required@.";
        2
    | None, Some name ->
        let w = Cex.team2 ~faithful:(not broken) ~level ~persist ~annotated ~flush_cost name in
        run_exhaustive
          ~resume_hint:(Printf.sprintf "rcons explore --type %s" name)
          w ~max_crashes ~domains ~dedup ~por ~symmetry ~node_budget ~time_budget ~checkpoint
          ~resume ~save_cex ~persist ~flush_cost ~no_undo
  in
  let type_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "type" ] ~doc:"Object type (catalogue name, alias, or S<n>/T<n>).")
  in
  let max_crashes =
    Arg.(value & opt int 1 & info [ "max-crashes" ] ~doc:"Crash budget for the explorer.")
  in
  let dedup =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Deduplicate states by canonical fingerprint: much faster on multi-crash budgets, \
             but node/schedule counts then refer to the state graph, not the raw schedule tree.")
  in
  let por =
    Arg.(
      value & flag
      & info [ "por" ]
          ~doc:
            "Sleep-set partial-order reduction over step footprints: interleavings differing \
             only by swaps of independent steps are explored once.  Finds a violation iff the \
             raw run does.  With --dedup it is sequential-only and not resumable.")
  in
  let symmetry =
    Arg.(
      value & flag
      & info [ "symmetry" ]
          ~doc:
            "Process-symmetry reduction (requires --dedup): canonicalize fingerprints over \
             relabelings of interchangeable processes (equal-operation team slots of the \
             certificate, which share one input in this workload).")
  in
  let broken =
    Arg.(
      value & flag
      & info [ "broken" ]
          ~doc:
            "Drop the |B| = 1 guard of Figure 2 line 19 (the negative control): with --level 3 \
             (a two-process team) the explorer then finds an agreement violation.")
  in
  let level =
    Arg.(
      value & opt int 2
      & info [ "level" ]
          ~doc:
            "Recording level of the certificate instantiating Figure 2 (team sizes come from \
             the certificate; level n means n processes).")
  in
  let node_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ]
          ~doc:
            "Interrupt after exploring $(docv) nodes, saving a resumable checkpoint (see \
             --checkpoint / --resume).  Sequential mode only.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~doc:"Interrupt after $(docv) wall-clock seconds (like --node-budget).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:"Where to write the checkpoint on interrupt (default explore.ckpt.json).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ]
          ~doc:
            "Resume from a checkpoint file; the run continues to final stats bit-identical to \
             an uninterrupted one.  Pass the same --type/--max-crashes/--dedup.")
  in
  let save_cex =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-counterexample" ]
          ~doc:"On violation, shrink the schedule (ddmin) and write a replayable JSON witness.")
  in
  let replay_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Replay a counterexample artifact produced by --save-counterexample (or the bench \
             harness) and report whether the violation still fires.")
  in
  let annotated =
    Arg.(
      value & flag
      & info [ "annotated" ]
          ~doc:
            "Use the persist-annotated Figure 2 variant (flushed writes, link-and-persist \
             reads): correct under $(b,--persist lossy), where the un-annotated original \
             violates agreement.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively model-check Figure 2 on the type's 2-recording certificate; \
          budgeted/resumable, with counterexample shrinking and replay")
    Term.(
      const run $ type_name $ max_crashes $ domains_arg $ dedup $ por $ symmetry $ broken
      $ level $ node_budget $ time_budget $ checkpoint $ resume $ save_cex $ replay_file
      $ persist_arg $ annotated $ flush_cost_arg $ no_undo_arg)

(* --- log --- *)

let log_cmd =
  let module Adv = Rcons.Runtime.Adversary in
  let module Rlog = Rcons.Log.Rlog in
  let module Conditions = Rcons.History.Conditions in
  let run name slots procs adversary seed crash_prob adv_crashes persist annotated vote_first
      broken no_certs certs_dir exhaustive max_crashes domains dedup por symmetry node_budget
      time_budget checkpoint resume save_cex flush_cost no_undo =
    if slots < 1 then begin
      Format.eprintf "rcons log: --slots must be >= 1 (got %d)@." slots;
      2
    end
    else if exhaustive then begin
      if vote_first then begin
        (* The exhaustive path runs through the replayable workload
           record, which deliberately has no vote-first field (it is a
           test-only negative control, not an artifact variant). *)
        Format.eprintf "rcons log: --vote-first is not supported with --exhaustive@.";
        2
      end
      else
        let w =
          Cex.log ~faithful:(not broken) ~level:procs ~persist ~annotated ~flush_cost ~slots
            name
        in
        run_exhaustive
          ~resume_hint:
            (Printf.sprintf "rcons log --type %s --slots %d --procs %d --exhaustive" name slots
               procs)
          w ~max_crashes ~domains ~dedup ~por ~symmetry ~node_budget ~time_budget ~checkpoint
          ~resume ~save_cex ~persist ~flush_cost ~no_undo
    end
    else
      (* Randomized mode: drive the log to completion under a seeded
         crash adversary, sampling the committed prefix after every
         crash and at the end, then check the prefix-durability verdict
         over the recorded history. *)
      match Adv.policy_of_string ~crash_prob ~max_crashes:adv_crashes adversary with
      | Error e ->
          Format.eprintf "rcons log: %s@." e;
          2
      | Ok policy -> (
          match parse_type name with
          | Error (`Msg e) ->
              Format.eprintf "rcons log: %s@." e;
              2
          | Ok ot -> (
              match Rcons.recording_witness ?certs:(certs_of no_certs certs_dir) ot procs with
              | None ->
                  Format.eprintf "%s has no %d-recording witness: cannot build the %d-process log@."
                    (Rcons.Spec.Object_type.name ot) procs procs;
                  1
              | Some cert -> (
                  with_persist persist flush_cost @@ fun () ->
                  let t, sim =
                    Rlog.instance ~faithful:(not broken) ~annotated ~vote_first ~slots cert
                  in
                  let trace = ref [] in
                  let on_crash pid =
                    Rlog.note_crash t ~pid;
                    trace := Rlog.committed t :: !trace
                  in
                  match Adv.run ~on_crash (Adv.create ~seed policy) sim with
                  | exception Adv.Stuck msg ->
                      Format.eprintf "stuck: %s@." msg;
                      1
                  | outcome ->
                      let committed_trace = List.rev (Rlog.committed t :: !trace) in
                      let state_violation = ref None in
                      Rlog.check_exn
                        ~fail:(fun m ->
                          if !state_violation = None then state_violation := Some m)
                        t;
                      let v = Rlog.verdict ~committed_trace t in
                      Format.printf "%d slots x %d procs: %d steps, %d crashes, committed=%d@."
                        slots (Rlog.num_procs t) outcome.Adv.steps outcome.Adv.crashes
                        (Rlog.committed t);
                      Format.printf "committed trace: %s@."
                        (String.concat " " (List.map string_of_int committed_trace));
                      Format.printf "recovery replay steps per process: %s@."
                        (String.concat " "
                           (List.map string_of_int (Array.to_list (Rlog.recovery_steps t))));
                      Format.printf
                        "verdict: slot-agreement=%b prefix-monotone=%b durable-linearizable=%b@."
                        v.Conditions.slot_agreement v.Conditions.prefix_monotone
                        v.Conditions.durable_lin;
                      (match !state_violation with
                      | Some m ->
                          Format.printf "VIOLATION: %s@." m;
                          1
                      | None ->
                          if Conditions.log_verdict_ok v then 0
                          else begin
                            Format.printf "VIOLATION: prefix-durability verdict failed@.";
                            1
                          end))))
  in
  let type_name =
    Arg.(
      value & opt string "sticky"
      & info [ "type" ]
          ~doc:
            "Object type whose recording certificate decides each slot (catalogue name, alias, \
             or S<n>/T<n>).  Default $(b,sticky).")
  in
  let slots = Arg.(value & opt int 3 & info [ "slots" ] ~doc:"Number of log slots (>= 1).") in
  let procs =
    Arg.(
      value & opt int 3
      & info [ "procs"; "n" ]
          ~doc:
            "Number of processes = recording level of the per-slot certificates (team sizes \
             come from the certificate).")
  in
  let adversary =
    Arg.(
      value & opt string "storm"
      & info [ "adversary" ] ~docv:"POLICY"
          ~doc:
            "Crash adversary for the randomized run: $(b,uniform), $(b,storm), $(b,targeted), \
             $(b,simultaneous) or $(b,quiescent).  An unknown name lists the valid policies and \
             exits 2.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Adversary seed (deterministic).") in
  let crash_prob =
    Arg.(value & opt float 0.2 & info [ "crash-prob" ] ~doc:"Per-opportunity crash probability.")
  in
  let adv_crashes =
    Arg.(
      value & opt int 6
      & info [ "crashes" ] ~doc:"Crash budget for the randomized adversary (default 6).")
  in
  let annotated =
    Arg.(
      value & flag
      & info [ "annotated" ]
          ~doc:
            "Persist-annotated log: each slot's decision is made durable (link-and-persist) \
             before the quorum-counter vote advertising it is flushed.  Without this flag the \
             barrier-free log violates per-slot agreement under $(b,--persist lossy).")
  in
  let vote_first =
    Arg.(
      value & flag
      & info [ "vote-first" ]
          ~doc:
            "Negative control (randomized mode only): flush the vote $(i,before) the slot's \
             decision is durable, so a crash can un-persist a committed slot.")
  in
  let broken =
    Arg.(
      value & flag
      & info [ "broken" ]
          ~doc:"Drop the |B| = 1 guard of Figure 2 line 19 in every slot's instance.")
  in
  let exhaustive =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Exhaustively model-check the log instead of running one randomized schedule \
             (supports --max-crashes/--dedup/--por/--symmetry/--node-budget/--resume/\
             --save-counterexample, like $(b,rcons explore)).")
  in
  let max_crashes =
    Arg.(
      value & opt int 2
      & info [ "max-crashes" ] ~doc:"Crash budget for the exhaustive explorer (default 2).")
  in
  let dedup =
    Arg.(
      value & flag
      & info [ "dedup" ] ~doc:"State-space deduplication for the exhaustive explorer.")
  in
  let por =
    Arg.(
      value & flag
      & info [ "por" ] ~doc:"Sleep-set partial-order reduction for the exhaustive explorer.")
  in
  let symmetry =
    Arg.(
      value & flag
      & info [ "symmetry" ]
          ~doc:
            "Process-symmetry reduction (requires --dedup); sound here because every member of \
             a team proposes the same per-slot value.")
  in
  let node_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ]
          ~doc:"Interrupt the exhaustive run after $(docv) nodes, saving a checkpoint.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~doc:"Interrupt after $(docv) wall-clock seconds.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:"Where to write the checkpoint on interrupt (default explore.ckpt.json).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~doc:"Resume an interrupted exhaustive run from its checkpoint.")
  in
  let save_cex =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-counterexample" ]
          ~doc:"On violation, shrink the schedule (ddmin) and write a replayable JSON witness.")
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:
         "Recoverable replicated log: per-slot RC instances under a quorum-counter committed \
          prefix -- randomized adversary runs and exhaustive prefix-durability checks")
    Term.(
      const run $ type_name $ slots $ procs $ adversary $ seed $ crash_prob $ adv_crashes
      $ persist_arg $ annotated $ vote_first $ broken $ no_certs_arg $ certs_dir_arg
      $ exhaustive $ max_crashes $ domains_arg $ dedup $ por $ symmetry $ node_budget
      $ time_budget $ checkpoint $ resume $ save_cex $ flush_cost_arg $ no_undo_arg)

(* --- certs --- *)

let certs_cmd =
  let module C = Rcons.Check.Cert_cache in
  let pp_info (i : C.info) =
    Format.printf "%-10s n=%d %-8s %-16s depth=%d fp=%s %s@."
      (C.property_name i.C.property) i.C.n
      (if i.C.positive then "witness" else "none")
      i.C.type_hint i.C.depth i.C.fingerprint (Filename.basename i.C.file)
  in
  let list_cmd =
    let run dir =
      match C.list_dir dir with
      | [] ->
          Format.printf "no certificates under %s@." dir;
          0
      | entries ->
          List.iter
            (fun (file, parsed) ->
              match parsed with
              | Ok i -> pp_info i
              | Error m -> Format.printf "CORRUPT    %s: %s@." (Filename.basename file) m)
            entries;
          0
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List the cache entries (one line each; corrupt files are flagged)")
      Term.(const run $ certs_dir_arg)
  in
  let revalidate_cmd =
    (* Exit codes follow the artifact convention: 0 all valid, 1 at
       least one stale entry (well-formed but refuted by the live
       modules), 2 at least one corrupt file.  Corrupt dominates. *)
    let run dir =
      let entries = C.list_dir dir in
      if entries = [] then begin
        Format.printf "no certificates under %s@." dir;
        0
      end
      else begin
        let worst = ref 0 in
        List.iter
          (fun (file, _) ->
            match C.revalidate_file file with
            | C.Valid -> Format.printf "valid      %s@." (Filename.basename file)
            | C.Stale_entry m ->
                Format.printf "STALE      %s: %s@." (Filename.basename file) m;
                worst := max !worst 1
            | C.Corrupt m ->
                Format.printf "CORRUPT    %s: %s@." (Filename.basename file) m;
                worst := max !worst 2)
          entries;
        !worst
      end
    in
    Cmd.v
      (Cmd.info "revalidate"
         ~doc:
           "Re-check every entry against the live modules (exit 0 all valid, 1 any stale, 2 any \
            corrupt)")
      Term.(const run $ certs_dir_arg)
  in
  let gc_cmd =
    let run dir =
      let removed = C.gc dir in
      List.iter (fun (file, m) -> Format.printf "removed %s: %s@." (Filename.basename file) m) removed;
      Format.printf "%d entries removed@." (List.length removed);
      0
    in
    Cmd.v
      (Cmd.info "gc" ~doc:"Delete every entry that fails revalidation (stale or corrupt)")
      Term.(const run $ certs_dir_arg)
  in
  Cmd.group
    (Cmd.info "certs" ~doc:"Inspect and maintain the persisted certificate cache")
    [ list_cmd; revalidate_cmd; gc_cmd ]

(* --- critical --- *)

let critical_cmd =
  let run ot =
    match Rcons.Check.Recording.witness ot 2 with
    | None ->
        Format.eprintf "%s has no 2-recording witness@." (Rcons.Spec.Object_type.name ot);
        1
    | Some cert ->
        let mk () =
          let tc = Rcons.Algo.Team_consensus.create cert in
          let outs = Array.make 2 None in
          let body pid () =
            let team, slot =
              if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0)
            in
            outs.(pid) <- Some (tc.Rcons.Algo.Team_consensus.decide team slot pid)
          in
          (Rcons.Runtime.Sim.create ~n:2 body, fun () -> outs)
        in
        (match Rcons.Valency.Critical.find_critical ~mk () with
        | report -> Format.printf "%a@." Rcons.Valency.Critical.pp_report report
        | exception Rcons.Valency.Critical.Search_space_exhausted msg ->
            Format.printf "no critical execution found: %s@." msg);
        0
  in
  let ot = Arg.(required & opt (some type_conv) None & info [ "type" ] ~doc:"Object type.") in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Exhibit Theorem 14's critical execution for Figure 2 on the type's certificate \
          (experiment E11)")
    Term.(const run $ ot)

(* --- serve --- *)

let serve_cmd =
  let module Service = Rcons.Service in
  let module Instance = Service.Instance in
  let module Soak = Service.Soak in
  let run instances seed adversary crash_prob max_crashes burst persist flush_cost domains
      sessions ops queue_cap bare max_ticks =
    match
      Rcons.Runtime.Adversary.policy_of_string ~crash_prob ~max_crashes ~burst adversary
    with
    | Error msg ->
        Format.eprintf "%s@." msg;
        2
    | Ok adv -> (
        (* every 4th instance hosts the replicated log, the rest the
           universal counter -- the same mixed fleet as bench E15 *)
        let cert = lazy (Rcons.Check.Recording.witness Rcons.Spec.Sticky_bit.t 2) in
        let cfgs =
          List.init instances (fun id ->
              let base = Soak.default ~id ~seed in
              let base =
                {
                  base with
                  Instance.adversary = adv;
                  persist;
                  flush_cost;
                  annotated = not bare;
                  sessions;
                  ops_per_session = ops;
                  queue_cap;
                  max_ticks;
                }
              in
              match id mod 4 with
              | 3 ->
                  (* fail loudly rather than silently hosting a counter
                     where a log instance was intended *)
                  let c =
                    match Lazy.force cert with
                    | Some c -> c
                    | None ->
                        Format.eprintf
                          "serve: cannot build the sticky-bit recording certificate (n=2) \
                           needed for log instances@.";
                        exit 2
                  in
                  {
                    base with
                    Instance.kind = Instance.Log;
                    cert = Some c;
                    sessions = max 1 (sessions / 2);
                    open_ops = 4;
                    open_rate = 0.2;
                  }
              | _ -> base)
        in
        match Soak.run ~domains cfgs with
        | o ->
            List.iter
              (fun (r : Instance.report) ->
                Format.printf
                  "instance %2d %-9s ticks %6d acked %4d/%-4d retries %4d shed %4d crashes %3d \
                   recoveries %3d checks %3d%s@."
                  r.Instance.r_id r.Instance.r_kind r.Instance.r_ticks r.Instance.r_acked
                  r.Instance.r_submitted r.Instance.r_retries r.Instance.r_shed
                  r.Instance.r_crashes_delivered r.Instance.r_recoveries r.Instance.r_checks_run
                  (if r.Instance.r_stuck then "  STUCK" else ""))
              o.Soak.reports;
            let s = o.Soak.summary in
            Format.printf
              "soak: %d instances, %d acked / %d submitted, %d gave up, %d shed, %d crashes \
               delivered, %d recoveries, 0 violations@."
              s.Soak.s_instances s.Soak.s_acked s.Soak.s_submitted s.Soak.s_gave_up s.Soak.s_shed
              s.Soak.s_crashes_delivered s.Soak.s_recoveries;
            Format.printf "latency p50/p99 = %d/%d ticks, recovery p99 = %d ticks@."
              (Service.Metrics.percentile s.Soak.s_latency 0.50)
              (Service.Metrics.percentile s.Soak.s_latency 0.99)
              (Service.Metrics.percentile s.Soak.s_recovery 0.99);
            Format.printf "commit digest %s (independent of --domains)@." s.Soak.s_commit_digest;
            if s.Soak.s_stuck > 0 then begin
              Format.eprintf "%d instances stuck at the tick budget@." s.Soak.s_stuck;
              1
            end
            else 0
        | exception Instance.Violation v ->
            Format.eprintf "VIOLATION: instance %d, tick %d: %s@." v.instance v.tick v.msg;
            1)
  in
  let instances =
    Arg.(value & opt int 8 & info [ "instances" ] ~doc:"Number of hosted instances (default 8).")
  in
  let seed = Arg.(value & opt int 1500 & info [ "seed" ] ~doc:"Fleet seed (default 1500).") in
  let adversary =
    Arg.(
      value & opt string "storm"
      & info [ "adversary" ] ~docv:"POLICY"
          ~doc:
            "Crash adversary injecting churn into live workers: $(b,uniform), $(b,storm), \
             $(b,targeted), $(b,simultaneous) or $(b,quiescent) (default storm).")
  in
  let crash_prob =
    Arg.(
      value & opt float 0.05
      & info [ "crash-prob" ] ~doc:"Per-opportunity crash probability (default 0.05).")
  in
  let max_crashes =
    Arg.(
      value & opt int 12
      & info [ "crashes" ] ~doc:"Crash budget per instance (default 12; finitely many).")
  in
  let burst =
    Arg.(value & opt int 2 & info [ "burst" ] ~doc:"Storm burst size (default 2).")
  in
  let sessions =
    Arg.(
      value & opt int 16
      & info [ "sessions" ] ~doc:"Closed-loop client sessions per instance (default 16).")
  in
  let ops =
    Arg.(value & opt int 4 & info [ "ops" ] ~doc:"Operations per session (default 4).")
  in
  let queue_cap =
    Arg.(
      value & opt int 32
      & info [ "queue-cap" ] ~doc:"Admission bound; submissions beyond it shed (default 32).")
  in
  let bare =
    Arg.(
      value & flag
      & info [ "bare" ]
          ~doc:
            "Drop the persist barriers (negative control: under $(b,--persist lossy) the online \
             checkers must abort the soak).")
  in
  let max_ticks =
    Arg.(
      value & opt int 50_000
      & info [ "max-ticks" ] ~doc:"Per-instance tick budget (default 50000).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Soak a fleet of recoverable-service instances under crash churn with online \
          durability checking (experiment E15)")
    Term.(
      const run $ instances $ seed $ adversary $ crash_prob $ max_crashes $ burst $ persist_arg
      $ flush_cost_arg $ domains_arg $ sessions $ ops $ queue_cap $ bare $ max_ticks)

let subcommand_names =
  [ "classify"; "solve"; "impossible"; "explore"; "log"; "certs"; "critical"; "serve" ]

let () =
  (* Unknown-subcommand diagnosis before cmdliner's own parse: one line
     naming every valid subcommand, exit 2 (usage error), instead of the
     default usage dump.  Prefix matches fall through to cmdliner, which
     accepts unambiguous prefixes. *)
  (if Array.length Sys.argv > 1 then
     let cmd = Sys.argv.(1) in
     let is_prefix c s =
       String.length c <= String.length s && String.sub s 0 (String.length c) = c
     in
     if
       String.length cmd > 0
       && cmd.[0] <> '-'
       && not (List.exists (is_prefix cmd) ("help" :: subcommand_names))
     then begin
       Format.eprintf "rcons: unknown subcommand %S@." cmd;
       Format.eprintf "valid subcommands: %s@." (String.concat ", " subcommand_names);
       exit 2
     end);
  let info =
    Cmd.info "rcons" ~version:"1.0.0"
      ~doc:"Recoverable consensus vs consensus: executable PODC 2022 reproduction"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            classify_cmd;
            solve_cmd;
            impossible_cmd;
            explore_cmd;
            log_cmd;
            certs_cmd;
            critical_cmd;
            serve_cmd;
          ]))
