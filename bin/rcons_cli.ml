(* Command-line interface to the library.

     rcons classify [--limit N] [TYPE ...]   hierarchy table (E1)
     rcons solve --type TYPE --n N [...]     run RC under a crash adversary
     rcons impossible [TYPE ...]             Appendix H valency sweeps (E8)
     rcons explore --type TYPE [...]         bounded exhaustive model check

   TYPE names: register, tas, swap, faa, stack, queue, readable-stack,
   readable-queue, sticky, cas, consensus, S<n>, T<n> (e.g. S4, T6). *)

open Cmdliner

let parse_type name =
  let catalogue_alias =
    [
      ("register", "register(2)");
      ("tas", "test-and-set");
      ("swap", "swap(2)");
      ("faa", "fetch&add(mod 8)");
      ("stack", "stack(2)");
      ("queue", "queue(2)");
      ("readable-stack", "readable-stack(2)");
      ("readable-queue", "readable-queue(2)");
      ("sticky", "sticky-bit");
      ("cas", "compare&swap(2)");
      ("consensus", "consensus-object");
    ]
  in
  match List.assoc_opt name catalogue_alias with
  | Some canonical -> Ok (Rcons.Spec.Catalogue.find canonical).Rcons.Spec.Catalogue.ot
  | None -> (
      let parametric mk rest =
        match int_of_string_opt rest with
        | Some n when n >= 2 -> Ok (mk n)
        | Some _ | None -> Error (`Msg (Printf.sprintf "bad parameter in %S" name))
      in
      match name.[0] with
      | 'S' -> parametric Rcons.Spec.Sn.make (String.sub name 1 (String.length name - 1))
      | 'T' -> parametric Rcons.Spec.Tn.make (String.sub name 1 (String.length name - 1))
      | _ | (exception Invalid_argument _) ->
          Error (`Msg (Printf.sprintf "unknown type %S" name)))

let type_conv =
  let printer ppf ot = Format.pp_print_string ppf (Rcons.Spec.Object_type.name ot) in
  Arg.conv (parse_type, printer)

let default_types () = List.map (fun e -> e.Rcons.Spec.Catalogue.ot) Rcons.Spec.Catalogue.all

(* Shared --domains flag: every answer is independent of it (the domain
   pool's determinism contract); it only changes wall-clock time. *)
let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains"; "j" ]
        ~doc:
          "Number of OCaml 5 domains for the witness searches / the schedule explorer (1 = \
           sequential; results are identical either way).")

(* --- classify --- *)

let classify_cmd =
  let run limit domains types =
    let types = if types = [] then default_types () else types in
    List.iter
      (fun ot ->
        Format.printf "%a@." Rcons.Check.Classify.pp_report (Rcons.classify ~domains ~limit ot))
      types;
    0
  in
  let limit = Arg.(value & opt int 5 & info [ "limit" ] ~doc:"Largest n to test.") in
  let types = Arg.(value & pos_all type_conv [] & info [] ~docv:"TYPE") in
  Cmd.v
    (Cmd.info "classify" ~doc:"Discerning/recording levels and cons/rcons bounds (experiment E1)")
    Term.(const run $ limit $ domains_arg $ types)

(* --- solve --- *)

let solve_cmd =
  let run ot n crash_prob seed =
    match Rcons.solve_rc ot ~n with
    | None ->
        Format.eprintf "%s is not %d-recording: no certificate, cannot solve %d-process RC@."
          (Rcons.Spec.Object_type.name ot) n n;
        1
    | Some decide ->
        let inputs = Array.init n (fun i -> 100 + i) in
        let outputs = Rcons.Algo.Outputs.make ~inputs in
        let body pid () = Rcons.Algo.Outputs.record outputs pid (decide pid inputs.(pid)) in
        let sim = Rcons.Runtime.Sim.create ~n body in
        let rng = Random.State.make [| seed |] in
        let crashes =
          Rcons.Runtime.Drivers.random ~crash_prob ~max_crashes:(4 * n) ~rng sim
        in
        Format.printf "%d processes, %d crashes:@." n crashes;
        Array.iteri
          (fun pid outs ->
            Format.printf "  p%d -> %s@." pid (String.concat "," (List.map string_of_int outs)))
          outputs.Rcons.Algo.Outputs.outputs;
        Format.printf "agreement=%b validity=%b@."
          (Rcons.Algo.Outputs.agreement_ok outputs)
          (Rcons.Algo.Outputs.validity_ok outputs);
        if Rcons.Algo.Outputs.agreement_ok outputs && Rcons.Algo.Outputs.validity_ok outputs
        then 0
        else 1
  in
  let ot = Arg.(required & opt (some type_conv) None & info [ "type" ] ~doc:"Object type.") in
  let n = Arg.(value & opt int 3 & info [ "procs"; "n" ] ~doc:"Number of processes.") in
  let crash_prob =
    Arg.(value & opt float 0.2 & info [ "crash-prob" ] ~doc:"Per-step crash probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Adversary seed.") in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run recoverable consensus under a random crash adversary")
    Term.(const run $ ot $ n $ crash_prob $ seed)

(* --- impossible --- *)

let impossible_cmd =
  let run verbose =
    let reports =
      [
        Rcons.Valency.Impossibility.analyse_stack ();
        Rcons.Valency.Impossibility.analyse_queue ();
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Test_and_set.t;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Register.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Fetch_add.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Swap.default;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Sticky_bit.t;
        Rcons.Valency.Impossibility.analyse Rcons.Spec.Cas.default;
      ]
    in
    List.iter
      (fun r ->
        if verbose then Format.printf "%a@." Rcons.Valency.Impossibility.pp_report r
        else Format.printf "%a@." Rcons.Valency.Impossibility.summary r)
      reports;
    0
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every configuration.") in
  Cmd.v
    (Cmd.info "impossible" ~doc:"Appendix H valency sweeps: which types have rcons = 1 (E8)")
    Term.(const run $ verbose)

(* --- explore --- *)

let explore_cmd =
  let run ot max_crashes domains dedup =
    match Rcons.Check.Recording.witness ~domains ot 2 with
    | None ->
        Format.eprintf "%s has no 2-recording witness@." (Rcons.Spec.Object_type.name ot);
        1
    | Some cert ->
        let mk () =
          let inputs = [| 111; 222 |] in
          let outputs = Rcons.Algo.Outputs.make ~inputs in
          let tc = Rcons.Algo.Team_consensus.create cert in
          let body pid () =
            let team, slot =
              if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0)
            in
            Rcons.Algo.Outputs.record outputs pid
              (tc.Rcons.Algo.Team_consensus.decide team slot inputs.(pid))
          in
          ( Rcons.Runtime.Sim.create ~n:2 body,
            fun () ->
              Rcons.Algo.Outputs.check_exn ~fail:Rcons.Runtime.Explore.fail outputs )
        in
        (match Rcons.Runtime.Explore.explore ~max_crashes ~domains ~dedup ~mk () with
        | stats ->
            Format.printf
              "exhaustive: %d schedules, %d nodes, max depth %d -- no violation@."
              stats.Rcons.Runtime.Explore.schedules stats.Rcons.Runtime.Explore.nodes
              stats.Rcons.Runtime.Explore.max_depth;
            if dedup then
              Format.printf "dedup: %d distinct states, %d hits (node counts are state-graph edges)@."
                stats.Rcons.Runtime.Explore.distinct_states
                stats.Rcons.Runtime.Explore.dedup_hits
        | exception Rcons.Runtime.Explore.Violation (msg, sched) ->
            Format.printf "VIOLATION: %s at %a@." msg Rcons.Runtime.Explore.pp_schedule sched);
        0
  in
  let ot = Arg.(required & opt (some type_conv) None & info [ "type" ] ~doc:"Object type.") in
  let max_crashes =
    Arg.(value & opt int 1 & info [ "max-crashes" ] ~doc:"Crash budget for the explorer.")
  in
  let dedup =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Deduplicate states by canonical fingerprint: much faster on multi-crash budgets, \
             but node/schedule counts then refer to the state graph, not the raw schedule tree.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively model-check Figure 2 on the type's 2-recording certificate")
    Term.(const run $ ot $ max_crashes $ domains_arg $ dedup)

(* --- critical --- *)

let critical_cmd =
  let run ot =
    match Rcons.Check.Recording.witness ot 2 with
    | None ->
        Format.eprintf "%s has no 2-recording witness@." (Rcons.Spec.Object_type.name ot);
        1
    | Some cert ->
        let mk () =
          let tc = Rcons.Algo.Team_consensus.create cert in
          let outs = Array.make 2 None in
          let body pid () =
            let team, slot =
              if pid = 0 then (Rcons.Spec.Team.A, 0) else (Rcons.Spec.Team.B, 0)
            in
            outs.(pid) <- Some (tc.Rcons.Algo.Team_consensus.decide team slot pid)
          in
          (Rcons.Runtime.Sim.create ~n:2 body, fun () -> outs)
        in
        (match Rcons.Valency.Critical.find_critical ~mk () with
        | report -> Format.printf "%a@." Rcons.Valency.Critical.pp_report report
        | exception Rcons.Valency.Critical.Search_space_exhausted msg ->
            Format.printf "no critical execution found: %s@." msg);
        0
  in
  let ot = Arg.(required & opt (some type_conv) None & info [ "type" ] ~doc:"Object type.") in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Exhibit Theorem 14's critical execution for Figure 2 on the type's certificate \
          (experiment E11)")
    Term.(const run $ ot)

let () =
  let info =
    Cmd.info "rcons" ~version:"1.0.0"
      ~doc:"Recoverable consensus vs consensus: executable PODC 2022 reproduction"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ classify_cmd; solve_cmd; impossible_cmd; explore_cmd; critical_cmd ]))
