# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test quick bench parallel docs clean

all: build

build:
	dune build @all

# Full suite, including the exhaustive model-checking tiers (minutes).
test:
	dune runtest

# Fast tier: skips the suites dominated by bounded exhaustive
# exploration (sets RCONS_QUICK via the @quick alias in test/dune).
quick:
	dune build @quick

# Regenerate every experiment table (E1-E12).
bench:
	dune exec bench/main.exe

# Sequential-vs-parallel comparison; rewrites BENCH_parallel.json.
parallel:
	dune exec bench/main.exe -- --parallel

# API docs (requires odoc in the switch).
docs:
	dune build @doc
	@echo "open _build/default/_doc/_html/index.html"

clean:
	dune clean
