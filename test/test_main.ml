(* Entry point for the whole test suite.  Each sub-file exports a [suite]
   value; run everything under one Alcotest binary so that `dune runtest`
   covers the full repository.

   Setting RCONS_QUICK (the `dune build @quick` alias does) drops the
   suites dominated by bounded exhaustive exploration -- they are the
   model-checking tier, minutes of work, and the quick tier is for the
   edit-compile-test loop.  Alcotest's own `Slow marking still applies
   within the remaining suites. *)

let quick = Sys.getenv_opt "RCONS_QUICK" <> None

(* [true] marks suites whose cost is dominated by the exhaustive
   schedule explorer. *)
let suites =
  [
    ("spec", Test_spec.suite, false);
    ("misc", Test_misc.suite, false);
    ("enumerate", Test_enumerate.suite, false);
    ("search", Test_search.suite, false);
    ("checkers", Test_checkers.suite, false);
    ("certs", Test_certs.suite, false);
    ("theorems", Test_theorems.suite, false);
    ("oracle", Test_oracle.suite, false);
    ("runtime", Test_runtime.suite, false);
    ("adversary", Test_adversary.suite, false);
    ("team-consensus", Test_team_consensus.suite, true);
    ("tournament", Test_tournament.suite, true);
    ("simultaneous", Test_simultaneous.suite, false);
    ("recoverable-cas", Test_rcas.suite, false);
    ("history", Test_history.suite, false);
    ("lin-oracle", Test_lin_oracle.suite, false);
    ("conditions", Test_conditions.suite, false);
    ("universal", Test_universal.suite, false);
    ("valency", Test_valency.suite, false);
    ("critical", Test_critical.suite, false);
    ("robustness", Test_robustness.suite, false);
    ("persist", Test_persist.suite, false);
    ("injection", Test_injection.suite, true);
    ("integration", Test_integration.suite, true);
    ("parallel", Test_parallel.suite, true);
    ("dedup", Test_dedup.suite, true);
    ("reduction", Test_reduction.suite, true);
    ("log", Test_log.suite, false);
    ("service", Test_service.suite, false);
  ]

let () =
  Alcotest.run "rcons"
    (List.filter_map
       (fun (name, suite, exhaustive) ->
         if quick && exhaustive then None else Some (name, suite))
       suites)
