(* The recoverable replicated log (lib/log/rlog.ml): recovery replay,
   the quorum-counter committed prefix, prefix durability under every
   persist policy, and the negative controls.

   The headline facts, machine-checked here:
   - recovery is deterministic from (seed, adversary, persist policy) on
     any domain count (qcheck property);
   - a process recovers correctly whether its crash lands before slot 0,
     mid-chain, or after the last slot, under each persist policy (the
     unit matrix);
   - the annotated log passes exhaustive 1-crash sweeps under
     eager/lossy/torn; the barrier-free variant violates under lossy
     (the committed _counterexamples/e14_log_lossy.json replays the
     shrunk slots=2 agreement witness) and the inverted barrier order
     commits a slot whose decision is not durable. *)

open Rcons_runtime
module Rlog = Rcons_log.Rlog
module Cex = Rcons.Counterexample

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let cert2 = lazy (Helpers.cert_of Rcons_spec.Sticky_bit.t 2)

let under policy f =
  match policy with Persist.Eager -> f () | p -> Persist.scoped p f

let policies = [ Persist.Eager; Persist.Lossy; Persist.Torn ]
let policy_str = Persist.policy_to_string

(* --- recovery determinism: qcheck over (seed, adversary, persist) --- *)

(* One full randomized run, summarized as a string fingerprint of
   everything observable: steps, crashes, the committed prefix, replay
   counts and the verdict. *)
let run_fingerprint ~seed ~adv ~policy =
  under policy (fun () ->
      let t, sim = Rlog.instance ~annotated:true ~slots:3 (Lazy.force cert2) in
      let trace = ref [] in
      let adv = Adversary.create ~seed adv in
      match
        Adversary.run ~record:false
          ~on_crash:(fun pid ->
            Rlog.note_crash t ~pid;
            trace := Rlog.committed t :: !trace)
          adv sim
      with
      | out ->
          let c = Rlog.committed t in
          let v = Rlog.verdict ~committed_trace:(List.rev (c :: !trace)) t in
          Printf.sprintf "steps=%d crashes=%d committed=%d replay=[%s] ok=%b"
            out.Adversary.steps out.Adversary.crashes c
            (String.concat ","
               (Array.to_list (Array.map string_of_int (Rlog.recovery_steps t))))
            (Rcons_history.Conditions.log_verdict_ok v)
      | exception Adversary.Stuck _ -> "stuck")

let adv_of_code code =
  match code mod 3 with
  | 0 -> Adversary.Storm { crash_prob = 0.05; burst = 2; max_crashes = 5 }
  | 1 -> Adversary.Uniform { crash_prob = 0.08; max_crashes = 5 }
  | _ -> Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.1; max_crashes = 5 }

let policy_of_code code = List.nth policies (code mod 3)

let qcheck_recovery_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"log recovery deterministic from (seed, adversary, persist)"
       ~print:(fun (s, a, p) -> Printf.sprintf "seed=%d adv=%d pol=%d" s a p)
       QCheck2.Gen.(triple (int_bound 10_000) (int_bound 2) (int_bound 2))
       (fun (seed, adv_code, pol_code) ->
         let go () =
           run_fingerprint ~seed ~adv:(adv_of_code adv_code)
             ~policy:(policy_of_code pol_code)
         in
         (* identical when re-run, and on every domain count: the run
            draws only from its own Random.State, never domain-local
            randomness *)
         let base = go () in
         let on_domains d = (Rcons_par.Pool.map ~domains:d 2 (fun _ -> go ())).(0) in
         base = go () && base = on_domains 2 && base = on_domains 4))

(* --- the unit recovery matrix: slot 0 / mid-chain / last slot --- *)

(* Drive process 0 solo for [s] steps, crash it, run it to completion,
   and report how many slots its recovery replayed from the chain.
   Deterministic: no randomness anywhere. *)
let replay_after_crash ~policy ~slots ~crash_at =
  under policy (fun () ->
      let t, sim = Rlog.instance ~annotated:true ~slots (Lazy.force cert2) in
      let steps = ref 0 in
      while !steps < crash_at && not (Sim.finished sim 0) do
        ignore (Sim.step_proc sim 0);
        incr steps
      done;
      Sim.crash sim 0;
      while not (Sim.finished sim 0) do
        ignore (Sim.step_proc sim 0)
      done;
      (Rlog.recovery_steps t).(0))

(* Total solo steps to completion, for placing the late crash. *)
let solo_steps ~policy ~slots =
  under policy (fun () ->
      let _, sim = Rlog.instance ~annotated:true ~slots (Lazy.force cert2) in
      let steps = ref 0 in
      while not (Sim.finished sim 0) do
        ignore (Sim.step_proc sim 0);
        incr steps
      done;
      !steps)

let test_recovery_matrix () =
  let slots = 3 in
  List.iter
    (fun policy ->
      let name fmt = Printf.sprintf fmt (policy_str policy) in
      let total = solo_steps ~policy ~slots in
      (* crash before any step: recovery replays nothing (slot 0 is
         reached by appending, not replaying) *)
      Alcotest.(check int) (name "%s: crash at start replays 0") 0
        (replay_after_crash ~policy ~slots ~crash_at:1);
      (* crash after completion: the restart replays the whole chain *)
      Alcotest.(check int)
        (name "%s: crash after the last slot replays all")
        slots
        (replay_after_crash ~policy ~slots ~crash_at:total);
      (* sweeping the crash point must hit every intermediate replay
         count: mid-chain recovery at slot 1 and 2 *)
      let observed = Array.make (slots + 1) false in
      for s = 1 to total do
        let r = replay_after_crash ~policy ~slots ~crash_at:s in
        Alcotest.(check bool)
          (name "%s: replay count within range")
          true
          (r >= 0 && r <= slots);
        observed.(r) <- true
      done;
      for r = 0 to slots do
        Alcotest.(check bool)
          (Printf.sprintf "%s: some crash point recovers at slot %d" (policy_str policy) r)
          true observed.(r)
      done)
    policies

(* --- exhaustive: the annotated log passes, the controls fail --- *)

let explore_log ?(annotated = true) ?(vote_first = false) ~policy ~slots () =
  let mk () =
    let t, sim = Rlog.instance ~annotated ~vote_first ~slots (Lazy.force cert2) in
    (sim, fun () -> Rlog.check_exn ~fail:Explore.fail t)
  in
  under policy (fun () ->
      Explore.explore ~max_crashes:1 ~dedup:true ~por:true ~mk ())

let test_annotated_exhaustive () =
  List.iter
    (fun policy ->
      match explore_log ~policy ~slots:1 () with
      | stats ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: explored %d schedules / %d nodes" (policy_str policy)
               stats.Explore.schedules stats.Explore.nodes)
            true (stats.Explore.schedules > 0)
      | exception Explore.Violation v ->
          Alcotest.fail
            (Printf.sprintf "annotated log violated under %s: %s" (policy_str policy)
               v.Explore.v_msg))
    policies

let test_barrier_free_violates_lossy () =
  match explore_log ~annotated:false ~policy:Persist.Lossy ~slots:1 () with
  | _ -> Alcotest.fail "expected a violation from the barrier-free log under lossy"
  | exception Explore.Violation v ->
      Alcotest.(check bool)
        ("found: " ^ v.Explore.v_msg)
        true
        (String.length v.Explore.v_msg > 0)

let test_vote_first_commits_undurable () =
  (* The inverted barrier order (vote durable before the decision) is
     caught by the prefix-durability checker: a committed slot whose
     decision the heap cannot produce after a crash. *)
  match explore_log ~vote_first:true ~policy:Persist.Lossy ~slots:1 () with
  | _ -> Alcotest.fail "expected the vote-first barrier order to violate"
  | exception Explore.Violation v ->
      Alcotest.(check bool)
        ("diagnosis names durability: " ^ v.Explore.v_msg)
        true
        (contains ~sub:"not durable" v.Explore.v_msg)

(* --- shrink + replay of a live-found violation --- *)

let test_shrunk_violation_replays () =
  let w = Cex.log ~persist:Persist.Lossy ~slots:1 "sticky" in
  match Cex.mk w with
  | Error e -> Alcotest.fail e
  | Ok mk -> (
      match Explore.explore ~max_crashes:1 ~dedup:true ~por:true ~mk () with
      | _ -> Alcotest.fail "expected a violation"
      | exception Explore.Violation v -> (
          let cex = Cex.of_violation w v in
          match Cex.minimize cex with
          | Error e -> Alcotest.fail ("shrink refused the witness: " ^ e)
          | Ok m -> (
              Alcotest.(check bool)
                "shrunk no longer than original" true
                (List.length m.Cex.schedule <= List.length v.Explore.v_schedule);
              Alcotest.(check bool)
                "records original length" true
                (m.Cex.shrunk_from = Some (List.length v.Explore.v_schedule));
              match Cex.replay m with
              | `Violated _ -> ()
              | `Passed -> Alcotest.fail "shrunk schedule no longer violates")))

(* --- the committed artifact --- *)

let find_artifact () =
  let rec go dir depth =
    if depth > 6 then None
    else
      let candidate = Filename.concat dir "_counterexamples/e14_log_lossy.json" in
      if Sys.file_exists candidate then Some candidate
      else go (Filename.concat dir "..") (depth + 1)
  in
  go "." 0

let test_committed_artifact_replays () =
  match find_artifact () with
  | None -> Alcotest.fail "cannot locate _counterexamples/e14_log_lossy.json"
  | Some file -> (
      let cex = Cex.load ~file in
      Alcotest.(check bool)
        "it is the replicated-log workload" true
        (cex.Cex.workload.Cex.log_slots = Some 2);
      Alcotest.(check bool)
        "under the lossy cache" true
        (cex.Cex.workload.Cex.persist = Persist.Lossy);
      Alcotest.(check bool) "barrier-free" false cex.Cex.workload.Cex.annotated;
      match Cex.replay cex with
      | `Violated msg ->
          Alcotest.(check bool)
            ("still fires: " ^ msg)
            true
            (contains ~sub:"agreement" msg || contains ~sub:"durable" msg)
      | `Passed -> Alcotest.fail "committed log witness went stale")

(* --- checkpoint robustness (satellite: atomic save, corrupt load) --- *)

let test_checkpoint_save_atomic_no_tmp () =
  (* A successful save must leave the temp file renamed away and the
     checkpoint loadable. *)
  let w = Cex.log ~persist:Persist.Lossy ~annotated:true ~slots:1 "sticky" in
  let mk = match Cex.mk w with Ok mk -> mk | Error e -> failwith e in
  let file = Filename.temp_file "rcons_ckpt" ".json" in
  (match
     Persist.scoped Persist.Lossy (fun () ->
         Explore.explore ~max_crashes:1 ~dedup:true ~node_budget:50 ~mk ())
   with
  | _ -> Alcotest.fail "tiny node budget should interrupt"
  | exception Explore.Interrupted ck ->
      Explore.save_checkpoint ~file ck;
      Alcotest.(check bool) "no .tmp residue" false (Sys.file_exists (file ^ ".tmp"));
      let ck' = Explore.load_checkpoint ~file in
      Explore.save_checkpoint ~file ck';
      Alcotest.(check bool) "round-trips" true (Sys.file_exists file);
      Sys.remove file)

let write_tmp contents =
  let file = Filename.temp_file "rcons_ckpt" ".json" in
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  file

let test_corrupt_checkpoint_diagnosis () =
  (* Garbage bytes: the loader must fail with a one-line diagnosis (the
     CLI maps these to exit 2), never a parser backtrace. *)
  let garbage = write_tmp "{\"version\": 1, \"frontier\": [[garbage" in
  (match Explore.load_checkpoint ~file:garbage with
  | _ -> Alcotest.fail "garbage checkpoint should not load"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("diagnosis is one line: " ^ msg)
        true
        (String.length msg > 0 && not (String.contains msg '\n')));
  Sys.remove garbage;
  (* Valid JSON of the wrong shape: named missing field. *)
  let wrong = write_tmp {|{"version": 1}|} in
  (match Explore.load_checkpoint ~file:wrong with
  | _ -> Alcotest.fail "field-less checkpoint should not load"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) ("names the problem: " ^ msg) true (String.length msg > 0));
  Sys.remove wrong;
  (* A checkpoint claiming an exploration engine this build does not
     know is from the future; its cursor may mean something else, so the
     loader must refuse it (CLI exit 2), not misresume it. *)
  let alien_engine =
    write_tmp
      {|{"version": 1, "kind": "explore-checkpoint", "max_crashes": 1, "max_steps": 100,
         "dedup": false, "por": false, "engine": "snapshot-v2",
         "stats": {"schedules": 0, "nodes": 1, "max_depth": 0, "dedup_hits": 0,
                   "distinct_states": 0, "por_pruned": 0, "symmetry_hits": 0},
         "cursor": ["s0"], "visited": []}|}
  in
  (match Explore.load_checkpoint ~file:alien_engine with
  | _ -> Alcotest.fail "unknown-engine checkpoint should not load"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("names the engine: " ^ msg)
        true
        (contains ~sub:"unknown exploration engine" msg && contains ~sub:"snapshot-v2" msg));
  Sys.remove alien_engine;
  (* Unreadable path: Sys_error, same exit-2 mapping in the CLI. *)
  match Explore.load_checkpoint ~file:"/nonexistent/nowhere.json" with
  | _ -> Alcotest.fail "missing checkpoint should not load"
  | exception Sys_error _ -> ()

(* --- name resolution used by the log workloads --- *)

let test_catalogue_alias_handling () =
  let resolves name =
    match Rcons_spec.Catalogue.of_name name with Ok _ -> true | Error _ -> false
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "%S resolves" name) true (resolves name))
    [ "sticky"; "sticky-bit"; "STICKY"; " sticky "; "S3"; "S_3"; "s3"; "tas"; "T4"; "T_4" ];
  (match Rcons_spec.Catalogue.of_name "no-such-type" with
  | Ok _ -> Alcotest.fail "bogus name resolved"
  | Error msg ->
      Alcotest.(check bool)
        ("error lists the valid names: " ^ msg)
        true
        (contains ~sub:"sticky-bit" msg && contains ~sub:"S<n>" msg));
  match Rcons_spec.Catalogue.of_name "S0" with
  | Ok _ -> Alcotest.fail "S0 resolved"
  | Error msg ->
      Alcotest.(check bool) ("out-of-range diagnosis: " ^ msg) true (contains ~sub:"n >= 2" msg)

let test_adversary_policy_names () =
  (* The CLI's --adversary resolver: every listed name round-trips, an
     unknown one gets the full listing (the CLI prints it and exits 2). *)
  List.iter
    (fun name ->
      match Adversary.policy_of_string name with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%S should resolve: %s" name e))
    Adversary.policy_names;
  match Adversary.policy_of_string "chaos-monkey" with
  | Ok _ -> Alcotest.fail "bogus adversary resolved"
  | Error msg ->
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "listing includes %S" name)
            true (contains ~sub:name msg))
        Adversary.policy_names

let suite =
  [
    qcheck_recovery_deterministic;
    Alcotest.test_case "recovery matrix: slot 0 / mid-chain / last" `Quick test_recovery_matrix;
    Alcotest.test_case "annotated log exhaustive under all policies" `Slow
      test_annotated_exhaustive;
    Alcotest.test_case "barrier-free log violates under lossy" `Slow
      test_barrier_free_violates_lossy;
    Alcotest.test_case "vote-first commits an un-durable decision" `Slow
      test_vote_first_commits_undurable;
    Alcotest.test_case "shrunk log violation still replays" `Slow test_shrunk_violation_replays;
    Alcotest.test_case "committed log witness replays" `Quick test_committed_artifact_replays;
    Alcotest.test_case "checkpoint save is atomic" `Quick test_checkpoint_save_atomic_no_tmp;
    Alcotest.test_case "corrupt checkpoint diagnosis" `Quick test_corrupt_checkpoint_diagnosis;
    Alcotest.test_case "catalogue aliases for log workloads" `Quick test_catalogue_alias_handling;
    Alcotest.test_case "adversary policy names round-trip" `Quick test_adversary_policy_names;
  ]
