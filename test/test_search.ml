(* Tests of the Q_X and R_{X,j} set computations (Definitions 2 and 4)
   against hand-computed values on small types. *)

open Rcons_spec
open Rcons_check

(* Hand-computed Q sets for S_3 with the canonical assignment of
   Proposition 21: q0 = (B,0), team A = {op_A}, team B = {op_B, op_B}.
   Q_A = {(A,0), (A,1), (A,2)} and Q_B = {(B,0), (B,1), (B,2)}. *)
let test_q_sets_s3 () =
  match Sn.make 3 with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let opa, opb =
        match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops"
      in
      let q0 = List.hd T.candidate_initial_states in
      let ms_a = S.multiset_of_list [ opa ] and ms_b = S.multiset_of_list [ opb; opb ] in
      let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
      let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
      Alcotest.(check int) "|Q_A| = 3" 3 (S.State_set.cardinal q_a);
      Alcotest.(check int) "|Q_B| = 3" 3 (S.State_set.cardinal q_b);
      Alcotest.(check bool) "disjoint" true S.State_set.(is_empty (inter q_a q_b));
      Alcotest.(check bool) "q0 in Q_B (wrap via op_B then op_A)" true (S.State_set.mem q0 q_b);
      Alcotest.(check bool) "q0 not in Q_A" false (S.State_set.mem q0 q_a)

(* Sticky bit, one process per team with different values:
   Q_A = {0-stuck}, Q_B = {1-stuck}. *)
let test_q_sets_sticky () =
  match Sticky_bit.t with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let q0 = List.hd T.candidate_initial_states in
      let s0, s1 = match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops" in
      let ms_a = S.multiset_of_list [ s0 ] and ms_b = S.multiset_of_list [ s1 ] in
      let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
      let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
      Alcotest.(check int) "|Q_A| = 1" 1 (S.State_set.cardinal q_a);
      Alcotest.(check int) "|Q_B| = 1" 1 (S.State_set.cardinal q_b);
      Alcotest.(check bool) "disjoint" true S.State_set.(is_empty (inter q_a q_b))

(* The 2-recording witness for the readable stack discovered during
   development: q0 = [0], team A = {push 1}, team B = {pop}.
   Q_A = {[1,0], [0]} and Q_B = {[], [1]}. *)
let test_q_sets_stack_witness () =
  let (module T) = Stack.spec ~domain:2 ~readable:true in
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list [ Stack.Push 1 ] and ms_b = S.multiset_of_list [ Stack.Pop ] in
  let q_a = S.reachable ~q0:[ 0 ] ~first:ms_a ~other:ms_b in
  let q_b = S.reachable ~q0:[ 0 ] ~first:ms_b ~other:ms_a in
  Alcotest.(check bool) "[1;0] in Q_A" true (S.State_set.mem [ 1; 0 ] q_a);
  Alcotest.(check bool) "[0] in Q_A (pop after push returns to q0)" true (S.State_set.mem [ 0 ] q_a);
  Alcotest.(check bool) "[] in Q_B" true (S.State_set.mem [] q_b);
  Alcotest.(check bool) "[1] in Q_B" true (S.State_set.mem [ 1 ] q_b);
  Alcotest.(check int) "|Q_A| = 2" 2 (S.State_set.cardinal q_a);
  Alcotest.(check int) "|Q_B| = 2" 2 (S.State_set.cardinal q_b)

(* Multiset grouping. *)
let test_multiset_of_list () =
  match Sn.make 3 with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let opa, opb = match T.update_ops with [ a; b ] -> (a, b) | _ -> Alcotest.fail "ops" in
      let ms = S.multiset_of_list [ opb; opa; opb ] in
      Alcotest.(check int) "two distinct ops" 2 (Array.length ms.S.ops);
      Alcotest.(check int) "total 3" 3 (S.total ms)

(* R-sets for test-and-set, hand-computed in the development notes:
   with both processes assigned TAS from q0 = false,
   R_{A, p_A} = {(false, true)}  (p_A goes first, possibly followed by B)
   R_{B, p_A} = {(true, true)}   (B went first, so A's TAS returns true) *)
let test_r_sets_tas () =
  match Test_and_set.t with
  | Object_type.Pack (module T) ->
      let module S = Search.Make (T) in
      let q0 = List.hd T.candidate_initial_states in
      let tas = List.hd T.update_ops in
      let ms = S.multiset_of_list [ tas ] in
      let r_a =
        S.responses ~q0 ~team_a:ms ~team_b:ms ~first:Team.A ~tracked_team:Team.A
          ~tracked_op:tas
      in
      let r_b =
        S.responses ~q0 ~team_a:ms ~team_b:ms ~first:Team.B ~tracked_team:Team.A
          ~tracked_op:tas
      in
      Alcotest.(check int) "|R_A| = 1" 1 (S.Pair_set.cardinal r_a);
      Alcotest.(check int) "|R_B| = 1" 1 (S.Pair_set.cardinal r_b);
      Alcotest.(check bool) "disjoint" true S.Pair_set.(is_empty (inter r_a r_b))

(* R-sets for the register: writes overwrite, so the tracked write's
   response (unit) and the possible final states overlap across teams. *)
let test_r_sets_register_overlap () =
  match Register.default with
  | Object_type.Pack (module T) -> (
      match T.update_ops with
      | [ w0; w1 ] ->
          let module S = Search.Make (T) in
          let q0 = List.hd T.candidate_initial_states in
          let ms_a = S.multiset_of_list [ w0 ] and ms_b = S.multiset_of_list [ w1 ] in
          let r_a =
            S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.A ~tracked_team:Team.A
              ~tracked_op:w0
          in
          let r_b =
            S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.B ~tracked_team:Team.A
              ~tracked_op:w0
          in
          Alcotest.(check bool) "R-sets overlap for a register" false
            S.Pair_set.(is_empty (inter r_a r_b))
      | _ -> Alcotest.fail "register universe")

(* The tracked instance must belong to its declared team. *)
let test_responses_rejects_missing_tracked () =
  match Sticky_bit.t with
  | Object_type.Pack (module T) -> (
      match T.update_ops with
      | [ s0; s1 ] ->
          let module S = Search.Make (T) in
          let q0 = List.hd T.candidate_initial_states in
          let ms_a = S.multiset_of_list [ s0 ] and ms_b = S.multiset_of_list [ s0 ] in
          Alcotest.check_raises "tracked not in team"
            (Invalid_argument "Search.responses: tracked operation not in its team") (fun () ->
              ignore
                (S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first:Team.A
                   ~tracked_team:Team.B ~tracked_op:s1))
      | _ -> Alcotest.fail "ops")

(* Q_X is prefix-closed: every state reachable in k steps is reachable in
   <= k steps; spot-check that intermediate states are present. *)
let test_q_prefix_closed () =
  let (module T) = Stack.spec ~domain:2 ~readable:true in
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list [ Stack.Push 0; Stack.Push 1 ] in
  let ms_b = S.multiset_of_list [ Stack.Push 0 ] in
  let q_a = S.reachable ~q0:[] ~first:ms_a ~other:ms_b in
  (* one-step states must be present alongside deeper ones *)
  Alcotest.(check bool) "[0] present" true (S.State_set.mem [ 0 ] q_a);
  Alcotest.(check bool) "[1] present" true (S.State_set.mem [ 1 ] q_a);
  Alcotest.(check bool) "[0;1] present" true (S.State_set.mem [ 0; 1 ] q_a);
  (* q0 itself is never in Q_X unless re-reached by updates *)
  Alcotest.(check bool) "q0 = [] not reachable with pushes only" false (S.State_set.mem [] q_a)

(* --- undo-engine mark/rollback (checkpoint/restore foundation) ------
   The explorer's undo engine rests on one contract, checked here
   directly against [Sim.mark]/[Sim.rollback] without the explorer in
   the way: rolling back to a mark restores the fingerprint (heap
   snapshot + per-process control state) byte-identically, across
   crash/recover cycles and flush/fence persist boundaries, under every
   persistency policy -- and the rolled-back system is live, not a
   corpse: it can be driven to completion again. *)

module USim = Rcons_runtime.Sim
module UCell = Rcons_runtime.Cell
module UHeap = Rcons_runtime.Heap
module UUndo = Rcons_runtime.Undo
module UPersist = Rcons_runtime.Persist

let with_undo_arena f =
  let saved = UHeap.current () in
  UHeap.activate (UHeap.create ());
  Fun.protect
    ~finally:(fun () ->
      match saved with Some a -> UHeap.activate a | None -> UHeap.deactivate ())
    (fun () ->
      UUndo.install ();
      Fun.protect ~finally:UUndo.uninstall f)

(* Two processes over a shared cell plus a private cell each; every body
   crosses a plain write, an explicit flush, a shared read-modify-write
   and a full fence, so marks taken anywhere straddle each kind of
   persist boundary. *)
let undo_sys () =
  let shared = UCell.make 0 in
  let privs = [| UCell.make 0; UCell.make 0 |] in
  USim.create ~n:2 (fun pid () ->
      UCell.write privs.(pid) (100 + pid);
      UCell.flush privs.(pid);
      UCell.write shared (1 + pid + UCell.read shared);
      USim.fence ();
      ignore (UCell.read shared))

let snap t =
  ( USim.fingerprint t,
    USim.total_steps t,
    List.init (USim.num_procs t) (fun i ->
        (USim.step_count t i, USim.crash_count t i, USim.finished t i, USim.started t i)) )

let drive_to_completion t =
  while not (USim.all_finished t) do
    for pid = 0 to USim.num_procs t - 1 do
      if not (USim.finished t pid) then ignore (USim.step_proc t pid)
    done
  done

let test_rollback_boundaries policy () =
  UPersist.scoped policy (fun () ->
      with_undo_arena (fun () ->
          let t = undo_sys () in
          Fun.protect
            ~finally:(fun () -> USim.abandon t)
            (fun () ->
              let s0 = snap t in
              let m0 = USim.mark t in
              (* p0 across its private write + flush step, p1 armed *)
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 1);
              let s1 = snap t in
              let m1 = USim.mark t in
              (* cross a crash/recover cycle and the fence *)
              USim.crash t 0;
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 1);
              ignore (USim.step_proc t 1);
              USim.crash t 1;
              ignore (USim.step_proc t 1);
              USim.rollback t m1;
              Alcotest.(check bool) "state restored at inner mark" true (snap t = s1);
              (* the rebuilt continuations are live: finish the run *)
              drive_to_completion t;
              Alcotest.(check bool) "resumed run completes" true (USim.all_finished t);
              (* rollback below an earlier mark, past the whole run *)
              USim.rollback t m0;
              Alcotest.(check bool) "state restored at initial mark" true (snap t = s0))))

(* Rollback to a mark taken inside a recovered run: the journal must
   restore the post-crash continuation (including the value log the
   recovery re-accumulated), not the pre-crash one. *)
let test_rollback_recovered_run policy () =
  UPersist.scoped policy (fun () ->
      with_undo_arena (fun () ->
          let t = undo_sys () in
          Fun.protect
            ~finally:(fun () -> USim.abandon t)
            (fun () ->
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 0);
              USim.crash t 0;
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 0);
              let s = snap t in
              let m = USim.mark t in
              ignore (USim.step_proc t 0);
              ignore (USim.step_proc t 0);
              USim.crash t 0;
              ignore (USim.step_proc t 1);
              USim.rollback t m;
              Alcotest.(check bool) "recovered-run state restored" true (snap t = s);
              Alcotest.(check int) "crash count preserved at mark" 1 (USim.crash_count t 0);
              drive_to_completion t)))

(* qcheck: a random schedule prefix, a mark, a random continuation
   (steps and crashes), a rollback -- the fingerprint at the mark comes
   back byte-identical, for a random persistency policy. *)
let undo_apply_codes t codes =
  List.iter
    (fun x ->
      let pid = x mod 2 in
      if x mod 7 = 0 then (if USim.started t pid || USim.finished t pid then USim.crash t pid)
      else if not (USim.finished t pid) then ignore (USim.step_proc t pid))
    codes

let qcheck_rollback_fingerprint =
  let gen =
    QCheck2.Gen.(
      triple (int_bound 2)
        (list_size (int_range 0 12) (int_bound 999))
        (list_size (int_range 0 12) (int_bound 999)))
  in
  let print (pol, pre, post) =
    Printf.sprintf "policy=%d pre=[%s] post=[%s]" pol
      (String.concat ";" (List.map string_of_int pre))
      (String.concat ";" (List.map string_of_int post))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"rollback restores fingerprint (random schedules)" ~print
       gen
       (fun (pol, pre, post) ->
         let policy =
           match pol with 0 -> UPersist.Eager | 1 -> UPersist.Lossy | _ -> UPersist.Torn
         in
         UPersist.scoped policy (fun () ->
             with_undo_arena (fun () ->
                 let t = undo_sys () in
                 Fun.protect
                   ~finally:(fun () -> USim.abandon t)
                   (fun () ->
                     undo_apply_codes t pre;
                     let fp = USim.fingerprint t in
                     let m = USim.mark t in
                     undo_apply_codes t post;
                     USim.rollback t m;
                     USim.fingerprint t = fp)))))

let suite =
  [
    Alcotest.test_case "Q sets for S_3 (hand-computed)" `Quick test_q_sets_s3;
    Alcotest.test_case "Q sets for sticky bit" `Quick test_q_sets_sticky;
    Alcotest.test_case "Q sets: readable-stack witness" `Quick test_q_sets_stack_witness;
    Alcotest.test_case "multiset grouping" `Quick test_multiset_of_list;
    Alcotest.test_case "R sets for TAS (hand-computed)" `Quick test_r_sets_tas;
    Alcotest.test_case "R sets overlap for register" `Quick test_r_sets_register_overlap;
    Alcotest.test_case "responses rejects missing tracked op" `Quick
      test_responses_rejects_missing_tracked;
    Alcotest.test_case "Q sets are prefix-closed" `Quick test_q_prefix_closed;
    Alcotest.test_case "rollback across flush/fence boundaries (eager)" `Quick
      (test_rollback_boundaries UPersist.Eager);
    Alcotest.test_case "rollback across flush/fence boundaries (lossy)" `Quick
      (test_rollback_boundaries UPersist.Lossy);
    Alcotest.test_case "rollback across flush/fence boundaries (torn)" `Quick
      (test_rollback_boundaries UPersist.Torn);
    Alcotest.test_case "rollback into a recovered run (eager)" `Quick
      (test_rollback_recovered_run UPersist.Eager);
    Alcotest.test_case "rollback into a recovered run (lossy)" `Quick
      (test_rollback_recovered_run UPersist.Lossy);
    Alcotest.test_case "rollback into a recovered run (torn)" `Quick
      (test_rollback_recovered_run UPersist.Torn);
    qcheck_rollback_fingerprint;
  ]
