(* The crash-churn service (lib/service): session fibers, admission
   control, retry/backoff, the soak engine and its online checkers.

   The headline facts, machine-checked here:
   - a soak replayed from (seed, adversary policy, persist policy)
     yields identical reports -- commit order, shed and retry counts,
     every histogram -- across 1, 2 and 4 domains (qcheck property);
   - annotated fleets under storm churn ack every submitted op with zero
     checker violations for each persist policy;
   - the negative control (barrier-free universal instance under lossy
     churn) is caught by the online checkers, and the barrier-free log
     collapses availability (never acks) instead of lying;
   - overload sheds explicitly (Overloaded answers, bounded queue) and
     every session still terminates;
   - the incremental adversary API: [decide] respects crash budgets and
     windows, [crashes_injected] counts delivered crashes,
     [next_crash_hint] peeks the schedule. *)

open Rcons_runtime
module Service = Rcons.Service
module Instance = Service.Instance
module Soak = Service.Soak
module Metrics = Service.Metrics
module Backoff = Service.Backoff
module Admission = Service.Admission
module Session = Service.Session

let cert2 = lazy (Helpers.cert_of Rcons_spec.Sticky_bit.t 2)

(* --- shared fleet builders (small: the qcheck property runs many) --- *)

let adversaries =
  [|
    Adversary.Uniform { crash_prob = 0.06; max_crashes = 6 };
    Adversary.Storm { crash_prob = 0.06; burst = 2; max_crashes = 8 };
    Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.1; max_crashes = 6 };
    Adversary.Simultaneous { crash_at = [ 30; 200 ] };
    Adversary.Quiescent { period = 40; active = 10; crash_prob = 0.1; max_crashes = 6 };
  |]

let policies = [| Persist.Eager; Persist.Lossy; Persist.Torn |]

let small_fleet ~seed ~adversary ~persist =
  List.init 3 (fun id ->
      let base =
        {
          (Soak.default ~id ~seed) with
          Instance.adversary;
          persist;
          sessions = 8;
          ops_per_session = 3;
          open_ops = 3;
          open_rate = 0.2;
        }
      in
      if id = 2 then
        {
          base with
          Instance.kind = Instance.Log;
          cert = Some (Lazy.force cert2);
          sessions = 6;
          ops_per_session = 2;
        }
      else base)

(* --- determinism: 1 = 2 = 4 domains, and replay = original --- *)

let qcheck_soak_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12
       ~name:"soak replay from (seed, adversary, persist) is identical on 1/2/4 domains"
       QCheck2.Gen.(triple (int_bound 10_000) (int_bound 4) (int_bound 2))
       (fun (seed, ai, pi) ->
         let fleet () =
           small_fleet ~seed:(seed + 1) ~adversary:adversaries.(ai) ~persist:policies.(pi)
         in
         let o1 = Soak.run ~domains:1 (fleet ()) in
         let o2 = Soak.run ~domains:2 (fleet ()) in
         let o4 = Soak.run ~domains:4 (fleet ()) in
         let o1' = Soak.run ~domains:1 (fleet ()) in
         o1.Soak.reports = o2.Soak.reports
         && o1.Soak.reports = o4.Soak.reports
         && o1.Soak.reports = o1'.Soak.reports
         && o1.Soak.summary = o2.Soak.summary
         && o1.Soak.summary = o4.Soak.summary))

(* --- annotated fleets: everything acked, no violations, any policy --- *)

let annotated_soak_acks_everything () =
  Array.iter
    (fun persist ->
      let o =
        Soak.run
          (small_fleet ~seed:77
             ~adversary:(Adversary.Storm { crash_prob = 0.08; burst = 2; max_crashes = 10 })
             ~persist)
      in
      let s = o.Soak.summary in
      Alcotest.(check int)
        (Printf.sprintf "gave_up under %s" (Persist.policy_to_string persist))
        0 s.Soak.s_gave_up;
      Alcotest.(check int)
        (Printf.sprintf "acked = submitted under %s" (Persist.policy_to_string persist))
        s.Soak.s_submitted s.Soak.s_acked;
      Alcotest.(check int)
        (Printf.sprintf "stuck under %s" (Persist.policy_to_string persist))
        0 s.Soak.s_stuck;
      Alcotest.(check bool)
        (Printf.sprintf "crashes delivered under %s" (Persist.policy_to_string persist))
        true
        (s.Soak.s_crashes_delivered > 0))
    policies

(* --- negative controls: the checkers are not vacuous --- *)

let bare_universal_is_caught () =
  let violated = ref 0 in
  for seed = 1 to 4 do
    let cfg =
      {
        (Soak.default ~id:0 ~seed) with
        Instance.annotated = false;
        persist = Persist.Lossy;
        adversary = Adversary.Storm { crash_prob = 0.08; burst = 2; max_crashes = 30 };
      }
    in
    match Instance.run cfg with
    | _ -> ()
    | exception Instance.Violation _ -> incr violated
  done;
  Alcotest.(check bool) "barrier-free universal caught under lossy churn" true (!violated >= 3)

let bare_log_never_acks () =
  (* without barriers the lossy log's quorum counter never becomes
     durable: it must refuse to acknowledge rather than lie *)
  let cfg =
    {
      (Soak.default ~id:0 ~seed:5) with
      Instance.kind = Instance.Log;
      cert = Some (Lazy.force cert2);
      annotated = false;
      persist = Persist.Lossy;
      sessions = 6;
      ops_per_session = 2;
      open_ops = 0;
      open_rate = 0.0;
      adversary = Adversary.Storm { crash_prob = 0.1; burst = 2; max_crashes = 30 };
    }
  in
  let r = Instance.run cfg in
  Alcotest.(check int) "no acks without durable commits" 0 r.Instance.r_acked;
  Alcotest.(check bool) "clients gave up" true (r.Instance.r_gave_up > 0);
  Alcotest.(check bool) "terminated" true (not r.Instance.r_stuck)

(* --- overload: explicit shedding, no deadlock, no silent drops --- *)

let overload_sheds_and_terminates () =
  let cfg =
    {
      (Soak.default ~id:0 ~seed:11) with
      Instance.sessions = 40;
      queue_cap = 4;
      persist = Persist.Lossy;
      adversary = Adversary.Uniform { crash_prob = 0.04; max_crashes = 8 };
    }
  in
  let r = Instance.run cfg in
  Alcotest.(check bool) "shed" true (r.Instance.r_shed > 0);
  Alcotest.(check bool) "overload answers" true (r.Instance.r_overloads > 0);
  Alcotest.(check bool) "terminated" true (not r.Instance.r_stuck);
  Alcotest.(check bool) "queue bounded" true (r.Instance.r_queue_high_water <= 4);
  (* no silent drops: every op is accounted for as acked, completed
     after its client gave up, or given up *)
  Alcotest.(check bool) "some ops still acked" true (r.Instance.r_acked > 0);
  Alcotest.(check int) "audit: acked + gave_up = submitted" r.Instance.r_submitted
    (r.Instance.r_acked + r.Instance.r_gave_up)

(* --- config validation --- *)

let validate_rejects () =
  let base = Soak.default ~id:0 ~seed:1 in
  let invalid name cfg =
    match Instance.validate cfg with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  invalid "window + in-flight over the 62-op bound" { base with Instance.check_window = 55 };
  invalid "log without certificate" { base with Instance.kind = Instance.Log };
  invalid "empty worker pool" { base with Instance.workers = 0 };
  invalid "zero queue cap" { base with Instance.queue_cap = 0 };
  invalid "open ops without a rate"
    { base with Instance.open_ops = 5; open_rate = 0.0 };
  invalid "final-check-only over 62 ops" { base with Instance.check_window = 0 };
  Instance.validate { base with Instance.check_window = 0; sessions = 10; ops_per_session = 4; open_ops = 0; open_rate = 0.0 }

(* --- metrics --- *)

let metrics_units () =
  let h = Metrics.hist ~cap:8 () in
  List.iter (Metrics.add h) [ 1; 1; 2; 3; 100 ];
  Alcotest.(check int) "p50" 2 (Metrics.percentile h 0.50);
  Alcotest.(check int) "p99 in overflow reports max_seen" 100 (Metrics.percentile h 0.99);
  Alcotest.(check int) "max" 100 h.Metrics.max_seen;
  let h2 = Metrics.hist ~cap:8 () in
  Metrics.add h2 4;
  Metrics.merge_into ~dst:h2 h;
  Alcotest.(check int) "merged total" 6 h2.Metrics.total;
  Alcotest.(check bool) "sparse is ascending" true
    (let s = List.map fst (Metrics.sparse h2) in
     s = List.sort_uniq compare s);
  let empty = Metrics.hist () in
  Alcotest.(check int) "empty percentile" 0 (Metrics.percentile empty 0.99)

let backoff_units () =
  let p = Backoff.default in
  let rng = Random.State.make [| 9 |] in
  for attempt = 0 to 40 do
    let d = Backoff.delay p ~rng ~attempt in
    Alcotest.(check bool)
      (Printf.sprintf "delay attempt %d in [1, cap]" attempt)
      true
      (d >= 1 && d <= p.Backoff.cap)
  done;
  (* exactly one draw per delay: two states stay in lockstep *)
  let r1 = Random.State.make [| 4 |] and r2 = Random.State.make [| 4 |] in
  let _ = Backoff.delay p ~rng:r1 ~attempt:0 in
  let _ = Random.State.int r2 (max 1 (min p.Backoff.cap p.Backoff.base)) in
  Alcotest.(check int) "one draw per delay" (Random.State.bits r1) (Random.State.bits r2);
  (match Backoff.validate { p with Backoff.base = 0 } with
  | () -> Alcotest.fail "base 0 accepted"
  | exception Invalid_argument _ -> ())

let admission_units () =
  let q = Admission.create ~cap:2 in
  Alcotest.(check bool) "admit 1" true (Admission.try_enqueue q "a");
  Alcotest.(check bool) "admit 2" true (Admission.try_enqueue q "b");
  Alcotest.(check bool) "shed at cap" false (Admission.try_enqueue q "c");
  Alcotest.(check int) "shed count" 1 (Admission.shed q);
  Alcotest.(check int) "high water" 2 (Admission.high_water q);
  Alcotest.(check (list string)) "FIFO pop" [ "a"; "b" ] (Admission.pop_up_to q 5);
  Alcotest.(check bool) "empty after drain" true (Admission.is_empty q);
  Alcotest.(check int) "admitted" 2 (Admission.admitted q)

let session_units () =
  let log = ref [] in
  let s =
    Session.spawn (fun ctx ->
        (match ctx.Session.call ~idx:0 with
        | Session.Done v -> log := `Done v :: !log
        | Session.Overloaded -> log := `Over :: !log
        | Session.Timeout -> log := `Timeout :: !log);
        ctx.Session.sleep 3;
        log := `Awake :: !log)
  in
  Session.start s;
  (match Session.poised s with
  | Session.Calling 0 -> ()
  | _ -> Alcotest.fail "expected Calling 0");
  Session.answer s (Session.Done 42);
  (match Session.poised s with
  | Session.Sleeping 3 -> ()
  | _ -> Alcotest.fail "expected Sleeping 3");
  Session.wake s;
  Alcotest.(check bool) "finished" true (Session.poised s = Session.Finished);
  Alcotest.(check bool) "body observed answer then woke" true
    (!log = [ `Awake; `Done 42 ]);
  (* abort reclaims an unfinished fiber *)
  let s2 = Session.spawn (fun ctx -> ignore (ctx.Session.call ~idx:1)) in
  Session.start s2;
  Session.abort s2;
  Alcotest.(check bool) "aborted session finished" true (Session.poised s2 = Session.Finished)

(* --- the incremental adversary API --- *)

let adversary_decide_budget () =
  let a = Adversary.create ~seed:3 (Adversary.Uniform { crash_prob = 1.0; max_crashes = 3 }) in
  let total = ref 0 in
  for step = 0 to 9 do
    total := !total + List.length (Adversary.decide a ~eligible:[ 0; 1; 2 ] ~total_steps:step)
  done;
  Alcotest.(check int) "budget respected" 3 !total;
  Alcotest.(check int) "crashes_injected counts" 3 (Adversary.crashes_injected a);
  Alcotest.(check int) "requested = budget" 3 (Adversary.crashes_requested a);
  Alcotest.(check (option int)) "hint exhausted" None (Adversary.next_crash_hint a ~total_steps:10);
  let b = Adversary.create ~seed:3 (Adversary.Storm { crash_prob = 1.0; burst = 2; max_crashes = 5 }) in
  let v1 = Adversary.decide b ~eligible:[ 0; 1; 2 ] ~total_steps:0 in
  Alcotest.(check int) "storm bursts" 2 (List.length v1);
  Alcotest.(check bool) "storm victims distinct" true (List.sort_uniq compare v1 = List.sort compare v1);
  let c = Adversary.create ~seed:3 (Adversary.Uniform { crash_prob = 1.0; max_crashes = 3 }) in
  Alcotest.(check (list int)) "empty pool" [] (Adversary.decide c ~eligible:[] ~total_steps:0)

let adversary_simultaneous_hint () =
  let a = Adversary.create ~seed:0 (Adversary.Simultaneous { crash_at = [ 30; 10 ] }) in
  Alcotest.(check (option int)) "first threshold" (Some 10)
    (Adversary.next_crash_hint a ~total_steps:0);
  Alcotest.(check (list int)) "not yet" [] (Adversary.decide a ~eligible:[ 0; 1 ] ~total_steps:9);
  let v = Adversary.decide a ~eligible:[ 0; 1 ] ~total_steps:12 in
  Alcotest.(check (list int)) "fires all eligible" [ 0; 1 ] v;
  Alcotest.(check int) "injected counts both" 2 (Adversary.crashes_injected a);
  Alcotest.(check (option int)) "next threshold relative" (Some 18)
    (Adversary.next_crash_hint a ~total_steps:12);
  let _ = Adversary.decide a ~eligible:[ 0 ] ~total_steps:30 in
  Alcotest.(check (option int)) "spent" None (Adversary.next_crash_hint a ~total_steps:31)

let adversary_quiescent_window () =
  let a =
    Adversary.create ~seed:1
      (Adversary.Quiescent { period = 10; active = 2; crash_prob = 1.0; max_crashes = 100 })
  in
  Alcotest.(check (option int)) "in window" (Some 0) (Adversary.next_crash_hint a ~total_steps:1);
  Alcotest.(check (option int)) "out of window" (Some 5)
    (Adversary.next_crash_hint a ~total_steps:5);
  Alcotest.(check (list int)) "quiescent part never fires" []
    (Adversary.decide a ~eligible:[ 0; 1 ] ~total_steps:7);
  Alcotest.(check int) "window crash fires" 1
    (List.length (Adversary.decide a ~eligible:[ 0; 1 ] ~total_steps:11))

let suite =
  [
    Alcotest.test_case "annotated soaks ack everything (eager/lossy/torn)" `Quick
      annotated_soak_acks_everything;
    Alcotest.test_case "barrier-free universal is caught by the online checkers" `Quick
      bare_universal_is_caught;
    Alcotest.test_case "barrier-free log refuses to ack rather than lie" `Quick
      bare_log_never_acks;
    Alcotest.test_case "overload sheds explicitly and terminates" `Quick
      overload_sheds_and_terminates;
    Alcotest.test_case "config validation rejects inconsistent knobs" `Quick validate_rejects;
    Alcotest.test_case "metrics histogram units" `Quick metrics_units;
    Alcotest.test_case "backoff delays bounded, one draw each" `Quick backoff_units;
    Alcotest.test_case "admission queue units" `Quick admission_units;
    Alcotest.test_case "session fiber lifecycle" `Quick session_units;
    Alcotest.test_case "adversary decide respects budgets" `Quick adversary_decide_budget;
    Alcotest.test_case "simultaneous thresholds and hints" `Quick adversary_simultaneous_hint;
    Alcotest.test_case "quiescent windows gate decide" `Quick adversary_quiescent_window;
    qcheck_soak_deterministic;
  ]
