(* Seeded crash adversaries, schedule shrinking, and budgeted resumable
   exploration.

   Pinned here:
   - determinism: the same [(seed, policy)] pair yields the same recorded
     schedule on every run, on every domain count ([Pool.map] sweep) --
     the replayability contract of the whole adversary subsystem;
   - stream compatibility: [Drivers.random] / [Drivers.simultaneous] are
     thin wrappers over [Adversary] and consume the RNG identically, so
     every EXPERIMENTS.md table survives the delegation;
   - recorded schedules replay: applying the recorded choice list to a
     fresh system reproduces the run (steps, crashes, outputs);
   - shrinker soundness: a minimized schedule still violates, is
     1-minimal, and (qcheck) minimization never loses an
     adversary-found violation;
   - checkpoint/resume: a budget-interrupted exploration, resumed any
     number of times (through the JSON round-trip), reports final
     statistics bit-identical to the uninterrupted run, in raw and in
     dedup mode;
   - counterexample artifacts: JSON round-trip preserves replayability,
     and replaying against the wrong workload is refused. *)

open Rcons_runtime

let sticky_cert = lazy (Helpers.cert_of Rcons_spec.Sticky_bit.t 2)
let sticky3_cert = lazy (Helpers.cert_of Rcons_spec.Sticky_bit.t 3)

let team_mk ?faithful cert () =
  let sys = Helpers.team_system ?faithful cert () in
  (sys.Helpers.sim, sys.Helpers.check)

(* A fresh 2-team system driven by [adv]; returns the outcome and the
   final total step count. *)
let drive ?record adv =
  let sys = Helpers.team_system (Lazy.force sticky_cert) () in
  let o = Adversary.run ?record adv sys.Helpers.sim in
  (o, Sim.total_steps sys.Helpers.sim)

let schedule_str sched = Format.asprintf "%a" Explore.pp_schedule sched

let policies =
  [
    ("uniform", Adversary.Uniform { crash_prob = 0.3; max_crashes = 5 });
    ("storm", Adversary.Storm { crash_prob = 0.3; burst = 2; max_crashes = 5 });
    ("targeted", Adversary.Targeted { victims = [ 0 ]; crash_prob = 0.4; max_crashes = 5 });
    ("simultaneous", Adversary.Simultaneous { crash_at = [ 3; 9 ] });
    ("quiescent", Adversary.Quiescent { period = 6; active = 3; crash_prob = 0.4; max_crashes = 5 });
  ]

(* --- same seed, same schedule --- *)

let test_seed_determinism () =
  List.iter
    (fun (name, pol) ->
      let run () = fst (drive (Adversary.create ~seed:11 pol)) in
      let a = run () and b = run () in
      Alcotest.(check string)
        (name ^ ": same seed, same schedule")
        (schedule_str a.Adversary.schedule)
        (schedule_str b.Adversary.schedule);
      Alcotest.(check int) (name ^ ": same crashes") a.Adversary.crashes b.Adversary.crashes;
      Alcotest.(check int)
        (name ^ ": crashes = crash choices")
        a.Adversary.crashes
        (Schedule.crashes a.Adversary.schedule))
    policies

let test_cross_domain_determinism () =
  let runs = 8 in
  let one i =
    let pol = snd (List.nth policies (i mod List.length policies)) in
    let o, _ = drive (Adversary.create ~seed:(100 + i) pol) in
    schedule_str o.Adversary.schedule
  in
  let seq = Rcons_par.Pool.map ~domains:1 runs one in
  List.iter
    (fun domains ->
      let par = Rcons_par.Pool.map ~domains runs one in
      Alcotest.(check (array string))
        (Printf.sprintf "schedules identical on %d domains" domains)
        seq par)
    [ 2; 4 ]

(* --- Drivers delegation: the historical entry points share the stream --- *)

let test_drivers_stream_parity () =
  for seed = 0 to 9 do
    let direct =
      let sys = Helpers.team_system (Lazy.force sticky_cert) () in
      let rng = Random.State.make [| seed |] in
      let adv = Adversary.of_rng ~rng (Adversary.Uniform { crash_prob = 0.3; max_crashes = 6 }) in
      let o = Adversary.run ~record:false adv sys.Helpers.sim in
      (o.Adversary.crashes, Sim.total_steps sys.Helpers.sim)
    in
    let via_drivers =
      let sys = Helpers.team_system (Lazy.force sticky_cert) () in
      let rng = Random.State.make [| seed |] in
      let crashes = Drivers.random ~crash_prob:0.3 ~max_crashes:6 ~rng sys.Helpers.sim in
      (crashes, Sim.total_steps sys.Helpers.sim)
    in
    Alcotest.(check (pair int int))
      (Printf.sprintf "Drivers.random = Adversary Uniform (seed %d)" seed)
      direct via_drivers
  done

(* --- recorded schedules replay --- *)

let test_recorded_schedule_replays () =
  List.iter
    (fun (name, pol) ->
      let o, steps = drive (Adversary.create ~seed:3 pol) in
      let sys = Helpers.team_system (Lazy.force sticky_cert) () in
      List.iter (Schedule.apply sys.Helpers.sim) o.Adversary.schedule;
      Alcotest.(check bool) (name ^ ": replay finishes the system") true
        (Sim.all_finished sys.Helpers.sim);
      Alcotest.(check int) (name ^ ": replay reproduces step count") steps
        (Sim.total_steps sys.Helpers.sim);
      sys.Helpers.check ())
    policies

let test_json_round_trip () =
  let o, _ = drive (Adversary.create ~seed:5 (snd (List.hd policies))) in
  let rt = Schedule.of_json (Json.parse_exn (Json.to_string (Schedule.to_json o.Adversary.schedule))) in
  Alcotest.(check string) "schedule JSON round-trip"
    (schedule_str o.Adversary.schedule)
    (schedule_str rt)

(* --- shrinker soundness --- *)

let broken_mk () = team_mk ~faithful:false (Lazy.force sticky3_cert) ()

let find_violation () =
  match Explore.explore ~max_crashes:0 ~mk:broken_mk () with
  | (_ : Explore.stats) -> Alcotest.fail "expected the broken variant to violate"
  | exception Explore.Violation v -> v

let test_shrink_sound_and_minimal () =
  let v = find_violation () in
  match Shrink.minimize ~mk:broken_mk v.Explore.v_schedule with
  | None -> Alcotest.fail "minimize lost the violation"
  | Some (shrunk, _msg) ->
      Alcotest.(check bool) "shrunk is no longer" true
        (List.length shrunk <= List.length v.Explore.v_schedule);
      (match Shrink.check ~mk:broken_mk shrunk with
      | None -> Alcotest.fail "shrunk schedule does not violate"
      | Some (_, used) ->
          Alcotest.(check int) "no dead tail: the whole shrunk schedule is consumed" used
            (List.length shrunk));
      (* 1-minimality: removing any single choice loses the violation *)
      List.iteri
        (fun i _ ->
          let without = List.filteri (fun j _ -> j <> i) shrunk in
          match Shrink.check ~mk:broken_mk without with
          | None -> ()
          | Some (msg, _) ->
              Alcotest.failf "removing choice %d still violates (%s): not 1-minimal" i msg)
        shrunk

(* Any violation an adversary stumbles on is never lost by minimization:
   for every seed, if the recorded run ends in violated outputs, the
   shrinker returns a violating schedule no longer than the original. *)
let qcheck_shrink_never_loses =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"minimization never loses an adversary-found violation"
       ~print:string_of_int
       QCheck2.Gen.(int_bound 10_000)
       (fun seed ->
         let sys = Helpers.team_system ~faithful:false (Lazy.force sticky3_cert) () in
         let adv =
           Adversary.create ~seed (Adversary.Uniform { crash_prob = 0.2; max_crashes = 4 })
         in
         let o = Adversary.run adv sys.Helpers.sim in
         match Shrink.check ~mk:broken_mk o.Adversary.schedule with
         | None -> true (* this seed found no violation: nothing to preserve *)
         | Some _ -> (
             match Shrink.minimize ~mk:broken_mk o.Adversary.schedule with
             | None -> false
             | Some (shrunk, _) ->
                 List.length shrunk <= List.length o.Adversary.schedule
                 && Shrink.check ~mk:broken_mk shrunk <> None)))

(* --- checkpoint / resume --- *)

let stats_str (s : Explore.stats) =
  Format.asprintf "{schedules=%d; nodes=%d; max_depth=%d; dedup_hits=%d; distinct_states=%d}"
    s.schedules s.nodes s.max_depth s.dedup_hits s.distinct_states

(* Run to completion under a node budget, resuming (through the JSON
   round-trip) every time the budget trips; count the interrupts. *)
let run_chunked ?dedup ~max_crashes ~node_budget mk =
  let interrupts = ref 0 in
  let rec go resume_from =
    match Explore.explore ?dedup ~max_crashes ~node_budget ?resume_from ~mk () with
    | stats -> (stats, !interrupts)
    | exception Explore.Interrupted cp ->
        incr interrupts;
        let cp = Explore.checkpoint_of_json (Explore.checkpoint_to_json cp) in
        go (Some cp)
  in
  go None

let test_resume_raw_bit_identical () =
  let mk = team_mk (Lazy.force sticky_cert) in
  let full = Explore.explore ~max_crashes:1 ~mk () in
  let chunked, interrupts = run_chunked ~max_crashes:1 ~node_budget:20_000 mk in
  Alcotest.(check bool) "budget actually tripped" true (interrupts >= 2);
  Alcotest.(check string) "raw resume: stats bit-identical" (stats_str full) (stats_str chunked)

let test_resume_dedup_bit_identical () =
  let mk = team_mk (Helpers.cert_of (Rcons_spec.Sn.make 2) 2) in
  let full = Explore.explore ~dedup:true ~max_crashes:2 ~mk () in
  let chunked, interrupts = run_chunked ~dedup:true ~max_crashes:2 ~node_budget:3_000 mk in
  Alcotest.(check bool) "dedup budget actually tripped" true (interrupts >= 2);
  Alcotest.(check string) "dedup resume: stats bit-identical" (stats_str full)
    (stats_str chunked)

let test_resume_finds_violation () =
  let rec go resume_from =
    match Explore.explore ~max_crashes:0 ~node_budget:50 ?resume_from ~mk:broken_mk () with
    | (_ : Explore.stats) -> Alcotest.fail "expected a violation across resumes"
    | exception Explore.Interrupted cp -> go (Some cp)
    | exception Explore.Violation v -> v
  in
  let direct = find_violation () in
  let resumed = go None in
  Alcotest.(check string) "violation schedule identical across resumes"
    (schedule_str direct.Explore.v_schedule)
    (schedule_str resumed.Explore.v_schedule)

let test_resume_parameter_mismatch_refused () =
  let mk = team_mk (Lazy.force sticky_cert) in
  match Explore.explore ~max_crashes:1 ~node_budget:500 ~mk () with
  | (_ : Explore.stats) -> Alcotest.fail "budget should have tripped"
  | exception Explore.Interrupted cp -> (
      match Explore.explore ~max_crashes:2 ~resume_from:cp ~mk () with
      | (_ : Explore.stats) -> Alcotest.fail "mismatched resume accepted"
      | exception Invalid_argument _ -> ())

(* --- counterexample artifacts --- *)

let test_artifact_round_trip () =
  let module Cex = Rcons.Counterexample in
  let w = Cex.team2 ~faithful:false ~level:3 "sticky" in
  let mk = match Cex.mk w with Ok mk -> mk | Error e -> Alcotest.fail e in
  match Explore.explore ~max_crashes:0 ~mk ~fingerprint:(Cex.fingerprint w) () with
  | (_ : Explore.stats) -> Alcotest.fail "expected a violation"
  | exception Explore.Violation v -> (
      let cex = Cex.of_violation w v in
      let min = match Cex.minimize cex with Ok m -> m | Error e -> Alcotest.fail e in
      Alcotest.(check bool) "shrunk_from recorded" true (min.Cex.shrunk_from <> None);
      let rt = Cex.of_json (Json.parse_exn (Json.to_string (Cex.to_json min))) in
      (match Cex.replay rt with
      | `Violated _ -> ()
      | `Passed -> Alcotest.fail "round-tripped artifact no longer violates");
      (* replay against the wrong workload is refused *)
      let wrong = { rt with Cex.workload = Cex.team2 "S_2" } in
      match Cex.replay wrong with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "fingerprint mismatch not detected")

let suite =
  [
    Alcotest.test_case "same seed => same schedule (all policies)" `Quick test_seed_determinism;
    Alcotest.test_case "schedules identical across domain counts" `Quick
      test_cross_domain_determinism;
    Alcotest.test_case "Drivers.random keeps the historical RNG stream" `Quick
      test_drivers_stream_parity;
    Alcotest.test_case "recorded schedules replay exactly" `Quick test_recorded_schedule_replays;
    Alcotest.test_case "schedule JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "shrunk witness violates and is 1-minimal" `Quick
      test_shrink_sound_and_minimal;
    qcheck_shrink_never_loses;
    Alcotest.test_case "resume: raw stats bit-identical" `Quick test_resume_raw_bit_identical;
    Alcotest.test_case "resume: dedup stats bit-identical" `Quick test_resume_dedup_bit_identical;
    Alcotest.test_case "resume: violation schedule preserved" `Quick test_resume_finds_violation;
    Alcotest.test_case "resume: parameter mismatch refused" `Quick
      test_resume_parameter_mismatch_refused;
    Alcotest.test_case "counterexample artifact round-trip" `Quick test_artifact_round_trip;
  ]
