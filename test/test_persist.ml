(* The weak-persistency fault model: the [Persist] write-back cache, the
   flush/fence barriers, the crash semantics (lossy / torn), their
   integration with fingerprints and the explorer, and the
   durable-linearizability condition built on them.

   The two headline facts, machine-checked here:
   - the un-annotated Figure 2 violates agreement under [Lossy] (the
     committed [_counterexamples/e12_fig2_lossy.json] replays it), and
   - the persist-annotated variant passes the exhaustive 1-crash check
     under the same policy. *)

open Rcons_runtime
module Cex = Rcons.Counterexample

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Locate the committed artifact from wherever the test runner is cwd'd:
   dune runs tests in _build sandboxes at varying depths. *)
let find_artifact () =
  let rec go dir depth =
    if depth > 6 then None
    else
      let candidate = Filename.concat dir "_counterexamples/e12_fig2_lossy.json" in
      if Sys.file_exists candidate then Some candidate else go (Filename.concat dir "..") (depth + 1)
  in
  go "." 0

(* --- the cache itself --- *)

let test_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "round-trips" true
        (Persist.policy_of_string (Persist.policy_to_string p) = p))
    [ Persist.Eager; Persist.Lossy; Persist.Torn ];
  (match Persist.policy_of_string "write-through" with
  | _ -> Alcotest.fail "unknown policy should raise"
  | exception Invalid_argument _ -> ());
  match Persist.create ~flush_cost:0 Persist.Lossy with
  | _ -> Alcotest.fail "flush_cost 0 should raise"
  | exception Invalid_argument _ -> ()

let test_eager_attaches_no_lines () =
  (* The eager cache creates no lines at all: cells built under it are
     indistinguishable from cells built with no cache, which is what
     keeps every seed digest and schedule byte-identical. *)
  Persist.scoped Persist.Eager (fun () ->
      let c = Cell.make 42 in
      Alcotest.(check bool) "no line" true (Cell.line c = None))

let test_lossy_revert_and_flush () =
  Persist.scoped Persist.Lossy (fun () ->
      let c = Cell.make 0 in
      let sim =
        Sim.create ~n:1 (fun _ () ->
            Cell.write c 1;
            (* un-flushed: a crash here loses the write *)
            Cell.write c 2;
            Cell.flush c;
            (* flushed: durable from here on *)
            Cell.write c 3)
      in
      ignore (Sim.step_proc sim 0) (* start *);
      ignore (Sim.step_proc sim 0) (* write 1 *);
      Alcotest.(check int) "volatile copy visible" 1 (Cell.peek c);
      Alcotest.(check int) "durable copy untouched" 0 (Cell.peek_persisted c);
      Sim.crash sim 0;
      Alcotest.(check int) "un-flushed write reverted" 0 (Cell.peek c);
      (* re-run to past the flush, then crash: the flushed value stays *)
      ignore (Sim.step_proc sim 0);
      ignore (Sim.step_proc sim 0) (* write 1 *);
      ignore (Sim.step_proc sim 0) (* write 2 *);
      ignore (Sim.step_proc sim 0) (* flush *);
      Alcotest.(check int) "flush persists" 2 (Cell.peek_persisted c);
      ignore (Sim.step_proc sim 0) (* write 3 *);
      Sim.crash sim 0;
      Alcotest.(check int) "reverts to flushed value" 2 (Cell.peek c))

let test_lossy_coherence () =
  (* The cache is write-back, not write-invisible: OTHER processes see
     un-flushed writes immediately (shared volatile copy); only
     durability is deferred. *)
  Persist.scoped Persist.Lossy (fun () ->
      let c = Cell.make 0 in
      let seen = ref (-1) in
      let sim =
        Sim.create ~n:2 (fun pid () ->
            if pid = 0 then Cell.write c 7 else seen := Cell.read c)
      in
      ignore (Sim.step_proc sim 0);
      ignore (Sim.step_proc sim 0) (* p0 writes, un-flushed *);
      ignore (Sim.step_proc sim 1);
      ignore (Sim.step_proc sim 1) (* p1 reads *);
      Alcotest.(check int) "p1 sees p0's un-flushed write" 7 !seen)

let test_crash_only_reverts_owner () =
  (* Crash of q must not touch p's dirty lines. *)
  Persist.scoped Persist.Lossy (fun () ->
      let a = Cell.make 0 and b = Cell.make 0 in
      let sim =
        Sim.create ~n:2 (fun pid () -> if pid = 0 then Cell.write a 1 else Cell.write b 2)
      in
      ignore (Sim.step_proc sim 0);
      ignore (Sim.step_proc sim 0);
      ignore (Sim.step_proc sim 1);
      ignore (Sim.step_proc sim 1);
      Sim.crash sim 1;
      Alcotest.(check int) "p0's dirty line survives p1's crash" 1 (Cell.peek a);
      Alcotest.(check int) "p1's dirty line reverted" 0 (Cell.peek b))

let test_fence_persists_all_own_lines () =
  Persist.scoped Persist.Lossy (fun () ->
      let a = Cell.make 0 and b = Cell.make 0 in
      let sim =
        Sim.create ~n:1 (fun _ () ->
            Cell.write a 1;
            Cell.write b 2;
            Sim.fence ())
      in
      for _ = 1 to 4 do
        ignore (Sim.step_proc sim 0)
      done;
      Alcotest.(check int) "a fenced" 1 (Cell.peek_persisted a);
      Alcotest.(check int) "b fenced" 2 (Cell.peek_persisted b);
      Sim.crash sim 0;
      Alcotest.(check (pair int int)) "nothing reverts" (1, 2) (Cell.peek a, Cell.peek b))

let test_flush_cost_steps () =
  (* A barrier takes exactly [flush_cost] steps under every policy. *)
  List.iter
    (fun policy ->
      Persist.scoped ~flush_cost:3 policy (fun () ->
          let c = Cell.make 0 in
          let sim =
            Sim.create ~n:1 (fun _ () ->
                Cell.write c 1;
                Cell.flush c)
          in
          ignore (Sim.step_proc sim 0) (* start *);
          ignore (Sim.step_proc sim 0) (* write *);
          ignore (Sim.step_proc sim 0) (* flush 1/3 *);
          ignore (Sim.step_proc sim 0) (* flush 2/3 *);
          (match policy with
          | Persist.Eager -> ()
          | _ ->
              Alcotest.(check int)
                "not yet persisted mid-barrier" 0 (Cell.peek_persisted c));
          ignore (Sim.step_proc sim 0) (* flush 3/3: write-back happens *);
          Alcotest.(check bool) "finished" true (Sim.finished sim 0);
          match policy with
          | Persist.Eager ->
              (* no line: the write was durable at its own step *)
              Alcotest.(check int) "eager writes straight through" 1 (Cell.peek c)
          | _ -> Alcotest.(check int) "persisted at the last barrier step" 1 (Cell.peek_persisted c)))
    [ Persist.Eager; Persist.Lossy; Persist.Torn ]

let test_torn_parity_deterministic () =
  (* A torn crash persists the parity-selected subset of the victim's
     dirty lines and loses the rest -- deterministically, so replay and
     fingerprint-dedup stay sound. *)
  let run () =
    Persist.scoped Persist.Torn (fun () ->
        let cells = Array.init 4 (fun _ -> Cell.make 0) in
        let sim =
          Sim.create ~n:1 (fun _ () -> Array.iteri (fun i c -> Cell.write c (i + 1)) cells)
        in
        for _ = 1 to 5 do
          ignore (Sim.step_proc sim 0)
        done;
        Sim.crash sim 0;
        Array.map (fun c -> (Cell.peek c, Cell.peek_persisted c)) cells)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two runs tear identically" true (a = b);
  let kept = Array.to_list a |> List.filter (fun (v, _) -> v <> 0) |> List.length in
  Alcotest.(check bool)
    (Printf.sprintf "a torn crash is partial: kept %d of 4" kept)
    true
    (kept > 0 && kept < 4)

let test_silent_store_keeps_owner () =
  (* A write of the physically identical value must not steal line
     ownership: q's no-op write followed by q's crash would otherwise
     revert p's un-persisted change. *)
  Persist.scoped Persist.Lossy (fun () ->
      let c = Cell.make 0 in
      let sim =
        Sim.create ~n:2 (fun pid () ->
            if pid = 0 then Cell.write c 5 else Cell.write c (Cell.read c))
      in
      ignore (Sim.step_proc sim 0);
      ignore (Sim.step_proc sim 0) (* p0 writes 5, dirty, owner p0 *);
      ignore (Sim.step_proc sim 1);
      ignore (Sim.step_proc sim 1) (* p1 reads 5 *);
      ignore (Sim.step_proc sim 1) (* p1 re-writes the same 5 *);
      Sim.crash sim 1;
      Alcotest.(check int) "p0's write survives p1's crash" 5 (Cell.peek c);
      Sim.crash sim 0;
      Alcotest.(check int) "and reverts only when p0 crashes" 0 (Cell.peek c))

(* --- fingerprints --- *)

let test_fingerprint_sees_cache_state () =
  (* Two executions with identical volatile contents, step counts and
     control state, differing only in WHICH line got flushed, must
     fingerprint differently: their futures differ (a crash reverts one
     and not the other).  Dedup soundness depends on it. *)
  let fp flush_c =
    let saved = Heap.current () in
    Heap.activate (Heap.create ());
    Fun.protect
      ~finally:(fun () ->
        match saved with Some a -> Heap.activate a | None -> Heap.deactivate ())
      (fun () ->
        Persist.scoped Persist.Lossy (fun () ->
            let c = Cell.make 0 and d = Cell.make 0 in
            let sim =
              Sim.create ~n:1 (fun _ () ->
                  Cell.write c 1;
                  Cell.flush (if flush_c then c else d))
            in
            for _ = 1 to 3 do
              ignore (Sim.step_proc sim 0)
            done;
            (Sim.fingerprint sim, (Cell.peek c, Cell.peek d))))
  in
  let fp_clean, v_clean = fp true and fp_dirty, v_dirty = fp false in
  Alcotest.(check (pair int int)) "same volatile contents either way" v_clean v_dirty;
  Alcotest.(check bool) "different fingerprints" true (fp_dirty <> fp_clean)

(* --- eager byte-identity regression pin --- *)

let test_eager_scoped_byte_identical () =
  (* Same-seed adversary runs must be event-for-event identical with no
     cache and under an explicitly scoped eager cache: the persistency
     layer is strictly opt-in.  (The e2/e4/e7 experiment tables are the
     coarse version of this pin; this is the fine-grained one.) *)
  let run scoped =
    let go () =
      let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 2 in
      let sys = Helpers.team_system cert () in
      let rng = Random.State.make [| 2022 |] in
      ignore (Drivers.random ~crash_prob:0.15 ~max_crashes:4 ~rng sys.Helpers.sim);
      ignore (Drivers.crash_and_rerun ~rng sys.Helpers.sim);
      ( Sim.events sys.Helpers.sim,
        Array.to_list sys.Helpers.outputs.Rcons_algo.Outputs.outputs )
    in
    if scoped then Persist.scoped Persist.Eager go else go ()
  in
  let ev_plain, out_plain = run false and ev_eager, out_eager = run true in
  Alcotest.(check bool) "identical event streams" true (ev_plain = ev_eager);
  Alcotest.(check bool) "identical outputs" true (out_plain = out_eager)

(* --- Figure 2 under the lossy cache --- *)

let lossy_workload ?(annotated = false) () =
  Cex.team2 ~persist:Persist.Lossy ~annotated "sticky"

let test_unannotated_fig2_violates_lossy () =
  let w = lossy_workload () in
  match Cex.mk w with
  | Error e -> Alcotest.fail e
  | Ok mk -> (
      match Explore.explore ~max_crashes:1 ~mk () with
      | _ -> Alcotest.fail "expected a violation under the lossy cache"
      | exception Explore.Violation v ->
          Alcotest.(check bool)
            ("found: " ^ v.Explore.v_msg)
            true
            (String.length v.Explore.v_msg > 0))

let test_committed_artifact_replays () =
  match find_artifact () with
  | None -> Alcotest.fail "cannot locate _counterexamples/e12_fig2_lossy.json"
  | Some file -> (
      let cex = Cex.load ~file in
      Alcotest.(check string) "it is the agreement violation" "agreement violated" cex.Cex.msg;
      Alcotest.(check bool) "workload is lossy" true (cex.Cex.workload.Cex.persist = Persist.Lossy);
      Alcotest.(check bool) "un-annotated" false cex.Cex.workload.Cex.annotated;
      match Cex.replay cex with
      | `Violated msg -> Alcotest.(check string) "still fires" "agreement violated" msg
      | `Passed -> Alcotest.fail "committed lossy witness went stale")

let test_annotated_fig2_exhaustive_lossy () =
  (* The acceptance check: the annotated variant survives every 1-crash
     schedule under the lossy cache.  [dedup] makes it feasible -- raw
     interleavings explode with the extra barrier steps, distinct states
     do not -- and is sound because cache state is fingerprinted. *)
  let w = lossy_workload ~annotated:true () in
  match Cex.mk w with
  | Error e -> Alcotest.fail e
  | Ok mk -> (
      match
        Explore.explore ~max_crashes:1 ~dedup:true ~fingerprint:(Cex.fingerprint w) ~mk ()
      with
      | stats ->
          Alcotest.(check bool)
            (Printf.sprintf "no violation in %d schedules / %d states" stats.Explore.schedules
               stats.Explore.distinct_states)
            true (stats.Explore.schedules > 0)
      | exception Explore.Violation v ->
          Alcotest.fail ("annotated variant violated: " ^ v.Explore.v_msg))

let test_annotated_fig2_exhaustive_torn () =
  let w = Cex.team2 ~persist:Persist.Torn ~annotated:true "sticky" in
  match Cex.mk w with
  | Error e -> Alcotest.fail e
  | Ok mk -> (
      match
        Explore.explore ~max_crashes:1 ~dedup:true ~fingerprint:(Cex.fingerprint w) ~mk ()
      with
      | stats -> Alcotest.(check bool) "explored" true (stats.Explore.schedules > 0)
      | exception Explore.Violation v ->
          Alcotest.fail ("annotated variant violated under torn: " ^ v.Explore.v_msg))

(* --- shrinking (satellite: a shrunk lossy schedule still violates) --- *)

let lossy_mk =
  lazy (match Cex.mk (lossy_workload ()) with Ok mk -> mk | Error e -> failwith e)

(* Random raw schedules over the 2-process lossy system: ~9% crash
   choices, the rest steps, alternating pids by the encoded value. *)
let schedule_gen = QCheck2.Gen.(list_size (int_range 10 60) (int_bound 999))

let decode codes =
  List.map
    (fun x ->
      let pid = x mod 2 in
      if x mod 11 = 0 then Schedule.Crash_choice pid else Schedule.Step_choice pid)
    codes

let violations_seen = ref 0

let qcheck_shrunk_lossy_still_violates =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"shrunk lossy schedule still violates under replay"
       ~print:(fun codes -> String.concat ";" (List.map string_of_int codes))
       schedule_gen
       (fun codes ->
         let mk = Lazy.force lossy_mk in
         let schedule = decode codes in
         match Shrink.check ~mk schedule with
         | None -> true (* this schedule found no violation: nothing to preserve *)
         | Some (msg, _) -> (
             incr violations_seen;
             let cex =
               {
                 Cex.workload = lossy_workload ();
                 msg;
                 schedule;
                 shrunk_from = None;
                 provenance = None;
               }
             in
             match Cex.minimize cex with
             | Error _ -> false (* shrink refused a violating schedule *)
             | Ok m -> (
                 List.length m.Cex.schedule <= List.length schedule
                 && m.Cex.shrunk_from = Some (List.length schedule)
                 &&
                 match Cex.replay m with
                 | `Violated _ -> true
                 | `Passed -> false (* the shrunk schedule must still violate *)))))

let test_shrunk_lossy_found_some () =
  (* The property above must not pass vacuously: across the generated
     schedules the checker has to hit real violations. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d violating schedules exercised" !violations_seen)
    true (!violations_seen > 0)

(* --- durable linearizability --- *)

let counter_spec : (int, string, int) Rcons_history.Linearizability.spec =
  {
    Rcons_history.Linearizability.init = 0;
    apply =
      (fun s op ->
        match op with
        | "incr" -> (s + 1, s + 1)
        | "get" -> (s, s)
        | _ -> invalid_arg "counter_spec");
    equal_resp = ( = );
  }

let test_durable_lin_unpersisted_op_may_vanish () =
  (* p0 completes incr->1 but never persists it; a crash follows; p1
     then reads 0.  Recoverable linearizability rejects this history
     (the incr happened before the get), durable linearizability
     accepts it (the un-persisted incr may have vanished). *)
  let h = Rcons_history.History.create () in
  let t0 = Rcons_history.History.invoke h ~pid:0 "incr" in
  Rcons_history.History.respond h ~pid:0 ~tag:t0 1;
  Rcons_history.History.crash h ~pid:0;
  let t1 = Rcons_history.History.invoke h ~pid:1 "get" in
  Rcons_history.History.respond h ~pid:1 ~tag:t1 0;
  Alcotest.(check bool)
    "not recoverably linearizable" false
    (Rcons_history.Conditions.recoverably_linearizable counter_spec h);
  Alcotest.(check bool)
    "durably linearizable" true
    (Rcons_history.Conditions.durably_linearizable counter_spec h)

let test_durable_lin_persisted_op_mandatory () =
  (* Same history, but the incr carries a persist marker: now it may NOT
     vanish, and the stale read violates even the durable condition. *)
  let h = Rcons_history.History.create () in
  let t0 = Rcons_history.History.invoke h ~pid:0 "incr" in
  Rcons_history.History.persist h ~pid:0 ~tag:t0;
  Rcons_history.History.respond h ~pid:0 ~tag:t0 1;
  Rcons_history.History.crash h ~pid:0;
  let t1 = Rcons_history.History.invoke h ~pid:1 "get" in
  Rcons_history.History.respond h ~pid:1 ~tag:t1 0;
  Alcotest.(check bool)
    "not durably linearizable" false
    (Rcons_history.Conditions.durably_linearizable counter_spec h)

let test_durable_lin_no_crash_is_plain () =
  (* With no crash in the history nothing may vanish: durable and
     recoverable linearizability coincide. *)
  let h = Rcons_history.History.create () in
  let t0 = Rcons_history.History.invoke h ~pid:0 "incr" in
  Rcons_history.History.respond h ~pid:0 ~tag:t0 1;
  let t1 = Rcons_history.History.invoke h ~pid:1 "get" in
  Rcons_history.History.respond h ~pid:1 ~tag:t1 0;
  Alcotest.(check bool)
    "stale read still rejected" false
    (Rcons_history.Conditions.durably_linearizable counter_spec h)

let test_classify_includes_durable () =
  let h = Rcons_history.History.create () in
  let t0 = Rcons_history.History.invoke h ~pid:0 "incr" in
  Rcons_history.History.respond h ~pid:0 ~tag:t0 1;
  let v = Rcons_history.Conditions.classify counter_spec h in
  Alcotest.(check bool) "recoverable" true v.Rcons_history.Conditions.recoverable;
  Alcotest.(check bool) "durable" true v.Rcons_history.Conditions.durable

(* --- the annotated universal construction under lossy --- *)

let test_runiversal_annotated_lossy () =
  (* Figure 7 with persist annotations, driven by seeded random lossy
     adversaries: every resulting history must be durably linearizable
     (annotated responses carry persist markers, so this is not
     vacuous). *)
  for seed = 1 to 12 do
    Persist.scoped Persist.Lossy (fun () ->
        let history = Rcons_history.History.create () in
        let u =
          Rcons_universal.Runiversal.create ~history ~annotated:true ~n:2
            Rcons_universal.Derived.counter
        in
        let runner = Rcons_universal.Script.create u ~n:2 ~max_ops:2 in
        let scripts =
          [|
            [| Rcons_universal.Derived.Incr; Rcons_universal.Derived.Get |];
            [| Rcons_universal.Derived.Incr |];
          |]
        in
        let sim =
          Sim.create ~n:2 (fun pid () ->
              Rcons_universal.Script.run runner pid scripts.(pid))
        in
        let rng = Random.State.make [| seed |] in
        ignore (Drivers.random ~crash_prob:0.15 ~max_crashes:3 ~rng sim);
        Alcotest.(check bool)
          (Printf.sprintf "durably linearizable (seed %d)" seed)
          true
          (Rcons_history.Conditions.durably_linearizable
             (Rcons_universal.Derived.lin_spec Rcons_universal.Derived.counter)
             history))
  done

(* --- corrupted artifacts (satellite: replay diagnosis) --- *)

let write_tmp contents =
  let file = Filename.temp_file "rcons_cex" ".json" in
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  file

let test_corrupt_artifact_diagnosis () =
  (* Truncated JSON: the parser names the offset it gave up at. *)
  let good =
    match find_artifact () with
    | Some f ->
        let ic = open_in f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
    | None -> Alcotest.fail "cannot locate the committed artifact"
  in
  let truncated = write_tmp (String.sub good 0 (String.length good / 2)) in
  (match Cex.load ~file:truncated with
  | _ -> Alcotest.fail "truncated artifact should not load"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("diagnosis names the offset: " ^ msg)
        true
        (String.length msg > 0 && contains ~sub:"offset" msg));
  Sys.remove truncated;
  (* Structurally valid JSON missing a required field: named field. *)
  let missing = write_tmp {|{"version":1,"kind":"counterexample"}|} in
  (match Cex.load ~file:missing with
  | _ -> Alcotest.fail "field-less artifact should not load"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("diagnosis names the field: " ^ msg)
        true
        (contains ~sub:"workload" msg || contains ~sub:"field" msg));
  Sys.remove missing;
  (* Unreadable path: Sys_error, which the CLI also maps to exit 2. *)
  match Cex.load ~file:"/nonexistent/nowhere.json" with
  | _ -> Alcotest.fail "missing file should not load"
  | exception Sys_error _ -> ()

let suite =
  [
    Alcotest.test_case "policy strings and bounds" `Quick test_policy_strings;
    Alcotest.test_case "eager attaches no lines" `Quick test_eager_attaches_no_lines;
    Alcotest.test_case "lossy: revert vs flush" `Quick test_lossy_revert_and_flush;
    Alcotest.test_case "lossy: un-flushed writes are coherent" `Quick test_lossy_coherence;
    Alcotest.test_case "crash reverts only the victim's lines" `Quick
      test_crash_only_reverts_owner;
    Alcotest.test_case "fence persists all own lines" `Quick test_fence_persists_all_own_lines;
    Alcotest.test_case "barriers cost flush_cost steps" `Quick test_flush_cost_steps;
    Alcotest.test_case "torn crashes are partial and deterministic" `Quick
      test_torn_parity_deterministic;
    Alcotest.test_case "silent stores keep the owner" `Quick test_silent_store_keeps_owner;
    Alcotest.test_case "fingerprint sees cache state" `Quick test_fingerprint_sees_cache_state;
    Alcotest.test_case "eager scoped = no cache, byte-identical" `Quick
      test_eager_scoped_byte_identical;
    Alcotest.test_case "un-annotated Fig 2 violates under lossy" `Slow
      test_unannotated_fig2_violates_lossy;
    Alcotest.test_case "committed lossy witness replays" `Quick test_committed_artifact_replays;
    Alcotest.test_case "annotated Fig 2 exhaustive under lossy" `Slow
      test_annotated_fig2_exhaustive_lossy;
    Alcotest.test_case "annotated Fig 2 exhaustive under torn" `Slow
      test_annotated_fig2_exhaustive_torn;
    qcheck_shrunk_lossy_still_violates;
    (* `Slow: the counter it reads is only incremented by the qcheck
       case above, which the quick tier skips -- running this under -q
       would fail vacuously. *)
    Alcotest.test_case "qcheck property was not vacuous" `Slow test_shrunk_lossy_found_some;
    Alcotest.test_case "durable lin: un-persisted op may vanish" `Quick
      test_durable_lin_unpersisted_op_may_vanish;
    Alcotest.test_case "durable lin: persisted op is mandatory" `Quick
      test_durable_lin_persisted_op_mandatory;
    Alcotest.test_case "durable lin: crash-free = plain" `Quick test_durable_lin_no_crash_is_plain;
    Alcotest.test_case "classify reports durability" `Quick test_classify_includes_durable;
    Alcotest.test_case "annotated RUniversal durable under lossy" `Quick
      test_runiversal_annotated_lossy;
    Alcotest.test_case "corrupted artifact diagnosis" `Quick test_corrupt_artifact_diagnosis;
  ]
