(* Tests of the Appendix B tournament: full n-process recoverable
   consensus built from team-consensus instances, plus the stable-input
   transformation from the introduction. *)

open Rcons_runtime
open Rcons_algo

let test_rc_crash_free_various_n () =
  List.iter
    (fun n ->
      let cert = Helpers.cert_of Rcons_spec.Cas.default n in
      let sys = Helpers.rc_system cert ~n () in
      Drivers.round_robin sys.Helpers.sim;
      sys.Helpers.check ();
      Alcotest.(check bool)
        (Printf.sprintf "n=%d all decided" n)
        true
        (Array.for_all (fun l -> l <> []) sys.Helpers.outputs.Outputs.outputs))
    [ 2; 3; 4; 5 ]

let test_rc_random_crashes () =
  List.iter
    (fun (n, iters) ->
      let cert = Helpers.cert_of (Rcons_spec.Sn.make n) n in
      Helpers.random_sweep
        ~mk:(fun () -> Helpers.rc_system cert ~n ())
        ~iters ~crash_prob:0.15 ~max_crashes:(3 * n) ~seed:(13 * n))
    [ (2, 500); (3, 400); (4, 200); (6, 100) ]

let test_rc_exhaustive_n2 () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let stats = Helpers.exhaustive ~mk:(fun () -> Helpers.rc_system cert ~n:2 ()) ~max_crashes:1 in
  Alcotest.(check bool) "explored" true (stats.Explore.schedules > 1000)

let test_rc_validity_distinct_inputs () =
  let n = 4 in
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t n in
  let sys = Helpers.rc_system cert ~n () in
  let rng = Random.State.make [| 3 |] in
  ignore (Drivers.random ~crash_prob:0.1 ~max_crashes:6 ~rng sys.Helpers.sim);
  match Outputs.all sys.Helpers.outputs with
  | [] -> Alcotest.fail "no outputs"
  | v :: _ as outs ->
      Alcotest.(check bool) "output among inputs" true (List.mem v [ 10; 20; 30; 40 ]);
      List.iter (fun w -> Alcotest.(check int) "agreement" v w) outs

(* Stable inputs: even if a caller passes different values across runs
   (which the model forbids but callers might get wrong), the register
   transformation masks it. *)
let test_stable_inputs_mask_flapping () =
  let regs = Stable_input.make 1 in
  let observed = ref [] in
  let attempt = ref 0 in
  let body _pid () =
    incr attempt;
    (* a different "input" on every run: only the first may stick *)
    let v = Stable_input.fix regs 0 !attempt in
    observed := v :: !observed
  in
  let t = Sim.create ~n:1 body in
  ignore (Sim.step_proc t 0);
  (* p0 has read the register (None) and is poised to write its input 1 *)
  ignore (Sim.step_proc t 0);
  Sim.crash t 0;
  Drivers.round_robin t;
  Sim.crash t 0;
  Drivers.round_robin t;
  (match !observed with
  | [] -> Alcotest.fail "no observations"
  | v :: rest ->
      List.iter (fun w -> Alcotest.(check int) "all runs saw the same input" v w) rest);
  Alcotest.(check bool) "ran multiple times" true (!attempt >= 3)

let test_tournament_split_fits_capacities () =
  (* with a (1, n-1) certificate the split at every node must keep team A'
     of size 1; just verify end-to-end correctness for a skewed cert *)
  let n = 5 in
  let cert = Helpers.cert_of (Rcons_spec.Sn.make n) n in
  let a, b = Rcons_check.Certificate.recording_teams cert in
  Alcotest.(check (pair int int)) "S_n certificate is (1, n-1)" (1, n - 1) (a, b);
  Helpers.random_sweep
    ~mk:(fun () -> Helpers.rc_system cert ~n ())
    ~iters:150 ~crash_prob:0.2 ~max_crashes:8 ~seed:5

let test_tournament_rejects_oversubscription () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 3) 3 in
  Alcotest.check_raises "too many processes"
    (Invalid_argument "Tournament.build: too many processes") (fun () ->
      ignore (Tournament.recoverable_consensus cert ~n:4 : int Tournament.decide))

let test_standard_consensus_crash_free () =
  (* the Ruppert baseline must be correct without crashes *)
  List.iter
    (fun n ->
      let cert = Helpers.disc_cert_of Rcons_spec.Sticky_bit.t n in
      let inputs = Array.init n (fun i -> 100 + i) in
      let outputs = Outputs.make ~inputs in
      let decide = Tournament.standard_consensus cert ~n in
      let body pid () = Outputs.record outputs pid (decide pid inputs.(pid)) in
      let t = Sim.create ~n body in
      Drivers.round_robin t;
      Alcotest.(check bool) (Printf.sprintf "n=%d agreement" n) true (Outputs.agreement_ok outputs);
      Alcotest.(check bool) (Printf.sprintf "n=%d validity" n) true (Outputs.validity_ok outputs))
    [ 2; 3; 4 ]

let test_standard_consensus_on_swap () =
  (* swap has consensus number 2: the baseline works for n = 2 *)
  let cert = Helpers.disc_cert_of Rcons_spec.Swap.default 2 in
  let inputs = [| 7; 9 |] in
  let outputs = Outputs.make ~inputs in
  let decide = Tournament.standard_consensus cert ~n:2 in
  let body pid () = Outputs.record outputs pid (decide pid inputs.(pid)) in
  let t = Sim.create ~n:2 body in
  Drivers.round_robin t;
  Alcotest.(check bool) "agreement" true (Outputs.agreement_ok outputs);
  Alcotest.(check bool) "validity" true (Outputs.validity_ok outputs)

(* THE HEADLINE CONTRAST (experiment E3): the standard algorithm, correct
   under halting failures, BREAKS under crash-recovery -- a recovered
   process updates the object a second time and obliterates the evidence
   of which team went first.  The model checker finds the failure, which
   manifests either as an agreement violation between outputs or as the
   algorithm's internal invariant failing first (a decider observes a
   winner register that was never written, or an observation outside both
   R-sets).  Either way: "recoverable consensus is harder than consensus",
   made executable. *)
let test_standard_consensus_breaks_under_crashes () =
  let cert = Helpers.disc_cert_of Rcons_spec.Swap.default 2 in
  let mk () =
    let inputs = [| 7; 9 |] in
    let outputs = Outputs.make ~inputs in
    let decide = Tournament.standard_consensus cert ~n:2 in
    let body pid () = Outputs.record outputs pid (decide pid inputs.(pid)) in
    let sim = Sim.create ~n:2 body in
    { Helpers.sim; outputs; check = Helpers.check_now outputs }
  in
  match Helpers.exhaustive ~mk ~max_crashes:1 with
  | _ -> Alcotest.fail "expected the crash-recovery adversary to break the baseline"
  | exception Explore.Violation { v_msg = msg; _ } ->
      (* The baseline may break either way first in DFS order: outright
         disagreement, or an internal invariant giving out (the explorer
         reports body exceptions as violations with a schedule). *)
      Alcotest.(check bool)
        ("baseline broke: " ^ msg)
        true
        (msg = "agreement violated"
        || String.starts_with ~prefix:"uncaught exception in process body:" msg)

let suite =
  [
    Alcotest.test_case "RC crash-free, n = 2..5" `Quick test_rc_crash_free_various_n;
    Alcotest.test_case "RC random crashes, n = 2..6" `Quick test_rc_random_crashes;
    Alcotest.test_case "RC exhaustive, n = 2, <=1 crash" `Slow test_rc_exhaustive_n2;
    Alcotest.test_case "RC validity with distinct inputs" `Quick test_rc_validity_distinct_inputs;
    Alcotest.test_case "stable inputs mask flapping" `Quick test_stable_inputs_mask_flapping;
    Alcotest.test_case "tournament fits skewed certificates" `Quick
      test_tournament_split_fits_capacities;
    Alcotest.test_case "tournament rejects oversubscription" `Quick
      test_tournament_rejects_oversubscription;
    Alcotest.test_case "Ruppert baseline crash-free" `Quick test_standard_consensus_crash_free;
    Alcotest.test_case "Ruppert baseline on swap (cons = 2)" `Quick test_standard_consensus_on_swap;
    Alcotest.test_case "baseline BREAKS under crashes (headline)" `Quick
      test_standard_consensus_breaks_under_crashes;
  ]
