(* Tests of the Figure 2 recoverable team-consensus algorithm, driven by
   machine-derived recording certificates (experiment E2).

   Coverage:
   - crash-free correctness on every certificate the checker produces;
   - randomized crash-injecting adversaries (thousands of schedules);
   - bounded exhaustive model checking for two participants with crashes
     (the 17-second two-crash configuration is marked `Slow);
   - the tricky q0-in-Q_A / |B| = 1 path (S_n certificates exercise it
     after the internal team swap);
   - the negative control: removing the |B| = 1 guard of line 19
     reproduces the agreement violation described after Lemma 7, and the
     model checker finds it. *)

open Rcons_runtime

let certs () =
  [
    ("S_2", Helpers.cert_of (Rcons_spec.Sn.make 2) 2);
    ("S_3", Helpers.cert_of (Rcons_spec.Sn.make 3) 3);
    ("S_4", Helpers.cert_of (Rcons_spec.Sn.make 4) 4);
    ("sticky", Helpers.cert_of Rcons_spec.Sticky_bit.t 3);
    ("cas", Helpers.cert_of Rcons_spec.Cas.default 3);
    ("consensus-object", Helpers.cert_of Rcons_spec.Consensus_obj.default 4);
    ("readable-stack", Helpers.cert_of Rcons_spec.Stack.readable_variant 3);
    ("readable-queue", Helpers.cert_of Rcons_spec.Queue.readable_variant 3);
  ]

let test_crash_free_all_certs () =
  List.iter
    (fun (name, cert) ->
      let sys = Helpers.team_system cert () in
      Drivers.round_robin sys.Helpers.sim;
      (try sys.Helpers.check () with Explore.Violation_found m -> Alcotest.fail (name ^ ": " ^ m));
      Alcotest.(check bool) (name ^ ": everyone decided") true
        (Array.for_all (fun l -> l <> []) sys.Helpers.outputs.Rcons_algo.Outputs.outputs))
    (certs ())

let test_random_crashes_all_certs () =
  List.iteri
    (fun i (name, cert) ->
      try
        Helpers.random_sweep
          ~mk:(fun () -> Helpers.team_system cert ())
          ~iters:400 ~crash_prob:0.2 ~max_crashes:8 ~seed:(1000 + i)
      with Explore.Violation_found m -> Alcotest.fail (name ^ ": " ^ m))
    (certs ())

let test_subset_participation () =
  (* Proposition 30 relies on team consensus still working when only a
     subset of each team participates. *)
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 5) 5 in
  List.iter
    (fun (use_a, use_b) ->
      Helpers.random_sweep
        ~mk:(fun () -> Helpers.team_system cert ~use_a ~use_b ())
        ~iters:200 ~crash_prob:0.2 ~max_crashes:6 ~seed:77)
    [ (1, 1); (1, 2); (1, 3) ]

let test_exhaustive_one_crash () =
  List.iter
    (fun (name, cert) ->
      let stats =
        Helpers.exhaustive ~mk:(fun () -> Helpers.team_system cert ~use_a:1 ~use_b:1 ()) ~max_crashes:1
      in
      Alcotest.(check bool) (name ^ ": explored schedules") true (stats.Explore.schedules > 100))
    [ ("S_3", Helpers.cert_of (Rcons_spec.Sn.make 3) 3); ("sticky", Helpers.cert_of Rcons_spec.Sticky_bit.t 2) ]

let test_exhaustive_two_crashes_s3 () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 3) 3 in
  let stats =
    Helpers.exhaustive ~mk:(fun () -> Helpers.team_system cert ~use_a:1 ~use_b:1 ()) ~max_crashes:2
  in
  Alcotest.(check bool) "survived full two-crash exploration" true (stats.Explore.schedules > 10_000)

(* S_n's canonical certificate has q0 = (B,0) in Q_B with |A| = 1, so the
   algorithm internally swaps the teams and must exercise the
   lone-process-yields path (line 20 of Figure 2): the cert's team A
   (swapped to code team B) has exactly one process.  Verify the
   certificate has the tricky shape, then hammer it. *)
let test_tricky_q0_in_q_shape () =
  match Helpers.cert_of (Rcons_spec.Sn.make 3) 3 with
  | Rcons_check.Certificate.Recording (_, d) as cert ->
      Alcotest.(check bool) "q0 is in one of the Q sets" true
        (d.Rcons_check.Certificate.q0_in_q_a || d.Rcons_check.Certificate.q0_in_q_b);
      let lone_team_size =
        if d.Rcons_check.Certificate.q0_in_q_a then List.length d.Rcons_check.Certificate.ops_b
        else List.length d.Rcons_check.Certificate.ops_a
      in
      Alcotest.(check int) "the opposite team is a singleton" 1 lone_team_size;
      Helpers.random_sweep
        ~mk:(fun () -> Helpers.team_system cert ())
        ~iters:500 ~crash_prob:0.25 ~max_crashes:10 ~seed:31

(* Negative control: drop the |B| = 1 guard (Figure 2, line 19).  The
   paper's scenario needs two processes on team B: one starts, sees
   R_A = bot and is poised to update; a team-A process writes R_A; the
   other team-B process yields to A; the first team-B process then updates
   O first, so later readers see Q_B and output B's value -- agreement is
   violated.  The model checker must find it without any crashes.

   The certificate must have two processes on the team subject to the
   yield rule *after* the internal orientation swap; the sticky bit's
   3-recording witness (A = {stick 0}, B = {stick 1, stick 1}, q0 in
   neither Q set) has that shape, whereas S_n's does not (its cert team B
   becomes the singleton code team after the swap). *)
let test_broken_variant_caught () =
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 3 in
  match
    Helpers.exhaustive
      ~mk:(fun () -> Helpers.team_system ~faithful:false cert ())
      ~max_crashes:0
  with
  | _ -> Alcotest.fail "expected an agreement violation in the broken variant"
  | exception Explore.Violation { v_msg = msg; _ } ->
      Alcotest.(check string) "agreement violated" "agreement violated" msg

(* The faithful algorithm passes the exact same exploration. *)
let test_faithful_variant_passes () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 3) 3 in
  let stats = Helpers.exhaustive ~mk:(fun () -> Helpers.team_system cert ()) ~max_crashes:0 in
  Alcotest.(check bool) "explored" true (stats.Explore.schedules > 100)

let test_outputs_are_team_inputs () =
  let cert = Helpers.cert_of Rcons_spec.Cas.default 4 in
  let sys = Helpers.team_system cert () in
  Drivers.round_robin sys.Helpers.sim;
  List.iter
    (fun v -> Alcotest.(check bool) "output is 111 or 222" true (v = 111 || v = 222))
    (Rcons_algo.Outputs.all sys.Helpers.outputs)

let test_decide_requires_written_register () =
  (* Returning a team's register before anyone wrote it is a bug; the
     implementation guards it with an exception.  A single process on team
     A deciding alone must return its own input, never hit the guard. *)
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 2 in
  let tc : int Rcons_algo.Team_consensus.t = Rcons_algo.Team_consensus.create cert in
  let out = ref None in
  let body _pid () = out := Some (tc.Rcons_algo.Team_consensus.decide Rcons_spec.Team.A 0 5) in
  let t = Sim.create ~n:1 body in
  Drivers.round_robin t;
  Alcotest.(check (option int)) "solo decider returns own input" (Some 5) !out

let suite =
  [
    Alcotest.test_case "crash-free on all certificates" `Quick test_crash_free_all_certs;
    Alcotest.test_case "random crash sweeps on all certificates" `Quick test_random_crashes_all_certs;
    Alcotest.test_case "subset participation (Prop 30)" `Quick test_subset_participation;
    Alcotest.test_case "exhaustive, <=1 crash" `Quick test_exhaustive_one_crash;
    Alcotest.test_case "exhaustive, <=2 crashes (S_3)" `Slow test_exhaustive_two_crashes_s3;
    Alcotest.test_case "tricky q0-in-Q path (S_3)" `Quick test_tricky_q0_in_q_shape;
    Alcotest.test_case "negative control: missing |B|=1 guard caught" `Quick
      test_broken_variant_caught;
    Alcotest.test_case "faithful variant passes the same exploration" `Quick
      test_faithful_variant_passes;
    Alcotest.test_case "outputs are team inputs" `Quick test_outputs_are_team_inputs;
    Alcotest.test_case "solo decider" `Quick test_decide_requires_written_register;
  ]
