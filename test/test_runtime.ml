(* Tests of the simulated crash-recovery runtime: the effect-handler
   process machinery, the non-volatile cells and objects, the schedule
   drivers and the bounded exhaustive explorer. *)

open Rcons_runtime

(* --- basic stepping --- *)

let test_step_granularity () =
  (* a body with k shared accesses takes k+1 scheduler steps (the +1 runs
     the final local code to completion) at most; count precisely *)
  let log = ref [] in
  let body _pid () =
    let c = Cell.make 0 in
    Cell.write c 1;
    log := `W :: !log;
    let v = Cell.read c in
    log := `R v :: !log
  in
  let t = Sim.create ~n:1 body in
  Alcotest.(check bool) "not finished initially" false (Sim.finished t 0);
  let steps = ref 0 in
  while not (Sim.finished t 0) do
    ignore (Sim.step_proc t 0);
    incr steps
  done;
  Alcotest.(check int) "two shared accesses + final return" 3 !steps;
  Alcotest.(check bool) "performed in order" true (!log = [ `R 1; `W ])

let test_step_finished_raises () =
  let t = Sim.create ~n:1 (fun _ () -> ()) in
  ignore (Sim.step_proc t 0);
  Alcotest.(check bool) "finished" true (Sim.finished t 0);
  (match Sim.step_proc t 0 with
  | _ -> Alcotest.fail "stepping a finished process should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the pid" true (String.starts_with ~prefix:"Sim.step_proc" msg));
  (* out-of-range pids are rejected up front, on every entry point *)
  (match Sim.step_proc t 5 with
  | _ -> Alcotest.fail "out-of-range pid should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the range" true (String.starts_with ~prefix:"Sim.step_proc" msg));
  (match Sim.crash t (-1) with
  | _ -> Alcotest.fail "out-of-range crash should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the entry point" true (String.starts_with ~prefix:"Sim.crash" msg));
  (* an abandoned simulation refuses everything, idempotently *)
  Sim.abandon t;
  Sim.abandon t;
  (match Sim.step_proc t 0 with
  | _ -> Alcotest.fail "stepping an abandoned simulation should raise"
  | exception Invalid_argument _ -> ())

(* --- crash semantics --- *)

let test_crash_loses_local_state () =
  (* local (volatile) progress is lost; the body restarts from scratch *)
  let shared = Cell.make 0 in
  let runs = ref 0 in
  let body _pid () =
    incr runs;
    let v = Cell.read shared in
    Cell.write shared (v + 1)
  in
  let t = Sim.create ~n:1 body in
  ignore (Sim.step_proc t 0);
  (* p0 has read 0 and is poised to write 1 *)
  Sim.crash t 0;
  ignore (Sim.step_proc t 0);
  (* restarted: reads again *)
  ignore (Sim.step_proc t 0);
  ignore (Sim.step_proc t 0);
  Alcotest.(check int) "body entered twice" 2 !runs;
  Alcotest.(check int) "one increment took effect" 1 (Cell.peek shared)

let test_crash_preserves_shared_memory () =
  let shared = Cell.make 0 in
  let body _pid () = Cell.write shared 42 in
  let t = Sim.create ~n:1 body in
  ignore (Sim.step_proc t 0);
  ignore (Sim.step_proc t 0);
  Alcotest.(check int) "written" 42 (Cell.peek shared);
  Sim.crash t 0;
  Alcotest.(check int) "crash does not touch shared memory" 42 (Cell.peek shared)

let test_crash_counts () =
  let t = Sim.create ~n:2 (fun _pid () -> ()) in
  Sim.crash t 0;
  Sim.crash t 0;
  Sim.crash t 1;
  Alcotest.(check int) "p0 crashed twice" 2 (Sim.crash_count t 0);
  Alcotest.(check int) "p1 crashed once" 1 (Sim.crash_count t 1)

let test_crash_after_finish_restarts () =
  let count = ref 0 in
  let body _pid () =
    incr count;
    Cell.write (Cell.make 0) 1
  in
  let t = Sim.create ~n:1 body in
  Drivers.round_robin t;
  Alcotest.(check int) "ran once" 1 !count;
  Sim.crash t 0;
  Alcotest.(check bool) "restartable after finish" false (Sim.finished t 0);
  Drivers.round_robin t;
  Alcotest.(check int) "ran twice" 2 !count

let test_crash_all () =
  let entered = ref 0 in
  let body _pid () =
    incr entered;
    Cell.write (Cell.make 0) 0
  in
  let t = Sim.create ~n:3 body in
  for i = 0 to 2 do
    ignore (Sim.step_proc t i)
  done;
  Sim.crash_all t;
  Drivers.round_robin t;
  Alcotest.(check int) "each process entered twice" 6 !entered

(* --- determinism (required by the explorer's replay) --- *)

let test_deterministic_replay () =
  let run () =
    let shared = Cell.make [] in
    let body pid () =
      let v = Cell.read shared in
      Cell.write shared (pid :: v)
    in
    let t = Sim.create ~n:2 body in
    ignore (Sim.step_proc t 0);
    ignore (Sim.step_proc t 1);
    Sim.crash t 0;
    ignore (Sim.step_proc t 1);
    ignore (Sim.step_proc t 0);
    ignore (Sim.step_proc t 0);
    ignore (Sim.step_proc t 1);
    ignore (Sim.step_proc t 0);
    Cell.peek shared
  in
  Alcotest.(check (list int)) "same schedule, same result" (run ()) (run ())

(* --- events --- *)

let test_events_recorded () =
  let t = Sim.create ~n:2 (fun _ () -> Cell.write (Cell.make 0) 0) in
  ignore (Sim.step_proc t 0);
  Sim.crash t 1;
  ignore (Sim.step_proc t 1);
  match Sim.events t with
  | [ Sim.Stepped 0; Sim.Crash_event 1; Sim.Stepped 1 ] -> ()
  | evs -> Alcotest.fail (Printf.sprintf "unexpected events (%d)" (List.length evs))

(* --- cells, objects, growable arrays --- *)

let test_sim_obj () =
  match Rcons_spec.Sticky_bit.t with
  | Rcons_spec.Object_type.Pack (module T) ->
      let o = Sim_obj.make (module T) (List.hd T.candidate_initial_states) in
      let results = ref [] in
      let body _pid () =
        let r = Sim_obj.apply o (List.hd T.update_ops) in
        let q = Sim_obj.read o in
        results := (r, q) :: !results
      in
      let t = Sim.create ~n:1 body in
      Drivers.round_robin t;
      Alcotest.(check int) "one result" 1 (List.length !results);
      Alcotest.(check bool) "state changed" true
        (T.compare_state (Sim_obj.peek o) (List.hd T.candidate_initial_states) <> 0)

let test_growable () =
  let g = Growable.make (fun i -> i * 10) in
  let seen = ref (-1) in
  let body _pid () =
    Growable.write g 3 99;
    seen := Growable.read g 7
  in
  let t = Sim.create ~n:1 body in
  Drivers.round_robin t;
  Alcotest.(check int) "default generator" 70 !seen;
  Alcotest.(check int) "write visible" 99 (Growable.peek g 3);
  Alcotest.(check int) "untouched default" 70 (Growable.peek g 7)

(* --- drivers --- *)

let test_round_robin_terminates () =
  let done_count = ref 0 in
  let body _pid () =
    for _ = 1 to 5 do
      Cell.write (Cell.make 0) 0
    done;
    incr done_count
  in
  let t = Sim.create ~n:4 body in
  Drivers.round_robin t;
  Alcotest.(check int) "all finished" 4 !done_count

let test_round_robin_budget () =
  let body _pid () =
    let c = Cell.make 0 in
    while Cell.read c = 0 do
      Cell.write c 0
    done
  in
  let t = Sim.create ~n:1 body in
  Alcotest.check_raises "budget" (Drivers.Stuck "round_robin: step budget exhausted") (fun () ->
      Drivers.round_robin ~max_steps:100 t)

let test_random_driver_crashes_bounded () =
  let body _pid () = Cell.write (Cell.make 0) 0 in
  let t = Sim.create ~n:3 body in
  let rng = Random.State.make [| 1 |] in
  let crashes = Drivers.random ~crash_prob:0.9 ~max_crashes:5 ~rng t in
  Alcotest.(check bool) "bounded crashes" true (crashes <= 5);
  Alcotest.(check bool) "terminated" true (Sim.all_finished t)

let test_simultaneous_driver () =
  let entered = ref 0 in
  let body _pid () =
    incr entered;
    for _ = 1 to 3 do
      Cell.write (Cell.make 0) 0
    done
  in
  let t = Sim.create ~n:2 body in
  Drivers.simultaneous ~crash_at:[ 3 ] t;
  Alcotest.(check bool) "all finished" true (Sim.all_finished t);
  Alcotest.(check bool) "some process re-entered" true (!entered > 2)

(* --- explorer --- *)

let test_explore_tiny_counts () =
  (* two processes, one shared access each: schedules without crashes are
     the interleavings of (s0a s0b) and (s1a s1b): C(4,2) = 6 *)
  let mk () =
    let body _pid () = Cell.write (Cell.make 0) 1 in
    (Sim.create ~n:2 body, fun () -> ())
  in
  let stats = Explore.explore ~max_crashes:0 ~mk () in
  Alcotest.(check int) "6 interleavings" 6 stats.Explore.schedules

let test_explore_detects_violation () =
  (* a deliberately broken "agreement": two processes race on a register
     and each decides its own write if it reads it back *)
  let mk () =
    let reg = Cell.make (-1) in
    let outs = Array.make 2 (-1) in
    let body pid () =
      Cell.write reg pid;
      outs.(pid) <- Cell.read reg
    in
    let check () =
      if outs.(0) >= 0 && outs.(1) >= 0 && outs.(0) <> outs.(1) then
        Explore.fail "disagreement"
    in
    (Sim.create ~n:2 body, check)
  in
  (match Explore.explore ~max_crashes:0 ~mk () with
  | _ -> Alcotest.fail "expected a violation"
  | exception Explore.Violation { v_msg = msg; v_schedule = schedule; v_provenance } ->
      Alcotest.(check string) "message" "disagreement" msg;
      Alcotest.(check bool) "non-empty schedule" true (schedule <> []);
      Alcotest.(check bool) "provenance attached" true (v_provenance <> None))

let test_explore_crash_pruning () =
  (* crashing an un-started process is pruned, so with one process and one
     crash allowed the tree stays small and finite *)
  let mk () =
    let body _pid () = Cell.write (Cell.make 0) 1 in
    (Sim.create ~n:1 body, fun () -> ())
  in
  let s0 = Explore.explore ~max_crashes:0 ~mk () in
  let s1 = Explore.explore ~max_crashes:1 ~mk () in
  Alcotest.(check int) "one schedule, no crashes" 1 s0.Explore.schedules;
  Alcotest.(check bool) "crashes add schedules" true (s1.Explore.schedules > s0.Explore.schedules)

let test_explore_budget () =
  let mk () =
    let body _pid () =
      for _ = 1 to 8 do
        Cell.write (Cell.make 0) 0
      done
    in
    (Sim.create ~n:3 body, fun () -> ())
  in
  match Explore.explore ~max_crashes:2 ~max_nodes:500 ~mk () with
  | _ -> Alcotest.fail "expected budget exhaustion"
  | exception Explore.Budget_exceeded stats ->
      Alcotest.(check bool) "budget reported" true (stats.Explore.nodes > 500)

let suite =
  [
    Alcotest.test_case "step granularity" `Quick test_step_granularity;
    Alcotest.test_case "stepping a finished process" `Quick test_step_finished_raises;
    Alcotest.test_case "crash loses local state" `Quick test_crash_loses_local_state;
    Alcotest.test_case "crash preserves shared memory" `Quick test_crash_preserves_shared_memory;
    Alcotest.test_case "crash counters" `Quick test_crash_counts;
    Alcotest.test_case "crash after finish restarts" `Quick test_crash_after_finish_restarts;
    Alcotest.test_case "crash_all (simultaneous model)" `Quick test_crash_all;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "simulated objects" `Quick test_sim_obj;
    Alcotest.test_case "growable arrays" `Quick test_growable;
    Alcotest.test_case "round robin terminates" `Quick test_round_robin_terminates;
    Alcotest.test_case "round robin budget" `Quick test_round_robin_budget;
    Alcotest.test_case "random driver bounds crashes" `Quick test_random_driver_crashes_bounded;
    Alcotest.test_case "simultaneous driver" `Quick test_simultaneous_driver;
    Alcotest.test_case "explorer: tiny interleaving count" `Quick test_explore_tiny_counts;
    Alcotest.test_case "explorer: detects violations" `Quick test_explore_detects_violation;
    Alcotest.test_case "explorer: crash pruning" `Quick test_explore_crash_pruning;
    Alcotest.test_case "explorer: node budget" `Quick test_explore_budget;
  ]
