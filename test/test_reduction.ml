(* Partial-order + symmetry reduction: soundness and determinism.

   Four layers of guarantees are pinned here:
   - the independence relation's ingredients: the footprint conflict
     matrix ([Rcons_spec.Footprint]) and the relabeling group
     ([Sim.relabelings] / [Certificate.symmetry_classes]) behave as the
     explorer's soundness argument assumes;
   - reduced modes are deterministic: the por / por+dedup / +symmetry
     statistics on the Figure 2 suites are hard-coded baselines, so any
     accidental change to the sleep-set computation or the canonical
     fingerprint fails loudly;
   - reduced modes find a violation iff the raw explorer does (the
     sleep-set theorem made executable, qcheck'd over sampled workload
     configurations), and a violation found under reduction replays
     concretely through the [Counterexample] pipeline;
   - the resumption contract: reduced runs refuse [?resume_from], and a
     finished checkpoint (empty cursor) short-circuits instead of
     re-walking its tree. *)

open Rcons_runtime
module Footprint = Rcons_spec.Footprint
module Cex = Rcons.Counterexample

let stats_eq =
  Alcotest.testable
    (fun ppf (s : Explore.stats) ->
      Format.fprintf ppf
        "{schedules=%d; nodes=%d; max_depth=%d; dedup_hits=%d; distinct_states=%d; \
         por_pruned=%d; symmetry_hits=%d}"
        s.schedules s.nodes s.max_depth s.dedup_hits s.distinct_states s.por_pruned
        s.symmetry_hits)
    ( = )

let team_mk ?faithful cert () =
  let sys = Helpers.team_system ?faithful cert () in
  (sys.Helpers.sim, sys.Helpers.check)

(* --- the independence relation's ingredients --- *)

let test_footprint_matrix () =
  let open Footprint in
  let obj oid kind = Obj { oid; kind } in
  (* Global conflicts with everything, including itself. *)
  Alcotest.(check bool) "global/global" false (independent Global Global);
  Alcotest.(check bool) "global/read" false (independent Global (obj 0 Read));
  Alcotest.(check bool) "read/global" false (independent (obj 0 Read) Global);
  (* Distinct objects always commute, whatever the kinds. *)
  List.iter
    (fun (k1, k2) ->
      Alcotest.(check bool) "distinct oids" true (independent (obj 0 k1) (obj 1 k2)))
    [ (Write, Write); (Update, Update); (Write, Flush); (Sync, Flush) ];
  (* Same object: the conflict matrix. *)
  let indep k1 k2 = independent (obj 7 k1) (obj 7 k2) in
  List.iter
    (fun (k1, k2, expect) ->
      Alcotest.(check bool)
        (Format.asprintf "%a/%a" pp_kind k1 pp_kind k2)
        expect (indep k1 k2);
      Alcotest.(check bool)
        (Format.asprintf "%a/%a (sym)" pp_kind k2 pp_kind k1)
        expect (indep k2 k1))
    [
      (Read, Read, true);
      (Read, Write, false);
      (Read, Update, false);
      (Read, Flush, true);
      (Read, Sync, true);
      (Write, Write, false);
      (Write, Update, false);
      (Write, Flush, false);
      (Write, Sync, false);
      (Update, Update, false);
      (Update, Flush, false);
      (Update, Sync, false);
      (Flush, Flush, true);
      (Flush, Sync, false);
      (Sync, Sync, true);
    ]

let perm_list = List.map Array.to_list

let test_relabelings () =
  Alcotest.(check (list (list int)))
    "no classes -> identity only"
    [ [ 0; 1; 2 ] ]
    (perm_list (Sim.relabelings ~classes:[] 3));
  Alcotest.(check (list (list int)))
    "one pair, identity first"
    [ [ 0; 1; 2 ]; [ 1; 0; 2 ] ]
    (perm_list (Sim.relabelings ~classes:[ [ 0; 1 ] ] 3));
  let g = Sim.relabelings ~classes:[ [ 0; 1 ]; [ 2; 3 ] ] 4 in
  Alcotest.(check int) "two pairs -> 4 relabelings" 4 (List.length g);
  Alcotest.(check (list int)) "identity first" [ 0; 1; 2; 3 ] (Array.to_list (List.hd g));
  (* Closed under composition: a group, not just a generating set. *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let pq = Array.init 4 (fun i -> p.(q.(i))) in
          Alcotest.(check bool) "closed under composition" true
            (List.exists (fun r -> r = pq) g))
        g)
    g

let test_symmetry_classes () =
  (* Level 2: singleton teams, nothing to exchange. *)
  (match Cex.symmetry_classes (Cex.team2 "S2") with
  | Ok [] -> ()
  | Ok cls ->
      Alcotest.failf "S2 level 2 should have no classes, got %d" (List.length cls)
  | Error e -> Alcotest.fail e);
  (* Level 3: one two-member team of equal operations. *)
  match Cex.symmetry_classes (Cex.team2 ~level:3 "sticky") with
  | Ok [ cls ] -> Alcotest.(check int) "one class of two slots" 2 (List.length cls)
  | Ok cls -> Alcotest.failf "sticky level 3: expected one class, got %d" (List.length cls)
  | Error e -> Alcotest.fail e

(* --- reduced modes are deterministic: pinned baselines --- *)

(* Raw counterparts are pinned in test_dedup.ml: S_2 1-crash raw is
   (30120 schedules, 112674 nodes); dedup-only is (39, 1781). *)
let test_reduced_baselines () =
  let s2 = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  Alcotest.check stats_eq "S_2 1 crash, por"
    {
      schedules = 1442;
      nodes = 14234;
      max_depth = 19;
      dedup_hits = 0;
      distinct_states = 0;
      por_pruned = 5728;
      symmetry_hits = 0;
    }
    (Explore.explore ~max_crashes:1 ~por:true ~mk:(team_mk s2) ());
  Alcotest.check stats_eq "S_2 1 crash, dedup+por"
    {
      schedules = 8;
      nodes = 696;
      max_depth = 18;
      dedup_hits = 283;
      distinct_states = 341;
      por_pruned = 182;
      symmetry_hits = 0;
    }
    (Explore.explore ~max_crashes:1 ~dedup:true ~por:true ~mk:(team_mk s2) ());
  let sticky3 = Helpers.cert_of Rcons_spec.Sticky_bit.t 3 in
  let classes =
    match Cex.symmetry_classes (Cex.team2 ~level:3 "sticky") with
    | Ok cls -> cls
    | Error e -> Alcotest.fail e
  in
  Alcotest.check stats_eq "sticky level 3, 0 crashes, dedup+symmetry"
    {
      schedules = 7;
      nodes = 903;
      max_depth = 18;
      dedup_hits = 513;
      distinct_states = 391;
      por_pruned = 0;
      symmetry_hits = 409;
    }
    (Explore.explore ~max_crashes:0 ~dedup:true ~symmetry:classes ~mk:(team_mk sticky3) ())

(* The acceptance bar of this change (see also bench E13): on the
   2-crash Figure 2 workload with a two-member team, full reduction
   must visit at least 10x fewer state-graph edges than dedup alone.
   The dedup-only count is a pinned baseline (its run is ~1 min, too
   slow to recompute here; `dune exec bench/main.exe -- E13` does). *)
let test_reduction_factor_two_crashes () =
  let sticky3 = Helpers.cert_of Rcons_spec.Sticky_bit.t 3 in
  let dedup_only_nodes = 169_806 in
  let classes =
    match Cex.symmetry_classes (Cex.team2 ~level:3 "sticky") with
    | Ok cls -> cls
    | Error e -> Alcotest.fail e
  in
  let r =
    Explore.explore ~max_crashes:2 ~dedup:true ~por:true ~symmetry:classes
      ~mk:(team_mk sticky3) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "dedup+por+symmetry nodes %d <= dedup nodes %d / 10" r.nodes
       dedup_only_nodes)
    true
    (r.nodes * 10 <= dedup_only_nodes);
  Alcotest.(check bool) "por actually pruned" true (r.por_pruned > 0);
  Alcotest.(check bool) "symmetry actually hit" true (r.symmetry_hits > 0)

(* --- violation iff raw, and concrete replay of reduced-mode finds --- *)

let verdict ?(dedup = false) ?(por = false) ?symmetry w =
  match Cex.mk w with
  | Error e -> Alcotest.fail e
  | Ok mk -> (
      match
        Explore.explore ~max_crashes:0 ~dedup ~por ?symmetry
          ~fingerprint:(Cex.fingerprint w) ~mk ()
      with
      | (_ : Explore.stats) -> None
      | exception Explore.Violation v -> Some v)

let test_violation_replay () =
  let w = Cex.team2 ~faithful:false ~level:3 "sticky" in
  let classes =
    match Cex.symmetry_classes w with Ok cls -> cls | Error e -> Alcotest.fail e
  in
  let raw = verdict w in
  Alcotest.(check bool) "raw finds the broken variant" true (raw <> None);
  List.iter
    (fun (name, v) ->
      match v with
      | None -> Alcotest.failf "%s missed the violation the raw explorer finds" name
      | Some v -> (
          (* The reduced-mode schedule is a real schedule: it must
             replay concretely through the counterexample pipeline. *)
          let cex = Cex.of_violation w v in
          (match Cex.replay cex with
          | `Violated _ -> ()
          | `Passed -> Alcotest.failf "%s: schedule does not replay" name);
          match Cex.minimize cex with
          | Error e -> Alcotest.failf "%s: minimize failed: %s" name e
          | Ok min -> (
              match Cex.replay min with
              | `Violated _ -> ()
              | `Passed -> Alcotest.failf "%s: minimized schedule does not replay" name)))
    [
      ("por", verdict ~por:true w);
      ("dedup+por", verdict ~dedup:true ~por:true w);
      ("dedup+por+symmetry", verdict ~dedup:true ~por:true ~symmetry:classes w);
    ]

(* Violation-iff-raw over sampled workload configurations: object type,
   recording level, variant, persistency policy, crash budget.  The
   qcheck generator picks a configuration; the property runs the raw
   explorer and every reduced mode and demands identical verdicts. *)
let configs =
  [|
    ("S2", 2, 0);
    ("S2", 2, 1);
    ("S3", 3, 0);
    ("sticky", 2, 1);
    ("sticky", 3, 0);
    ("cas", 2, 1);
    ("consensus", 2, 0);
  |]

let config_gen =
  QCheck2.Gen.(
    tup4 (int_bound (Array.length configs - 1)) bool
      (oneofl [ Persist.Eager; Persist.Lossy; Persist.Torn ])
      bool)

let qcheck_violation_iff_raw =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12 ~name:"reduced modes find a violation iff raw does"
       ~print:(fun (i, faithful, policy, annotated) ->
         let ty, level, crashes = configs.(i) in
         Printf.sprintf "%s level=%d crashes=%d faithful=%b %s%s" ty level crashes faithful
           (Persist.policy_to_string policy)
           (if annotated then " annotated" else ""))
       config_gen
       (fun (i, faithful, policy, annotated) ->
         let ty, level, crashes = configs.(i) in
         let w = Cex.team2 ~faithful ~level ~persist:policy ~annotated ty in
         let classes =
           match Cex.symmetry_classes w with Ok cls -> cls | Error e -> Alcotest.fail e
         in
         (* Per-sample node cap: some sampled raw spaces (annotated
            level-3 runs) are minutes of work.  A reduced walk only ever
            visits a subset of the raw tree's nodes, so if raw finishes
            under the cap, so do the reduced modes; a capped raw sample
            is vacuous. *)
         let explore ?(dedup = false) ?(por = false) ?symmetry () =
           match Cex.mk w with
           | Error e -> Alcotest.fail e
           | Ok mk -> (
               match
                 Explore.explore ~max_crashes:crashes ~max_nodes:150_000 ~dedup ~por ?symmetry
                   ~mk ()
               with
               | (_ : Explore.stats) -> Some false
               | exception Explore.Violation _ -> Some true
               | exception Explore.Budget_exceeded _ -> None)
         in
         match explore () with
         | None -> true
         | Some _ as raw ->
             raw = explore ~por:true ()
             && raw = explore ~dedup:true ~por:true ()
             && raw = explore ~dedup:true ~por:true ~symmetry:classes ()))

(* --- parameter validation and the resumption contract --- *)

let test_reduced_validation () =
  let s2 = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let expect_invalid name f =
    match f () with
    | (_ : Explore.stats) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "symmetry without dedup" (fun () ->
      Explore.explore ~symmetry:[ [ 0; 1 ] ] ~mk:(team_mk s2) ());
  expect_invalid "por+dedup on several domains" (fun () ->
      Explore.explore ~dedup:true ~por:true ~domains:4 ~mk:(team_mk s2) ());
  (* Interrupt a dedup run, then try to resume it with reduction on. *)
  let cp =
    match Explore.explore ~max_crashes:1 ~dedup:true ~node_budget:200 ~mk:(team_mk s2) () with
    | (_ : Explore.stats) -> Alcotest.fail "expected the node budget to trip"
    | exception Explore.Interrupted cp -> cp
  in
  expect_invalid "resume with por" (fun () ->
      Explore.explore ~max_crashes:1 ~dedup:true ~por:true ~resume_from:cp ~mk:(team_mk s2) ());
  expect_invalid "resume with symmetry" (fun () ->
      Explore.explore ~max_crashes:1 ~dedup:true ~symmetry:[ [ 0; 1 ] ] ~resume_from:cp
        ~mk:(team_mk s2) ())

(* A checkpoint whose cursor is empty denotes a finished run: resuming
   from it must return its statistics verbatim -- not silently re-walk
   the whole tree (the previous behaviour, observable as stats drift:
   re-walking re-counts the pre-interrupt region). *)
let test_empty_cursor_short_circuit () =
  let s2 = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let cp =
    match Explore.explore ~max_crashes:1 ~dedup:true ~node_budget:200 ~mk:(team_mk s2) () with
    | (_ : Explore.stats) -> Alcotest.fail "expected the node budget to trip"
    | exception Explore.Interrupted cp -> cp
  in
  (* Surgically empty the cursor via the JSON round-trip. *)
  let finished =
    match Explore.checkpoint_to_json cp with
    | Json.Obj fields ->
        Explore.checkpoint_of_json
          (Json.Obj
             (List.map
                (function "cursor", _ -> ("cursor", Json.List []) | f -> f)
                fields))
    | _ -> Alcotest.fail "checkpoint JSON is not an object"
  in
  let partial = Explore.checkpoint_stats cp in
  let full = Explore.explore ~max_crashes:1 ~dedup:true ~mk:(team_mk s2) () in
  Alcotest.(check bool) "interrupt really was partial" true (partial <> full);
  Alcotest.check stats_eq "finished checkpoint returns its stats verbatim" partial
    (Explore.explore ~max_crashes:1 ~dedup:true ~resume_from:finished ~mk:(team_mk s2) ())

let suite =
  [
    Alcotest.test_case "footprint conflict matrix" `Quick test_footprint_matrix;
    Alcotest.test_case "relabeling group" `Quick test_relabelings;
    Alcotest.test_case "certificate symmetry classes" `Quick test_symmetry_classes;
    Alcotest.test_case "reduced modes match pinned baselines" `Quick test_reduced_baselines;
    Alcotest.test_case "2-crash reduction factor >= 10x" `Slow
      test_reduction_factor_two_crashes;
    Alcotest.test_case "reduced-mode violations replay concretely" `Quick
      test_violation_replay;
    qcheck_violation_iff_raw;
    Alcotest.test_case "reduced modes refuse invalid parameters" `Quick
      test_reduced_validation;
    Alcotest.test_case "finished checkpoint short-circuits" `Quick
      test_empty_cursor_short_circuit;
  ]
