(* Persisted certificate cache: round-trips (store -> JSON -> load ->
   revalidate) over the catalogue and over random finite types, and the
   trust boundary -- poisoned or fingerprint-stale entries must never be
   believed, only discarded and recomputed. *)

open Rcons_check
module OT = Rcons_spec.Object_type

let tmp_dir () =
  let d = Filename.temp_file "rcons-certs" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file file contents =
  let oc = open_out_bin file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

(* Store the live scan result for one (type, property, n), reload it and
   require the reload to agree with the original bit for bit.  Returns
   false on any disagreement. *)
let roundtrip_recording (OT.Pack (module T)) n dir =
  let module Sc = Recording.Scan (T) in
  let depth = max 8 n in
  let fp = OT.fingerprint ~depth (module T) in
  let r = Sc.witness_at n in
  Cert_cache.store_recording (module T) ~dir ~fingerprint:fp ~depth ~n r;
  match (Cert_cache.load_recording (module T) ~check:None ~dir ~fingerprint:fp ~n, r) with
  | Cert_cache.Hit d, Some d0 -> d = d0
  | Cert_cache.Negative, None -> true
  | _ -> false

let roundtrip_discerning (OT.Pack (module T)) n dir =
  let module Sc = Discerning.Scan (T) in
  let depth = max 8 n in
  let fp = OT.fingerprint ~depth (module T) in
  let r = Sc.witness_at n in
  Cert_cache.store_discerning (module T) ~dir ~fingerprint:fp ~depth ~n r;
  match (Cert_cache.load_discerning (module T) ~check:None ~dir ~fingerprint:fp ~n, r) with
  | Cert_cache.Hit d, Some d0 -> d = d0
  | Cert_cache.Negative, None -> true
  | _ -> false

let catalogue_types () =
  List.map (fun e -> e.Rcons_spec.Catalogue.ot) Rcons_spec.Catalogue.all
  @ [ Rcons_spec.Sn.make 3; Rcons_spec.Tn.make 3; Rcons_spec.Sn.make 4 ]

(* Round-trip every catalogue type at n = 2..4 and then revalidate every
   file on disk through the fingerprint-anchored CLI path. *)
let test_roundtrip_catalogue () =
  with_dir @@ fun dir ->
  List.iter
    (fun ot ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "recording %s n=%d" (OT.name ot) n)
            true (roundtrip_recording ot n dir);
          Alcotest.(check bool)
            (Printf.sprintf "discerning %s n=%d" (OT.name ot) n)
            true (roundtrip_discerning ot n dir))
        [ 2; 3; 4 ])
    (catalogue_types ());
  let entries = Cert_cache.list_dir dir in
  Alcotest.(check bool) "cache is non-empty" true (List.length entries > 0);
  List.iter
    (fun (file, parsed) ->
      (match parsed with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "corrupt entry %s: %s" file m);
      match Cert_cache.revalidate_file file with
      | Cert_cache.Valid -> ()
      | Cert_cache.Stale_entry m -> Alcotest.failf "stale entry %s: %s" file m
      | Cert_cache.Corrupt m -> Alcotest.failf "corrupt entry %s: %s" file m)
    entries

(* qcheck: round-trips also hold for arbitrary random finite types
   (these exercise the negative-entry path heavily: most random types
   have no witness).  Random types are not in the catalogue, so only the
   load path is checked, not the fingerprint-anchored [revalidate_file]. *)
let table_gen =
  QCheck2.Gen.(
    let* num_states = int_range 2 3 in
    let* num_ops = int_range 1 2 in
    let* num_resps = int_range 1 2 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed; num_states; num_ops; 11 |] in
    return (Rcons_spec.Finite_type.random ~num_resps ~num_states ~num_ops rng))

let test_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"random finite types round-trip" table_gen (fun table ->
         let ot = Rcons_spec.Finite_type.of_table table in
         with_dir @@ fun dir ->
         List.for_all
           (fun n -> roundtrip_recording ot n dir && roundtrip_discerning ot n dir)
           [ 2; 3 ]))

(* The arithmetic candidate count used to validate negative entries must
   equal the materialized enumeration exactly. *)
let test_candidate_count () =
  List.iter
    (fun (states, ops, n) ->
      let initial_states = List.init states Fun.id and ops = List.init ops Fun.id in
      Alcotest.(check int)
        (Printf.sprintf "%d states, %d ops, n=%d" states (List.length ops) n)
        (List.length (Enumerate.candidates ~initial_states ~ops n))
        (Enumerate.candidate_count ~initial_states ~ops n))
    [ (1, 1, 2); (2, 3, 2); (3, 2, 4); (2, 4, 5); (1, 5, 6); (2, 2, 7) ]

(* Fixture: the first recording-witness entry written for a type known to
   have one. *)
let sticky = Rcons_spec.Sticky_bit.t

let store_sticky_witness dir =
  match sticky with
  | OT.Pack (module T) ->
      let module Sc = Recording.Scan (T) in
      let fp = OT.fingerprint (module T) in
      let r = Sc.witness_at 2 in
      Alcotest.(check bool) "sticky-bit is 2-recording" true (Option.is_some r);
      Cert_cache.store_recording (module T) ~dir ~fingerprint:fp ~depth:8 ~n:2 r;
      (fp, Filename.concat dir (Cert_cache.file_name ~property:Cert_cache.Recording ~fingerprint:fp ~n:2))

let load_sticky dir fp =
  match sticky with
  | OT.Pack (module T) -> (
      match Cert_cache.load_recording (module T) ~check:None ~dir ~fingerprint:fp ~n:2 with
      | Cert_cache.Hit _ -> `Hit
      | Cert_cache.Negative -> `Negative
      | Cert_cache.Miss -> `Miss)

(* Poisoned certificate: mutate the stored Q_A digest.  The loader must
   reject the entry (Miss, never Hit) and a cache-backed classify must
   recompute and heal the file. *)
let test_poisoned_q_set () =
  with_dir @@ fun dir ->
  let fp, file = store_sticky_witness dir in
  Alcotest.(check bool) "pristine entry loads" true (load_sticky dir fp = `Hit);
  let poisoned =
    Str.global_replace (Str.regexp {|"q_a": "[0-9a-f]*"|}) {|"q_a": "deadbeefdeadbeefdeadbeefdeadbeef"|}
      (read_file file)
  in
  write_file file poisoned;
  Alcotest.(check bool) "poisoned entry is a miss" true (load_sticky dir fp = `Miss);
  (match Cert_cache.revalidate_file file with
  | Cert_cache.Stale_entry _ -> ()
  | Cert_cache.Valid -> Alcotest.fail "poisoned entry revalidated as valid"
  | Cert_cache.Corrupt m -> Alcotest.failf "poisoned entry reported corrupt (%s), want stale" m);
  (* A classify run through the cache must agree with a cache-free run
     and overwrite the poisoned file with a valid one. *)
  let with_cache = Classify.classify ~limit:3 ~certs:dir sticky in
  let without = Classify.classify ~limit:3 sticky in
  Alcotest.(check string)
    "poisoned cache cannot change the report"
    (Format.asprintf "%a" Classify.pp_report without)
    (Format.asprintf "%a" Classify.pp_report with_cache);
  match Cert_cache.revalidate_file file with
  | Cert_cache.Valid -> ()
  | Cert_cache.Stale_entry m | Cert_cache.Corrupt m ->
      Alcotest.failf "entry not healed by recompute: %s" m

(* Stale fingerprint: the entry claims a fingerprint the live type no
   longer has (as after any behavioural change).  The loader must reject
   it and the maintenance path must not find a matching type. *)
let test_stale_fingerprint () =
  with_dir @@ fun dir ->
  let fp, file = store_sticky_witness dir in
  let bogus = String.init (String.length fp) (fun i -> if fp.[i] = 'f' then '0' else 'f') in
  write_file file (Str.global_replace (Str.regexp_string fp) bogus (read_file file));
  Alcotest.(check bool) "fingerprint-stale entry is a miss" true (load_sticky dir fp = `Miss);
  match Cert_cache.revalidate_file file with
  | Cert_cache.Stale_entry _ -> ()
  | Cert_cache.Valid -> Alcotest.fail "fingerprint-stale entry revalidated as valid"
  | Cert_cache.Corrupt m -> Alcotest.failf "want stale, got corrupt: %s" m

(* Mutating a negative entry's exhausted-candidate count must invalidate
   it: the enumeration shape is part of what makes a "none" trustworthy. *)
let test_poisoned_negative () =
  with_dir @@ fun dir ->
  match Rcons_spec.Register.default with
  | OT.Pack (module T) ->
      let fp = OT.fingerprint (module T) in
      Cert_cache.store_recording (module T) ~dir ~fingerprint:fp ~depth:8 ~n:2 None;
      let file =
        Filename.concat dir (Cert_cache.file_name ~property:Cert_cache.Recording ~fingerprint:fp ~n:2)
      in
      let load () =
        match Cert_cache.load_recording (module T) ~check:None ~dir ~fingerprint:fp ~n:2 with
        | Cert_cache.Negative -> `Negative
        | Cert_cache.Hit _ -> `Hit
        | Cert_cache.Miss -> `Miss
      in
      Alcotest.(check bool) "pristine negative loads" true (load () = `Negative);
      write_file file
        (Str.global_replace (Str.regexp {|"candidates": [0-9]*|}) {|"candidates": 9999|}
           (read_file file));
      Alcotest.(check bool) "mutated candidate count is a miss" true (load () = `Miss)

(* Truncated file: corrupt, not stale -- and [gc] removes it while
   keeping valid entries. *)
let test_corrupt_and_gc () =
  with_dir @@ fun dir ->
  let _fp, file = store_sticky_witness dir in
  let other = Filename.concat dir "recording-0000-n2.json" in
  write_file other "{\"format\": \"rcons-ce";
  (match Cert_cache.revalidate_file other with
  | Cert_cache.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated file must be corrupt");
  (match Cert_cache.info_of_file other with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated file must not parse");
  let removed = Cert_cache.gc dir in
  Alcotest.(check (list string)) "gc removes only the corrupt file" [ other ]
    (List.map fst removed);
  Alcotest.(check bool) "valid entry survives gc" true (Sys.file_exists file)

(* Missing cache directory behaves as an empty cache. *)
let test_missing_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rcons-certs-nonexistent" in
  rm_rf dir;
  Alcotest.(check int) "list_dir of missing dir" 0 (List.length (Cert_cache.list_dir dir));
  match sticky with
  | OT.Pack (module T) -> (
      let fp = OT.fingerprint (module T) in
      match Cert_cache.load_recording (module T) ~check:None ~dir ~fingerprint:fp ~n:2 with
      | Cert_cache.Miss -> ()
      | _ -> Alcotest.fail "missing dir must be a miss")

(* Warm/cold/cache-free classifications agree, and a warm run is all
   cache hits (it does not rewrite any file). *)
let test_classify_warm_equals_cold () =
  with_dir @@ fun dir ->
  let types = [ sticky; Rcons_spec.Cas.default; Rcons_spec.Register.default; Rcons_spec.Sn.make 3 ] in
  let render certs =
    String.concat "\n"
      (List.map
         (fun ot -> Format.asprintf "%a" Classify.pp_report (Classify.classify ~limit:4 ?certs ot))
         types)
  in
  let nocache = render None in
  let cold = render (Some dir) in
  let mtimes () =
    List.map (fun (f, _) -> (f, (Unix.stat f).Unix.st_mtime)) (Cert_cache.list_dir dir)
  in
  let before = mtimes () in
  let warm = render (Some dir) in
  Alcotest.(check string) "cold = no-cache" nocache cold;
  Alcotest.(check string) "warm = cold" cold warm;
  Alcotest.(check bool) "warm run rewrites nothing" true (mtimes () = before)

let suite =
  [
    Alcotest.test_case "catalogue round-trip + revalidate" `Quick test_roundtrip_catalogue;
    test_roundtrip_random;
    Alcotest.test_case "candidate count matches enumeration" `Quick test_candidate_count;
    Alcotest.test_case "poisoned Q-set: rejected and recomputed" `Quick test_poisoned_q_set;
    Alcotest.test_case "stale fingerprint: rejected" `Quick test_stale_fingerprint;
    Alcotest.test_case "poisoned negative: rejected" `Quick test_poisoned_negative;
    Alcotest.test_case "corrupt entry: flagged and gc'd" `Quick test_corrupt_and_gc;
    Alcotest.test_case "missing dir = empty cache" `Quick test_missing_dir;
    Alcotest.test_case "classify warm = cold = no-cache" `Quick test_classify_warm_equals_cold;
  ]
