(* Systematic failure injection, complementary to the exhaustive
   explorer: under a fixed round-robin schedule, crash one specific
   process at one specific global step (every combination in turn), and
   also inject double crashes at all position pairs with a stride.  Much
   cheaper than full exploration, covers every single-crash position of
   the deterministic schedule exactly once. *)

open Rcons_runtime

let run_with_crashes ~mk ~crashes =
  let sim, check = mk () in
  let remaining = ref crashes in
  let budget = ref 100_000 in
  (* A busted budget with no context is undebuggable: name the injected
     crash schedule and where every process was stuck when we gave up. *)
  let exhausted () =
    let n = Sim.num_procs sim in
    let schedule =
      crashes |> List.map (fun (at, victim) -> Printf.sprintf "p%d@%d" victim at)
      |> String.concat " "
    in
    let per_proc =
      List.init n (fun i ->
          Printf.sprintf "p%d:%d steps%s" i (Sim.step_count sim i)
            (if Sim.finished sim i then " (finished)" else ""))
      |> String.concat ", "
    in
    Alcotest.fail
      (Printf.sprintf
         "injection: step budget exhausted after %d total steps; injected crashes [%s]; %s"
         (Sim.total_steps sim) schedule per_proc)
  in
  while not (Sim.all_finished sim) do
    (match !remaining with
    | (at, victim) :: rest when Sim.total_steps sim >= at ->
        remaining := rest;
        Sim.crash sim victim
    | _ -> ());
    (* round-robin over unfinished processes *)
    let n = Sim.num_procs sim in
    let stepped = ref false in
    for i = 0 to n - 1 do
      if (not !stepped) && not (Sim.finished sim i) then begin
        decr budget;
        if !budget <= 0 then exhausted ();
        ignore (Sim.step_proc sim i);
        stepped := true
      end
    done
  done;
  check ()

let baseline_steps ~mk =
  let sim, _ = mk () in
  Drivers.round_robin sim;
  Sim.total_steps sim

let fig2_system () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 3) 3 in
  let sys = Helpers.team_system cert () in
  (sys.Helpers.sim, sys.Helpers.check)

let test_single_crash_every_position () =
  let total = baseline_steps ~mk:fig2_system in
  for at = 1 to total do
    for victim = 0 to 2 do
      run_with_crashes ~mk:fig2_system ~crashes:[ (at, victim) ]
    done
  done

let test_double_crashes_strided () =
  let total = baseline_steps ~mk:fig2_system in
  let positions = List.init total (fun i -> i + 1) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if b > a && (a + b) mod 3 = 0 then
            for v1 = 0 to 2 do
              run_with_crashes ~mk:fig2_system
                ~crashes:[ (a, v1); (b, (v1 + 1) mod 3) ]
            done)
        positions)
    positions

let universal_system () =
  let history = Rcons_history.History.create () in
  let u = Rcons_universal.Runiversal.create ~history ~n:2 Rcons_universal.Derived.counter in
  let runner = Rcons_universal.Script.create u ~n:2 ~max_ops:2 in
  let scripts =
    [|
      [| Rcons_universal.Derived.Incr; Rcons_universal.Derived.Get |];
      [| Rcons_universal.Derived.Incr |];
    |]
  in
  let sim = Sim.create ~n:2 (fun pid () -> Rcons_universal.Script.run runner pid scripts.(pid)) in
  let check () =
    if Sim.all_finished sim then begin
      if
        not
          (Rcons_history.Linearizability.check_history
             (Rcons_universal.Derived.lin_spec Rcons_universal.Derived.counter)
             history)
      then Alcotest.fail "universal: not linearizable after injected crash"
    end
  in
  (sim, check)

let test_universal_single_crash_every_position () =
  let total = baseline_steps ~mk:universal_system in
  for at = 1 to total do
    for victim = 0 to 1 do
      run_with_crashes ~mk:universal_system ~crashes:[ (at, victim) ]
    done
  done

let test_simultaneous_every_position () =
  (* Figure 4 under a crash_all at every possible step of the crash-free
     schedule *)
  let mk () =
    let n = 3 in
    let inputs = [| 1; 2; 3 |] in
    let outputs = Rcons_algo.Outputs.make ~inputs in
    let make_consensus () =
      let c = Rcons_algo.One_shot.create () in
      { Rcons_algo.Simultaneous_rc.propose = (fun _ v -> Rcons_algo.One_shot.decide c v) }
    in
    let rc = Rcons_algo.Simultaneous_rc.create ~n ~make_consensus in
    let body pid () =
      Rcons_algo.Outputs.record outputs pid
        (Rcons_algo.Simultaneous_rc.decide rc pid inputs.(pid))
    in
    (Sim.create ~n body, fun () -> Rcons_algo.Outputs.check_exn ~fail:Explore.fail outputs)
  in
  let total =
    let sim, _ = mk () in
    Drivers.round_robin sim;
    Sim.total_steps sim
  in
  for at = 1 to total do
    let sim, check = mk () in
    Drivers.simultaneous ~crash_at:[ at ] sim;
    check ()
  done

let suite =
  [
    Alcotest.test_case "Fig 2: single crash at every position" `Quick
      test_single_crash_every_position;
    Alcotest.test_case "Fig 2: strided double crashes" `Quick test_double_crashes_strided;
    Alcotest.test_case "universal: single crash at every position" `Quick
      test_universal_single_crash_every_position;
    Alcotest.test_case "Fig 4: crash_all at every position" `Quick
      test_simultaneous_every_position;
  ]
