(* Determinism of the parallel engine: everything computed with
   [?domains > 1] must be byte-equal to its sequential counterpart --
   witness certificates across the whole catalogue, classification
   reports, explorer statistics, and the violation schedule found on a
   seeded broken algorithm.  A qcheck meta-test extends the guarantee to
   random finite types.

   The machine running the suite may have a single core; correctness of
   the deterministic merge (Rcons_par.Pool) does not depend on real
   parallel execution, only on multiple domains actually running the
   sharded code paths, which they do regardless of core count. *)

open Rcons_check
open Rcons_runtime

let domains = 4

(* Disable the granularity cutoff for the whole test binary: with the
   default 1ms grace period most of these workloads would finish inline
   and never touch the pool, and the determinism suites are only worth
   running if claiming, stealing and the lock-free visited set actually
   execute.  (A dedicated test below re-enables the cutoff and checks the
   inline path separately.) *)
let () = Rcons_par.Pool.set_sequential_cutoff 0.

(* --- the pool primitives themselves --- *)

let test_pool_map () =
  let f i = (i * 37) mod 101 in
  Alcotest.(check (array int)) "map = Array.init" (Array.init 1000 f)
    (Rcons_par.Pool.map ~domains 1000 f);
  Alcotest.(check (array int)) "empty" [||] (Rcons_par.Pool.map ~domains 0 f)

let test_pool_find_first () =
  (* Many hits: the smallest index must win even though later hits are
     found first by other domains. *)
  let f i = if i mod 7 = 3 then Some (i * 2) else None in
  Alcotest.(check (option int)) "first hit wins" (Some 6) (Rcons_par.Pool.find_first ~domains 1000 f);
  Alcotest.(check (option int)) "no hit" None (Rcons_par.Pool.find_first ~domains 1000 (fun _ -> None));
  Alcotest.(check (option int)) "late single hit" (Some 999)
    (Rcons_par.Pool.find_first ~domains 1000 (fun i -> if i = 999 then Some i else None))

let test_pool_exists () =
  Alcotest.(check bool) "exists" true (Rcons_par.Pool.exists ~domains 1000 (fun i -> i = 997));
  Alcotest.(check bool) "not exists" false (Rcons_par.Pool.exists ~domains 1000 (fun _ -> false))

let test_pool_fold () =
  let total = Rcons_par.Pool.fold ~domains 1000 ~map:(fun i -> i) ~fold:( + ) ~init:0 in
  Alcotest.(check int) "fold sum" (999 * 1000 / 2) total

let test_pool_exn_propagates () =
  Alcotest.check_raises "exception crosses domains" (Failure "boom") (fun () ->
      ignore (Rcons_par.Pool.map ~domains 100 (fun i -> if i = 50 then failwith "boom" else i)))

let test_cutoff_config () =
  let saved = Rcons_par.Pool.sequential_cutoff () in
  Rcons_par.Pool.set_sequential_cutoff 0.25;
  Alcotest.(check (float 1e-9)) "set/get" 0.25 (Rcons_par.Pool.sequential_cutoff ());
  (* Scans that drain inside the grace period take the inline path and
     must still produce the canonical answers. *)
  let f i = (i * 37) mod 101 in
  Alcotest.(check (array int)) "map under cutoff" (Array.init 500 f)
    (Rcons_par.Pool.map ~domains 500 f);
  Alcotest.(check (option int)) "find_first under cutoff" (Some 6)
    (Rcons_par.Pool.find_first ~domains 1000 (fun i -> if i mod 7 = 3 then Some (i * 2) else None));
  Rcons_par.Pool.set_sequential_cutoff (-1.);
  Alcotest.(check (float 1e-9)) "clamped at zero" 0. (Rcons_par.Pool.sequential_cutoff ());
  Rcons_par.Pool.set_sequential_cutoff saved

let test_telemetry () =
  let saved = Rcons_par.Pool.sequential_cutoff () in
  let open Rcons_par.Pool in
  set_sequential_cutoff 10.;
  let b0 = Telemetry.snapshot () in
  ignore (map ~domains 200 (fun i -> i));
  let d = Telemetry.diff (Telemetry.snapshot ()) b0 in
  Alcotest.(check bool) "grace-period completion counted" true (d.Telemetry.seq_cutoffs >= 1);
  Alcotest.(check int) "no job submitted under cutoff" 0 d.Telemetry.jobs;
  set_sequential_cutoff 0.;
  let b1 = Telemetry.snapshot () in
  ignore (map ~domains 200 (fun i -> i));
  let d = Telemetry.diff (Telemetry.snapshot ()) b1 in
  Alcotest.(check bool) "job submitted" true (d.Telemetry.jobs >= 1);
  Alcotest.(check bool) "chunks claimed" true (d.Telemetry.chunks >= 1);
  set_sequential_cutoff saved

(* --- the lock-free visited set --- *)

(* N domains race to claim the same key set (each in a different rotated
   order, so collisions hit different probe clusters at different times);
   a tiny initial capacity forces many cooperative migrations under load.
   Exactly-once means the wins across all domains partition the distinct
   keys. *)
let visited_race ~capacity ~num_domains keys =
  let n = Array.length keys in
  let v = Rcons_par.Visited.create ~capacity () in
  let wins =
    Array.init num_domains (fun d ->
        Domain.spawn (fun () ->
            let w = ref 0 in
            for i = 0 to n - 1 do
              if Rcons_par.Visited.add v keys.((i + (d * 131)) mod n) then incr w
            done;
            !w))
    |> Array.map Domain.join
  in
  (v, Array.fold_left ( + ) 0 wins)

let test_visited_exactly_once () =
  let n = 5000 in
  let keys = Array.init n (fun i -> Digest.string (string_of_int i)) in
  let v, total = visited_race ~capacity:16 ~num_domains:6 keys in
  Alcotest.(check int) "every key claimed exactly once" n total;
  Alcotest.(check int) "cardinal" n (Rcons_par.Visited.cardinal v);
  Alcotest.(check bool) "resizes exercised" true (Rcons_par.Visited.resizes v > 0);
  Alcotest.(check bool) "all keys present" true
    (Array.for_all (fun k -> Rcons_par.Visited.mem v k) keys);
  Alcotest.(check bool) "absent key absent" false (Rcons_par.Visited.mem v (Digest.string "absent"));
  let sorted l = List.sort compare l in
  Alcotest.(check bool) "elements = keys (no lost inserts across resize)" true
    (sorted (Rcons_par.Visited.elements v) = sorted (Array.to_list keys));
  Alcotest.(check bool) "late add loses" false (Rcons_par.Visited.add v keys.(0))

let visited_gen =
  QCheck2.Gen.(
    let* n = int_range 50 600 in
    let* num_domains = int_range 2 6 in
    let* capacity = int_range 4 64 in
    let* seed = int_bound 1_000_000 in
    return (n, num_domains, capacity, seed))

let print_visited (n, num_domains, capacity, seed) =
  Printf.sprintf "n=%d domains=%d capacity=%d seed=%d" n num_domains capacity seed

(* Random key sets mix digest-length keys (the fast hash path) with short
   ones (the fallback path) and contain duplicates, so some [add]s lose
   within a single domain as well as across domains. *)
let visited_exactly_once (n, num_domains, capacity, seed) =
  let rng = Random.State.make [| seed; n; 7 |] in
  let keys =
    Array.init n (fun _ ->
        if Random.State.bool rng then Digest.string (string_of_int (Random.State.int rng 500))
        else String.init (1 + Random.State.int rng 6) (fun _ ->
                 Char.chr (32 + Random.State.int rng 90)))
  in
  let distinct = List.length (List.sort_uniq compare (Array.to_list keys)) in
  let v, total = visited_race ~capacity ~num_domains keys in
  total = distinct
  && Rcons_par.Visited.cardinal v = distinct
  && Array.for_all (fun k -> Rcons_par.Visited.mem v k) keys

let qcheck_visited =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"visited set: exactly-once claims under domain races"
       ~print:print_visited visited_gen visited_exactly_once)

(* --- witness determinism across the catalogue --- *)

let show_rec = function
  | None -> "none"
  | Some c -> Format.asprintf "%a" Certificate.pp_recording c

let show_disc = function
  | None -> "none"
  | Some c -> Format.asprintf "%a" Certificate.pp_discerning c

let test_witnesses_catalogue () =
  List.iter
    (fun e ->
      let ot = e.Rcons_spec.Catalogue.ot in
      let name = Rcons_spec.Object_type.name ot in
      List.iter
        (fun n ->
          Alcotest.(check string)
            (Printf.sprintf "%s recording witness n=%d" name n)
            (show_rec (Recording.witness ot n))
            (show_rec (Recording.witness ~domains ot n));
          Alcotest.(check string)
            (Printf.sprintf "%s discerning witness n=%d" name n)
            (show_disc (Discerning.witness ot n))
            (show_disc (Discerning.witness ~domains ot n)))
        [ 2; 3 ])
    Rcons_spec.Catalogue.all

let test_witnesses_separating_types () =
  List.iter
    (fun (name, ot, n) ->
      Alcotest.(check string)
        (Printf.sprintf "%s recording witness n=%d" name n)
        (show_rec (Recording.witness ot n))
        (show_rec (Recording.witness ~domains ot n)))
    [
      ("S_4", Rcons_spec.Sn.make 4, 4);
      ("T_5", Rcons_spec.Tn.make 5, 3);
      ("T_5 (no witness)", Rcons_spec.Tn.make 5, 4);
    ]

let test_classify_reports () =
  List.iter
    (fun (name, ot) ->
      let seq = Classify.classify ~limit:4 ot in
      let par = Classify.classify ~domains ~limit:4 ot in
      Alcotest.(check bool) (name ^ ": classify report identical") true (seq = par))
    [
      ("sticky", Rcons_spec.Sticky_bit.t);
      ("cas", Rcons_spec.Cas.default);
      ("T_4", Rcons_spec.Tn.make 4);
      ("swap", Rcons_spec.Swap.default);
      ("stack", Rcons_spec.Stack.default);
    ]

let test_brute_force_agrees () =
  List.iter
    (fun (name, ot) ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s brute recording n=%d" name n)
            (Brute_force.is_recording ot n)
            (Brute_force.is_recording ~domains ot n);
          Alcotest.(check bool)
            (Printf.sprintf "%s brute discerning n=%d" name n)
            (Brute_force.is_discerning ot n)
            (Brute_force.is_discerning ~domains ot n))
        [ 2; 3 ])
    [ ("tas", Rcons_spec.Test_and_set.t); ("flip", Rcons_spec.Flip_bit.t) ]

(* --- explorer determinism --- *)

let stats_eq = Alcotest.testable
    (fun ppf (s : Explore.stats) ->
      Format.fprintf ppf "{schedules=%d; nodes=%d; max_depth=%d}" s.schedules s.nodes s.max_depth)
    ( = )

let team_mk ?faithful cert () =
  let sys = Helpers.team_system ?faithful cert () in
  (sys.Helpers.sim, sys.Helpers.check)

let test_explore_stats_identical () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let seq = Explore.explore ~max_crashes:1 ~mk:(team_mk cert) () in
  List.iter
    (fun frontier_depth ->
      let par = Explore.explore ~max_crashes:1 ~domains ~frontier_depth ~mk:(team_mk cert) () in
      Alcotest.check stats_eq
        (Printf.sprintf "merged stats = sequential stats (frontier %d)" frontier_depth)
        seq par)
    [ 1; 3; 7 ]

(* The same workload through both engine modes: raw (frontier fan-out
   with watermark merge) and dedup (shared lock-free visited set) must
   each report stats byte-equal to their sequential counterpart, at
   several frontier depths. *)
let test_explore_stats_parity_modes () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  List.iter
    (fun dedup ->
      let seq = Explore.explore ~dedup ~max_crashes:1 ~mk:(team_mk cert) () in
      List.iter
        (fun frontier_depth ->
          let par =
            Explore.explore ~dedup ~max_crashes:1 ~domains ~frontier_depth ~mk:(team_mk cert) ()
          in
          Alcotest.check stats_eq
            (Printf.sprintf "%s stats parity (frontier %d)"
               (if dedup then "dedup" else "raw")
               frontier_depth)
            seq par)
        [ 2; 5 ])
    [ false; true ]

(* Raw+por across the parallel frontier: sleep sets travel with frontier
   items, so the reduced walk stays deterministic -- merged parallel
   stats (including the por_pruned counter) must equal the sequential
   reduced run at every frontier depth.  (dedup+por is sequential-only
   by construction and refused with domains > 1, pinned in
   test_reduction.ml.) *)
let test_explore_stats_parity_por () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let seq = Explore.explore ~por:true ~max_crashes:1 ~mk:(team_mk cert) () in
  Alcotest.(check bool) "por actually pruned" true (seq.por_pruned > 0);
  List.iter
    (fun frontier_depth ->
      let par =
        Explore.explore ~por:true ~max_crashes:1 ~domains ~frontier_depth ~mk:(team_mk cert) ()
      in
      Alcotest.check stats_eq
        (Printf.sprintf "raw+por stats parity (frontier %d)" frontier_depth)
        seq par)
    [ 2; 5 ]

let test_explore_sticky_identical () =
  (* A different algorithm shape than S_2: the sticky bit's 2-recording
     certificate exercises the q0-free path of Figure 2. *)
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 2 in
  let seq = Explore.explore ~max_crashes:1 ~mk:(team_mk cert) () in
  let par = Explore.explore ~max_crashes:1 ~domains ~mk:(team_mk cert) () in
  Alcotest.check stats_eq "sticky-bit one-crash stats" seq par

(* The broken Figure 2 variant (no |B| = 1 guard) must be caught on the
   same schedule, whatever the domain count: the parallel explorer
   surfaces the violation the sequential DFS would have raised first. *)
let test_explore_violation_schedule_identical () =
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 3 in
  let run ?domains ?frontier_depth () =
    match Explore.explore ?domains ?frontier_depth ~max_crashes:0 ~mk:(team_mk ~faithful:false cert) () with
    | (_ : Explore.stats) -> Alcotest.fail "expected a violation"
    | exception Explore.Violation { v_msg = msg; v_schedule = sched; _ } ->
        Format.asprintf "%s at %a" msg Explore.pp_schedule sched
  in
  let seq = run () in
  List.iter
    (fun frontier_depth ->
      Alcotest.(check string)
        (Printf.sprintf "violation schedule (frontier %d)" frontier_depth)
        seq
        (run ~domains ~frontier_depth ()))
    [ 1; 4 ]

(* --- undo engine vs replay oracle --- *)

(* The checkpoint/restore engine ([~undo:true], the default) must be an
   invisible optimization: on any workload it reports the same stats,
   and surfaces the same first violation on the same schedule, as the
   sibling-replay oracle ([~undo:false]) -- sequentially and across the
   parallel frontier, under every persistency policy.  Rendering the
   outcome (stats or violation+schedule) as one string makes any
   disagreement a single comparison. *)
let engine_outcome ?domains ?frontier_depth ?dedup ~max_crashes ~undo mk =
  match Explore.explore ?domains ?frontier_depth ?dedup ~max_crashes ~undo ~mk () with
  | s ->
      Format.asprintf "stats{schedules=%d; nodes=%d; depth=%d; dedup_hits=%d; distinct=%d}"
        s.Explore.schedules s.nodes s.max_depth s.dedup_hits s.distinct_states
  | exception Explore.Violation { v_msg = msg; v_schedule = sched; _ } ->
      Format.asprintf "%s at %a" msg Explore.pp_schedule sched

let engine_gen =
  QCheck2.Gen.(
    let* ot = int_bound 1 in
    let* pol = int_bound 2 in
    let* max_crashes = int_bound 1 in
    let* faithful = bool in
    let* dedup = bool in
    return (ot, pol, max_crashes, faithful, dedup))

let print_engine_case (ot, pol, max_crashes, faithful, dedup) =
  Printf.sprintf "ot=%s policy=%s crashes=%d faithful=%b dedup=%b"
    (if ot = 0 then "S_2" else "sticky")
    (match pol with 0 -> "eager" | 1 -> "lossy" | _ -> "torn")
    max_crashes faithful dedup

let engines_agree (ot_idx, pol, max_crashes, faithful, dedup) =
  let ot = if ot_idx = 0 then Rcons_spec.Sn.make 2 else Rcons_spec.Sticky_bit.t in
  let policy = match pol with 0 -> Persist.Eager | 1 -> Persist.Lossy | _ -> Persist.Torn in
  let mk = team_mk ~faithful (Helpers.cert_of ot 2) in
  Persist.scoped policy (fun () ->
      let reference = engine_outcome ~dedup ~max_crashes ~undo:true mk in
      List.for_all
        (fun d ->
          let run undo =
            if d = 1 then engine_outcome ~dedup ~max_crashes ~undo mk
            else engine_outcome ~domains:d ~frontier_depth:2 ~dedup ~max_crashes ~undo mk
          in
          run true = reference && run false = reference)
        [ 1; 2; 4 ])

let qcheck_engines =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12
       ~name:"undo engine = replay oracle (random workload/policy/budget, 1/2/4 domains)"
       ~print:print_engine_case engine_gen engines_agree)

(* An interrupted run cuts the same checkpoint under either engine --
   the JSON differs only in the tag naming who took it -- and either
   engine resumes either checkpoint to the same final stats. *)
let test_checkpoint_engine_parity () =
  let mk = team_mk (Helpers.cert_of (Rcons_spec.Sn.make 2) 2) in
  let interrupted undo =
    match Explore.explore ~max_crashes:1 ~node_budget:200 ~undo ~mk () with
    | (_ : Explore.stats) -> Alcotest.fail "node budget did not trip"
    | exception Explore.Interrupted cp -> cp
  in
  let cp_undo = interrupted true and cp_replay = interrupted false in
  let strip_engine cp =
    match Explore.checkpoint_to_json cp with
    | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "engine") kvs)
    | j -> j
  in
  Alcotest.(check string) "checkpoint JSON identical modulo engine tag"
    (Json.to_string (strip_engine cp_undo))
    (Json.to_string (strip_engine cp_replay));
  let finish undo cp = Explore.explore ~max_crashes:1 ~resume_from:cp ~undo ~mk () in
  let final = finish true cp_undo in
  List.iter
    (fun (name, s) -> Alcotest.check stats_eq name final s)
    [
      ("undo resumes replay checkpoint", finish true cp_replay);
      ("replay resumes undo checkpoint", finish false cp_undo);
      ("replay resumes replay checkpoint", finish false cp_replay);
      ("uninterrupted undo run", Explore.explore ~max_crashes:1 ~undo:true ~mk ());
      ("uninterrupted replay run", Explore.explore ~max_crashes:1 ~undo:false ~mk ());
    ]

(* --- qcheck meta-test on random finite types --- *)

let table_gen =
  QCheck2.Gen.(
    let* num_states = int_range 2 3 in
    let* num_ops = int_range 1 2 in
    let* num_resps = int_range 1 2 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed; num_states; num_ops; 13 |] in
    return (Rcons_spec.Finite_type.random ~num_resps ~num_states ~num_ops rng))

let print_table (t : Rcons_spec.Finite_type.table) =
  Format.asprintf "%d states %d ops %s" t.num_states t.num_ops
    (String.concat ";"
       (Array.to_list t.transition
       |> List.concat_map (fun row ->
              Array.to_list row |> List.map (fun (q, r) -> Printf.sprintf "%d/%d" q r))))

let parallel_agrees table =
  let ot = Rcons_spec.Finite_type.of_table table in
  List.for_all
    (fun n ->
      show_rec (Recording.witness ot n) = show_rec (Recording.witness ~domains ot n)
      && show_disc (Discerning.witness ot n) = show_disc (Discerning.witness ~domains ot n))
    [ 2; 3 ]

let qcheck_parallel =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"parallel witness = sequential witness (random types)"
       ~print:print_table table_gen parallel_agrees)

let suite =
  [
    Alcotest.test_case "pool: map" `Quick test_pool_map;
    Alcotest.test_case "pool: find_first" `Quick test_pool_find_first;
    Alcotest.test_case "pool: exists" `Quick test_pool_exists;
    Alcotest.test_case "pool: fold" `Quick test_pool_fold;
    Alcotest.test_case "pool: exceptions propagate" `Quick test_pool_exn_propagates;
    Alcotest.test_case "pool: sequential cutoff config" `Quick test_cutoff_config;
    Alcotest.test_case "pool: telemetry counters" `Quick test_telemetry;
    Alcotest.test_case "visited set: exactly-once across resizes" `Quick
      test_visited_exactly_once;
    qcheck_visited;
    Alcotest.test_case "catalogue witnesses byte-equal" `Quick test_witnesses_catalogue;
    Alcotest.test_case "separating-type witnesses byte-equal" `Quick
      test_witnesses_separating_types;
    Alcotest.test_case "classify reports identical" `Quick test_classify_reports;
    Alcotest.test_case "brute-force oracle identical" `Quick test_brute_force_agrees;
    Alcotest.test_case "explorer stats identical (incl. frontier sweep)" `Quick
      test_explore_stats_identical;
    Alcotest.test_case "explorer stats parity: raw and dedup modes" `Quick
      test_explore_stats_parity_modes;
    Alcotest.test_case "explorer stats parity: raw+por across the frontier" `Quick
      test_explore_stats_parity_por;
    Alcotest.test_case "explorer sticky-bit stats identical" `Quick
      test_explore_sticky_identical;
    Alcotest.test_case "violation schedule identical to sequential" `Quick
      test_explore_violation_schedule_identical;
    qcheck_engines;
    Alcotest.test_case "checkpoint parity and cross-engine resume" `Quick
      test_checkpoint_engine_parity;
    qcheck_parallel;
  ]
