(* State-space deduplication: fingerprint soundness and the explorer's
   dedup mode.

   Three layers of guarantees are pinned here:
   - [~dedup:false] is byte-identical to the pre-dedup explorer -- the
     raw statistics on the Figure 2 and Figure 4 suites are hard-coded
     baselines captured from the seed explorer, so any accidental change
     to raw-mode semantics (the spine-reuse replay in particular) fails
     loudly;
   - [~dedup:true] is deterministic: sequential and parallel runs report
     identical statistics on any domain count / frontier depth, and a
     violating algorithm yields the identical violation schedule;
   - [Sim.fingerprint] is replay-stable (qcheck): re-executing the same
     schedule against a fresh system from the same builder reproduces the
     fingerprint byte for byte -- the property that makes deduplication
     sound across replays and domains. *)

open Rcons_runtime
open Rcons_algo

let domains = 4

let stats_eq =
  Alcotest.testable
    (fun ppf (s : Explore.stats) ->
      Format.fprintf ppf
        "{schedules=%d; nodes=%d; max_depth=%d; dedup_hits=%d; distinct_states=%d; por_pruned=%d; \
         symmetry_hits=%d}"
        s.schedules s.nodes s.max_depth s.dedup_hits s.distinct_states s.por_pruned
        s.symmetry_hits)
    ( = )

let team_mk ?faithful cert () =
  let sys = Helpers.team_system ?faithful cert () in
  (sys.Helpers.sim, sys.Helpers.check)

(* Figure 4: recoverable consensus from consensus under simultaneous
   crashes; consensus instances are created lazily during execution, so
   this system exercises mid-run heap registration. *)
let fig4_mk n () =
  let inputs = Array.init n (fun i -> (i + 1) * 10) in
  let outputs = Outputs.make ~inputs in
  let make_consensus () =
    let c = One_shot.create () in
    { Simultaneous_rc.propose = (fun _pid v -> One_shot.decide c v) }
  in
  let rc = Simultaneous_rc.create ~n ~make_consensus in
  let body pid () = Outputs.record outputs pid (Simultaneous_rc.decide rc pid inputs.(pid)) in
  (Sim.create ~n body, fun () -> Outputs.check_exn ~fail:Explore.fail outputs)

let raw (schedules, nodes, max_depth) : Explore.stats =
  { schedules; nodes; max_depth; dedup_hits = 0; distinct_states = 0; por_pruned = 0; symmetry_hits = 0 }

(* --- raw mode is byte-identical to the seed explorer --- *)

let test_raw_baselines () =
  let s2 = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let sticky = Helpers.cert_of Rcons_spec.Sticky_bit.t 2 in
  Alcotest.check stats_eq "Figure 2 on S_2, 1 crash"
    (raw (30120, 112674, 19))
    (Explore.explore ~max_crashes:1 ~mk:(team_mk s2) ());
  Alcotest.check stats_eq "Figure 2 on sticky bit, 1 crash"
    (raw (29470, 109374, 18))
    (Explore.explore ~max_crashes:1 ~mk:(team_mk sticky) ());
  Alcotest.check stats_eq "Figure 4, n=2, no crashes"
    (raw (3432, 12868, 14))
    (Explore.explore ~max_crashes:0 ~mk:(fig4_mk 2) ())

let test_raw_baseline_two_crashes () =
  let s2 = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  Alcotest.check stats_eq "Figure 2 on S_2, 2 crashes"
    (raw (1442171, 5417237, 24))
    (Explore.explore ~max_crashes:2 ~mk:(team_mk s2) ())

(* --- dedup determinism: seq = par on any domain count / frontier --- *)

let test_dedup_seq_par_identical () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let seq = Explore.explore ~max_crashes:1 ~dedup:true ~mk:(team_mk cert) () in
  Alcotest.(check bool) "dedup actually deduplicates" true (seq.dedup_hits > 0);
  Alcotest.(check bool) "distinct states counted" true (seq.distinct_states > 0);
  List.iter
    (fun (domains, frontier_depth) ->
      let par =
        Explore.explore ~max_crashes:1 ~dedup:true ~domains ~frontier_depth ~mk:(team_mk cert) ()
      in
      Alcotest.check stats_eq
        (Printf.sprintf "dedup stats (domains %d, frontier %d)" domains frontier_depth)
        seq par)
    [ (2, 1); (4, 3); (4, 7); (8, 4) ]

let test_dedup_fig4_identical () =
  let seq = Explore.explore ~max_crashes:1 ~dedup:true ~mk:(fig4_mk 2) () in
  let par = Explore.explore ~max_crashes:1 ~dedup:true ~domains ~mk:(fig4_mk 2) () in
  Alcotest.(check bool) "fig4 dedup actually deduplicates" true (seq.dedup_hits > 0);
  Alcotest.check stats_eq "fig4 dedup stats seq = par" seq par

(* The acceptance bar of this change: on the 2-crash Figure 2 / S_2
   workload, deduplication must visit at least 5x fewer nodes than the
   raw tree walk (whose size is pinned by [test_raw_baseline_two_crashes])
   with the same pass outcome. *)
let test_dedup_node_reduction () =
  let cert = Helpers.cert_of (Rcons_spec.Sn.make 2) 2 in
  let raw_nodes = 5_417_237 in
  let dd = Explore.explore ~max_crashes:2 ~dedup:true ~mk:(team_mk cert) () in
  Alcotest.(check bool)
    (Printf.sprintf "dedup nodes %d <= raw nodes %d / 5" dd.nodes raw_nodes)
    true
    (dd.nodes * 5 <= raw_nodes);
  Alcotest.(check int) "hits + distinct = nodes + root" (dd.nodes + 1)
    (dd.dedup_hits + dd.distinct_states)

let test_dedup_violation_schedule_identical () =
  let cert = Helpers.cert_of Rcons_spec.Sticky_bit.t 3 in
  let run ?domains ?frontier_depth () =
    match
      Explore.explore ?domains ?frontier_depth ~max_crashes:0 ~dedup:true
        ~mk:(team_mk ~faithful:false cert) ()
    with
    | (_ : Explore.stats) -> Alcotest.fail "expected a violation"
    | exception Explore.Violation { v_msg = msg; v_schedule = sched; _ } ->
        Format.asprintf "%s at %a" msg Explore.pp_schedule sched
  in
  let seq = run () in
  List.iter
    (fun frontier_depth ->
      Alcotest.(check string)
        (Printf.sprintf "dedup violation schedule (frontier %d)" frontier_depth)
        seq
        (run ~domains ~frontier_depth ()))
    [ 1; 3; 5 ]

(* --- fingerprint replay stability (qcheck) --- *)

(* Decode an int list into a schedule applied directly (legality does not
   matter for stability -- both executions apply the same operations). *)
let apply_encoded sim codes =
  let n = Sim.num_procs sim in
  List.iter
    (fun x ->
      let pid = x mod n in
      if x mod 5 = 0 then Sim.crash sim pid
      else if not (Sim.finished sim pid) then ignore (Sim.step_proc sim pid))
    codes

let fingerprint_after mk codes =
  let saved = Heap.current () in
  Heap.activate (Heap.create ());
  Fun.protect
    ~finally:(fun () -> match saved with Some a -> Heap.activate a | None -> Heap.deactivate ())
    (fun () ->
      let sim, _check = mk () in
      apply_encoded sim codes;
      let fp = Sim.fingerprint sim in
      Sim.abandon sim;
      fp)

let schedule_gen = QCheck2.Gen.(list_size (int_range 0 14) (int_bound 999))

let qcheck_fingerprint_stable =
  let cert = lazy (Helpers.cert_of (Rcons_spec.Sn.make 2) 2) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"fingerprint is replay-stable (random schedules)"
       ~print:(fun codes -> String.concat ";" (List.map string_of_int codes))
       schedule_gen
       (fun codes ->
         let mk = team_mk (Lazy.force cert) in
         fingerprint_after mk codes = fingerprint_after mk codes))

let qcheck_fingerprint_stable_fig4 =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"fingerprint is replay-stable (Figure 4, lazy objects)"
       ~print:(fun codes -> String.concat ";" (List.map string_of_int codes))
       schedule_gen
       (fun codes -> fingerprint_after (fig4_mk 3) codes = fingerprint_after (fig4_mk 3) codes))

let suite =
  [
    Alcotest.test_case "raw mode matches seed baselines" `Quick test_raw_baselines;
    Alcotest.test_case "raw mode matches seed baseline (2 crashes)" `Slow
      test_raw_baseline_two_crashes;
    Alcotest.test_case "dedup stats: seq = par (domain/frontier sweep)" `Quick
      test_dedup_seq_par_identical;
    Alcotest.test_case "dedup stats: seq = par on Figure 4" `Quick test_dedup_fig4_identical;
    Alcotest.test_case "dedup node reduction >= 5x (2 crashes)" `Slow test_dedup_node_reduction;
    Alcotest.test_case "dedup violation schedule: seq = par" `Quick
      test_dedup_violation_schedule_identical;
    qcheck_fingerprint_stable;
    qcheck_fingerprint_stable_fig4;
  ]
