(* Lock-free concurrent visited set for the deduplicating explorer.

   Keys are state fingerprints (short digest strings).  The set is one
   open-addressing table of [string Atomic.t] slots; a claim is a single
   CAS of the empty sentinel to the key, so the hot path of the parallel
   explorer -- one probe + one CAS per expanded state -- takes no lock
   and touches one cache line in the common case.  Exactly-once claim
   semantics fall out of CAS uniqueness: slots move empty -> key at most
   once and are never cleared, so for every key exactly one [add] in the
   program's history wins its CAS (all later callers read the key and
   return [false]).

   Resizing is cooperative.  When a table passes 3/4 occupancy (or a
   probe runs too long) a successor of twice the size is installed in
   [next]; every thread that touches the table then helps migrate it in
   fixed-size slot chunks claimed off an atomic cursor.  Migration
   freezes each old slot: empty slots are CASed to a tombstone (so no
   new key can land behind the migration sweep) and occupied slots have
   their key re-inserted into the successor.  An [add] that loses its
   CAS to a tombstone -- or that finds [next] installed -- first helps
   finish the whole migration and only then retries in the successor.
   That ordering is what preserves exactly-once across the epoch change:
   fresh claims enter the successor only after it already contains every
   key of the frozen table, so a key claimed in the old epoch can never
   be claimed again in the new one.

   There are no deletions, which keeps every invariant monotone: slots
   only go empty -> key or empty -> tombstone, tables only grow, and the
   distinct-key count [cardinal] is a plain atomic counter bumped once
   per winning CAS. *)

(* Distinct heap blocks, compared physically.  [Bytes.unsafe_to_string]
   on a fresh buffer guarantees a block no user key can alias. *)
let empty_slot : string = Bytes.unsafe_to_string (Bytes.make 1 '\000')
let tombstone : string = Bytes.unsafe_to_string (Bytes.make 1 '\001')

type table = {
  slots : string Atomic.t array;
  mask : int;
  occupied : int Atomic.t; (* claims + migrated copies landed in this table *)
  next : table option Atomic.t; (* successor; Some = migration in progress *)
  migrate_cursor : int Atomic.t; (* next slot index a helper may freeze *)
  migrate_done : int Atomic.t; (* slots fully frozen/copied so far *)
}

type t = {
  current : table Atomic.t;
  count : int Atomic.t; (* distinct keys ever claimed *)
  resizes : int Atomic.t;
  init_size : int;
}

let mk_table size =
  {
    slots = Array.init size (fun _ -> Atomic.make empty_slot);
    mask = size - 1;
    occupied = Atomic.make 0;
    next = Atomic.make None;
    migrate_cursor = Atomic.make 0;
    migrate_done = Atomic.make 0;
  }

let round_pow2 n =
  let rec go p = if p >= n || p >= 1 lsl 30 then p else go (p * 2) in
  go 16

let create ?(capacity = 8192) () =
  let size = round_pow2 capacity in
  {
    current = Atomic.make (mk_table size);
    count = Atomic.make 0;
    resizes = Atomic.make 0;
    init_size = size;
  }

(* Fingerprints are MD5 digests (uniformly random bytes), so the first
   word is already a good hash; short non-digest keys (tests) fall back
   to [Hashtbl.hash].  The multiply spreads entropy into the low bits
   used by small masks. *)
let hash key =
  let len = String.length key in
  if len >= 8 then begin
    let a = Int64.to_int (String.get_int64_le key 0) in
    let b = if len >= 16 then Int64.to_int (String.get_int64_le key (len - 8)) else len in
    let h = (a lxor b) * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land max_int
  end
  else Hashtbl.hash key

let max_probe = 64
let migrate_chunk = 256

(* Re-insert a key carried over from a frozen table.  Only migration
   helpers call this, each on a disjoint chunk of old slots, and fresh
   claims are locked out of [nxt] until migration completes, so the CAS
   here can only contend with copies of *other* keys probing the same
   cluster. *)
let rec insert_copy nxt key i =
  let i = i land nxt.mask in
  let slot = nxt.slots.(i) in
  let s = Atomic.get slot in
  if s == empty_slot then begin
    if Atomic.compare_and_set slot empty_slot key then
      ignore (Atomic.fetch_and_add nxt.occupied 1)
    else insert_copy nxt key i (* lost to another copy: re-examine this slot *)
  end
  else if String.equal s key then () (* impossible for distinct old keys; harmless *)
  else insert_copy nxt key (i + 1)

(* Freeze one old slot and carry its key (if any) into the successor. *)
let rec migrate_slot tab nxt i =
  let slot = tab.slots.(i) in
  let s = Atomic.get slot in
  if s == empty_slot then begin
    if not (Atomic.compare_and_set slot empty_slot tombstone) then migrate_slot tab nxt i
  end
  else if s == tombstone then ()
  else insert_copy nxt s (hash s)

(* Help until the migration of [tab] is fully finished, then publish the
   successor.  Helpers claim disjoint chunks off the cursor; the final
   wait covers chunks still in flight on other domains (bounded by one
   chunk's work, so a spin is enough). *)
let finish_migration t tab nxt =
  let size = tab.mask + 1 in
  let rec grab () =
    let start = Atomic.fetch_and_add tab.migrate_cursor migrate_chunk in
    if start < size then begin
      let stop = min size (start + migrate_chunk) in
      for i = start to stop - 1 do
        migrate_slot tab nxt i
      done;
      ignore (Atomic.fetch_and_add tab.migrate_done (stop - start));
      grab ()
    end
  in
  grab ();
  while Atomic.get tab.migrate_done < size do
    Domain.cpu_relax ()
  done;
  ignore (Atomic.compare_and_set t.current tab nxt)

let start_resize t tab =
  if Atomic.get tab.next = None then begin
    let nxt = mk_table (2 * (tab.mask + 1)) in
    if Atomic.compare_and_set tab.next None (Some nxt) then
      ignore (Atomic.fetch_and_add t.resizes 1)
  end

(* A claimed slot counts toward occupancy; resize at 3/4 so probe
   clusters stay short.  The successor is installed here and migrated by
   whoever touches the table next (including this caller's next add). *)
let maybe_resize t tab =
  let occ = Atomic.fetch_and_add tab.occupied 1 + 1 in
  if 4 * occ > 3 * (tab.mask + 1) then start_resize t tab

let rec add t key =
  let tab = Atomic.get t.current in
  match Atomic.get tab.next with
  | Some nxt ->
      finish_migration t tab nxt;
      add t key
  | None ->
      let rec probe i dist =
        let i = i land tab.mask in
        let slot = tab.slots.(i) in
        let s = Atomic.get slot in
        if s == tombstone then begin
          (* A migration swept through our probe path: help it finish,
             then decide in the successor. *)
          (match Atomic.get tab.next with
          | Some nxt -> finish_migration t tab nxt
          | None -> assert false);
          add t key
        end
        else if s == empty_slot then begin
          if Atomic.compare_and_set slot empty_slot key then begin
            maybe_resize t tab;
            ignore (Atomic.fetch_and_add t.count 1);
            true
          end
          else probe i dist (* slot changed under us: re-examine it *)
        end
        else if String.equal s key then false
        else if dist >= max_probe then begin
          start_resize t tab;
          (match Atomic.get tab.next with
          | Some nxt -> finish_migration t tab nxt
          | None -> assert false);
          add t key
        end
        else probe (i + 1) (dist + 1)
      in
      probe (hash key) 0

let rec mem t key =
  let tab = Atomic.get t.current in
  match Atomic.get tab.next with
  | Some nxt ->
      finish_migration t tab nxt;
      mem t key
  | None ->
      let rec probe i dist =
        let i = i land tab.mask in
        let s = Atomic.get tab.slots.(i) in
        if s == empty_slot then false
        else if s == tombstone then mem t key (* migration raced us: retry *)
        else if String.equal s key then true
        else if dist >= max_probe then false
        else probe (i + 1) (dist + 1)
      in
      probe (hash key) 0

let cardinal t = Atomic.get t.count
let resizes t = Atomic.get t.resizes

(* Only meaningful quiesced; drain any in-flight migration first so the
   scan sees one complete table. *)
let rec settled t =
  let tab = Atomic.get t.current in
  match Atomic.get tab.next with
  | Some nxt ->
      finish_migration t tab nxt;
      settled t
  | None -> tab

let elements t =
  let tab = settled t in
  Array.fold_left
    (fun acc slot ->
      let s = Atomic.get slot in
      if s == empty_slot || s == tombstone then acc else s :: acc)
    [] tab.slots

let clear t =
  Atomic.set t.current (mk_table t.init_size);
  Atomic.set t.count 0
