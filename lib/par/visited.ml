(* Sharded concurrent visited set for the deduplicating explorer.

   Keys are state fingerprints (short digest strings).  The set is an
   array of shards, each a mutex-protected hash table; a key's shard is
   chosen by hash, so concurrent walkers only contend when they touch
   the same slice of the state space at the same instant.  [add] is the
   atomic claim operation: exactly one caller per key ever sees [true],
   which is what gives the parallel explorer its exactly-once expansion
   discipline (and hence schedule-order-independent statistics).

   The structure is deliberately simple -- lock + Hashtbl per shard
   beats a lock-free list here because the critical section is a single
   probe/insert and shard counts are sized to make contention rare. *)

type shard = { lock : Mutex.t; mutable table : (string, unit) Hashtbl.t }

type t = { mask : int; shards : shard array }

let default_shards = 64

let create ?(shards = default_shards) () =
  let rec pow2 n = if n >= shards || n >= 4096 then n else pow2 (n * 2) in
  let n = pow2 1 in
  {
    mask = n - 1;
    shards = Array.init n (fun _ -> { lock = Mutex.create (); table = Hashtbl.create 256 });
  }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

let add t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let fresh = not (Hashtbl.mem s.table key) in
  if fresh then Hashtbl.add s.table key ();
  Mutex.unlock s.lock;
  fresh

let mem t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r = Hashtbl.mem s.table key in
  Mutex.unlock s.lock;
  r

let cardinal t =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s.table) 0 t.shards

let elements t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let acc = Hashtbl.fold (fun k () acc -> k :: acc) s.table acc in
      Mutex.unlock s.lock;
      acc)
    [] t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.table;
      Mutex.unlock s.lock)
    t.shards
