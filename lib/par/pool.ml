(* Work-stealing domain pool with deterministic result merging.

   Every combinator runs a function over the index range [0, n) and
   merges per-index results so the outcome does not depend on the number
   of domains: [?domains:1] (the default) and any larger value produce
   the same answer, bit for bit.  Determinism comes from the merge,
   never from the schedule.

   Two layers keep the overhead proportional to the work instead of to
   the call count:

   - A {e granularity cutoff}.  Every combinator first runs indices
     inline on the calling domain until [sequential_cutoff] seconds have
     elapsed (default 1ms, override with [set_sequential_cutoff] or the
     RCONS_SEQ_CUTOFF_MS environment variable); only then does it fan
     the remaining range out.  Scans whose whole work fits in the grace
     period — the small classify sweeps that used to regress 10-30x
     under [?domains] — never spawn a domain at all, and a scan that
     does fan out is guaranteed to carry at least a grace period of
     work, so the per-job [Domain.spawn] cost (tens of microseconds per
     worker) stays a few percent in the worst case.

   - {e Chunked work-stealing range deques}.  Each participant owns one
     atomic cell holding a packed [lo, hi) index range; the owner claims
     small chunks off the low end (LIFO with respect to its own
     contiguous block — the indices it touched most recently stay hot),
     and a participant that runs dry steals the {e upper half} of a
     victim's remaining range (FIFO end), processing the first chunk of
     the loot directly and installing the rest as its own.  Every cell
     mutation is a single CAS on one integer, so there is no shared
     cursor line that all domains hammer; a global outstanding counter
     (decremented per processed chunk) detects termination.

   Worker domains are deliberately spawned {e per job} and joined before
   the combinator returns, never parked in a persistent pool.  On OCaml
   5.1 every live domain participates in stop-the-world minor
   collections, so parked idle domains tax allocation-heavy {e
   sequential} phases measurably (~3x on the explorer); joined domains
   cost nothing.  Per-job spawning also means worker domain-local state
   (heap arenas, persistency caches) starts fresh every time, so no
   cross-job hygiene is needed.

   With [domains <= 1], inside a worker (nested calls run inline rather
   than nest domain fan-outs), or when the range is trivially small,
   everything runs on the calling domain: no spawns, no atomics, just
   the plain left-to-right loop. *)

let available_domains () = max 1 (Domain.recommended_domain_count ())

let resolve_domains = function
  | None -> 1
  | Some d when d <= 1 -> 1
  | Some d -> min d (4 * available_domains ())

(* ------------------------------------------------------------------ *)
(* Telemetry: cheap global counters for the bench's per-stage rows.    *)

module Telemetry = struct
  type snapshot = {
    jobs : int;  (* parallel jobs submitted to the pool *)
    chunks : int;  (* chunk claims off a range deque *)
    steals : int;  (* successful steal-half operations *)
    seq_cutoffs : int;  (* calls completed inside the grace period *)
    restores : int;  (* explorer rollbacks to a journal mark *)
    undo_entries : int;  (* undo-journal entries pushed *)
    undo_bytes_peak : int;  (* high-water estimate of journal footprint *)
    rehashes_full : int;  (* fingerprint components recomputed *)
    rehashes_saved : int;  (* fingerprint components served from cache *)
    canon_saved_bytes : int;  (* bytes reused across the canonical perm loop *)
  }

  let jobs = Atomic.make 0
  let chunks = Atomic.make 0
  let steals = Atomic.make 0
  let seq_cutoffs = Atomic.make 0
  let restores = Atomic.make 0
  let undo_entries = Atomic.make 0
  let undo_bytes_peak = Atomic.make 0
  let rehashes_full = Atomic.make 0
  let rehashes_saved = Atomic.make 0
  let canon_saved_bytes = Atomic.make 0

  (* The peak is a high-water mark, not a sum: raise-only CAS merge. *)
  let note_bytes_peak b =
    let rec go () =
      let cur = Atomic.get undo_bytes_peak in
      if b > cur && not (Atomic.compare_and_set undo_bytes_peak cur b) then go ()
    in
    go ()

  (* Batched contributions from the runtime layer (undo journal,
     fingerprint cache): one atomic op per batch, not per event. *)
  let note_undo ~restores:r ~entries ~bytes_peak =
    ignore (Atomic.fetch_and_add restores r);
    ignore (Atomic.fetch_and_add undo_entries entries);
    note_bytes_peak bytes_peak

  let note_rehashes ~full ~saved =
    ignore (Atomic.fetch_and_add rehashes_full full);
    ignore (Atomic.fetch_and_add rehashes_saved saved)

  let note_canon_saved_bytes b = ignore (Atomic.fetch_and_add canon_saved_bytes b)

  let snapshot () =
    {
      jobs = Atomic.get jobs;
      chunks = Atomic.get chunks;
      steals = Atomic.get steals;
      seq_cutoffs = Atomic.get seq_cutoffs;
      restores = Atomic.get restores;
      undo_entries = Atomic.get undo_entries;
      undo_bytes_peak = Atomic.get undo_bytes_peak;
      rehashes_full = Atomic.get rehashes_full;
      rehashes_saved = Atomic.get rehashes_saved;
      canon_saved_bytes = Atomic.get canon_saved_bytes;
    }

  let diff a b =
    {
      jobs = a.jobs - b.jobs;
      chunks = a.chunks - b.chunks;
      steals = a.steals - b.steals;
      seq_cutoffs = a.seq_cutoffs - b.seq_cutoffs;
      restores = a.restores - b.restores;
      undo_entries = a.undo_entries - b.undo_entries;
      (* A high-water mark does not subtract; report the bracket's end
         value (the global peak at the end of the workload). *)
      undo_bytes_peak = a.undo_bytes_peak;
      rehashes_full = a.rehashes_full - b.rehashes_full;
      rehashes_saved = a.rehashes_saved - b.rehashes_saved;
      canon_saved_bytes = a.canon_saved_bytes - b.canon_saved_bytes;
    }
end

(* ------------------------------------------------------------------ *)
(* Granularity cutoff.                                                 *)

let default_cutoff = 0.001

let cutoff =
  Atomic.make
    (match Sys.getenv_opt "RCONS_SEQ_CUTOFF_MS" with
    | Some s -> ( try max 0. (float_of_string s /. 1000.) with _ -> default_cutoff)
    | None -> default_cutoff)

let sequential_cutoff () = Atomic.get cutoff
let set_sequential_cutoff g = Atomic.set cutoff (max 0. g)
let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Per-job worker domains.                                             *)

(* True on worker domains, and on the caller domain while it is
   participating in a job: combinators called from either run inline, so
   nested parallelism never nests domain fan-outs. *)
let in_parallel_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Effective participant count for a request of [k] domains: 1 inside a
   worker or for sequential requests; otherwise capped at one participant
   per core (with a floor of 4 so single-core test machines still
   exercise real cross-domain schedules in the determinism suites).
   Determinism never depends on this number (merge-based), so clamping a
   generous [--domains] to the machine is free. *)
let effective_width k =
  if k <= 1 || Domain.DLS.get in_parallel_region then 1
  else min k (max 4 (available_domains ()))

(* Run [body p] for every participant p in [0, width); the caller is
   participant 0, the others are freshly spawned domains (joined before
   returning, so no idle domain outlives the job to tax later sequential
   phases with stop-the-world barriers).  The first exception in
   participant order (caller first) is re-raised. *)
let run_job width body =
  let exns = Array.make width None in
  Atomic.incr Telemetry.jobs;
  let doms =
    Array.init (width - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_parallel_region true;
            match body (i + 1) with
            | () -> ()
            | exception e -> exns.(i + 1) <- Some e))
  in
  Domain.DLS.set in_parallel_region true;
  (match body 0 with () -> () | exception e -> exns.(0) <- Some e);
  Domain.DLS.set in_parallel_region false;
  Array.iter Domain.join doms;
  Array.iter (function Some e -> raise e | None -> ()) exns

(* ------------------------------------------------------------------ *)
(* Work-stealing range deques.                                         *)

(* A deque cell packs an unprocessed [lo, hi) index range into one OCaml
   int (31 bits each half), so claiming and stealing are single CASes.
   The invariant is simply that at every instant each unprocessed index
   lives in exactly one cell or in exactly one claimed in-flight chunk;
   [outstanding] counts indices not yet processed (or skipped), which is
   what participants poll for termination. *)
let range_limit = 1 lsl 30
let pack lo hi = (lo lsl 31) lor hi
let unpack v = (v lsr 31, v land 0x7FFFFFFF)

type sched = { cells : int Atomic.t array; outstanding : int Atomic.t }

let make_sched lo n width =
  let total = n - lo in
  {
    cells =
      Array.init width (fun j ->
          Atomic.make (pack (lo + (total * j / width)) (lo + (total * (j + 1) / width))));
    outstanding = Atomic.make total;
  }

(* Owner chunks: small enough that stealing and [find_first]'s
   cancellation watermark stay tight, large enough to keep CAS traffic
   off the hot path. *)
let chunk_size len = max 1 (min 16 ((len + 7) / 8))

let rec claim cell =
  let v = Atomic.get cell in
  let lo, hi = unpack v in
  if lo >= hi then None
  else
    let lo' = lo + chunk_size (hi - lo) in
    let lo' = min lo' hi in
    if Atomic.compare_and_set cell v (pack lo' hi) then begin
      Atomic.incr Telemetry.chunks;
      Some (lo, lo')
    end
    else claim cell

(* Steal the upper half of the first victim with work left; the caller
   installs the loot as its own range (so it becomes stealable again). *)
let steal cells j =
  let p = Array.length cells in
  let rec victims k =
    if k >= p - 1 then None
    else
      let cell = cells.((j + 1 + k) mod p) in
      let v = Atomic.get cell in
      let lo, hi = unpack v in
      if hi <= lo then victims (k + 1)
      else
        (* The thief takes the upper half [mid, hi); the victim keeps
           [lo, mid).  At length 1 this degenerates to stealing the
           whole range (mid = lo), leaving the victim empty. *)
        let mid = lo + ((hi - lo) / 2) in
        if Atomic.compare_and_set cell v (pack lo mid) then begin
          Atomic.incr Telemetry.steals;
          Some (mid, hi)
        end
        else victims k (* re-examine the same victim *)
  in
  victims 0

(* One participant's scheduling loop: drain the own cell, steal when
   dry, finish when every index has been processed (or [stop] fires).
   [process a b] must account for all of [a, b) by decrementing
   [outstanding] — processing and skipping count the same. *)
let run_sched sched j ~stop ~process =
  let own = sched.cells.(j) in
  let rec loop idle =
    if Atomic.get sched.outstanding > 0 && not (stop ()) then
      match claim own with
      | Some (a, b) ->
          process a b;
          ignore (Atomic.fetch_and_add sched.outstanding (a - b));
          loop 0
      | None -> (
          match steal sched.cells j with
          | Some (a, b) ->
              (* Process the first chunk of the loot immediately and
                 install only the remainder: every successful steal then
                 makes progress, so two idle thieves can never ping-pong
                 a small range between their cells without anyone
                 claiming from it. *)
              let c = min (a + chunk_size (b - a)) b in
              Atomic.set own (pack c b);
              Atomic.incr Telemetry.chunks;
              process a c;
              ignore (Atomic.fetch_and_add sched.outstanding (a - c));
              loop 0
          | None ->
              (* Unclaimable work is in flight on other participants;
                 back off (gently, then with a real sleep so single-core
                 boxes do not burn a timeslice spinning). *)
              if idle > 100 then Unix.sleepf 0.0001 else Domain.cpu_relax ();
              loop (idle + 1))
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Combinators.                                                        *)

exception Aborted
(* Internal: another participant raised; stop contributing. *)

let map ?domains n f =
  let k = resolve_domains domains in
  if k <= 1 || n <= 1 then Array.init n f
  else begin
    if n >= range_limit then invalid_arg "Pool.map: range too large";
    let results = Array.make n None in
    (* Grace period: run inline until the cutoff elapses; if that
       finishes the range, the pool is never touched. *)
    let g = Atomic.get cutoff in
    let t0 = now () in
    let i = ref 0 in
    while !i < n && (g > 0. && now () -. t0 < g) do
      results.(!i) <- Some (f !i);
      incr i
    done;
    let start = !i in
    let width = if start >= n then 1 else effective_width k in
    if width <= 1 then begin
      if start >= n then Atomic.incr Telemetry.seq_cutoffs;
      for j = start to n - 1 do
        results.(j) <- Some (f j)
      done
    end
    else begin
      let sched = make_sched start n width in
      let failed = Atomic.make false in
      run_job width (fun j ->
          run_sched sched j
            ~stop:(fun () -> Atomic.get failed)
            ~process:(fun a b ->
              try
                for idx = a to b - 1 do
                  results.(idx) <- Some (f idx)
                done
              with e ->
                Atomic.set failed true;
                ignore (Atomic.fetch_and_add sched.outstanding (a - b));
                raise e))
    end;
    Array.map (function Some v -> v | None -> raise Aborted) results
  end

let find_first ?domains n f =
  let k = resolve_domains domains in
  let seq_scan i0 limit =
    let rec scan i =
      if i >= limit then None else match f i with Some _ as r -> r | None -> scan (i + 1)
    in
    scan i0
  in
  if k <= 1 || n <= 1 then seq_scan 0 n
  else begin
    if n >= range_limit then invalid_arg "Pool.find_first: range too large";
    let g = Atomic.get cutoff in
    let t0 = now () in
    let i = ref 0 in
    let hit = ref None in
    while !hit = None && !i < n && (g > 0. && now () -. t0 < g) do
      (match f !i with Some _ as r -> hit := r | None -> ());
      incr i
    done;
    match !hit with
    | Some _ as r ->
        Atomic.incr Telemetry.seq_cutoffs;
        r (* smallest index by construction *)
    | None ->
        let start = !i in
        let width = if start >= n then 1 else effective_width k in
        if width <= 1 then begin
          if start >= n then Atomic.incr Telemetry.seq_cutoffs;
          seq_scan start n
        end
        else begin
          (* Lowest index known to succeed; work at or above it can
             never win the merge, so chunks there are skipped whole. *)
          let best = Atomic.make max_int in
          let rec lower i =
            let b = Atomic.get best in
            if i < b && not (Atomic.compare_and_set best b i) then lower i
          in
          let per_participant = Array.make width None in
          let failed = Atomic.make false in
          let sched = make_sched start n width in
          run_job width (fun j ->
              run_sched sched j
                ~stop:(fun () -> Atomic.get failed)
                ~process:(fun a b ->
                  (try
                     for idx = a to b - 1 do
                       if idx < Atomic.get best then
                         match f idx with
                         | Some v ->
                             lower idx;
                             (match per_participant.(j) with
                             | Some (i0, _) when i0 < idx -> ()
                             | _ -> per_participant.(j) <- Some (idx, v))
                         | None -> ()
                     done
                   with e ->
                     Atomic.set failed true;
                     ignore (Atomic.fetch_and_add sched.outstanding (a - b));
                     raise e);
                  ignore ()));
          Array.fold_left
            (fun acc r ->
              match (acc, r) with
              | Some (i, _), Some (j, _) when j < i -> r
              | None, r -> r
              | acc, _ -> acc)
            None per_participant
          |> Option.map snd
        end
  end

let exists ?domains n f =
  let k = resolve_domains domains in
  let seq_scan i0 =
    let rec scan i = i < n && (f i || scan (i + 1)) in
    scan i0
  in
  if k <= 1 || n <= 1 then seq_scan 0
  else begin
    if n >= range_limit then invalid_arg "Pool.exists: range too large";
    let g = Atomic.get cutoff in
    let t0 = now () in
    let i = ref 0 in
    let found = ref false in
    while (not !found) && !i < n && (g > 0. && now () -. t0 < g) do
      found := f !i;
      incr i
    done;
    if !found then begin
      Atomic.incr Telemetry.seq_cutoffs;
      true
    end
    else begin
      let start = !i in
      let width = if start >= n then 1 else effective_width k in
      if width <= 1 then begin
        if start >= n then Atomic.incr Telemetry.seq_cutoffs;
        seq_scan start
      end
      else begin
        let found = Atomic.make false in
        let failed = Atomic.make false in
        let sched = make_sched start n width in
        run_job width (fun j ->
            run_sched sched j
              ~stop:(fun () -> Atomic.get found || Atomic.get failed)
              ~process:(fun a b ->
                try
                  let idx = ref a in
                  while !idx < b && not (Atomic.get found) do
                    if f !idx then Atomic.set found true;
                    incr idx
                  done
                with e ->
                  Atomic.set failed true;
                  ignore (Atomic.fetch_and_add sched.outstanding (a - b));
                  raise e));
        Atomic.get found
      end
    end
  end

let fold ?domains n ~map:m ~fold ~init =
  Array.fold_left fold init (map ?domains n m)
