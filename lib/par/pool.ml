(* Work-sharing domain pool with deterministic result merging.

   Every combinator runs a function over the index range [0, n) and merges
   per-index results so the outcome does not depend on the number of
   domains: [?domains:1] (the default) and any larger value produce the
   same answer, bit for bit.  Work distribution is dynamic — a shared
   atomic cursor hands out contiguous chunks of indices in increasing
   order — so imbalanced indices do not idle domains; determinism comes
   from the merge, never from the schedule.

   With [domains <= 1] (or a trivially small range) everything runs inline
   on the calling domain: no spawns, no atomics, just the plain
   left-to-right loop.  That inline path is what callers get by default,
   so threading [?domains] through an existing API cannot perturb the
   sequential behaviour. *)

let available_domains () = max 1 (Domain.recommended_domain_count ())

let resolve_domains = function
  | None -> 1
  | Some d when d <= 1 -> 1
  | Some d -> min d (4 * available_domains ())

(* Run [body wid] for wid in [0, k): k-1 spawned domains plus the calling
   one.  All domains are joined before returning; the first exception
   observed (caller's own first, then spawn order) is re-raised. *)
let run_workers k body =
  if k <= 1 then body 0
  else begin
    let spawned = Array.init (k - 1) (fun i -> Domain.spawn (fun () -> body (i + 1))) in
    let first_exn = ref None in
    let note = function
      | None -> ()
      | Some _ as e -> if !first_exn = None then first_exn := e
    in
    note (try body 0; None with e -> Some e);
    Array.iter (fun d -> note (try Domain.join d; None with e -> Some e)) spawned;
    match !first_exn with None -> () | Some e -> raise e
  end

(* Chunks are claimed in increasing order; small chunks keep the
   cancellation watermark of [find_first] tight, large enough ones keep
   the cursor off the hot path. *)
let chunk_for n k = max 1 (min 64 (n / (k * 4)))

let map ?domains n f =
  let k = min (resolve_domains domains) n in
  if k <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let chunk = chunk_for n k in
    run_workers k (fun _wid ->
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do
              results.(i) <- Some (f i)
            done;
            loop ()
          end
        in
        loop ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let find_first ?domains n f =
  let k = min (resolve_domains domains) n in
  if k <= 1 then begin
    let rec scan i =
      if i >= n then None else match f i with Some _ as r -> r | None -> scan (i + 1)
    in
    scan 0
  end
  else begin
    let next = Atomic.make 0 in
    (* Lowest index known to succeed; indices at or above it can never win
       the merge, so workers skip them. *)
    let best = Atomic.make max_int in
    let rec lower i =
      let b = Atomic.get best in
      if i < b && not (Atomic.compare_and_set best b i) then lower i
    in
    let per_worker = Array.make k None in
    let chunk = chunk_for n k in
    run_workers k (fun wid ->
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n && start < Atomic.get best then begin
            let stop = min n (start + chunk) in
            let rec scan i =
              if i < stop && i < Atomic.get best then
                match f i with
                | Some v ->
                    lower i;
                    per_worker.(wid) <- Some (i, v)
                | None -> scan (i + 1)
            in
            scan start;
            (* The cursor only moves forward, so after a hit every index
               this worker could still claim is larger: stop. *)
            match per_worker.(wid) with None -> loop () | Some _ -> ()
          end
        in
        loop ());
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some (i, _), Some (j, _) when j < i -> r
        | None, r -> r
        | acc, _ -> acc)
      None per_worker
    |> Option.map snd
  end

let exists ?domains n f =
  let k = min (resolve_domains domains) n in
  if k <= 1 then begin
    let rec scan i = i < n && (f i || scan (i + 1)) in
    scan 0
  end
  else begin
    let next = Atomic.make 0 in
    let found = Atomic.make false in
    let chunk = chunk_for n k in
    run_workers k (fun _wid ->
        let rec loop () =
          if not (Atomic.get found) then begin
            let start = Atomic.fetch_and_add next chunk in
            if start < n then begin
              let stop = min n (start + chunk) in
              let rec scan i = i < stop && not (Atomic.get found) && (f i || scan (i + 1)) in
              if scan start then Atomic.set found true;
              loop ()
            end
          end
        in
        loop ());
    Atomic.get found
  end

let fold ?domains n ~map:m ~fold ~init =
  Array.fold_left fold init (map ?domains n m)
