(** Sharded concurrent visited set for the deduplicating explorer.

    Keys are state fingerprints (short digest strings).  Shards are
    mutex-protected hash tables selected by key hash, so concurrent
    walkers rarely contend.  {!add} is an atomic claim: exactly one
    caller per key ever sees [true], giving the parallel explorer its
    exactly-once expansion discipline — the foundation of its
    schedule-order-independent statistics. *)

type t

val create : ?shards:int -> unit -> t
(** [create ?shards ()]: an empty set with [shards] (default 64,
    rounded up to a power of two, capped at 4096) independent
    buckets. *)

val add : t -> string -> bool
(** [add t key] inserts [key]; [true] iff it was not already present.
    Atomic with respect to concurrent [add]s of the same key: exactly
    one claimant wins. *)

val mem : t -> string -> bool

val cardinal : t -> int
(** Number of distinct keys.  Only meaningful once concurrent adders
    have quiesced (the explorer reads it after joining its walkers). *)

val elements : t -> string list
(** All distinct keys, in no particular order.  Like {!cardinal}, only
    meaningful once concurrent adders have quiesced (used to serialize
    the explorer's checkpoints). *)

val clear : t -> unit
