(** Lock-free concurrent visited set for the deduplicating explorer.

    Keys are state fingerprints (short digest strings).  The set is a
    single open-addressing table of [string Atomic.t] slots; {!add} is
    one probe plus one CAS on the hot path — no locks anywhere — and the
    table resizes by {e cooperative migration}: when occupancy passes
    3/4, a double-size successor is installed and every thread touching
    the table helps copy it over in chunks before operating on the
    successor.

    {2 Exactly-once claim}

    For every key, exactly one {!add} call in the whole history of the
    set returns [true]; every other call (concurrent or later, from any
    domain) returns [false].  This is the foundation of the parallel
    explorer's exactly-once expansion discipline and hence of its
    schedule-order-independent statistics.  The guarantee holds {e
    across resizes}: migration freezes each old slot (empty slots become
    tombstones, occupied slots are copied) and fresh claims are admitted
    into the successor only after it contains every key of the frozen
    table, so a claim can neither be lost nor doubled by an epoch
    change.  There are no deletions, so every slot transition is
    monotone and the argument needs no ABA caveats. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()]: an empty set.  [capacity] (default 8192,
    rounded up to a power of two) sizes the initial table; the set grows
    without bound, so the value only tunes how soon the first migration
    happens.  Tests pass a tiny capacity to force many resizes. *)

val add : t -> string -> bool
(** [add t key] claims [key]; [true] iff this call is the unique winner
    (see the exactly-once contract above).  Lock-free except while a
    resize is migrating, during which callers cooperatively finish the
    copy (bounded work, then a short wait for peer chunks). *)

val mem : t -> string -> bool
(** [mem t key]: was [key] claimed by some {e completed} [add]?  Safe
    concurrently with adders; linearizes against the claim CAS. *)

val cardinal : t -> int
(** Number of distinct keys claimed so far (one per winning {!add}).
    Exact once concurrent adders have quiesced (the explorer reads it
    after joining its walkers). *)

val elements : t -> string list
(** All distinct keys, in no particular order.  Only meaningful once
    concurrent adders have quiesced (used to serialize the explorer's
    checkpoints). *)

val resizes : t -> int
(** Number of cooperative migrations triggered so far (diagnostics). *)

val clear : t -> unit
(** Reset to empty at the initial capacity.  Not safe concurrently with
    other operations. *)
