(** Work-stealing domain pool with deterministic result merging.

    All combinators evaluate a function on the index range [0, n) and
    combine the per-index results so that the outcome is {e independent
    of the number of domains}: running with [?domains:1] (the default)
    and with any larger value yields the same value, bit for bit.  This
    is the determinism contract the parallel decision procedures
    ({!Rcons_check.Recording}, {!Rcons_check.Discerning}) and the
    parallel schedule explorer ({!Rcons_runtime.Explore}) rely on.
    Determinism comes from the {e merge} of per-index results, never
    from the schedule, so it survives work stealing, chunking, and any
    clamping of the domain count.

    {2 Execution model}

    Two mechanisms keep parallel overhead proportional to the work
    rather than to the call count:

    - {b A granularity cutoff.}  Every combinator runs indices inline on
      the calling domain until {!sequential_cutoff} seconds have
      elapsed, and only fans out the remainder.  Small scans never spawn
      a domain; a scan that does fan out is guaranteed to carry at least
      a grace period of work, which amortizes the per-job spawn cost.
    - {b Chunked work-stealing range deques.}  Each participant owns an
      atomic cell holding its unprocessed [lo, hi) index range.  The
      owner claims small chunks off the low end (LIFO with respect to
      its contiguous block); an idle participant steals the {e upper
      half} of a victim's range (FIFO end), processing the first chunk
      of the loot directly and installing the rest as its own.  Both
      operations are one CAS on one integer — there is no shared cursor
      all domains contend on.

    Worker domains are spawned per job and joined before the combinator
    returns — never parked in a persistent pool, because on OCaml 5
    every live domain participates in stop-the-world minor collections
    and parked idle domains measurably tax allocation-heavy sequential
    phases.  A fresh domain per job also means worker domain-local state
    (heap arenas, persistency caches) never leaks between jobs.

    With [domains <= 1], inside a worker (nested calls run inline — they
    never nest fan-outs), or when the range drains within the grace
    period, everything runs on the calling domain with no atomics.

    The user function may be called from any domain, at most once per
    index ([map], [fold]) and at most once per index that is still able
    to affect the merged result ([find_first], [exists]).  It must be
    pure with respect to shared state; exceptions it raises are
    re-raised in the caller after all participants have quiesced. *)

val available_domains : unit -> int
(** The runtime's recommended domain count for this machine
    ([Domain.recommended_domain_count ()]); at least 1. *)

val resolve_domains : int option -> int
(** [resolve_domains d] normalizes a user-facing [?domains] knob:
    [None] and values [<= 1] mean sequential (returns 1); [Some k] is
    clamped to at most [4 * available_domains ()] so a generous CLI flag
    cannot fork-bomb the runtime.  (The pool itself further clamps a job
    to its worker count; since determinism is merge-based, the clamp is
    invisible in results.) *)

val map : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [map ~domains n f] is [Array.init n f] evaluated on up to [domains]
    domains.  Result order is index order regardless of execution
    order. *)

val find_first : ?domains:int -> int -> (int -> 'a option) -> 'a option
(** [find_first ~domains n f]: the value of [f i] for the {e smallest}
    [i] with [f i <> None] — exactly what a sequential left-to-right
    [find_map] over the range returns.  Parallel participants share the
    range by stealing; an atomic lowest-success-so-far watermark lets
    them skip chunks that can no longer win, so the search degrades
    gracefully to "evaluate everything below the answer" in the worst
    case and cancels early in the good case. *)

val exists : ?domains:int -> int -> (int -> bool) -> bool
(** [exists ~domains n f]: does any index satisfy [f]?  Order-independent
    (a bool is a bool), so cancellation fires on the first success found
    by {e any} domain. *)

val fold : ?domains:int -> int -> map:(int -> 'a) -> fold:('b -> 'a -> 'b) -> init:'b -> 'b
(** [fold ~domains n ~map ~fold ~init]: map every index in parallel, then
    fold the results sequentially in index order — a deterministic
    map-reduce for merging per-shard statistics. *)

(** {2 Tuning} *)

val sequential_cutoff : unit -> float
(** Current grace period in seconds (default 0.001).  Each combinator
    call runs inline until this much wall time has elapsed before
    fanning out.  Initialised from the [RCONS_SEQ_CUTOFF_MS] environment
    variable when set. *)

val set_sequential_cutoff : float -> unit
(** Override the grace period (seconds; clamped to [>= 0]).  [0.] fans
    out immediately — the test suite uses this to force every combinator
    through the parallel paths regardless of how fast the work is. *)

(** {2 Telemetry}

    Cheap global counters for benchmarking; never consulted by the
    combinators themselves. *)
module Telemetry : sig
  type snapshot = {
    jobs : int;  (** parallel jobs submitted to the pool *)
    chunks : int;  (** chunk claims off a range deque *)
    steals : int;  (** successful steal-half operations *)
    seq_cutoffs : int;  (** calls completed inside the grace period *)
    restores : int;
        (** explorer rollbacks to a journal mark ({!Rcons_runtime.Sim.rollback}) *)
    undo_entries : int;  (** undo-journal entries pushed *)
    undo_bytes_peak : int;
        (** high-water estimate of a journal's in-memory footprint
            (entries at the deepest point x an approximate closure size);
            raise-only across domains, so [diff] reports the bracket's
            end value rather than a subtraction *)
    rehashes_full : int;
        (** fingerprint components whose digest thunk actually ran *)
    rehashes_saved : int;
        (** fingerprint components served from an undo-maintained cache
            slot without recomputing *)
    canon_saved_bytes : int;
        (** snapshot bytes reused across the relabeling loop of
            [Sim.fingerprint_digest_canonical] instead of re-serialized *)
  }

  val snapshot : unit -> snapshot
  (** Current counter values (monotone since program start). *)

  val diff : snapshot -> snapshot -> snapshot
  (** [diff after before]: per-field subtraction, for bracketing a
      workload ([undo_bytes_peak] excepted — see its doc). *)

  val note_undo : restores:int -> entries:int -> bytes_peak:int -> unit
  (** Batched contribution from an undo journal being retired: add
      [restores]/[entries] to the global counters and raise the global
      byte peak to at least [bytes_peak]. *)

  val note_rehashes : full:int -> saved:int -> unit
  (** Batched contribution from one fingerprint snapshot: how many
      component digests were recomputed vs served from cache. *)

  val note_canon_saved_bytes : int -> unit
  (** Bytes the canonical-relabeling loop reused instead of
      re-serializing. *)
end
