(** Work-sharing domain pool with deterministic result merging.

    All combinators evaluate a function on the index range [0, n) and
    combine the per-index results so that the outcome is {e independent of
    the number of domains}: running with [?domains:1] (the default) and
    with any larger value yields the same value, bit for bit.  This is the
    determinism contract the parallel decision procedures
    ({!Rcons_check.Recording}, {!Rcons_check.Discerning}) and the parallel
    schedule explorer ({!Rcons_runtime.Explore}) rely on.

    Work distribution is dynamic (a shared atomic cursor hands out
    contiguous index chunks in increasing order), so load imbalance
    between indices does not idle domains; determinism comes from the
    merge step, never from the schedule.  With [domains <= 1], or when the
    range is trivially small, everything runs inline on the calling domain
    with no spawns and no atomics — the sequential path is the plain
    left-to-right loop it always was.

    The user function may be called from any domain, at most once per
    index.  It must be pure with respect to shared state (the searches it
    runs build their own local structures), and exceptions it raises are
    re-raised in the caller after all domains have been joined. *)

val available_domains : unit -> int
(** The runtime's recommended domain count for this machine
    ([Domain.recommended_domain_count ()]); at least 1. *)

val resolve_domains : int option -> int
(** [resolve_domains d] normalizes a user-facing [?domains] knob:
    [None] and values [<= 1] mean sequential (returns 1); [Some k] is
    clamped to at most [4 * available_domains ()] so a generous CLI flag
    cannot fork-bomb the runtime. *)

val map : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [map ~domains n f] is [Array.init n f] evaluated on up to [domains]
    domains.  Result order is index order regardless of execution
    order. *)

val find_first : ?domains:int -> int -> (int -> 'a option) -> 'a option
(** [find_first ~domains n f]: the value of [f i] for the {e smallest}
    [i] with [f i <> None] — exactly what a sequential left-to-right
    [find_map] over the range returns.  Parallel domains share the index
    range dynamically; an atomic lowest-success-so-far watermark lets
    them skip indices that can no longer win, so the search degrades
    gracefully to "evaluate everything below the answer" in the worst
    case and cancels early in the good case. *)

val exists : ?domains:int -> int -> (int -> bool) -> bool
(** [exists ~domains n f]: does any index satisfy [f]?  Order-independent
    (a bool is a bool), so cancellation fires on the first success found
    by {e any} domain. *)

val fold : ?domains:int -> int -> map:(int -> 'a) -> fold:('b -> 'a -> 'b) -> init:'b -> 'b
(** [fold ~domains n ~map ~fold ~init]: map every index in parallel, then
    fold the results sequentially in index order — a deterministic
    map-reduce for merging per-shard statistics. *)
