(* Max register: WriteMax v raises the state to max(state, v) and
   returns the previous value.  Distinct writes do not commute as
   responses (the second writer learns the first's value) but the final
   state is the maximum regardless of order: the state forgets the
   order, so the type is not 2-recording; responses make it
   2-discerning.  A readable type at consensus level 2 whose RC level
   collapses, like swap -- but unlike swap the state is order-oblivious,
   so the crash-confinement sweep settles rcons = 1 even though the
   type is readable (states agree after both writes, and reads cannot
   tell equal states apart). *)

type op = Write_max of int

let make ~domain : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int
      type nonrec op = op
      type resp = int

      let name = Printf.sprintf "max-register(%d)" domain
      let apply q (Write_max v) = (max q v, q)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state = Object_type.pp_int
      let pp_op ppf (Write_max v) = Format.fprintf ppf "wmax(%d)" v
      let pp_resp = Object_type.pp_int
      let candidate_initial_states = [ 0 ]
      let update_ops = List.init domain (fun v -> Write_max (v + 1))
      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~domain:2
