(** Step footprints: which shared object a pending shared-memory access
    touches, and how.

    The explorer's partial-order reduction ({!Rcons_runtime.Explore}
    with [?por:true]) derives its independence relation from footprints:
    two pending steps of {e different} processes commute whenever
    {!independent} holds of their footprints, so only one interleaving
    of the pair needs exploring.  Object constructors ({!val:fresh_oid})
    allocate per-execution object ids; replays are deterministic, so
    oids are stable per schedule prefix — the only property the
    independence relation needs, since it compares footprints of steps
    pending at the same state of the same execution. *)

(** How an access touches its object.  The persistency-aware kinds
    follow the PR 4 write-back model: an object's state is (volatile
    copy, durable copy, line owner). *)
type kind =
  | Read  (** returns object state, changes nothing *)
  | Write  (** overwrites (part of) the volatile copy *)
  | Update  (** read-modify-write: both observes and changes the state *)
  | Flush  (** persist barrier: copies volatile -> durable, cleans the line *)
  | Sync
      (** durability check: reads the volatile copy {e and} the line's
          clean/dirty status (the confirm step of [read_persist]) *)

type t =
  | Global  (** conflicts with every footprint, including [Global] —
                fences, un-annotated steps, first step of a run *)
  | Obj of { oid : int; kind : kind }

val kinds_independent : kind -> kind -> bool
(** Conflict matrix on a single object.  Independent pairs: read/read,
    read/flush, read/sync, flush/flush, sync/sync.  Everything else
    conflicts — in particular a sync conflicts with a flush (the flush
    changes the line status the sync observes). *)

val independent : t -> t -> bool
(** Footprints on distinct objects are always independent; on the same
    object, {!kinds_independent} decides; [Global] is independent of
    nothing. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit

val fresh_oid : unit -> int
(** Allocate the next object id of the current execution (domain-local
    counter: parallel explorer domains never race). *)

val reset_oids : unit -> unit
(** Restart the allocator; the explorer calls this before building each
    system so oids are deterministic per schedule prefix. *)

val set_next_oid : int -> unit
(** Rewind (or advance) the allocator to a specific next id.  Undo
    journaling uses this to make allocations revertible: rolling a
    schedule back to a fork point restores the counter so the replayed
    branch allocates the same ids the original run did. *)
