(* Step footprints: which shared object a pending shared-memory access
   touches, and how.  The explorer's partial-order reduction derives its
   independence relation from these — two pending steps of different
   processes commute whenever their footprints are independent, so only
   one interleaving of the pair needs exploring.

   A footprint names the touched object by a per-execution object id
   ([oid]) allocated at object creation time.  Replays are deterministic,
   so the object created k-th under a given schedule prefix has the same
   oid in every replay of that prefix — which is all the independence
   relation needs, since it only ever compares footprints of steps
   pending at the same state of the same execution.

   [Global] is the conservative footprint: it conflicts with everything
   (used for fences, for un-annotated raw [Sim.step]s, and for the first
   step of a process run, whose access is not yet known). *)

type kind =
  | Read  (** returns object state, changes nothing *)
  | Write  (** overwrites (part of) the volatile copy *)
  | Update  (** read-modify-write: both observes and changes the state *)
  | Flush  (** persist barrier: copies volatile -> durable, cleans the line *)
  | Sync
      (** durability check: reads the volatile copy {e and} the line's
          clean/dirty status (the confirm step of [read_persist]) *)

type t =
  | Global  (** conflicts with every footprint, including [Global] *)
  | Obj of { oid : int; kind : kind }

(* Conflict matrix on one object.  Independent pairs: two reads; a read
   and a flush (a flush changes only the durable copy and the line
   status, which a read does not observe); two flushes (both leave
   volatile = durable, clean — idempotent and order-indifferent); a read
   and a sync; two syncs.  A sync conflicts with writes, updates and
   flushes: it observes the line status, which all three change.  Writes
   and updates conflict with everything (they change what reads and
   syncs observe, re-dirty what flushes clean, and do not commute with
   each other). *)
let kinds_independent a b =
  match (a, b) with
  | Read, (Read | Flush | Sync) | (Flush | Sync), Read -> true
  | Flush, Flush | Sync, Sync -> true
  | _ -> false

let independent a b =
  match (a, b) with
  | Global, _ | _, Global -> false
  | Obj a, Obj b -> a.oid <> b.oid || kinds_independent a.kind b.kind

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Read -> "read"
    | Write -> "write"
    | Update -> "update"
    | Flush -> "flush"
    | Sync -> "sync")

let pp ppf = function
  | Global -> Format.pp_print_string ppf "global"
  | Obj { oid; kind } -> Format.fprintf ppf "%a@%d" pp_kind kind oid

(* Per-execution object-id allocator.  Domain-local so parallel explorer
   walkers (one system at a time per domain) never race; reset by the
   explorer before each system is built, so oids are deterministic per
   schedule prefix. *)
let next : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_oid () =
  let r = Domain.DLS.get next in
  let v = !r in
  incr r;
  v

let reset_oids () = Domain.DLS.get next := 0
let set_next_oid v = Domain.DLS.get next := v
