(* One-shot consensus object: Propose(v) returns the first proposed value.
   The first proposal is recorded forever, so cons = rcons = infinity. *)

type op = Propose of int

let make ~domain : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int option
      type nonrec op = op
      type resp = int

      let name = "consensus-object"

      let apply q (Propose v) =
        match q with
        | None -> (Some v, v)
        | Some w -> (Some w, w)

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_option Object_type.pp_int ppf q
      let pp_op ppf (Propose v) = Format.fprintf ppf "propose(%d)" v
      let pp_resp = Object_type.pp_int
      let candidate_initial_states = [ None ]
      let update_ops = List.init domain (fun v -> Propose v)
      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~domain:2
