(* Test-and-set bit: TAS sets the bit and returns the previous value.

   Classic consensus number 2.  The final state after any nonempty sequence
   of TAS operations is [true] regardless of order, so the state records
   nothing about which team went first: the type is not 2-recording, and
   indeed a recoverable test-and-set cannot be built from ordinary
   test-and-set objects (Attiya, Ben-Baruch and Hendler, cited in the
   paper). *)

type op = Tas

let t : Object_type.t =
  Object_type.Pack
    (module struct
      type state = bool
      type nonrec op = op
      type resp = bool

      let name = "test-and-set"
      let apply q Tas = (true, q)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state = Object_type.pp_bool
      let pp_op ppf Tas = Format.pp_print_string ppf "TAS"
      let pp_resp = Object_type.pp_bool
      let candidate_initial_states = [ false ]
      let update_ops = [ Tas ]
      let readable = false
      let op_kind _ = Footprint.Update
    end)
