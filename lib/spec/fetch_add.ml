(* Fetch-and-add counter modulo [modulus]: Add(k) returns the old value.
   Consensus number 2 (Herlihy).  Additions commute, so the final state of
   any sequence is independent of the order: never 2-recording. *)

type op = Add of int

let make ~modulus ~increments : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int
      type nonrec op = op
      type resp = int

      let name = Printf.sprintf "fetch&add(mod %d)" modulus
      let apply q (Add k) = ((q + k) mod modulus, q)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state = Object_type.pp_int
      let pp_op ppf (Add k) = Format.fprintf ppf "f&a(%d)" k
      let pp_resp = Object_type.pp_int
      let candidate_initial_states = [ 0 ]
      let update_ops = List.map (fun k -> Add k) increments
      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~modulus:8 ~increments:[ 1; 2 ]
