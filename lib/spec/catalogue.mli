(** The catalogue of object types exercised by the experiments, with the
    consensus / recoverable-consensus numbers known from the literature
    (ground truth for the tests).

    Readability notes: the paper's stack and queue (Appendix H) and the
    classic test-and-set have no READ operation, so the characterizations
    (Theorems 3 and 8) do not tie their structural levels to their
    consensus numbers; their known values come from direct proofs.
    Readable stack/queue variants are strictly stronger types with
    [cons = rcons = infinity]. *)

type expectation = {
  ot : Object_type.t;
  cons_known : int option;  (** [None] = infinity *)
  rcons_known_low : int;
  rcons_known_high : int option;  (** [None] = infinity *)
}

val all : expectation list
(** Register, test-and-set, swap, fetch&add, stack, queue (and readable
    variants), sticky bit, compare&swap, consensus object. *)

val tn : int -> expectation
(** T_n with [cons = n], [rcons] in [[n-2, n-1]] (Proposition 19). *)

val sn : int -> expectation
(** S_n with [cons = rcons = n] (Proposition 21). *)

val find : string -> expectation
(** Lookup by {!Object_type.name}.  @raise Not_found otherwise. *)

val names : unit -> string list
(** Every name {!of_name} accepts -- aliases, canonical catalogue names
    and the parametric "S<n>" / "T<n>" families -- derived from the
    tables, for error messages and shell completion. *)

val of_name : string -> (Object_type.t, string) result
(** Resolve a user-facing type name: a catalogue name ("sticky-bit"), a
    short alias ("sticky", "tas", "cas", ...), or a parametric "S<n>" /
    "T<n>" (n >= 2; the canonical "S_n" / "T_n" spellings work too).
    Matching is case-insensitive and ignores surrounding whitespace.  This is the one name resolver shared by the CLI
    and the counterexample artifacts (including the replicated-log
    workloads, whose per-slot certificates are derived from these
    types), so a type name stored in a witness file means the same
    object type everywhere.  The [Error] for an unknown name lists
    {!names}. *)
