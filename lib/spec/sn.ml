(* The type S_n of Proposition 21 (Figure 6 of the paper): n-recording and
   not (n+1)-discerning, hence rcons(S_n) = cons(S_n) = n.  Every level of
   the RC hierarchy is populated by some S_n.

   States are (winner, row) with winner in {A, B} and 0 <= row < n.  With
   q0 = (B, 0), [winner] records whether the first update was op_A and
   [row] counts op_B applications.  A second op_A, or an n-th op_B, makes
   the object forget by returning to (B, 0).  All operations return ack, so
   only the readable state carries information. *)

type state = { winner : Team.t; row : int }
type op = OpA | OpB
type resp = Ack

let initial = { winner = Team.B; row = 0 }

let make n : Object_type.t =
  if n < 2 then invalid_arg "Sn.make: n must be >= 2";
  Object_type.Pack
    (module struct
      type nonrec state = state
      type nonrec op = op
      type nonrec resp = resp

      let name = Printf.sprintf "S_%d" n

      let apply q op =
        match op with
        | OpA -> if q = initial then ({ q with winner = Team.A }, Ack) else (initial, Ack)
        | OpB ->
            let row = (q.row + 1) mod n in
            let winner = if row = 0 then Team.B else q.winner in
            ({ winner; row }, Ack)

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Format.fprintf ppf "(%a,%d)" Team.pp q.winner q.row

      let pp_op ppf op =
        Format.pp_print_string ppf (match op with OpA -> "op_A" | OpB -> "op_B")

      let pp_resp ppf Ack = Format.pp_print_string ppf "ack"
      let candidate_initial_states = [ initial ]
      let update_ops = [ OpA; OpB ]
      let readable = true
      let op_kind _ = Footprint.Update
    end)
