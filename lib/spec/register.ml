(* Read/write register over a small value domain.

   Writes overwrite one another, so a register is not even 2-discerning:
   cons(register) = rcons(register) = 1 (Herlihy).  The value domain is the
   finite sub-language {0, .., domain-1} of the write operations; this is
   enough for the checkers since extra values only add symmetric copies. *)

type op = Write of int
type resp = unit

let make ~domain : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int option (* None until the first write *)
      type nonrec op = op
      type nonrec resp = resp

      let name = Printf.sprintf "register(%d)" domain
      let apply _q (Write v) = (Some v, ())
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_option Object_type.pp_int ppf q
      let pp_op ppf (Write v) = Format.fprintf ppf "write(%d)" v
      let pp_resp ppf () = Format.pp_print_string ppf "ok"
      let candidate_initial_states = [ None ]
      let update_ops = List.init domain (fun v -> Write v)
      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~domain:2
