(* Stack of small integers.  Push returns ok, Pop returns the popped value
   (or None when empty).  The paper's stack is NOT readable (it has no READ
   operation): cons(stack) = 2 (Herlihy) and rcons(stack) = 1 (Appendix H,
   reproduced by the crash-equivalence analysis of Figure 8 in the valency
   library).  The bare transition system is nonetheless n-recording for
   every n -- the bottom element records which team pushed first -- so a
   READ would make it strictly stronger; Theorem 8 needs readability.

   The state space is unbounded, but the checkers only explore sequences of
   at most n operations, so the reachable fragment stays finite. *)

type op = Push of int | Pop
type resp = Pushed | Popped of int option

let spec ~domain ~readable :
    (module Object_type.S with type state = int list and type op = op and type resp = resp) =
  (module struct
      type state = int list (* top of stack first *)
      type nonrec op = op
      type nonrec resp = resp

      let name =
        Printf.sprintf "%sstack(%d)" (if readable then "readable-" else "") domain

      let apply q op =
        match (op, q) with
        | Push v, _ -> (v :: q, Pushed)
        | Pop, [] -> ([], Popped None)
        | Pop, v :: rest -> (rest, Popped (Some v))

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_list Object_type.pp_int ppf q

      let pp_op ppf = function
        | Push v -> Format.fprintf ppf "push(%d)" v
        | Pop -> Format.pp_print_string ppf "pop"

      let pp_resp ppf = function
        | Pushed -> Format.pp_print_string ppf "ok"
        | Popped r -> Format.fprintf ppf "popped(%a)" (Object_type.pp_option Object_type.pp_int) r

      let candidate_initial_states = [ []; [ 0 ]; [ 0; 1 ] ]
      let update_ops = Pop :: List.init domain (fun v -> Push v)
      let readable = readable
      let op_kind _ = Footprint.Update
    end)

let make ~domain ?(readable = false) () : Object_type.t =
  Object_type.Pack (spec ~domain ~readable)

let default = make ~domain:2 ()

(* A stack/queue equipped with a READ of the whole contents is a different,
   strictly stronger type: the sequence of surviving elements records the
   order of insertions, so the readable variant is n-recording for every n
   (see the hierarchy experiment). *)
let readable_variant = make ~domain:2 ~readable:true ()
