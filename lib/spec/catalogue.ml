(* The catalogue of object types exercised by the experiments, together
   with the consensus and recoverable-consensus numbers known from the
   literature (used as ground truth by the tests).

   Note on readability: the paper's stack and queue (Appendix H) and the
   classic test-and-set have no READ operation, so the characterizations
   (Theorems 3, 8) do not tie their structural levels to their consensus
   numbers; their known values come from direct proofs in the literature.
   We also include readable variants of the stack and the queue: adding a
   READ makes them strictly stronger types (the surviving elements record
   insertion order), with cons = rcons = infinity. *)

type expectation = {
  ot : Object_type.t;
  cons_known : int option; (* None = infinity *)
  rcons_known_low : int;
  rcons_known_high : int option; (* None = infinity *)
}

let entry ?cons ?(rcons_low = 1) ?rcons_high ot =
  { ot; cons_known = cons; rcons_known_low = rcons_low; rcons_known_high = rcons_high }

(* Known values:
   - register: cons = rcons = 1 (Herlihy; writes overwrite).
   - test-and-set, swap, fetch&add, flip bit, max register: cons = 2;
     rcons in {1, 2} -- Theorem 14
     only applies for n >= 3, and whether 2-recording is necessary for
     2-process RC is open (Section 5), but none of them is 2-recording.
   - stack, queue (non-readable): cons = 2, rcons = 1 (Appendix H).
   - sticky bit, compare&swap, consensus object, readable stack/queue:
     cons = rcons = infinity.
   - T_n: cons = n, rcons < n (Proposition 19 / Corollary 20).
   - S_n: cons = rcons = n (Proposition 21). *)
let all =
  [
    entry Register.default ~cons:1 ~rcons_low:1 ~rcons_high:1;
    entry Test_and_set.t ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Swap.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Fetch_add.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Flip_bit.t ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Max_register.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Stack.default ~cons:2 ~rcons_low:1 ~rcons_high:1;
    entry Queue.default ~cons:2 ~rcons_low:1 ~rcons_high:1;
    entry Stack.readable_variant;
    entry Queue.readable_variant;
    entry Sticky_bit.t;
    entry Cas.default;
    entry Consensus_obj.default;
  ]

let tn n = entry (Tn.make n) ~cons:n ~rcons_low:(n - 2) ~rcons_high:(n - 1)
let sn n = entry (Sn.make n) ~cons:n ~rcons_low:n ~rcons_high:n
let find name = List.find (fun e -> Object_type.name e.ot = name) all

(* Short CLI/artifact aliases for the catalogue names. *)
let aliases =
  [
    ("register", "register(2)");
    ("tas", "test-and-set");
    ("swap", "swap(2)");
    ("faa", "fetch&add(mod 8)");
    ("stack", "stack(2)");
    ("queue", "queue(2)");
    ("readable-stack", "readable-stack(2)");
    ("readable-queue", "readable-queue(2)");
    ("sticky", "sticky-bit");
    ("cas", "compare&swap(2)");
    ("consensus", "consensus-object");
  ]

let of_name name =
  let canonical = match List.assoc_opt name aliases with Some c -> c | None -> name in
  match find canonical with
  | e -> Ok e.ot
  | exception Not_found -> (
      let parametric mk rest =
        match int_of_string_opt rest with
        | Some n when n >= 2 -> Ok (mk n)
        | Some _ | None -> Error (Printf.sprintf "bad parameter in %S" name)
      in
      match name.[0] with
      | 'S' -> parametric Sn.make (String.sub name 1 (String.length name - 1))
      | 'T' -> parametric Tn.make (String.sub name 1 (String.length name - 1))
      | _ | (exception Invalid_argument _) -> Error (Printf.sprintf "unknown type %S" name))
