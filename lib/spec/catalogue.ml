(* The catalogue of object types exercised by the experiments, together
   with the consensus and recoverable-consensus numbers known from the
   literature (used as ground truth by the tests).

   Note on readability: the paper's stack and queue (Appendix H) and the
   classic test-and-set have no READ operation, so the characterizations
   (Theorems 3, 8) do not tie their structural levels to their consensus
   numbers; their known values come from direct proofs in the literature.
   We also include readable variants of the stack and the queue: adding a
   READ makes them strictly stronger types (the surviving elements record
   insertion order), with cons = rcons = infinity. *)

type expectation = {
  ot : Object_type.t;
  cons_known : int option; (* None = infinity *)
  rcons_known_low : int;
  rcons_known_high : int option; (* None = infinity *)
}

let entry ?cons ?(rcons_low = 1) ?rcons_high ot =
  { ot; cons_known = cons; rcons_known_low = rcons_low; rcons_known_high = rcons_high }

(* Known values:
   - register: cons = rcons = 1 (Herlihy; writes overwrite).
   - test-and-set, swap, fetch&add, flip bit, max register: cons = 2;
     rcons in {1, 2} -- Theorem 14
     only applies for n >= 3, and whether 2-recording is necessary for
     2-process RC is open (Section 5), but none of them is 2-recording.
   - stack, queue (non-readable): cons = 2, rcons = 1 (Appendix H).
   - sticky bit, compare&swap, consensus object, readable stack/queue:
     cons = rcons = infinity.
   - T_n: cons = n, rcons < n (Proposition 19 / Corollary 20).
   - S_n: cons = rcons = n (Proposition 21). *)
let all =
  [
    entry Register.default ~cons:1 ~rcons_low:1 ~rcons_high:1;
    entry Test_and_set.t ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Swap.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Fetch_add.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Flip_bit.t ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Max_register.default ~cons:2 ~rcons_low:1 ~rcons_high:2;
    entry Stack.default ~cons:2 ~rcons_low:1 ~rcons_high:1;
    entry Queue.default ~cons:2 ~rcons_low:1 ~rcons_high:1;
    entry Stack.readable_variant;
    entry Queue.readable_variant;
    entry Sticky_bit.t;
    entry Cas.default;
    entry Consensus_obj.default;
  ]

let tn n = entry (Tn.make n) ~cons:n ~rcons_low:(n - 2) ~rcons_high:(n - 1)
let sn n = entry (Sn.make n) ~cons:n ~rcons_low:n ~rcons_high:n
let find name = List.find (fun e -> Object_type.name e.ot = name) all

(* Short CLI/artifact aliases for the catalogue names. *)
let aliases =
  [
    ("register", "register(2)");
    ("tas", "test-and-set");
    ("swap", "swap(2)");
    ("faa", "fetch&add(mod 8)");
    ("stack", "stack(2)");
    ("queue", "queue(2)");
    ("readable-stack", "readable-stack(2)");
    ("readable-queue", "readable-queue(2)");
    ("sticky", "sticky-bit");
    ("cas", "compare&swap(2)");
    ("consensus", "consensus-object");
  ]

(* Every name [of_name] accepts: the aliases, the canonical catalogue
   names, and the parametric families.  CLI error messages print this
   list, so it must stay derived from the tables above rather than
   hand-maintained. *)
let names () =
  List.map fst aliases @ List.map (fun e -> Object_type.name e.ot) all @ [ "S<n>"; "T<n>" ]

let of_name name =
  (* Case-insensitive and whitespace-tolerant: artifact files and CLI
     flags (the log workloads route every --type through here) should
     resolve "STICKY" or " sticky " like "sticky".  Canonical catalogue
     names are all lowercase, so folding the input is lossless. *)
  let folded = String.lowercase_ascii (String.trim name) in
  let canonical = match List.assoc_opt folded aliases with Some c -> c | None -> folded in
  let unknown () =
    Error (Printf.sprintf "unknown type %S (valid: %s)" name (String.concat ", " (names ())))
  in
  match find canonical with
  | e -> Ok e.ot
  | exception Not_found -> (
      (* Parametric families: only claim the name once the suffix is
         numeric -- "Sfoo" gets the full unknown-name listing, "S0" the
         out-of-range diagnosis. *)
      let parametric mk rest =
        (* accept both the short "S3" and the canonical "S_3" spellings *)
        let rest =
          if String.length rest > 1 && rest.[0] = '_' then
            String.sub rest 1 (String.length rest - 1)
          else rest
        in
        match int_of_string_opt rest with
        | Some n when n >= 2 -> Ok (mk n)
        | Some _ ->
            Error
              (Printf.sprintf "bad parameter in %S (want %c<n>, n >= 2)" name
                 (Char.uppercase_ascii folded.[0]))
        | None -> unknown ()
      in
      match folded.[0] with
      | 's' -> parametric Sn.make (String.sub folded 1 (String.length folded - 1))
      | 't' -> parametric Tn.make (String.sub folded 1 (String.length folded - 1))
      | _ | (exception Invalid_argument _) -> unknown ())
