(* Product of two object types: one object holding a component of each,
   where every operation acts on one component.  Used by the robustness
   experiments around Theorem 22: a process equipped with both types can
   be modelled as using one product object, and the recording/discerning
   power of the product relates to the components' (a team assignment
   using only left-component operations reproduces the left type's
   witness, so the product is at least as strong as each component). *)

type ('a, 'b) sum = L of 'a | R of 'b

let lift_compare ca cb x y =
  match (x, y) with
  | L a, L b -> ca a b
  | R a, R b -> cb a b
  | L _, R _ -> -1
  | R _, L _ -> 1

let make (Object_type.Pack (module T1)) (Object_type.Pack (module T2)) : Object_type.t =
  Object_type.Pack
    (module struct
      type state = T1.state * T2.state
      type op = (T1.op, T2.op) sum
      type resp = (T1.resp, T2.resp) sum

      let name = Printf.sprintf "%s x %s" T1.name T2.name

      let apply (s1, s2) = function
        | L op ->
            let s1', r = T1.apply s1 op in
            ((s1', s2), L r)
        | R op ->
            let s2', r = T2.apply s2 op in
            ((s1, s2'), R r)

      let compare_state (a1, a2) (b1, b2) =
        let c = T1.compare_state a1 b1 in
        if c <> 0 then c else T2.compare_state a2 b2

      let compare_op = lift_compare T1.compare_op T2.compare_op
      let compare_resp = lift_compare T1.compare_resp T2.compare_resp

      (* Length-prefixed so component digests cannot run into each other. *)
      let digest_state (s1, s2) =
        let d1 = T1.digest_state s1 and d2 = T2.digest_state s2 in
        Printf.sprintf "%d:%s%d:%s" (String.length d1) d1 (String.length d2) d2

      let pp_state ppf (s1, s2) =
        Format.fprintf ppf "(%a,%a)" T1.pp_state s1 T2.pp_state s2

      let pp_op ppf = function
        | L op -> Format.fprintf ppf "L:%a" T1.pp_op op
        | R op -> Format.fprintf ppf "R:%a" T2.pp_op op

      let pp_resp ppf = function
        | L r -> Format.fprintf ppf "L:%a" T1.pp_resp r
        | R r -> Format.fprintf ppf "R:%a" T2.pp_resp r

      let candidate_initial_states =
        List.concat_map
          (fun s1 -> List.map (fun s2 -> (s1, s2)) T2.candidate_initial_states)
          T1.candidate_initial_states

      let update_ops =
        List.map (fun op -> L op) T1.update_ops @ List.map (fun op -> R op) T2.update_ops

      let readable = T1.readable && T2.readable

      (* An operation on one component inherits that component's
         classification (it leaves the other component untouched, but
         footprints are per whole object, so no finer grain is usable). *)
      let op_kind = function L op -> T1.op_kind op | R op -> T2.op_kind op
    end)
