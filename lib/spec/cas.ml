(* Compare-and-swap register: Cas(expected, new) installs [new] and returns
   true iff the current contents equal [expected].

   With q0 = None and each team assigned Cas(None, its value), the first
   successful CAS is recorded forever, so the type is n-recording for every
   n: cons = rcons = infinity. *)

type op = Cas of int option * int

let make ~domain : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int option
      type nonrec op = op
      type resp = bool

      let name = Printf.sprintf "compare&swap(%d)" domain

      let apply q (Cas (expected, v)) =
        if Stdlib.compare q expected = 0 then (Some v, true) else (q, false)

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_option Object_type.pp_int ppf q

      let pp_op ppf (Cas (e, v)) =
        Format.fprintf ppf "cas(%a,%d)" (Object_type.pp_option Object_type.pp_int) e v

      let pp_resp = Object_type.pp_bool
      let candidate_initial_states = [ None ]

      let update_ops =
        List.concat_map
          (fun v -> Cas (None, v) :: List.init domain (fun e -> Cas (Some e, v)))
          (List.init domain Fun.id)

      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~domain:2
