(* The type T_n of Proposition 19 (Figure 5 of the paper): n-discerning but
   not (n-1)-recording, hence cons(T_n) = n while rcons(T_n) < n.

   States are (winner, row, col) with winner in {A, B}, 0 <= row < ceil(n/2),
   0 <= col < floor(n/2), plus the forgetful state (bot, 0, 0).  [winner]
   records which update came first; [col] counts op_A applications and [row]
   counts op_B applications after the first.  When op_A has been performed
   more than floor(n/2) times, or op_B more than ceil(n/2) times, the object
   forgets everything by returning to (bot, 0, 0). *)

type winner = Bot | Won of Team.t
type state = { winner : winner; row : int; col : int }
type op = OpA | OpB
type resp = Team.t

let initial = { winner = Bot; row = 0; col = 0 }

let make n : Object_type.t =
  if n < 2 then invalid_arg "Tn.make: n must be >= 2";
  let half_down = n / 2 and half_up = (n + 1) / 2 in
  Object_type.Pack
    (module struct
      type nonrec state = state
      type nonrec op = op
      type nonrec resp = resp

      let name = Printf.sprintf "T_%d" n

      let apply q op =
        match (op, q.winner) with
        | OpA, Bot -> ({ q with winner = Won Team.A }, Team.A)
        | OpB, Bot -> ({ q with winner = Won Team.B }, Team.B)
        | OpA, Won w ->
            let col = (q.col + 1) mod half_down in
            let q' = if col = 0 then initial else { q with col } in
            (q', w)
        | OpB, Won w ->
            let row = (q.row + 1) mod half_up in
            let q' = if row = 0 then initial else { q with row } in
            (q', w)

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Team.compare

      let pp_state ppf q =
        let pp_winner ppf = function
          | Bot -> Format.pp_print_string ppf "_|_"
          | Won t -> Team.pp ppf t
        in
        Format.fprintf ppf "(%a,%d,%d)" pp_winner q.winner q.row q.col

      let pp_op ppf op =
        Format.pp_print_string ppf (match op with OpA -> "op_A" | OpB -> "op_B")

      let pp_resp = Team.pp
      let candidate_initial_states = [ initial ]
      let update_ops = [ OpA; OpB ]
      let readable = true
      let op_kind _ = Footprint.Update
    end)
