(* Sticky bit: the first Stick wins and the state never changes afterwards.

   The winning value is recorded forever, so the type is n-recording for
   every n: cons = rcons = infinity. *)

type op = Stick of int

let t : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int option
      type nonrec op = op
      type resp = int (* the value that is (now) stuck *)

      let name = "sticky-bit"

      let apply q (Stick v) =
        match q with
        | None -> (Some v, v)
        | Some w -> (Some w, w)

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_option Object_type.pp_int ppf q
      let pp_op ppf (Stick v) = Format.fprintf ppf "stick(%d)" v
      let pp_resp = Object_type.pp_int
      let candidate_initial_states = [ None ]
      let update_ops = [ Stick 0; Stick 1 ]
      let readable = true
      let op_kind _ = Footprint.Update
    end)
