(* Swap register: Swap(v) stores v and returns the previous contents.
   Consensus number 2 (Herlihy).  Like test-and-set, later swaps obliterate
   the evidence of who went first, so the type is not 2-recording. *)

type op = Swap of int

let make ~domain : Object_type.t =
  Object_type.Pack
    (module struct
      type state = int option
      type nonrec op = op
      type resp = int option

      let name = Printf.sprintf "swap(%d)" domain
      let apply q (Swap v) = (Some v, q)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_option Object_type.pp_int ppf q
      let pp_op ppf (Swap v) = Format.fprintf ppf "swap(%d)" v
      let pp_resp ppf r = Object_type.pp_option Object_type.pp_int ppf r
      let candidate_initial_states = [ None ]
      let update_ops = List.init domain (fun v -> Swap v)
      let readable = true
      let op_kind _ = Footprint.Update
    end)

let default = make ~domain:2
