(** Deterministic sequential object-type specifications.

    A shared object type is defined by its set of states, its update
    operations and a deterministic transition function ({!S.apply}).
    The paper's decision procedures (Definitions 2 and 4) quantify over
    sequences of at most [n] operations performed by distinct processes,
    so a finite universe of candidate operations
    ({!S.update_ops}) and candidate initial states
    ({!S.candidate_initial_states}) suffices to decide the n-discerning
    and n-recording properties exactly with respect to that universe. *)

(** Interface every object type in the catalogue implements. *)
module type S = sig
  type state
  type op
  type resp

  val name : string
  (** Human-readable type name, unique within the catalogue. *)

  val apply : state -> op -> state * resp
  (** [apply q op] is the unique next state and response when [op] is
      performed on an object in state [q] (the type is deterministic). *)

  val compare_state : state -> state -> int
  (** Total order on states (used for set/map containers). *)

  val compare_op : op -> op -> int
  val compare_resp : resp -> resp -> int

  val digest_state : state -> string
  (** Canonical byte representation of a state: two states digest equally
      iff {!compare_state} says they are equal.  The explorer's state
      deduplication fingerprints non-volatile objects with it.  For states
      made of plain data (every catalogue type), {!Object_type.digest} is
      a valid implementation; types whose state has non-canonical
      representations (e.g. unsorted sets) must canonicalize here. *)

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
  val pp_resp : Format.formatter -> resp -> unit

  val candidate_initial_states : state list
  (** Initial states the property checkers will try for [q0]. *)

  val update_ops : op list
  (** Finite universe of update operations used by the property
      checkers.  For types with infinitely many operations (e.g.
      registers over all integers) this is a representative finite
      sub-language; results are exact with respect to it. *)

  val readable : bool
  (** Whether the type has a READ operation that returns the entire
      state without changing it (footnote 3 of the paper).  Readability
      is required by the sufficiency results (Theorems 3 and 8); the
      necessary conditions hold without it. *)

  val op_kind : op -> Footprint.kind
  (** Step-footprint classification of [op] for the explorer's
      independence relation ({!Rcons_runtime.Explore} with [?por]):
      {!Footprint.Update} for operations that may change the state —
      the classification must be state-independent and conservative, so
      a CAS that happens to fail is still an update — and
      {!Footprint.Read} only for operations that provably never change
      any state.  The READ operation of readable types is not part of
      [update_ops] and is classified by the runtime
      ({!Rcons_runtime.Sim_obj.read}). *)
end

(** An object type packed with its state/op/resp types hidden; the
    currency of the checkers, catalogue and CLI. *)
type t = Pack : (module S with type state = 's and type op = 'o and type resp = 'r) -> t

val name : t -> string
val readable : t -> bool

val fingerprint :
  ?depth:int -> (module S with type state = 's and type op = 'o and type resp = 'r) -> string
(** Canonical behavioural fingerprint: an MD5 hex digest over the
    depth-bounded transition table reachable from
    {!S.candidate_initial_states} under {!S.update_ops}, together with
    the {!S.readable} flag.  Two types fingerprint equally iff they
    behave identically on every operation sequence of length [<= depth]
    (default 8) from a candidate initial state — the fragment explored
    by the n-discerning / n-recording searches for [n <= depth].  States
    are named by BFS discovery index and operations by universe
    position, so catalogue aliases share fingerprints while any change
    to [apply], the universes or [readable] invalidates them.  This is
    the on-disk key of the persisted certificate cache. *)

val fingerprint_t : ?depth:int -> t -> string
(** {!fingerprint} on a packed type. *)

val digest : 'a -> string
(** Canonical digest for plain-data values ([Marshal] with sharing
    expanded): byte equality of digests coincides with structural
    equality.  The default [digest_state] of the whole catalogue. *)

val equal_state :
  (module S with type state = 's and type op = 'o and type resp = 'r) -> 's -> 's -> bool

(** {2 Pretty-printing helpers shared by the catalogue} *)

val pp_int : Format.formatter -> int -> unit
val pp_bool : Format.formatter -> bool -> unit
val pp_option : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a option -> unit
val pp_list : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
