(* Finite object types given by an explicit transition table, and a random
   generator for them.  Random finite types are used by the property-based
   tests as a meta-check of the decision procedures: the structural theorems
   of the paper (Observations 5 and 6, Theorem 16, Proposition 18) must hold
   for every deterministic type, so they must hold for arbitrary tables. *)

type table = {
  table_name : string;
  num_states : int;
  num_ops : int;
  transition : (int * int) array array;
      (* transition.(q).(op) = (next state, response) *)
  initials : int list;
}

let check_table t =
  if t.num_states <= 0 || t.num_ops <= 0 then invalid_arg "Finite_type: empty table";
  if Array.length t.transition <> t.num_states then invalid_arg "Finite_type: bad row count";
  Array.iter
    (fun row ->
      if Array.length row <> t.num_ops then invalid_arg "Finite_type: bad column count";
      Array.iter
        (fun (q', _) ->
          if q' < 0 || q' >= t.num_states then invalid_arg "Finite_type: bad target state")
        row)
    t.transition;
  List.iter
    (fun q -> if q < 0 || q >= t.num_states then invalid_arg "Finite_type: bad initial state")
    t.initials

let of_table t : Object_type.t =
  check_table t;
  Object_type.Pack
    (module struct
      type state = int
      type op = int
      type resp = int

      let name = t.table_name
      let apply q op = t.transition.(q).(op)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Format.fprintf ppf "q%d" q
      let pp_op ppf op = Format.fprintf ppf "op%d" op
      let pp_resp ppf r = Format.fprintf ppf "r%d" r
      let candidate_initial_states = t.initials
      let update_ops = List.init t.num_ops Fun.id
      let readable = true
      let op_kind _ = Footprint.Update
    end)

(* Random table with [num_states] states, [num_ops] operations and
   responses drawn from [0, num_resps).  Deterministic given [rng]. *)
let random ?(num_resps = 2) ~num_states ~num_ops rng =
  let transition =
    Array.init num_states (fun _ ->
        Array.init num_ops (fun _ ->
            (Random.State.int rng num_states, Random.State.int rng num_resps)))
  in
  {
    table_name = Printf.sprintf "random(%d states,%d ops)" num_states num_ops;
    num_states;
    num_ops;
    transition;
    initials = List.init num_states Fun.id;
  }
