(* Flip bit: Flip inverts the bit and returns the previous value.

   Like test-and-set, the responses reveal the order (2-discerning, so
   cons = 2), but flips commute on the state -- flip;flip is the identity
   -- so nothing about who went first survives in the state: not
   2-recording, and the valency sweep settles rcons = 1. *)

type op = Flip

let t : Object_type.t =
  Object_type.Pack
    (module struct
      type state = bool
      type nonrec op = op
      type resp = bool

      let name = "flip-bit"
      let apply q Flip = (not q, q)
      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state = Object_type.pp_bool
      let pp_op ppf Flip = Format.pp_print_string ppf "flip"
      let pp_resp = Object_type.pp_bool
      let candidate_initial_states = [ false ]
      let update_ops = [ Flip ]
      let readable = false
      let op_kind _ = Footprint.Update
    end)
