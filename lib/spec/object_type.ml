(* Deterministic sequential object-type specifications.

   A type is given by its set of states, its update operations and a
   transition function [apply].  The decision procedures of the paper
   (Definitions 2 and 4) quantify over sequences of at most [n] operations
   performed by distinct processes, so a finite universe of candidate
   operations and candidate initial states is enough to decide the
   n-discerning and n-recording properties exactly with respect to that
   universe. *)

module type S = sig
  type state
  type op
  type resp

  val name : string

  val apply : state -> op -> state * resp
  (** [apply q op] is the unique next state and response when [op] is
      performed on an object in state [q] (the type is deterministic). *)

  val compare_state : state -> state -> int
  val compare_op : op -> op -> int
  val compare_resp : resp -> resp -> int

  val digest_state : state -> string
  (** Canonical byte representation of a state: two states digest equally
      iff they compare equal.  Used by the explorer's state-space
      deduplication to fingerprint non-volatile memory; {!val:digest} is a
      valid implementation for any state made of plain data. *)

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
  val pp_resp : Format.formatter -> resp -> unit

  val candidate_initial_states : state list
  (** Initial states the property checkers will try for [q0]. *)

  val update_ops : op list
  (** Finite universe of update operations used by the property checkers. *)

  val readable : bool
  (** Whether the type has a READ operation returning the entire state
      without changing it.  Readability is required by the sufficiency
      results (Theorems 3 and 8); the necessary conditions hold without. *)

  val op_kind : op -> Footprint.kind
  (** Step-footprint classification of [op] for the explorer's
      independence relation: {!Footprint.Update} for operations that may
      change the state (every catalogue update operation — a CAS that
      happens to fail still conflicts with reads, so the classification
      must be state-independent and conservative), {!Footprint.Read}
      only for operations that provably never change any state.  The
      READ operation of readable types is not in [update_ops]; it is
      classified by the runtime ({!Rcons_runtime.Sim_obj.read}). *)
end

type t = Pack : (module S with type state = 's and type op = 'o and type resp = 'r) -> t

(* Canonical digest for plain-data values: structural equality coincides
   with byte equality of the marshalled form once sharing is expanded
   ([No_sharing]); [Closures] keeps the digest total on states that happen
   to capture functions (code pointers are stable within a binary). *)
let digest v = Marshal.to_string v [ Marshal.No_sharing; Marshal.Closures ]

let name (Pack (module T)) = T.name
let readable (Pack (module T)) = T.readable

(* Canonical behavioural fingerprint of a type: an MD5 over the depth-
   bounded transition table reachable from the candidate initial states
   under the declared operation universe, plus the readability flag.

   Two types fingerprint equally iff they are behaviourally identical on
   every operation sequence of length <= [depth] from a candidate initial
   state -- exactly the fragment the n-discerning / n-recording searches
   (Definitions 2 and 4) explore for n <= depth.  The encoding names
   states by their BFS discovery index and operations by their position
   in [update_ops], so catalogue aliases of the same behaviour share a
   fingerprint while any edit to [apply], the universes or [readable]
   changes it.  Used as the on-disk cache key for persisted certificates
   (see Rcons_check.Cert_cache); a fingerprint mismatch marks a cache
   entry as stale. *)
let fingerprint_state_cap = 100_000

(* A fingerprint is a pure function of the module value and the depth,
   and the catalogue's modules are top-level values handed out over and
   over, so memoize by physical identity (a handful of modules per
   process; linear scan is fine).  Guarded for multi-domain callers. *)
let fp_memo : (Obj.t * int * string) list ref = ref []
let fp_memo_lock = Mutex.create ()

let fp_memo_find key depth =
  Mutex.protect fp_memo_lock (fun () ->
      List.find_map
        (fun (k, d, fp) -> if k == key && d = depth then Some fp else None)
        !fp_memo)

let fp_memo_add key depth fp =
  Mutex.protect fp_memo_lock (fun () -> fp_memo := (key, depth, fp) :: !fp_memo)

let fingerprint_uncached (type s o r) ~depth
    (module T : S with type state = s and type op = o and type resp = r) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "rcons-fp-v1 depth=%d readable=%b " depth T.readable);
  (* state identity: digest -> BFS index *)
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let frontier = Stdlib.Queue.create () in
  let intern ~level q =
    let d = T.digest_state q in
    match Hashtbl.find_opt index d with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add index d i;
        if level < depth && i < fingerprint_state_cap then Stdlib.Queue.add (q, level) frontier;
        i
  in
  let ops = Array.of_list T.update_ops in
  Buffer.add_string buf (Printf.sprintf "ops=%d " (Array.length ops));
  List.iter
    (fun q -> Buffer.add_string buf (Printf.sprintf "init:%d " (intern ~level:0 q)))
    T.candidate_initial_states;
  while not (Stdlib.Queue.is_empty frontier) do
    let q, level = Stdlib.Queue.pop frontier in
    let qi = Hashtbl.find index (T.digest_state q) in
    Array.iteri
      (fun oi op ->
        let q', r = T.apply q op in
        Buffer.add_string buf
          (Printf.sprintf "%d.%d->%d;%s " qi oi
             (intern ~level:(level + 1) q')
             (Stdlib.Digest.to_hex (Stdlib.Digest.string (digest r)))))
      ops
  done;
  if !next >= fingerprint_state_cap then Buffer.add_string buf "truncated";
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))

let fingerprint (type s o r) ?(depth = 8)
    (module T : S with type state = s and type op = o and type resp = r) =
  let key = Obj.repr (module T : S with type state = s and type op = o and type resp = r) in
  match fp_memo_find key depth with
  | Some fp -> fp
  | None ->
      let fp = fingerprint_uncached ~depth (module T) in
      fp_memo_add key depth fp;
      fp

let fingerprint_t ?depth (Pack (module T)) = fingerprint ?depth (module T)

let equal_state (type s o r)
    (module T : S with type state = s and type op = o and type resp = r)
    (a : s) (b : s) =
  T.compare_state a b = 0

(* Convenience pretty-printers used throughout the catalogue. *)
let pp_int = Format.pp_print_int
let pp_bool = Format.pp_print_bool

let pp_option pp ppf = function
  | None -> Format.pp_print_string ppf "_|_"
  | Some x -> pp ppf x

let pp_list pp ppf xs =
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp) xs
