(* Deterministic sequential object-type specifications.

   A type is given by its set of states, its update operations and a
   transition function [apply].  The decision procedures of the paper
   (Definitions 2 and 4) quantify over sequences of at most [n] operations
   performed by distinct processes, so a finite universe of candidate
   operations and candidate initial states is enough to decide the
   n-discerning and n-recording properties exactly with respect to that
   universe. *)

module type S = sig
  type state
  type op
  type resp

  val name : string

  val apply : state -> op -> state * resp
  (** [apply q op] is the unique next state and response when [op] is
      performed on an object in state [q] (the type is deterministic). *)

  val compare_state : state -> state -> int
  val compare_op : op -> op -> int
  val compare_resp : resp -> resp -> int

  val digest_state : state -> string
  (** Canonical byte representation of a state: two states digest equally
      iff they compare equal.  Used by the explorer's state-space
      deduplication to fingerprint non-volatile memory; {!val:digest} is a
      valid implementation for any state made of plain data. *)

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
  val pp_resp : Format.formatter -> resp -> unit

  val candidate_initial_states : state list
  (** Initial states the property checkers will try for [q0]. *)

  val update_ops : op list
  (** Finite universe of update operations used by the property checkers. *)

  val readable : bool
  (** Whether the type has a READ operation returning the entire state
      without changing it.  Readability is required by the sufficiency
      results (Theorems 3 and 8); the necessary conditions hold without. *)
end

type t = Pack : (module S with type state = 's and type op = 'o and type resp = 'r) -> t

(* Canonical digest for plain-data values: structural equality coincides
   with byte equality of the marshalled form once sharing is expanded
   ([No_sharing]); [Closures] keeps the digest total on states that happen
   to capture functions (code pointers are stable within a binary). *)
let digest v = Marshal.to_string v [ Marshal.No_sharing; Marshal.Closures ]

let name (Pack (module T)) = T.name
let readable (Pack (module T)) = T.readable

let equal_state (type s o r)
    (module T : S with type state = s and type op = o and type resp = r)
    (a : s) (b : s) =
  T.compare_state a b = 0

(* Convenience pretty-printers used throughout the catalogue. *)
let pp_int = Format.pp_print_int
let pp_bool = Format.pp_print_bool

let pp_option pp ppf = function
  | None -> Format.pp_print_string ppf "_|_"
  | Some x -> pp ppf x

let pp_list pp ppf xs =
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp) xs
