(* FIFO queue of small integers.  Enq returns ok, Deq returns the dequeued
   value (or None when empty).  Like the paper's stack, the queue is NOT
   readable: cons(queue) = 2 and, by the same crash-equivalence argument as
   for the stack (Appendix H), rcons(queue) = 1. *)

type op = Enq of int | Deq
type resp = Enqueued | Dequeued of int option

let spec ~domain ~readable :
    (module Object_type.S with type state = int list and type op = op and type resp = resp) =
  (module struct
      type state = int list (* front of queue first *)
      type nonrec op = op
      type nonrec resp = resp

      let name =
        Printf.sprintf "%squeue(%d)" (if readable then "readable-" else "") domain

      let apply q op =
        match (op, q) with
        | Enq v, _ -> (q @ [ v ], Enqueued)
        | Deq, [] -> ([], Dequeued None)
        | Deq, v :: rest -> (rest, Dequeued (Some v))

      let compare_state = Stdlib.compare
      let digest_state = Object_type.digest
      let compare_op = Stdlib.compare
      let compare_resp = Stdlib.compare
      let pp_state ppf q = Object_type.pp_list Object_type.pp_int ppf q

      let pp_op ppf = function
        | Enq v -> Format.fprintf ppf "enq(%d)" v
        | Deq -> Format.pp_print_string ppf "deq"

      let pp_resp ppf = function
        | Enqueued -> Format.pp_print_string ppf "ok"
        | Dequeued r -> Format.fprintf ppf "deq(%a)" (Object_type.pp_option Object_type.pp_int) r

      let candidate_initial_states = [ []; [ 0 ]; [ 0; 1 ] ]
      let update_ops = Deq :: List.init domain (fun v -> Enq v)
      let readable = readable
      let op_kind _ = Footprint.Update
    end)

let make ~domain ?(readable = false) () : Object_type.t =
  Object_type.Pack (spec ~domain ~readable)

let default = make ~domain:2 ()

(* A stack/queue equipped with a READ of the whole contents is a different,
   strictly stronger type: the sequence of surviving elements records the
   order of insertions, so the readable variant is n-recording for every n
   (see the hierarchy experiment). *)
let readable_variant = make ~domain:2 ~readable:true ()
