(** RUniversal: the recoverable universal construction of Section 4 /
    Figure 7 -- Herlihy's universal construction carried to the
    independent-crash model, with all shared variables in non-volatile
    memory and recoverable consensus deciding each next pointer of the
    operation list.

    Every operation becomes a list node; the list order is the
    linearization order.  A process announces its node and repeatedly
    helps append announced nodes (round-robin priority gives
    wait-freedom) until its own node has a sequence number.  Recovery
    simply re-runs ApplyOperation for the last announced node: the RC
    instances, node fields and announce/head arrays all survive in
    non-volatile memory, so each operation takes effect exactly once. *)

(** Sequential specification of the implemented object. *)
type ('s, 'o, 'r) seq_spec = { init : 's; apply : 's -> 'o -> 's * 'r }

type ('s, 'o, 'r) node = {
  tag : int * int;  (** (pid, invocation index); (-1, -1) for the dummy *)
  hist_tag : int;
  node_op : 'o option;  (** [None] only for the dummy node *)
  seq : int Rcons_runtime.Cell.t;  (** 0 until appended *)
  new_state : 's option Rcons_runtime.Cell.t;
  response : 'r option Rcons_runtime.Cell.t;
  next : ('s, 'o, 'r) node rc;
}

(** A pluggable recoverable-consensus instance (the paper's RC); the
    default is an atomic one-shot object, and the Figure 2 + tournament
    algorithm can be plugged in to exercise the full paper pipeline. *)
and 'v rc = { propose : int -> 'v -> 'v }

type ('s, 'o, 'r) t

val one_shot_rc : unit -> 'v rc

val one_shot_rc_durable : unit -> 'v rc
(** [one_shot_rc] with a persist barrier after the propose
    ({!Rcons_algo.One_shot.decide_durable}): the returned winner is
    durable under the write-back cache model. *)

val create :
  ?history:('o, 'r) Rcons_history.History.t ->
  ?make_rc:(unit -> ('s, 'o, 'r) node rc) ->
  ?annotated:bool ->
  n:int ->
  ('s, 'o, 'r) seq_spec ->
  ('s, 'o, 'r) t
(** With [?history], invocations and responses are recorded for
    linearizability checking.

    [annotated] (default [false]) adds persist barriers for the
    write-back cache model: flushed writes, link-and-persist reads, the
    durable one-shot RC as the default [make_rc], and
    [History.Persist] markers certifying each completed operation's
    durability (consumed by [Conditions.durably_linearizable]).  A
    semantic no-op (but extra steps) under the default eager model.
    An explicit [make_rc] overrides the annotated default; it is the
    caller's job to make it durable. *)

val apply_operation : ('s, 'o, 'r) t -> int -> 'r
(** Figure 7's ApplyOperation for process [i]: ensure its announced node
    is appended (helping the priority process) and return its response.
    Used directly by recovery; normal callers use {!invoke}. *)

val invoke : ('s, 'o, 'r) t -> pid:int -> index:int -> 'o -> 'r
(** Figure 7's Universal(op), idempotent per (pid, index): re-invoking
    with the same tag -- what the recovery function does -- reuses the
    announced node and returns the recorded response instead of
    re-executing the operation. *)

val linearization : ('s, 'o, 'r) t -> ('s, 'o, 'r) node list
(** Appended nodes in list order (out-of-simulation inspection). *)

val applied_count : ('s, 'o, 'r) t -> int

val current_state : ('s, 'o, 'r) t -> 's
(** The abstract state after the last appended operation (the
    specification's [init] when nothing is appended yet) -- a volatile
    out-of-simulation peek.  The service layer's windowed online checker
    uses it as the initial state of the next history window. *)
