(* RUniversal: the recoverable universal construction of Section 4 and
   Figure 7 of the paper -- Herlihy's universal construction carried over
   to the independent-crash model, with all shared variables in
   non-volatile memory and recoverable consensus deciding each next
   pointer of the operation list.

   Every operation on the implemented object becomes a list node; the list
   order is the linearization order.  A process announces its node, then
   repeatedly helps append announced nodes (round-robin priority ensures
   wait-freedom) until its own node has a sequence number.  When a process
   crashes and recovers, it simply re-runs ApplyOperation for its last
   announced node (the paper's recovery function); the RC instances, the
   node fields and the announce/head arrays all survive in non-volatile
   memory, so the operation takes effect exactly once.

   The RC instance attached to each node is pluggable; the default is an
   atomic one-shot consensus object (n-recording for every n).  Plugging
   in the Figure 2 + tournament algorithm built from any n-recording
   readable type exercises the full stack of the paper. *)

open Rcons_runtime

type ('s, 'o, 'r) seq_spec = { init : 's; apply : 's -> 'o -> 's * 'r }

type ('s, 'o, 'r) node = {
  tag : int * int; (* (pid, invocation index); (-1, -1) for the dummy *)
  hist_tag : int; (* correlation id in the recorded history; -1 if none *)
  node_op : 'o option; (* None only for the dummy node *)
  seq : int Cell.t; (* 0 until the node is appended *)
  new_state : 's option Cell.t;
  response : 'r option Cell.t;
  next : ('s, 'o, 'r) node rc;
}

and 'v rc = { propose : int -> 'v -> 'v }

type ('s, 'o, 'r) t = {
  n : int;
  spec : ('s, 'o, 'r) seq_spec;
  make_rc : unit -> ('s, 'o, 'r) node rc;
  announce : ('s, 'o, 'r) node Cell.t array;
  head : ('s, 'o, 'r) node Cell.t array;
  registry : (int * int, ('s, 'o, 'r) node) Hashtbl.t;
      (* invocation tag -> node; makes [invoke] idempotent across crashes *)
  history : ('o, 'r) Rcons_history.History.t option;
  annotated : bool; (* persist barriers for the write-back cache model *)
}

let one_shot_rc () =
  let c = Rcons_algo.One_shot.create () in
  { propose = (fun _pid v -> Rcons_algo.One_shot.decide c v) }

(* The annotated default RC: list nodes are compared physically (they
   contain closures, so structural equality is unavailable). *)
let one_shot_rc_durable () =
  let c = Rcons_algo.One_shot.create () in
  { propose = (fun _pid v -> Rcons_algo.One_shot.decide_durable ~equal:( == ) c v) }

(* Annotated access paths: durable reads, flushed writes.  [rd_node]
   reads cells holding list nodes (physical equality for the
   link-and-persist stability check); [rd] everything else. *)
let rd t c = if t.annotated then Cell.read_persist c else Cell.read c
let rd_node t c = if t.annotated then Cell.read_persist ~equal:( == ) c else Cell.read c

let wr t c v =
  Cell.write c v;
  if t.annotated then Cell.flush c

(* Crash-robust write for the multi-writer winner fields (new_state,
   response, seq).  The helping races on these cells are value-benign --
   every helper writes the agreed value -- but under a per-owner
   write-back cache they are NOT crash-benign: a concurrent same-value
   helper write steals the line's ownership, and if that helper then
   crashes before flushing, the policy reverts the line to its durable
   copy -- silently undoing our write -- after which our own flush hits a
   clean line and persists nothing.  (Found by the E15 service soak: a
   node with a durable seq but a reverted new_state, i.e. "predecessor
   state missing" in a fully annotated run.)  So in annotated mode use
   [Cell.write_persist]: write, flush, and confirm atomically that the
   value matches AND the line is clean, re-writing otherwise.  A value
   read-back alone would not do -- a helper writing a structurally-equal
   fresh allocation between our flush and the read-back re-dirties the
   line while matching the comparison, leaving the durable copy stale
   (the same hazard [Cell.read_persist] guards against on the read
   side).  Helper writes and crashes are finitely many, so the loop
   terminates.  The single-writer cells (announce.(i), head.(i)) keep
   the plain write-and-flush. *)
let wr_confirm t c v = if t.annotated then Cell.write_persist c v else Cell.write c v

let fresh_node t ~tag ~hist_tag op =
  {
    tag;
    hist_tag;
    node_op = op;
    seq = Cell.make 0;
    new_state = Cell.make None;
    response = Cell.make None;
    next = t.make_rc ();
  }

let create ?history ?make_rc ?(annotated = false) ~n spec =
  let make_rc =
    Option.value make_rc ~default:(if annotated then one_shot_rc_durable else one_shot_rc)
  in
  let dummy =
    {
      tag = (-1, -1);
      hist_tag = -1;
      node_op = None;
      seq = Cell.make 1;
      new_state = Cell.make (Some spec.init);
      response = Cell.make None;
      next = make_rc ();
    }
  in
  {
    n;
    spec;
    make_rc;
    announce = Array.init n (fun _ -> Cell.make dummy);
    head = Array.init n (fun _ -> Cell.make dummy);
    registry = Hashtbl.create 64;
    history;
    annotated;
  }

(* Figure 7, ApplyOperation: ensure the announced node of process [i] is
   appended, helping the process whose id has round-robin priority. *)
let apply_operation t i =
  let announced = rd_node t t.announce.(i) in
  let continue_loop () = rd t announced.seq = 0 in
  while continue_loop () do
    let head = rd_node t t.head.(i) in
    let head_seq = rd t head.seq in
    let priority = (head_seq + 1) mod t.n in
    let priority_node = rd_node t t.announce.(priority) in
    let pointer = if rd t priority_node.seq = 0 then priority_node else announced in
    let winner = head.next.propose i pointer in
    (* Fill in the winner's fields.  Concurrent helpers write identical
       values (the winner and the predecessor state are agreed upon), so
       the races are benign, as in Herlihy's construction.  Annotated
       mode flushes each field before the next write depends on it; the
       seq write is the node's commit point and must not become durable
       before the state/response it certifies. *)
    let prev_state =
      match rd t head.new_state with
      | Some s -> s
      | None -> invalid_arg "RUniversal: predecessor state missing"
    in
    let op =
      match winner.node_op with
      | Some op -> op
      | None -> invalid_arg "RUniversal: dummy node won consensus"
    in
    let state', resp = t.spec.apply prev_state op in
    wr_confirm t winner.new_state (Some state');
    wr_confirm t winner.response (Some resp);
    wr_confirm t winner.seq (head_seq + 1);
    wr t t.head.(i) winner
  done;
  match rd t announced.response with
  | Some r -> r
  | None -> invalid_arg "RUniversal: appended node has no response"

(* Figure 7, Universal(op), made idempotent per (pid, index): calling
   [invoke] again with the same invocation tag -- which is what the
   recovery function does after a crash -- reuses the announced node and
   returns the recorded response instead of re-executing the operation. *)
let invoke t ~pid ~index op =
  let nd =
    match Hashtbl.find_opt t.registry (pid, index) with
    | Some nd -> nd
    | None ->
        (* Undo: journal the history append and the registry growth so a
           rolled-back invocation disappears entirely.  The rollback
           feed never reaches this branch — a node invoked before the
           mark is still registered, so the lookup hits. *)
        if Undo.recording () then begin
          let saved = Option.map Rcons_history.History.save t.history in
          Undo.log (fun () ->
              Option.iter
                (fun s ->
                  match t.history with
                  | Some h -> Rcons_history.History.restore h s
                  | None -> ())
                saved;
              Hashtbl.remove t.registry (pid, index))
        end;
        let hist_tag =
          match t.history with
          | Some h -> Rcons_history.History.invoke h ~pid op
          | None -> -1
        in
        let nd = fresh_node t ~tag:(pid, index) ~hist_tag (Some op) in
        Hashtbl.add t.registry (pid, index) nd;
        nd
  in
  if rd_node t t.announce.(pid) != nd then wr t t.announce.(pid) nd;
  (* Lines 120-125: catch the head pointer up so helping stays fresh. *)
  for j = 0 to t.n - 1 do
    let hj = rd_node t t.head.(j) in
    let hi = rd_node t t.head.(pid) in
    if rd t hj.seq > rd t hi.seq then wr t t.head.(pid) hj
  done;
  let r = apply_operation t pid in
  (match t.history with
  | Some h when nd.hist_tag >= 0 && not (Undo.feeding ()) ->
      (* Annotated runs certify durability: by the time ApplyOperation
         returned, the node's fields were read through link-and-persist
         barriers, so its effect can no longer be lost to a crash.
         These appends are not once-guarded (a recovered operation may
         legitimately persist/respond again), so the rollback feed must
         skip them — the journal already restored the history. *)
      if Undo.recording () then begin
        let s = Rcons_history.History.save h in
        Undo.log (fun () -> Rcons_history.History.restore h s)
      end;
      if t.annotated then Rcons_history.History.persist h ~pid ~tag:nd.hist_tag;
      Rcons_history.History.respond h ~pid ~tag:nd.hist_tag r
  | Some _ | None -> ());
  r

(* The linearization order as recorded in the list: appended nodes carry
   unique positive sequence numbers.  Out-of-simulation inspection used by
   checkers and tests. *)
let linearization t =
  let nodes = Hashtbl.fold (fun _ nd acc -> nd :: acc) t.registry [] in
  nodes
  |> List.filter (fun nd -> Cell.peek nd.seq > 0)
  |> List.sort (fun a b -> compare (Cell.peek a.seq) (Cell.peek b.seq))

let applied_count t = List.length (linearization t)

(* The object's current (volatile) abstract state: the last appended
   node's new_state, [init] before any append.  An appended node always
   has its state filled in -- the seq write follows the new_state write --
   so the [None] arm is the dummy head only. *)
let current_state t =
  match List.rev (linearization t) with
  | [] -> t.spec.init
  | last :: _ -> (
      match Cell.peek last.new_state with
      | Some s -> s
      | None -> invalid_arg "RUniversal: appended node has no state")
