(* Crash-restartable workloads over a RUniversal object.

   A process body that performs several operations in sequence must not
   re-execute completed operations when it is restarted after a crash.
   The runner keeps a per-process non-volatile progress counter: a
   restarted body skips to the first incomplete operation, whose [invoke]
   is idempotent (the recovery path of Figure 7's Recover function). *)

open Rcons_runtime

type ('s, 'o, 'r) t = {
  universal : ('s, 'o, 'r) Runiversal.t;
  progress : int Cell.t array;
  responses : 'r option array array; (* meta-observation, per pid per index *)
}

let create universal ~n ~max_ops =
  {
    universal;
    progress = Array.init n (fun _ -> Cell.make 0);
    responses = Array.init n (fun _ -> Array.make max_ops None);
  }

(* Run [ops] as process [pid]; safe to re-enter from the beginning after a
   crash.  Responses are recorded for later checking. *)
let run t pid (ops : 'o array) =
  let continue_from () = Cell.read t.progress.(pid) in
  let k = ref (continue_from ()) in
  while !k < Array.length ops do
    let r = Runiversal.invoke t.universal ~pid ~index:!k ops.(!k) in
    (* Meta-observation: journal the overwrite so a rolled-back run
       leaves no recorded response.  The write itself is idempotent, so
       the rollback feed may safely re-execute it. *)
    (if Undo.recording () then
       let old = t.responses.(pid).(!k) in
       let i = !k in
       Undo.log (fun () -> t.responses.(pid).(i) <- old));
    t.responses.(pid).(!k) <- Some r;
    Cell.write t.progress.(pid) (!k + 1);
    k := continue_from ()
  done

let response t pid index = t.responses.(pid).(index)
