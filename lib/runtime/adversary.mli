(** Pluggable, seeded crash adversaries: the unified fault-injection
    engine.

    Every randomized experiment in the repository drives its simulated
    system through this module instead of hand-rolling crash logic.  An
    adversary is a {!policy} (which crash model, per Golab's taxonomy of
    independent vs. simultaneous and bounded vs. unbounded failures)
    instantiated with a seed; {!run} drives a system to completion,
    {e recording the schedule it chose}, so every random run is
    replayable: feeding the recorded schedule to {!Schedule.apply}
    against a fresh system reproduces the execution choice for choice.

    {2 Determinism contract}

    The schedule produced by [(seed, policy)] is a pure function of the
    seed, the policy, and the (deterministic) system under test: the
    adversary draws only from its own [Random.State], never from global
    or domain-local state, so the same run performed on any domain -- or
    under any [?domains] count elsewhere in the process -- yields the
    same schedule bit for bit ([test/test_adversary.ml] checks this
    across domain counts 1/2/4).

    {2 Stream compatibility}

    [Uniform] consumes its [Random.State] in exactly the order the
    historical [Drivers.random] did (one [float] draw per crash
    opportunity, one [int] draw per victim/step pick), and
    [Simultaneous] replicates [Drivers.simultaneous]; both drivers now
    delegate here.  This is what keeps every EXPERIMENTS.md table
    byte-identical under the default seeds after the migration. *)

exception Stuck of string
(** A bounded run did not finish within its step budget; with finitely
    many crashes this indicates a violation of recoverable
    wait-freedom. *)

(** Crash models.  All probabilistic policies stop injecting once
    [max_crashes] is reached (the paper's finitely-many-crashes
    assumption), and never crash a process that has not taken a step
    since its last (re)start (a model no-op). *)
type policy =
  | Uniform of { crash_prob : float; max_crashes : int }
      (** Independent crashes: at each point, with probability
          [crash_prob], crash a uniformly chosen started process. *)
  | Storm of { crash_prob : float; burst : int; max_crashes : int }
      (** Bursty crash-storm: crash opportunities fire as in [Uniform],
          but each firing crashes up to [burst] distinct started
          processes back to back -- recoveries pile up. *)
  | Targeted of { victims : int list; crash_prob : float; max_crashes : int }
      (** Only processes in [victims] ever crash: an adversary with a
          grudge (the tournament's critical-path processes, say). *)
  | Simultaneous of { crash_at : int list }
      (** The Figure 4 / Section 2 model: round-robin stepping, with
          {e all} processes crashing whenever the total step count
          reaches one of [crash_at] (deterministic; no randomness). *)
  | Quiescent of { period : int; active : int; crash_prob : float; max_crashes : int }
      (** Crash opportunities only during the first [active] steps of
          every [period]-step window; the remaining steps are a
          quiescent window in which recoveries run undisturbed. *)

val pp_policy : Format.formatter -> policy -> unit

val policy_names : string list
(** The valid policy names, in declaration order: the single source the
    CLI's error messages and {!policy_of_string} both draw from. *)

val policy_of_string :
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?burst:int ->
  ?victims:int list ->
  ?crash_at:int list ->
  ?period:int ->
  ?active:int ->
  string ->
  (policy, string) result
(** Resolve a policy by name (case-insensitive), instantiated with the
    given knobs (defaults: [crash_prob 0.2], [max_crashes 6], [burst 2],
    [victims [0]], [crash_at [5; 17]], [period 12], [active 4]).
    [Error] names the offender and lists {!policy_names} -- the one-line
    diagnosis CLI callers print before exiting 2. *)

val policy_params : policy -> (string * string) list
(** Rendered policy knobs, for {!Schedule.provenance}. *)

type t
(** An instantiated adversary: a policy plus a private RNG.  Running it
    mutates the RNG, so one [t] drives a {e sequence} of runs
    reproducible from its creation seed (the sweep pattern of the bench
    experiments). *)

val create : ?seed:int -> policy -> t
(** [create ~seed policy] (default seed 42) seeds the adversary's
    private [Random.State] with [[| seed |]]. *)

val of_rng : rng:Random.State.t -> policy -> t
(** Wrap an externally owned RNG (the legacy driver entry points); the
    recorded provenance then has no seed. *)

val policy : t -> policy
val seed : t -> int option

val crashes_injected : t -> int
(** Crashes actually delivered over the adversary's lifetime, across
    every {!run} and {!decide} call — churn {e delivered}, as opposed to
    the churn {!crashes_requested}.  Soak harnesses assert on it so
    "survived the storm" is never vacuously true of a storm that never
    broke. *)

val crashes_requested : t -> int
(** The policy's crash allowance: [max_crashes] for the probabilistic
    policies; for [Simultaneous], the number of crash-all {e firings}
    (each firing crashes every process, so delivered may exceed it). *)

val decide : t -> eligible:int list -> total_steps:int -> int list
(** One crash opportunity of the policy for a caller that owns its own
    scheduler (the service engine), instead of handing the whole run to
    {!run}: given the processes currently {e eligible} to crash (started
    and alive — the caller's responsibility) and the system's cumulative
    step count, return the victims to crash now ([[]] most of the time).
    The returned victims are counted as injected; the caller must
    actually crash them.  Unlike {!run}'s per-call budget, the
    [max_crashes] budget here is spent over the adversary's lifetime.
    RNG draws mirror {!run}'s opportunity shape, but the streams are not
    interchangeable: dedicate a [t] to either {!run} or {!decide}. *)

val next_crash_hint : t -> total_steps:int -> int option
(** A peek at the soonest possible next crash: [None] when the budget
    (or, for [Simultaneous], the threshold list) is spent — no further
    churn can arrive, so a quiescence-dependent caller may stop waiting;
    [Some d] when a crash may fire once [d] more total steps elapse
    ([Some 0] = possible right now).  Purely informational: consumes no
    randomness and moves no state. *)

val provenance : ?fingerprint:string -> t -> Schedule.provenance
(** Self-description of this adversary for violation records and
    artifacts. *)

type outcome = {
  crashes : int;  (** crashes injected *)
  steps : int;  (** total steps driven *)
  schedule : Schedule.choice list;  (** the full recorded schedule *)
}

val run : ?max_steps:int -> ?record:bool -> ?on_crash:(int -> unit) -> t -> Sim.t -> outcome
(** Drive the system to completion under the adversary's policy.
    [max_steps] (default 1_000_000) bounds the run ({!Stuck} beyond it);
    [record] (default [true]) controls whether the schedule is kept
    ([schedule = []] when off -- the high-iteration sweeps that only
    need counts turn it off); [on_crash pid] is invoked after every
    injected crash (history instrumentation).

    @raise Stuck when the step budget runs out. *)
