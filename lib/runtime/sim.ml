(* Simulated asynchronous shared-memory system with individual process
   crashes and recoveries (the paper's independent-crash model).

   Each process is ordinary OCaml code that performs the [Step] effect for
   every shared-memory access.  The effect handler suspends the process at
   each access, so a driver can interleave processes one shared-memory
   access at a time -- the standard notion of a "step".  Crashing a process
   discards its delimited continuation, which is exactly the model's loss
   of volatile local memory (including the program counter), and re-arms
   the process to re-execute its code from the beginning.  Shared objects
   live in the ordinary OCaml heap, which plays the role of the non-volatile
   memory: it is untouched by crashes.

   Process bodies must be deterministic (they are re-executed after each
   crash) and must not catch the internal [Crashed] exception. *)

type _ Effect.t +=
  | Step : string option * Rcons_spec.Footprint.t option * (unit -> 'a) -> 'a Effect.t

exception Crashed
(* Raised inside a discarded continuation to unwind it cleanly. *)

(* The rollback rebuild's feed source ([Sim.rollback]): while a rebuild
   is re-running a process body, [step] consumes the recorded value of
   each completed step directly -- no effect, no suspension -- and only
   performs (suspending the body where the original run was suspended)
   once the source is exhausted.  [no_feed] is the distinguished "not
   rebuilding" state, so the normal path pays one domain-local load and
   a physical-equality test. *)
let no_feed : unit -> Obj.t option = fun () -> None

let feed_key : (unit -> Obj.t option) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref no_feed)

(* [label] optionally names the shared object the access touches; the
   critical-execution explorer reads it off suspended processes to
   reproduce the "all processes are poised on the same object O" step of
   Theorem 14's proof.  [fp] is the access's step footprint ([None] =
   unknown, treated as conflicting with everything); the partial-order
   reduction reads it off suspended processes to decide which pending
   steps commute. *)
let step ?label ?fp f =
  let r = Domain.DLS.get feed_key in
  if !r == no_feed then Effect.perform (Step (label, fp, f))
  else
    match !r () with
    | Some v ->
        (* Feeding: the cast is safe because the body is deterministic,
           so the k-th step of a given run has one type and the recorded
           value came from that very position.  The step thunk is
           skipped: its heap effects were rolled back and must not
           re-apply.  Trace and vlog were journal-restored. *)
        Obj.obj v
    | None -> Effect.perform (Step (label, fp, f))

type proc = {
  id : int;
  body : unit -> unit;
  tracing : bool; (* record the volatile observation trace (fingerprinting)? *)
  mutable resume : (unit -> unit) option; (* None = this run has finished *)
  mutable discard : (unit -> unit) option; (* unwinds a pending continuation *)
  mutable pending_label : string option; (* label of the suspended access *)
  mutable pending_fp : Rcons_spec.Footprint.t option; (* footprint of same *)
  mutable started : bool; (* has taken a step since its last (re)start *)
  mutable crash_count : int;
  mutable step_count : int;
  mutable trace : string list;
      (* digests of the values this run's steps returned, most recent
         first; cleared on (re)start.  A deterministic body's local state
         -- continuation, program counter included -- is a function of
         this sequence, which is what makes [fingerprint] a sound basis
         for deduplication. *)
  (* Undo-engine state.  One-shot continuations cannot be snapshotted,
     so [rollback] rebuilds a process's continuation by re-running its
     body and feeding back the values its completed steps returned this
     run ([vlog], recorded while an undo journal is installed): the step
     thunks themselves are skipped, so the rebuild costs
     O(steps since last restart) closure resumptions and no
     shared-memory re-execution.  After [s] step_procs since a
     (re)start the run has completed [s - 1] step thunks (the first
     step_proc only advances the body to its first suspension), so
     [vlen = s - 1]. *)
  mutable vlog : Obj.t array; (* values returned by this run's steps *)
  mutable vlen : int;
  mutable fin : bool; (* this run returned (retc); cleared by [arm] *)
  mutable stale : bool; (* journal rewound past this proc's continuation *)
  uh : Undo.handle; (* the creating domain's journal slot, captured once *)
}

type event = Stepped of int | Crash_event of int

type t = {
  procs : proc array;
  heap : Heap.t option; (* arena active at creation; None = no fingerprinting *)
  cache : Persist.cache option; (* write-back cache active at creation *)
  mutable total_steps : int;
  mutable events : event list; (* most recent first *)
  mutable dead : bool; (* abandoned: stepping or crashing it is a bug *)
}

let push_vlog p v =
  let n = Array.length p.vlog in
  if p.vlen = n then begin
    let bigger = Array.make (max 8 (2 * n)) (Obj.repr ()) in
    Array.blit p.vlog 0 bigger 0 n;
    p.vlog <- bigger
  end;
  p.vlog.(p.vlen) <- v;
  p.vlen <- p.vlen + 1

let run_body p =
  let open Effect.Deep in
  match_with p.body ()
    {
      retc =
        (fun () ->
          p.resume <- None;
          p.discard <- None;
          p.fin <- true);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Step (label, fp, f) ->
              Some
                (fun (k : (a, _) continuation) ->
                  p.pending_label <- label;
                  p.pending_fp <- fp;
                  p.resume <-
                    Some
                      (fun () ->
                        let v = f () in
                        if Undo.h_installed p.uh then push_vlog p (Obj.repr v);
                        if p.tracing then p.trace <- Heap.digest v :: p.trace;
                        continue k v);
                  p.discard <-
                    Some
                      (fun () ->
                        match discontinue k Crashed with
                        | () -> ()
                        | exception Crashed -> ()))
          | _ -> None);
    }

let arm p =
  p.started <- false;
  p.discard <- None;
  p.pending_label <- None;
  p.pending_fp <- None;
  p.trace <- [];
  p.vlen <- 0;
  p.fin <- false;
  p.stale <- false; (* a fresh starter needs no rebuild *)
  p.resume <- Some (fun () -> run_body p)

let create ~n body_of =
  let heap = Heap.current () in
  let cache = Persist.current () in
  let procs =
    Array.init n (fun id ->
        let p =
          {
            id;
            body = body_of id;
            tracing = heap <> None;
            resume = None;
            discard = None;
            pending_label = None;
            pending_fp = None;
            started = false;
            crash_count = 0;
            step_count = 0;
            trace = [];
            vlog = [||];
            vlen = 0;
            fin = false;
            stale = false;
            uh = Undo.handle ();
          }
        in
        arm p;
        p)
  in
  { procs; heap; cache; total_steps = 0; events = []; dead = false }

let num_procs t = Array.length t.procs

(* The LOGICAL run state.  A [stale] process (rolled back, continuation
   not yet rebuilt -- see [rebuild]) answers from its journal-restored
   [fin] flag: its [resume] still belongs to the abandoned branch. *)
let proc_finished p = if p.stale then p.fin else p.resume = None
let finished t i = proc_finished t.procs.(i)
let all_finished t = Array.for_all proc_finished t.procs
let started t i = t.procs.(i).started

(* The label of the shared access process [i] is suspended on, if its
   pending step was labelled; None for unstarted/finished processes. *)
let pending_label t i = t.procs.(i).pending_label

(* The footprint of the shared access process [i] is suspended on; None
   for unstarted processes (their first access is not yet known),
   finished processes, and accesses that did not declare one.  Callers
   must treat None as [Footprint.Global]. *)
let pending_footprint t i = if finished t i then None else t.procs.(i).pending_fp
let crash_count t i = t.procs.(i).crash_count
let step_count t i = t.procs.(i).step_count
let total_steps t = t.total_steps
let events t = List.rev t.events

let check_pid t i fn =
  if t.dead then
    invalid_arg (Printf.sprintf "Sim.%s: system has been abandoned" fn);
  if i < 0 || i >= Array.length t.procs then
    invalid_arg
      (Printf.sprintf "Sim.%s: pid %d out of range [0,%d)" fn i (Array.length t.procs))

(* Rebuild a process whose continuation a rollback invalidated.  The
   journal already restored every plain field to the mark's state; what
   cannot be restored is the one-shot continuation, so it is re-created
   by re-running the body with [feed_key] pointing at the restored value
   log: [step] hands each recorded value straight back without
   suspending (no effect, no thunk -- the heap effects were rolled back
   and must not re-apply), so the body runs in one stretch to exactly
   where the original run was suspended and performs one real effect
   there.  The rebuild runs with [Undo.feeding] set: journal recording
   is off, and non-idempotent instrumentation around steps checks the
   flag and skips itself. *)
let rebuild p =
  (match p.discard with Some d -> d () | None -> ());
  p.discard <- None;
  p.resume <- None;
  if p.fin then () (* the run had returned: nothing is suspended *)
  else if (not p.started) && p.vlen = 0 then
    (* freshly (re)armed and never stepped: recreate the starter *)
    p.resume <- Some (fun () -> run_body p)
  else begin
    let r = Domain.DLS.get feed_key in
    let idx = ref 0 in
    let take () =
      if !idx < p.vlen then begin
        let v = p.vlog.(!idx) in
        incr idx;
        Some v
      end
      else None
    in
    let saved = !r in
    r := take;
    Fun.protect
      ~finally:(fun () -> r := saved)
      (fun () -> Undo.with_feeding (fun () -> run_body p));
    if !idx < p.vlen then
      invalid_arg "Sim.rollback: rebuild desynchronized (body finished early)";
    if p.resume = None && not p.fin then
      invalid_arg "Sim.rollback: rebuild desynchronized (body did not re-suspend)"
  end;
  p.stale <- false

(* Run process [i] for one step (up to and including its next shared-memory
   access, or to completion).  Always returns true; stepping a finished
   process (check [finished] first) or an out-of-range pid raises
   [Invalid_argument] -- silently ignoring either hid scheduling bugs. *)
let step_proc t i =
  check_pid t i "step_proc";
  let p = t.procs.(i) in
  (* Rollback is lazy: it restores fields and marks procs stale but only
     rebuilds a continuation when the proc is actually stepped again --
     procs that are next crashed, or never touched before the enclosing
     rollback, never pay for a rebuild. *)
  if p.stale then rebuild p;
  match p.resume with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Sim.step_proc: process %d has finished (crash it to restart it, or \
            consult [finished] before stepping)"
           i)
  | Some r ->
      (* One journal entry per step covers every plain field the step
         (and the continuation machinery it triggers) may change.  The
         continuation itself cannot be restored -- popping this entry
         marks the proc [stale] and [rollback] rebuilds it by feeding
         the restored [vlen] prefix of the value log. *)
      if Undo.h_recording p.uh then begin
        let started = p.started
        and sc = p.step_count
        and ts = t.total_steps
        and evs = t.events
        and lab = p.pending_label
        and fp = p.pending_fp
        and tr = p.trace
        and vl = p.vlen
        and fin = p.fin in
        Undo.h_log p.uh (fun () ->
            p.started <- started;
            p.step_count <- sc;
            t.total_steps <- ts;
            t.events <- evs;
            p.pending_label <- lab;
            p.pending_fp <- fp;
            p.trace <- tr;
            p.vlen <- vl;
            p.fin <- fin;
            p.stale <- true)
      end;
      p.resume <- None;
      p.discard <- None;
      p.started <- true;
      p.step_count <- p.step_count + 1;
      t.total_steps <- t.total_steps + 1;
      t.events <- Stepped i :: t.events;
      (match t.cache with None -> r () | Some c -> Persist.in_step c i r);
      true

(* Crash process [i]: its local state (continuation) is lost, the shared
   heap is untouched, and the process will re-execute its code from the
   beginning at its next step.  Crashing a finished process restarts it
   too, which models a process recovering and running its algorithm again
   after having already produced an output -- [Drivers.crash_and_rerun]
   and the simultaneous-crash model depend on this, so unlike
   [step_proc] a finished pid here is legal, not an error.  Under a
   non-eager write-back cache, the crash first applies the cache's loss
   semantics to the lines process [i] owns. *)
let crash t i =
  check_pid t i "crash";
  let p = t.procs.(i) in
  (* [arm] resets the run-local fields and the value log, and the
     re-armed run overwrites vlog slots from index 0 -- so a crash entry
     must snapshot the pre-crash vlog contents, not just its length.
     Popped after the re-armed run's own step entries (LIFO), it puts
     the pre-crash run back for re-feeding. *)
  if Undo.h_recording p.uh then begin
    let cc = p.crash_count
    and evs = t.events
    and started = p.started
    and lab = p.pending_label
    and fp = p.pending_fp
    and tr = p.trace
    and vl = p.vlen
    and vlog_saved = Array.sub p.vlog 0 p.vlen
    and fin = p.fin in
    Undo.h_log p.uh (fun () ->
        p.crash_count <- cc;
        t.events <- evs;
        p.started <- started;
        p.pending_label <- lab;
        p.pending_fp <- fp;
        p.trace <- tr;
        Array.blit vlog_saved 0 p.vlog 0 vl;
        p.vlen <- vl;
        p.fin <- fin;
        p.stale <- true)
  end;
  (match p.discard with Some d -> d () | None -> ());
  (match t.cache with
  | None -> ()
  | Some c -> Persist.on_crash c ~pid:i ~crashes:p.crash_count);
  p.crash_count <- p.crash_count + 1;
  t.events <- Crash_event i :: t.events;
  arm p

(* Crash every process at once: the simultaneous-crash model of Section 2. *)
let crash_all t =
  Array.iter (fun p -> crash t p.id) t.procs

(* Persist barriers.  Each is a labelled shared-memory step (or
   [flush_cost] of them, so a policy sweep can price barriers), and each
   takes the *same number of steps whatever the ambient policy* --
   annotated algorithms keep an identical schedule-tree shape under
   eager, lossy and torn, which is what makes cross-policy comparisons
   of explorer statistics meaningful.  Under eager (no cache, or lines
   absent) the barrier steps are semantic no-ops. *)

let barrier_steps = function
  | Some l -> Persist.flush_cost (Persist.cache_of l)
  | None -> ( match Persist.current () with Some c -> Persist.flush_cost c | None -> 1)

(* Write one location's cache line back to durable memory (CLWB).  [fp]
   is the owning container's flush footprint (flushes of distinct
   objects commute; an un-attributed flush conflicts with everything). *)
let flush ?fp line =
  let k = barrier_steps line in
  for i = 1 to k do
    step ~label:"flush" ?fp (fun () -> if i = k then Option.iter Persist.flush_line line)
  done

(* Write back every line the calling process owns (SFENCE + implicit
   write-backs: after this, none of the caller's earlier writes can be
   lost to its crash). *)
let fence () =
  let k = barrier_steps None in
  for i = 1 to k do
    step ~label:"fence" (fun () -> if i = k then Persist.fence_here ())
  done

(* Release every pending continuation without re-arming the processes.
   Dropping a captured effect continuation without discontinuing it leaks
   its fiber stack (fiber stacks live outside the OCaml heap), so code
   that builds and abandons many systems -- the exhaustive explorer in
   particular -- must call this before dropping a system. *)
let abandon t =
  if not t.dead then begin
    Array.iter
      (fun p ->
        (match p.discard with Some d -> d () | None -> ());
        p.discard <- None;
        p.resume <- None)
      t.procs;
    t.dead <- true
  end

(* --- checkpoint/restore (the undo engine) --- *)

type mark = int

let mark t =
  if t.dead then invalid_arg "Sim.mark: system has been abandoned";
  Undo.mark ()

(* Popping the journal restores every plain field and marks the procs
   whose entries were popped [stale]; their continuations are rebuilt
   lazily ([rebuild], from [step_proc]) because most rolled-back procs
   are next crashed, rolled back further, or never touched again --
   eager rebuilding here would pay a fiber discard+create per proc per
   rollback for work that is usually thrown away. *)
let rollback t m =
  if t.dead then invalid_arg "Sim.rollback: system has been abandoned";
  Undo.rollback_to m

(* Canonical fingerprint of the global state: per-process control state
   plus the non-volatile heap snapshot.

   Per process it records the cumulative step and crash counts, whether
   the current run has finished, and for unfinished runs the label it is
   poised on together with the volatile observation trace.  The trace
   pins the process's whole local state: a deterministic body re-executed
   from its last (re)start against the same sequence of step results
   reaches the same continuation.  The cumulative counts make the state
   graph graded -- every schedule choice increments exactly one of them,
   so the depth of a state is a function of its fingerprint and the
   deduplicating explorer's statistics are schedule-order independent.

   Equal fingerprints therefore imply equal futures: same pending
   continuations, same shared heap, same remaining crash budget
   (crashes used = sum of the per-process crash counts).

   [graded = false] drops the cumulative per-process counts and records
   only the total number of crashes used: the remaining crash budget is
   all a state's futures depend on, not how the spent crashes were
   distributed or how many steps each process wasted before crashing.
   Many graded states collapse (everything about a crashed run's
   discarded prefix disappears), which is what the partial-order-reduced
   explorer exploits; the price is that the state graph is no longer
   graded by depth, so ungraded fingerprints are only used by the
   sequential reduced modes.  The format is prefixed so graded and
   ungraded fingerprints can never collide.

   [perm] relabels processes ([perm.(old) = new]): process sections are
   emitted in relabeled order and the heap snapshot relabels every
   pid-bearing digest.  The symmetry-canonicalizing explorer takes the
   minimum over a group of relabelings; [None] is the identity and is
   byte-identical to the historical format. *)
let arena_of t =
  match t.heap with
  | Some a -> a
  | None -> invalid_arg "Sim.fingerprint: system was not created under an active Heap arena"

(* One process's section, starting with its '|' separator.  The bytes
   depend only on the process -- a relabeling changes the order sections
   are emitted in, never their contents -- which is what lets the
   canonical loop serialize each section once and reuse the string
   across the whole relabeling group. *)
let add_proc_section ~graded b p =
  Buffer.add_char b '|';
  if graded then begin
    Buffer.add_string b (string_of_int p.step_count);
    Buffer.add_char b ',';
    Buffer.add_string b (string_of_int p.crash_count)
  end;
  (* [proc_finished], not [p.resume]: a stale proc's [resume] belongs to
     the abandoned branch, but [fin]/[started]/[pending_label]/[trace]
     are journal-restored, so the section stays byte-identical to a
     rebuilt (or replayed) proc's. *)
  if proc_finished p then Buffer.add_char b 'F'
  else begin
    Buffer.add_char b (if p.started then 'R' else 'I');
      (match p.pending_label with
      | None -> ()
      | Some l ->
          Buffer.add_char b '#';
          Buffer.add_string b l);
      List.iter
        (fun d ->
          Buffer.add_char b '.';
          Buffer.add_string b (string_of_int (String.length d));
          Buffer.add_char b ':';
          Buffer.add_string b d)
        p.trace
  end

let add_ungraded_prefix b t =
  Buffer.add_char b 'U';
  Buffer.add_string b
    (string_of_int (Array.fold_left (fun acc p -> acc + p.crash_count) 0 t.procs))

let fingerprint_into ?(graded = true) ?perm b t =
  let arena = arena_of t in
  let n = Array.length t.procs in
  (* [inv.(new_pid) = old_pid]: section [j] of the relabeled fingerprint
     describes the process relabeled to [j]. *)
  let proc_at =
    match perm with
    | None -> fun j -> t.procs.(j)
    | Some p ->
        let inv = Array.make n 0 in
        Array.iteri (fun old_pid new_pid -> inv.(new_pid) <- old_pid) p;
        fun j -> t.procs.(inv.(j))
  in
  if not graded then add_ungraded_prefix b t;
  for j = 0 to n - 1 do
    add_proc_section ~graded b (proc_at j)
  done;
  Buffer.add_char b '@';
  Heap.snapshot_into ?perm b arena

let fingerprint t =
  let b = Buffer.create 256 in
  fingerprint_into b t;
  Buffer.contents b

(* All process relabelings that permute pids within each class of
   [classes] and fix every other pid, as [perm] arrays for
   [fingerprint_into]; the identity is always first.  Classes declare
   which processes are interchangeable (same code, same input — the
   team members of Figure 2, the leaves of a tournament); soundness of
   quotienting by them is the caller's obligation. *)
let relabelings ~classes n =
  List.iter
    (fun cls ->
      List.iter
        (fun p ->
          if p < 0 || p >= n then
            invalid_arg
              (Printf.sprintf "Sim.relabelings: pid %d out of range [0,%d)" p n))
        cls)
    classes;
  let all = List.concat classes in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Sim.relabelings: symmetry classes overlap";
  (* Permutations of [xs] with [xs] itself first (elements are picked in
     list order, so the head of the result is the unpermuted list). *)
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) xs)))
          xs
  in
  let id () = Array.init n Fun.id in
  List.fold_left
    (fun perms cls ->
      let arrangements = permutations cls in
      List.concat_map
        (fun perm ->
          List.map
            (fun arrangement ->
              let p = Array.copy perm in
              (* class member at position k is relabeled to the class
                 member originally at position k *)
              List.iter2 (fun old_pid new_pid -> p.(old_pid) <- new_pid) arrangement cls;
              p)
            arrangements)
        perms)
    [ id () ] classes

(* Digest form, batched: the deduplicating explorer hashes every state it
   expands, so the fingerprint bytes are scratch -- only the 16-byte MD5
   survives (as the visited-set key and checkpoint entry).  A domain-local
   buffer is reused across all the states a domain expands, eliminating
   the per-node Buffer + intermediate string of [Digest.string
   (fingerprint t)].  Same digest as that expression, byte for byte, so
   checkpoint files and visited-set contents are unchanged. *)
let scratch : Buffer.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Buffer.create 1024)

let fingerprint_digest ?graded ?perm t =
  let b = Domain.DLS.get scratch in
  Buffer.clear b;
  fingerprint_into ?graded ?perm b t;
  Digest.bytes (Buffer.to_bytes b)

(* Canonical symmetry-quotiented digest: the lexicographic minimum over
   the given relabelings (identity included by {!relabelings}).  Two
   states that are relabelings of one another under the group share the
   canonical digest.  Also reports whether the minimum beat the identity
   digest — the explorer's [symmetry_hits] counter.

   The relabeling loop reuses the one domain-local scratch buffer and,
   since section bytes are perm-independent (only their order changes),
   serializes each process section once and re-emits the strings per
   perm; pid-free heap slots likewise serve their cached bytes.  The
   bytes assembled per perm are identical to [fingerprint_digest ~perm],
   so canonical digests (and thus visited sets, stats, checkpoints) are
   unchanged.  Saved serialization work is reported to telemetry as
   [canon_saved_bytes]. *)
let fingerprint_digest_canonical ?(graded = true) ~perms t =
  match perms with
  | [] -> invalid_arg "Sim.fingerprint_digest_canonical: empty relabeling group"
  | p0 :: rest ->
      let arena = arena_of t in
      let n = Array.length t.procs in
      let sections =
        Array.map
          (fun p ->
            let sb = Buffer.create 64 in
            add_proc_section ~graded sb p;
            Buffer.contents sb)
          t.procs
      in
      let prefix =
        if graded then ""
        else begin
          let pb = Buffer.create 8 in
          add_ungraded_prefix pb t;
          Buffer.contents pb
        end
      in
      let b = Domain.DLS.get scratch in
      let inv = Array.make n 0 in
      let digest_with perm =
        Buffer.clear b;
        Buffer.add_string b prefix;
        Array.iteri (fun old_pid new_pid -> inv.(new_pid) <- old_pid) perm;
        for j = 0 to n - 1 do
          Buffer.add_string b sections.(inv.(j))
        done;
        Buffer.add_char b '@';
        Heap.snapshot_into ~perm b arena;
        Digest.bytes (Buffer.to_bytes b)
      in
      let d0 = digest_with p0 in
      let min_d =
        List.fold_left
          (fun acc p ->
            let d = digest_with p in
            if String.compare d acc < 0 then d else acc)
          d0 rest
      in
      (match rest with
      | [] -> ()
      | _ ->
          let section_bytes =
            Array.fold_left (fun acc s -> acc + String.length s) (String.length prefix) sections
          in
          Rcons_par.Pool.Telemetry.note_canon_saved_bytes
            (List.length rest * section_bytes));
      (min_d, String.compare min_d d0 < 0)

