(* A shared object of a given sequential type, living in the simulated
   non-volatile memory.  [apply] performs one update operation atomically
   (one step); [read] is the READ operation of readable types, returning
   the entire state without changing it. *)

type ('s, 'o, 'r) t = { mutable state : 's; apply_spec : 's -> 'o -> 's * 'r; obj_name : string }

let register t digest = Heap.register (fun () -> digest t.state)

let make (type s o r)
    (module T : Rcons_spec.Object_type.S with type state = s and type op = o and type resp = r)
    init =
  let t = { state = init; apply_spec = T.apply; obj_name = T.name } in
  register t T.digest_state;
  t

let of_apply ?(name = "object") ~apply init =
  let t = { state = init; apply_spec = apply; obj_name = name } in
  register t Heap.digest;
  t

let apply t op =
  Sim.step ~label:t.obj_name (fun () ->
      let state, resp = t.apply_spec t.state op in
      t.state <- state;
      resp)

let read t = Sim.step ~label:(t.obj_name ^ ".read") (fun () -> t.state)

(* Out-of-simulation inspection for checkers and tests. *)
let peek t = t.state
