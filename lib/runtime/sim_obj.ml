(* A shared object of a given sequential type, living in the simulated
   non-volatile memory.  [apply] performs one update operation atomically
   (one step); [read] is the READ operation of readable types, returning
   the entire state without changing it.

   Persistency: like [Cell], the object acquires a cache line when a
   non-eager [Persist] cache is ambient at creation -- [state] is the
   volatile copy, [persisted] the durable one. *)

open Rcons_spec

type ('s, 'o, 'r) t = {
  mutable state : 's;
  mutable persisted : 's;
  mutable line : Persist.line option;
  mutable hslot : Heap.slot option; (* fingerprint-cache slot, if registered *)
  apply_spec : 's -> 'o -> 's * 'r;
  equal_state : 's -> 's -> bool;
  obj_name : string;
  oid : int; (* per-execution object id, for step footprints *)
  op_kind : 'o -> Footprint.kind; (* footprint classification of updates *)
}

(* Undo journaling mirrors [Cell]: state mutations push restore closures
   while a journal is recording, every restore re-dirties the
   fingerprint-cache slot, and the oid allocation rewinds with the
   journal so re-executed branches hand out identical ids. *)
let alloc ~equal_state ~apply ~name ?(op_kind = fun _ -> Footprint.Update) init =
  let t =
    {
      state = init;
      persisted = init;
      line = None;
      hslot = None;
      apply_spec = apply;
      equal_state;
      obj_name = name;
      oid = Footprint.fresh_oid ();
      op_kind;
    }
  in
  if Undo.recording () then begin
    let oid = t.oid in
    Undo.log (fun () -> Footprint.set_next_oid oid)
  end;
  t.line <-
    Persist.attach
      ~touch:(fun () -> Heap.touch t.hslot)
      ~persist:(fun () ->
        if Undo.recording () then begin
          let old = t.persisted in
          Undo.log (fun () ->
              t.persisted <- old;
              Heap.touch t.hslot)
        end;
        t.persisted <- t.state;
        Heap.touch t.hslot)
      ~revert:(fun () ->
        if Undo.recording () then begin
          let old = t.state in
          Undo.log (fun () ->
              t.state <- old;
              Heap.touch t.hslot)
        end;
        t.state <- t.persisted;
        Heap.touch t.hslot)
      ();
  t

let register t digest =
  match t.line with
  | None -> t.hslot <- Heap.register_c (fun () -> digest t.state)
  | Some l ->
      (* The line owner is a pid: relabel it when the snapshot carries a
         process permutation (symmetry canonicalization). *)
      t.hslot <-
        Heap.register_sym_c (fun perm ->
            let d = digest t.state and dp = digest t.persisted in
            Printf.sprintf "%d:%s%d:%s%s" (String.length d) d (String.length dp) dp
              (match (Persist.owner l, perm) with
              | None, _ -> "c"
              | Some p, None -> "p" ^ string_of_int p
              | Some p, Some perm -> "p" ^ string_of_int perm.(p)))

let make (type s o r)
    (module T : Rcons_spec.Object_type.S with type state = s and type op = o and type resp = r)
    init =
  let t =
    alloc
      ~equal_state:(fun a b -> T.compare_state a b = 0)
      ~apply:T.apply ~name:T.name ~op_kind:T.op_kind init
  in
  register t T.digest_state;
  t

let of_apply ?(name = "object") ~apply init =
  let t = alloc ~equal_state:( = ) ~apply ~name init in
  register t Heap.digest;
  t

(* Silent stores do not dirty the line: an operation that leaves the
   state unchanged (e.g. setting an already-set sticky bit) has nothing
   new to persist, so it must not take ownership of the line -- the
   pending un-persisted delta still belongs to the process that actually
   changed the state, and only THAT process's crash may revert it.
   Without this, a no-op apply by q would re-own p's un-flushed change
   and q's crash would silently destroy p's write. *)
let footprint t kind = Footprint.Obj { oid = t.oid; kind }

let set_state t state =
  if Undo.recording () then begin
    let old = t.state in
    Undo.log (fun () ->
        t.state <- old;
        Heap.touch t.hslot)
  end;
  t.state <- state;
  Heap.touch t.hslot

let apply t op =
  Sim.step ~label:t.obj_name ~fp:(footprint t (t.op_kind op)) (fun () ->
      let state, resp = t.apply_spec t.state op in
      match t.line with
      | None ->
          (* eager: no comparison, identical to the seed behaviour *)
          set_state t state;
          resp
      | Some l ->
          let changed = not (t.equal_state state t.state) in
          set_state t state;
          if changed then Persist.dirty l;
          resp)

let read t =
  Sim.step ~label:(t.obj_name ^ ".read") ~fp:(footprint t Footprint.Read) (fun () -> t.state)

let flush t = Sim.flush ~fp:(footprint t Footprint.Flush) t.line

(* Link-and-persist read: the returned state is durable (see
   [Cell.read_persist] for why the re-read must also find the line
   clean, not just value-stable). *)
let rec read_persist t =
  let q = read t in
  flush t;
  let q', clean =
    Sim.step ~label:(t.obj_name ^ ".read") ~fp:(footprint t Footprint.Sync) (fun () ->
        (t.state, match t.line with None -> true | Some l -> Persist.owner l = None))
  in
  if clean && t.equal_state q q' then q' else read_persist t

(* Out-of-simulation inspection for checkers and tests. *)
let peek t = t.state
let peek_persisted t = t.persisted
