(** Minimal JSON values, printer and parser.

    The repository has no external JSON dependency, and its artifacts --
    counterexample witnesses ([_counterexamples/*.json]), explorer
    checkpoints, bench output -- need only plain JSON: objects, arrays,
    strings, ints, floats, bools and null.  This module is that, nothing
    more.  Printing is deterministic (object fields keep their
    construction order), so artifacts are diffable and byte-stable across
    runs; [parse] accepts anything {!to_string} emits plus ordinary
    whitespace, and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with [indent] spaces of nesting (default 2); a [~indent:0]
    rendering is single-line. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    offending offset.  Numbers without [.]/[e] parse as {!Int}. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

(** {2 Accessors} -- all raise [Invalid_argument] with the field name on
    shape mismatches, so artifact loading fails with a useful message. *)

val member : string -> t -> t option
val field : string -> t -> t
val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
