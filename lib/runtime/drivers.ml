(* Schedule drivers for the simulator.  The deterministic round-robin
   driver lives here; the randomized and simultaneous-crash drivers are
   thin wrappers over the unified [Adversary] engine, kept for their
   historical signatures.  [Adversary.Uniform] and
   [Adversary.Simultaneous] replicate the RNG consumption of the
   original hand-rolled loops exactly, so callers observe unchanged
   streams (and EXPERIMENTS.md tables are unchanged). *)

exception Stuck = Adversary.Stuck

(* Step every unfinished process in turn until all finish. *)
let round_robin ?(max_steps = 1_000_000) t =
  let budget = ref max_steps in
  while not (Sim.all_finished t) do
    for i = 0 to Sim.num_procs t - 1 do
      if not (Sim.finished t i) then begin
        if !budget <= 0 then raise (Stuck "round_robin: step budget exhausted");
        decr budget;
        ignore (Sim.step_proc t i)
      end
    done
  done

let random ?max_steps ?(crash_prob = 0.0) ?(max_crashes = 64) ~rng t =
  let a = Adversary.of_rng ~rng (Adversary.Uniform { crash_prob; max_crashes }) in
  (Adversary.run ?max_steps ~record:false a t).crashes

(* After a completed run, crash a random subset of processes and drive the
   system back to completion: processes that produce an output, crash and
   run their algorithm again must output the same value (agreement covers
   repeated outputs of one process). *)
let crash_and_rerun ?max_steps ~rng t =
  for i = 0 to Sim.num_procs t - 1 do
    if Random.State.bool rng then Sim.crash t i
  done;
  random ?max_steps ~crash_prob:0.0 ~rng t

let simultaneous ?max_steps ~crash_at t =
  let a = Adversary.create (Adversary.Simultaneous { crash_at }) in
  ignore (Adversary.run ?max_steps ~record:false a t)
