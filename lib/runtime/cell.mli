(** Shared read/write registers in the simulated non-volatile memory.
    Every {!read}/{!write} is one atomic step of the calling process.

    {!make} registers the cell's contents with the active {!Heap} arena
    (if any) so state fingerprints cover it; cell contents must therefore
    be plain data (digestable with {!Heap.digest}). *)

type 'a t

val make : 'a -> 'a t

val make_unregistered : 'a -> 'a t
(** A cell that does {e not} register with the active {!Heap} arena;
    for containers (e.g. {!Growable}) that register one canonical digest
    for all their entries instead. *)

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

val peek : 'a t -> 'a
(** Direct access for set-up/checking code outside the simulation. *)

val poke : 'a t -> 'a -> unit
