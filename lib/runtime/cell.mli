(** Shared read/write registers in the simulated non-volatile memory.
    Every {!read}/{!write} is one atomic step of the calling process.

    {!make} registers the cell's contents with the active {!Heap} arena
    (if any) so state fingerprints cover it; cell contents must therefore
    be plain data (digestable with {!Heap.digest}).

    When a non-eager {!Persist} cache is ambient at creation time the
    cell carries a cache line: writes land in the volatile copy (which
    all reads see -- coherence) and become durable only at a {!flush},
    {!Sim.fence}, or implicitly per the cache policy's crash rule. *)

type 'a t

val make : 'a -> 'a t

val make_unregistered : ?slot:Heap.slot -> 'a -> 'a t
(** A cell that does {e not} register with the active {!Heap} arena;
    for containers (e.g. {!Growable}) that register one canonical digest
    for all their entries instead.  [?slot] is the container's
    fingerprint-cache slot: entry mutations then invalidate the
    container's cached digest.  Still acquires a cache line. *)

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

val flush : 'a t -> unit
(** Persist barrier for this cell ({!Sim.flush} on its line): after it,
    the last written value cannot be lost to a crash.  Any process may
    flush any cell.  A no-op (but still a step) under eager. *)

val read_persist : ?equal:('a -> 'a -> bool) -> 'a t -> 'a
(** Read a value that is guaranteed durable: read, {!flush}, re-read,
    and retry until both reads agree (link-and-persist).  Exactly
    read + flush + read steps per attempt under every policy.  [equal]
    defaults to structural equality; pass [( == )] for values that
    cannot be structurally compared (e.g. closures). *)

val write_persist : ?equal:('a -> 'a -> bool) -> 'a t -> 'a -> unit
(** Write a value that is guaranteed durable on return: write, {!flush},
    then confirm atomically that the contents still compare [equal] to
    the written value {e and} the cache line is clean, re-writing and
    retrying otherwise.  The clean-line check is what makes this
    crash-robust: a structurally-equal helper write between the flush
    and the confirm re-dirties the line without failing a value
    comparison, and its crash could revert the cell.  Exactly
    write + flush + confirm steps per attempt under every policy.
    [equal] defaults to structural equality. *)

val line : 'a t -> Persist.line option
(** The cell's cache line, if it has one. *)

val footprint : 'a t -> Rcons_spec.Footprint.kind -> Rcons_spec.Footprint.t
(** The cell's step footprint with the given access kind, for code that
    performs compound atomic accesses through raw {!Sim.step} (e.g. the
    read-modify-write of [One_shot.decide] declares the cell with kind
    [Update]).  {!read}/{!write}/{!flush}/{!read_persist} already
    declare their own. *)

val peek : 'a t -> 'a
(** Direct access for set-up/checking code outside the simulation. *)

val peek_persisted : 'a t -> 'a
(** The durable copy (equals {!peek} when the line is clean or absent). *)

val poke : 'a t -> 'a -> unit
(** Out-of-simulation write: durable immediately.  From inside a step
    (a read-modify-write such as [One_shot.decide]) it dirties the
    line like any other write. *)
