(** Simulated asynchronous shared-memory system with individual process
    crashes and recoveries (the paper's independent-crash model).

    Each process is ordinary OCaml code that performs the {!Step} effect
    for every shared-memory access; the handler suspends the process at
    each access so a driver can interleave processes one access at a time
    (the model's "steps").  {!crash} discards the process's delimited
    continuation -- exactly the loss of volatile local memory, program
    counter included -- and re-arms the process to re-execute its code
    from the beginning.  Shared objects live in the ordinary OCaml heap,
    which plays the role of non-volatile memory: crashes never touch it.

    Process bodies must be deterministic (they are re-executed after
    crashes and by the {!Explore} replayer) and must not catch the
    internal {!Crashed} exception.  Code between two steps executes
    atomically with respect to crashes: a crash can only be observed at a
    step boundary, which is faithful because local state is lost anyway
    and shared state changes only at steps. *)

type _ Effect.t +=
  | Step : string option * Rcons_spec.Footprint.t option * (unit -> 'a) -> 'a Effect.t

exception Crashed
(** Used internally to unwind discarded continuations. *)

val step : ?label:string -> ?fp:Rcons_spec.Footprint.t -> (unit -> 'a) -> 'a
(** [step f] performs one atomic shared-memory access: the simulated
    process suspends, and [f] runs atomically when the driver schedules
    the process's next step.  [label] optionally names the object
    touched, for the critical-execution explorer; [fp] optionally
    declares the access's step footprint ({!Rcons_spec.Footprint.t}) for
    the partial-order-reducing explorer — an access without one is
    treated as touching everything. *)

type t

type event = Stepped of int | Crash_event of int

val create : n:int -> (int -> unit -> unit) -> t
(** [create ~n body_of]: a system of [n] processes; process [i] runs
    [body_of i] from the beginning at start and after every crash. *)

val num_procs : t -> int

val finished : t -> int -> bool
(** Has this process's current run completed?  (A later {!crash}
    restarts it.) *)

val all_finished : t -> bool

val started : t -> int -> bool
(** Has the process taken a step since its last (re)start?  Crashing a
    process that has not is a no-op in the model. *)

val pending_label : t -> int -> string option
(** The label of the access process [i] is suspended on, if any --
    the "poised to apply an operation on O" of Theorem 14's proof. *)

val pending_footprint : t -> int -> Rcons_spec.Footprint.t option
(** The footprint of the access process [i] is suspended on; [None] for
    unstarted processes (the first access of a run is unknown until the
    run executes), finished processes, and accesses that declared none.
    Callers must treat [None] as {!Rcons_spec.Footprint.Global}. *)

val crash_count : t -> int -> int
val step_count : t -> int -> int
val total_steps : t -> int

val events : t -> event list
(** All step/crash events, oldest first. *)

val step_proc : t -> int -> bool
(** Run process [i] for one step (up to and including its next
    shared-memory access, or to completion).  Always [true].

    @raise Invalid_argument on an out-of-range pid, a finished process
    (consult {!finished} first, or {!crash} it to restart it), or an
    {!abandon}ed system -- all three previously no-oped silently, hiding
    scheduling bugs. *)

val crash : t -> int -> unit
(** Crash process [i]: local state lost, shared heap untouched, code
    restarts from the beginning at its next step.  Crashing a finished
    process restarts it too (a recovered process may run its algorithm
    again; agreement must cover its repeated outputs) -- deliberately
    {e not} an error, unlike stepping one: {!Drivers.crash_and_rerun}
    and the simultaneous-crash model rely on it.  Under a non-eager
    {!Persist} cache, first applies the cache's loss semantics to the
    lines process [i] owns.

    @raise Invalid_argument on an out-of-range pid or an {!abandon}ed
    system. *)

val flush : ?fp:Rcons_spec.Footprint.t -> Persist.line option -> unit
(** Persist barrier: write one location's cache line back to durable
    memory.  Takes [flush_cost] labelled steps (default 1) regardless of
    the ambient policy -- under eager it is a semantic no-op -- so
    annotated algorithms keep an identical schedule-tree shape across
    policies.  [fp] attributes the barrier steps to the flushed
    container for the partial-order reduction (flushes of distinct
    objects commute).  Exposed through [Cell.flush] / [Growable.flush] /
    [Sim_obj.flush]; only process bodies may call it. *)

val fence : unit -> unit
(** Persist barrier: write back {e every} line the calling process owns.
    After a fence, none of the caller's earlier writes can be lost to
    its crash.  Same step-count contract as {!flush}. *)

val crash_all : t -> unit
(** The simultaneous-crash model of Section 2. *)

val abandon : t -> unit
(** Release every pending continuation without re-arming.  Dropping a
    captured effect continuation leaks its fiber stack, so code that
    builds and discards many systems (the explorer) must call this
    before dropping a system.  Idempotent; stepping or crashing an
    abandoned system raises [Invalid_argument]. *)

(** {2 Checkpoint/restore (the undo engine)}

    While an {!Undo} journal is installed on the current domain, every
    mutation of simulated state journals a restore entry, so the
    explorer can return to any earlier point of the current schedule in
    O(mutations since that point) instead of replaying the prefix from
    the root.  One-shot effect continuations cannot be snapshotted;
    {!rollback} rebuilds each affected process by re-running its body
    and feeding back the values its completed steps returned (recorded
    while the journal is installed), skipping the step thunks — the
    heap effects were already rolled back.  The rebuilt process is
    poised on exactly the step it was poised on at the mark, and step
    results keep their physical identity. *)

type mark
(** A point in the current schedule, valid while the journal that
    produced it is installed and not yet rolled back past it. *)

val mark : t -> mark
(** Take a checkpoint of the system's current state.  Cheap: records
    the journal extent only. *)

val rollback : t -> mark -> unit
(** Restore the system (shared heap, cache lines, process control
    state, allocator counters, event log) to the state at [mark].
    Call it only between steps, on the domain that took the mark, with
    the same journal still installed.  Marks taken after [mark] are
    invalidated.  Without an installed journal this is a no-op.
    @raise Invalid_argument on an {!abandon}ed system, a mark beyond
    the journal tip, or if a process body turns out not to be
    deterministic (the rebuild desynchronizes). *)

val fingerprint : t -> string
(** Canonical fingerprint of the global state, for the deduplicating
    explorer: the non-volatile heap snapshot of the {!Heap} arena the
    system was created under, plus each process's control state --
    cumulative step/crash counts, finished flag, pending label, and the
    {e volatile observation trace} (digests of the values its steps
    returned since its last (re)start, which pin a deterministic body's
    continuation).  Equal fingerprints imply equal futures, provided all
    shared state lives in registered containers ({!Cell}, {!Growable},
    {!Sim_obj}, the output logs) and step results are plain data.

    Stable under replay: re-executing the same schedule against a fresh
    system from the same deterministic builder yields the same
    fingerprint.

    @raise Invalid_argument if the system was created with no active
    {!Heap} arena (fingerprinting off). *)

val fingerprint_digest : ?graded:bool -> ?perm:int array -> t -> string
(** [Digest.string (fingerprint t)], computed into a domain-local
    scratch buffer reused across calls — the batched form the parallel
    explorer hashes every expanded state with.  With the defaults
    ([graded = true], no [perm]) it is byte-identical to the unbatched
    expression, so visited-set keys and checkpoint entries are
    unchanged.

    [graded = false] drops the cumulative per-process step/crash counts
    and records only the {e total} crashes used: remaining crash budget
    is all a state's futures depend on, so many graded states collapse
    (the discarded prefix of a crashed run disappears entirely).  The
    resulting state graph is no longer graded by depth; only the
    sequential reduced explorer modes use it.  [perm] relabels processes
    ([perm.(old) = new]) in both the control sections and the heap
    snapshot — see {!relabelings}. *)

val relabelings : classes:int list list -> int -> int array list
(** [relabelings ~classes n]: every relabeling of [n] processes that
    permutes pids within each class and fixes all others, identity
    first.  A class lists processes that are interchangeable — same
    code, same input (Figure 2 team members, tournament leaves); the
    {e caller} is responsible for that symmetry actually holding.

    @raise Invalid_argument on out-of-range pids or overlapping
    classes. *)

val fingerprint_digest_canonical :
  ?graded:bool -> perms:int array list -> t -> string * bool
(** The lexicographically least {!fingerprint_digest} over [perms] (a
    {!relabelings} group, identity first), plus whether the minimum beat
    the identity digest (the explorer's [symmetry_hits] signal).  States
    that are relabelings of one another share the canonical digest, so
    using it as the visited-set key quotients the state graph by the
    symmetry group — while every schedule the explorer actually walks
    remains a concrete, directly replayable one. *)
