(** Delta-debugging minimization of violating schedules.

    A violating schedule found by an adversary sweep or a deep
    exploration can be hundreds of choices long, most of them
    irrelevant.  {!minimize} applies Zeller-Hildebrandt ddmin to the
    schedule, using replay-from-scratch as the oracle: a candidate
    sub-schedule is kept only if replaying it against a fresh system
    (built by the same deterministic [mk] used to find the violation)
    still trips the invariant checker.  The result is {e 1-minimal}: no
    single choice can be removed without losing the violation -- a
    human-readable witness.

    Soundness is by construction: every accepted candidate was
    re-checked to violate, so the shrunk schedule always reproduces a
    violation (not necessarily with the original message -- a shorter
    schedule may trip a logically earlier check).  Termination is by
    measure: every accepted step strictly shrinks the schedule. *)

val check :
  mk:(unit -> Sim.t * (unit -> unit)) -> Schedule.choice list -> (string * int) option
(** [check ~mk sched] replays [sched] against a fresh system, running
    the invariant checker after every choice.  [Some (msg, used)] means
    the checker raised [msg] after the first [used] choices (so the tail
    beyond [used] is dead weight); [None] means the full replay passed.
    Never raises {!Explore.Violation_found}; abandons the system either
    way. *)

val minimize :
  ?max_checks:int ->
  mk:(unit -> Sim.t * (unit -> unit)) ->
  Schedule.choice list ->
  (Schedule.choice list * string) option
(** [minimize ~mk sched] ddmin-minimizes a violating schedule, returning
    the 1-minimal schedule and the violation message it reproduces;
    [None] if [sched] does not violate in the first place (nothing to
    shrink).  [max_checks] (default 100_000) bounds the number of oracle
    replays; if it runs out, the best schedule found so far is returned
    (still violating, possibly not 1-minimal). *)
