(* Registry of the simulated non-volatile heap, for state fingerprinting.

   Shared objects (Cell, Growable, Sim_obj, the algorithm-level output
   logs) live in ordinary OCaml values closed over by process bodies, so
   the simulator cannot enumerate them by itself.  When an arena is
   active on the current domain, every object constructor registers a
   digest thunk for its non-volatile state; [snapshot] then concatenates
   the digests in registration order, which is deterministic because
   system builders are deterministic.  With no active arena (the default,
   and always the case outside [Explore ~dedup:true]) registration is a
   no-op, so ordinary simulations pay nothing.

   The arena is domain-local: each parallel explorer walker builds and
   runs one system at a time on its own domain, and lazily created
   objects (Growable entries, the consensus instances of Figure 4) must
   keep registering into the arena of the system currently executing.

   Incremental fingerprinting: the runtime's own containers register
   through [register_c]/[register_sym_c], which return a cache slot.
   The container marks the slot dirty ([touch]) on every mutation of the
   digested state; [snapshot_into] recomputes only dirty slots and
   serves the rest from cache, so the per-state hashing cost on the
   explorer's dedup path is O(mutations since the last snapshot), not
   O(arena).  The emitted bytes are identical to recomputing everything,
   so fingerprints, visited sets and checkpoints are unaffected.  The
   plain [register]/[register_sym] (used by external instrumentation,
   e.g. bench harnesses digesting a History) keep their
   always-recompute semantics — no touch discipline is demanded of
   arbitrary thunks. *)

(* Digest thunks take an optional process relabeling [perm]
   ([perm.(old_pid) = new_pid], None = identity): the explorer's
   process-symmetry canonicalization snapshots the heap under candidate
   relabelings, and the handful of containers whose digests mention pids
   (cache-line owners, the per-process output logs) must relabel them.
   Pid-free digests ignore the argument ([register] wraps them), so a
   [None] snapshot is byte-identical to the pre-symmetry format. *)
type slot = {
  thunk : int array option -> string;
  sym : bool; (* digest mentions pids: perm snapshots must recompute *)
  cacheable : bool; (* mutations promise to [touch]; cache is sound *)
  mutable cached : string;
  mutable dirty : bool;
}

type t = {
  mutable slots : slot list; (* reverse registration order *)
}

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create () = { slots = [] }
let activate a = Domain.DLS.set key (Some a)
let deactivate () = Domain.DLS.set key None
let current () = Domain.DLS.get key
let active () = Domain.DLS.get key <> None

(* Registrations during an undo-engine walk (lazily created objects:
   Growable entries trigger container re-digests, Figure 4 creates
   consensus instances on demand) must unwind with the rollback, or a
   rolled-back branch would leave phantom digests in the arena. *)
let add a s =
  if Undo.recording () then begin
    let old = a.slots in
    Undo.log (fun () -> a.slots <- old)
  end;
  a.slots <- s :: a.slots

let register_slot ~sym ~cacheable f =
  match Domain.DLS.get key with
  | None -> None
  | Some a ->
      let s = { thunk = f; sym; cacheable; cached = ""; dirty = true } in
      add a s;
      Some s

let register_sym f = ignore (register_slot ~sym:true ~cacheable:false f)
let register f = register_sym (fun _ -> f ())
let register_sym_c f = register_slot ~sym:true ~cacheable:true f
let register_c f = register_slot ~sym:false ~cacheable:true (fun _ -> f ())
let touch = function None -> () | Some s -> s.dirty <- true

(* Canonical digest of a plain-data value: with sharing expanded
   ([No_sharing]) the marshalled bytes coincide with structural equality;
   [Closures] keeps it total on values capturing functions (code pointers
   are stable within one binary, which is all one exploration spans). *)
let digest v = Marshal.to_string v [ Marshal.No_sharing; Marshal.Closures ]

(* Length-prefix each digest so object boundaries are unambiguous.  The
   [_into] form appends to a caller-owned buffer so the explorer's batch
   fingerprinting can reuse one scratch buffer across a whole chunk of
   states instead of allocating a fresh buffer (and an intermediate
   string) per expanded node.

   Cache policy per slot: a cacheable slot is recomputed only while
   dirty; under a [perm] relabeling, pid-bearing ([sym]) slots are
   always recomputed (their bytes depend on the perm), while pid-free
   cacheable slots still serve the cache (their bytes cannot).  A
   refresh always digests under [None], which for a pid-free thunk is
   the same value.  Rehash counters batch into one telemetry note per
   snapshot. *)
let snapshot_into ?perm b a =
  let full = ref 0 and saved = ref 0 in
  let refresh s =
    if s.dirty then begin
      s.cached <- s.thunk None;
      s.dirty <- false;
      incr full
    end
    else incr saved;
    s.cached
  in
  List.iter
    (fun s ->
      let d =
        if not s.cacheable then begin
          incr full;
          s.thunk perm
        end
        else
          match perm with
          | Some _ when s.sym ->
              incr full;
              s.thunk perm
          | _ -> refresh s
      in
      Buffer.add_string b (string_of_int (String.length d));
      Buffer.add_char b ':';
      Buffer.add_string b d)
    a.slots;
  Rcons_par.Pool.Telemetry.note_rehashes ~full:!full ~saved:!saved

let snapshot ?perm a =
  let b = Buffer.create 256 in
  snapshot_into ?perm b a;
  Buffer.contents b
