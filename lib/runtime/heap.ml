(* Registry of the simulated non-volatile heap, for state fingerprinting.

   Shared objects (Cell, Growable, Sim_obj, the algorithm-level output
   logs) live in ordinary OCaml values closed over by process bodies, so
   the simulator cannot enumerate them by itself.  When an arena is
   active on the current domain, every object constructor registers a
   digest thunk for its non-volatile state; [snapshot] then concatenates
   the digests in registration order, which is deterministic because
   system builders are deterministic.  With no active arena (the default,
   and always the case outside [Explore ~dedup:true]) registration is a
   no-op, so ordinary simulations pay nothing.

   The arena is domain-local: each parallel explorer walker builds and
   runs one system at a time on its own domain, and lazily created
   objects (Growable entries, the consensus instances of Figure 4) must
   keep registering into the arena of the system currently executing. *)

(* Digest thunks take an optional process relabeling [perm]
   ([perm.(old_pid) = new_pid], None = identity): the explorer's
   process-symmetry canonicalization snapshots the heap under candidate
   relabelings, and the handful of containers whose digests mention pids
   (cache-line owners, the per-process output logs) must relabel them.
   Pid-free digests ignore the argument ([register] wraps them), so a
   [None] snapshot is byte-identical to the pre-symmetry format. *)
type t = {
  mutable digests : (int array option -> string) list; (* reverse registration order *)
}

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create () = { digests = [] }
let activate a = Domain.DLS.set key (Some a)
let deactivate () = Domain.DLS.set key None
let current () = Domain.DLS.get key
let active () = Domain.DLS.get key <> None

let register_sym f =
  match Domain.DLS.get key with None -> () | Some a -> a.digests <- f :: a.digests

let register f = register_sym (fun _ -> f ())

(* Canonical digest of a plain-data value: with sharing expanded
   ([No_sharing]) the marshalled bytes coincide with structural equality;
   [Closures] keeps it total on values capturing functions (code pointers
   are stable within one binary, which is all one exploration spans). *)
let digest v = Marshal.to_string v [ Marshal.No_sharing; Marshal.Closures ]

(* Length-prefix each digest so object boundaries are unambiguous.  The
   [_into] form appends to a caller-owned buffer so the explorer's batch
   fingerprinting can reuse one scratch buffer across a whole chunk of
   states instead of allocating a fresh buffer (and an intermediate
   string) per expanded node. *)
let snapshot_into ?perm b a =
  List.iter
    (fun f ->
      let d = f perm in
      Buffer.add_string b (string_of_int (String.length d));
      Buffer.add_char b ':';
      Buffer.add_string b d)
    a.digests

let snapshot ?perm a =
  let b = Buffer.create 256 in
  snapshot_into ?perm b a;
  Buffer.contents b
