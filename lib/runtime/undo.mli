(** Domain-local undo journal: the foundation of the explorer's
    checkpoint/restore engine.

    While a journal is installed, every mutation of simulated state
    pushes a restore closure via {!log}; {!mark} captures the stack
    extent and {!rollback_to} pops back to it, running the closures
    newest-first.  Rolling back to a mark therefore restores the whole
    simulation — cell contents, cache-line state, process counters,
    container growth, digest registrations, allocator counters — to its
    state when the mark was taken, without replaying the schedule
    prefix.

    With no journal installed every hook degenerates to one branch, so
    code outside the undo engine (unit tests, checkers, the replay
    oracle behind [RCONS_NO_UNDO]/[--no-undo]) is unaffected.

    Counters (restores, entries pushed, peak footprint) accumulate
    journal-locally and flush to {!Rcons_par.Pool.Telemetry} on
    {!uninstall}. *)

val install : unit -> unit
(** Install a fresh journal on the calling domain.  Raises
    [Invalid_argument] if one is already installed (the explorer pairs
    install/uninstall with [Fun.protect]). *)

val uninstall : unit -> unit
(** Retire the domain's journal (if any): flush its counters to
    {!Rcons_par.Pool.Telemetry} and drop it.  Pending entries are
    discarded, not run. *)

val installed : unit -> bool

val recording : unit -> bool
(** True when mutations should journal themselves: a journal is
    installed, no rollback is in progress, and no recorded step values
    are being re-fed.  Call sites whose restore closure captures
    non-trivial state guard on this before allocating it ({!log}
    re-checks internally either way). *)

val log : (unit -> unit) -> unit
(** Push a restore closure.  No-op unless {!recording}. *)

val mark : unit -> int
(** The journal's current extent (0 with no journal). *)

val rollback_to : int -> unit
(** Pop entries newest-first down to a {!mark}, running each.  Restore
    closures run with recording disabled, so the mutations they re-apply
    do not journal themselves.  No-op with no journal installed; raises
    [Invalid_argument] if the mark lies beyond the current tip (a
    use-after-rollback bug in the caller). *)

val feeding : unit -> bool
(** True while {!Sim.rollback} is rebuilding a process continuation by
    re-feeding recorded step values.  Step bodies are skipped during the
    feed, but bookkeeping around them re-runs; non-idempotent
    instrumentation (history appends, recovery counters) must check this
    flag and skip itself. *)

val with_feeding : (unit -> 'a) -> 'a
(** Run with the {!feeding} flag set (exception-safe). *)

(** {2 Hot-path handles}

    [Domain.DLS.get] costs a few indirections; paths that consult the
    journal on every simulated step (the simulator's step/crash/rebuild
    machinery) amortize it by capturing the domain's journal slot once.
    The handle is the {e slot}, not the journal: it stays valid across
    install/uninstall cycles, and must only be used from the domain that
    created it (like everything else here). *)

type handle

val handle : unit -> handle
(** The calling domain's journal slot. *)

val h_installed : handle -> bool
val h_recording : handle -> bool

val h_log : handle -> (unit -> unit) -> unit
(** {!log} through a handle (same no-op semantics). *)
