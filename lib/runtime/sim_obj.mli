(** A shared object of a given sequential type in the simulated
    non-volatile memory.  {!apply} performs one update atomically (one
    step); {!read} is the READ of readable types, returning the entire
    state without changing it.

    Both constructors register the object's state with the active
    {!Heap} arena (if any): {!make} digests via the type's own
    [digest_state], {!of_apply} via the generic {!Heap.digest}. *)

type ('s, 'o, 'r) t

val make :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  's ->
  ('s, 'o, 'r) t

val of_apply : ?name:string -> apply:('s -> 'o -> 's * 'r) -> 's -> ('s, 'o, 'r) t
(** Ad-hoc object from a bare transition function.  Its operations are
    classified {!Rcons_spec.Footprint.Update} (conservative); {!make}
    instead classifies each operation with the type's [op_kind]. *)

val apply : ('s, 'o, 'r) t -> 'o -> 'r
val read : ('s, 'o, 'r) t -> 's

val footprint :
  ('s, 'o, 'r) t -> Rcons_spec.Footprint.kind -> Rcons_spec.Footprint.t
(** The object's step footprint with the given access kind, for
    compound atomic accesses performed through raw {!Sim.step}.  The
    object's own accessors already declare theirs ({!apply} via the
    type's [op_kind], {!read} as [Read], {!flush} as [Flush], the
    confirm step of {!read_persist} as [Sync]). *)

val flush : ('s, 'o, 'r) t -> unit
(** Persist barrier for this object's cache line (see {!Cell.flush}). *)

val read_persist : ('s, 'o, 'r) t -> 's
(** Link-and-persist read: read, {!flush}, re-read until stable; the
    returned state is durable.  Exactly read + flush + read steps per
    attempt under every policy.  States are compared with the type's
    [compare_state] ({!of_apply} objects use structural equality). *)

val peek : ('s, 'o, 'r) t -> 's
(** Out-of-simulation inspection. *)

val peek_persisted : ('s, 'o, 'r) t -> 's
(** The durable copy (equals {!peek} when clean or cache-less). *)
