(* ddmin over schedules; see the interface.

   The oracle is replay-from-scratch, so minimization is sound for any
   deterministic workload: we never "guess" that a sub-schedule
   violates, we re-run it.  Each oracle call costs one full system
   build plus one replay, which for the schedule lengths produced by
   the adversaries (tens to low hundreds of choices) is milliseconds. *)

let check ~mk sched =
  (* [mk] may activate a fresh Heap arena / Persist cache for its system
     (the Counterexample builders do); restore the ambient ones so
     repeated oracle calls do not leak state across builds. *)
  let saved_arena = Heap.current () in
  let saved_cache = Persist.current () in
  Fun.protect ~finally:(fun () ->
      (match saved_arena with Some a -> Heap.activate a | None -> Heap.deactivate ());
      Persist.restore saved_cache)
  @@ fun () ->
  let t, chk = mk () in
  let rec go used = function
    | [] ->
        Sim.abandon t;
        None
    | c :: rest -> (
        match Schedule.apply t c with
        | exception (Invalid_argument m | Failure m)
          when not
                 (String.starts_with ~prefix:"Sim." m
                 || String.starts_with ~prefix:"Schedule." m) ->
            (* A body that raises (e.g. after a lossy crash reverted an
               un-flushed write) is a violation at this choice, same as
               in [Explore]; harness errors (malformed pids etc., which
               name their [Sim.]/[Schedule.] entry point) still escape. *)
            Sim.abandon t;
            Some ("uncaught exception in process body: " ^ m, used + 1)
        | () -> (
            match chk () with
            | () -> go (used + 1) rest
            | exception Explore.Violation_found msg ->
                Sim.abandon t;
                Some (msg, used + 1)))
  in
  go 0 sched

(* [sched] split into [n] contiguous chunks of near-equal length. *)
let split n sched =
  let len = List.length sched in
  let base = len / n and extra = len mod n in
  let rec take k xs acc = if k = 0 then (List.rev acc, xs) else
    match xs with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go i xs acc =
    if i = n then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let chunk, rest = take sz xs [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 sched []

let minimize ?(max_checks = 100_000) ~mk sched =
  match check ~mk sched with
  | None -> None
  | Some (msg0, used0) ->
      let checks = ref 1 in
      let oracle s =
        if !checks >= max_checks then None
        else begin
          incr checks;
          check ~mk s
        end
      in
      (* Truncate to the choices the checker actually consumed. *)
      let cur = ref (List.filteri (fun i _ -> i < used0) sched) in
      let msg = ref msg0 in
      (* Classic ddmin: try dropping one chunk at a time; on success
         restart at the coarsest useful granularity, otherwise refine.
         Terminates because every accepted candidate is strictly
         shorter, and n only grows up to the current length. *)
      let n = ref 2 in
      let continue = ref (List.length !cur >= 2) in
      while !continue && !checks < max_checks do
        let chunks = Array.of_list (split !n !cur) in
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < Array.length chunks do
          let candidate =
            Array.to_list chunks
            |> List.filteri (fun j _ -> j <> !i)
            |> List.concat
          in
          (if candidate <> [] then
             match oracle candidate with
             | Some (m, used) ->
                 found := true;
                 cur := List.filteri (fun k _ -> k < used) candidate;
                 msg := m;
                 n := max (!n - 1) 2
             | None -> ());
          incr i
        done;
        if not !found then
          if !n >= List.length !cur then continue := false
          else n := min (2 * !n) (List.length !cur)
      done;
      Some (!cur, !msg)
