(* Unified seeded crash adversaries; see the interface.

   CAUTION: the [Uniform] loop replicates the historical
   [Drivers.random] RNG consumption exactly -- one [Random.State.float]
   draw per crash opportunity (only when the budget lasts and some
   process has started) and one [Random.State.int] draw per victim or
   step pick -- and [Simultaneous] replicates [Drivers.simultaneous]'s
   cursor walk.  Every EXPERIMENTS.md table regenerated under the
   default seeds depends on this: change the draw order and the tables
   change. *)

exception Stuck of string

type policy =
  | Uniform of { crash_prob : float; max_crashes : int }
  | Storm of { crash_prob : float; burst : int; max_crashes : int }
  | Targeted of { victims : int list; crash_prob : float; max_crashes : int }
  | Simultaneous of { crash_at : int list }
  | Quiescent of { period : int; active : int; crash_prob : float; max_crashes : int }

let pp_policy ppf = function
  | Uniform { crash_prob; max_crashes } ->
      Format.fprintf ppf "uniform(p=%g, <=%d crashes)" crash_prob max_crashes
  | Storm { crash_prob; burst; max_crashes } ->
      Format.fprintf ppf "storm(p=%g, burst=%d, <=%d crashes)" crash_prob burst max_crashes
  | Targeted { victims; crash_prob; max_crashes } ->
      Format.fprintf ppf "targeted({%s}, p=%g, <=%d crashes)"
        (String.concat "," (List.map string_of_int victims))
        crash_prob max_crashes
  | Simultaneous { crash_at } ->
      Format.fprintf ppf "simultaneous(at %s)"
        (String.concat "," (List.map string_of_int crash_at))
  | Quiescent { period; active; crash_prob; max_crashes } ->
      Format.fprintf ppf "quiescent(%d/%d, p=%g, <=%d crashes)" active period crash_prob
        max_crashes

let policy_name = function
  | Uniform _ -> "uniform"
  | Storm _ -> "storm"
  | Targeted _ -> "targeted"
  | Simultaneous _ -> "simultaneous"
  | Quiescent _ -> "quiescent"

(* The one authoritative name list: [policy_of_string] and every CLI
   error message derive from it, so adding a policy here is enough to
   make it parseable and listed. *)
let policy_names = [ "uniform"; "storm"; "targeted"; "simultaneous"; "quiescent" ]

let policy_of_string ?(crash_prob = 0.2) ?(max_crashes = 6) ?(burst = 2) ?victims ?crash_at
    ?(period = 12) ?(active = 4) name =
  match String.lowercase_ascii name with
  | "uniform" -> Ok (Uniform { crash_prob; max_crashes })
  | "storm" -> Ok (Storm { crash_prob; burst; max_crashes })
  | "targeted" ->
      (* With no explicit grudge list the adversary targets process 0:
         a deterministic default that still exercises recovery. *)
      Ok (Targeted { victims = Option.value victims ~default:[ 0 ]; crash_prob; max_crashes })
  | "simultaneous" ->
      Ok (Simultaneous { crash_at = Option.value crash_at ~default:[ 5; 17 ] })
  | "quiescent" -> Ok (Quiescent { period; active; crash_prob; max_crashes })
  | _ ->
      Error
        (Printf.sprintf "unknown adversary policy %S (valid: %s)" name
           (String.concat ", " policy_names))

let policy_params = function
  | Uniform { crash_prob; max_crashes } ->
      [ ("crash_prob", string_of_float crash_prob); ("max_crashes", string_of_int max_crashes) ]
  | Storm { crash_prob; burst; max_crashes } ->
      [
        ("crash_prob", string_of_float crash_prob);
        ("burst", string_of_int burst);
        ("max_crashes", string_of_int max_crashes);
      ]
  | Targeted { victims; crash_prob; max_crashes } ->
      [
        ("victims", String.concat "," (List.map string_of_int victims));
        ("crash_prob", string_of_float crash_prob);
        ("max_crashes", string_of_int max_crashes);
      ]
  | Simultaneous { crash_at } ->
      [ ("crash_at", String.concat "," (List.map string_of_int crash_at)) ]
  | Quiescent { period; active; crash_prob; max_crashes } ->
      [
        ("period", string_of_int period);
        ("active", string_of_int active);
        ("crash_prob", string_of_float crash_prob);
        ("max_crashes", string_of_int max_crashes);
      ]

type t = {
  pol : policy;
  rng : Random.State.t;
  seed_used : int option;
  mutable injected : int; (* crashes delivered over the adversary's lifetime *)
  mutable sim_remaining : int list option; (* [Simultaneous] thresholds left for [decide] *)
}

let create ?(seed = 42) pol =
  {
    pol;
    rng = Random.State.make [| seed |];
    seed_used = Some seed;
    injected = 0;
    sim_remaining = None;
  }

let of_rng ~rng pol = { pol; rng; seed_used = None; injected = 0; sim_remaining = None }
let policy a = a.pol
let seed a = a.seed_used
let crashes_injected a = a.injected

let crashes_requested a =
  match a.pol with
  | Uniform { max_crashes; _ }
  | Storm { max_crashes; _ }
  | Targeted { max_crashes; _ }
  | Quiescent { max_crashes; _ } ->
      max_crashes
  | Simultaneous { crash_at } -> List.length (List.sort_uniq compare crash_at)

let provenance ?fingerprint a =
  {
    Schedule.origin = "adversary:" ^ policy_name a.pol;
    seed = a.seed_used;
    params = policy_params a.pol;
    fingerprint;
  }

type outcome = { crashes : int; steps : int; schedule : Schedule.choice list }

let unfinished t =
  let n = Sim.num_procs t in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if Sim.finished t i then acc else i :: acc)
  in
  collect (n - 1) []

let run ?(max_steps = 1_000_000) ?(record = true) ?(on_crash = fun _ -> ()) a t =
  let rng = a.rng in
  let sched = ref [] in
  let note c = if record then sched := c :: !sched in
  let crashes = ref 0 in
  let steps = ref 0 in
  let budget = ref max_steps in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let do_crash i =
    incr crashes;
    a.injected <- a.injected + 1;
    note (Schedule.Crash_choice i);
    Sim.crash t i;
    on_crash i
  in
  let do_step i =
    if !budget <= 0 then
      raise (Stuck (Printf.sprintf "%s: step budget exhausted" (policy_name a.pol)));
    decr budget;
    incr steps;
    note (Schedule.Step_choice i);
    ignore (Sim.step_proc t i)
  in
  (* One probabilistic scheduling point shared by Uniform / Storm /
     Targeted / Quiescent: [eligible ()] lists crashable processes,
     [burst] is how many victims one firing claims, [window ()] gates
     crash opportunities.  The RNG draw order is the contract (see the
     header comment): the [float] fires only when a crash is actually
     possible, then one [int] per pick. *)
  let probabilistic ~crash_prob ~max_crashes ~burst ~eligible ~window =
    while not (Sim.all_finished t) do
      let started = eligible () in
      if
        !crashes < max_crashes && started <> [] && window ()
        && Random.State.float rng 1.0 < crash_prob
      then begin
        let n_victims = min burst (min (List.length started) (max_crashes - !crashes)) in
        let rec storm k pool =
          if k > 0 && pool <> [] then begin
            let v = pick pool in
            do_crash v;
            storm (k - 1) (List.filter (fun i -> i <> v) pool)
          end
        in
        storm n_victims started
      end
      else do_step (pick (unfinished t))
    done
  in
  let started_unfinished () = List.filter (fun i -> Sim.started t i) (unfinished t) in
  (match a.pol with
  | Uniform { crash_prob; max_crashes } ->
      probabilistic ~crash_prob ~max_crashes ~burst:1 ~eligible:started_unfinished
        ~window:(fun () -> true)
  | Storm { crash_prob; burst; max_crashes } ->
      probabilistic ~crash_prob ~max_crashes ~burst ~eligible:started_unfinished
        ~window:(fun () -> true)
  | Targeted { victims; crash_prob; max_crashes } ->
      probabilistic ~crash_prob ~max_crashes ~burst:1
        ~eligible:(fun () -> List.filter (fun i -> List.mem i victims) (started_unfinished ()))
        ~window:(fun () -> true)
  | Quiescent { period; active; crash_prob; max_crashes } ->
      if period <= 0 then invalid_arg "Adversary: Quiescent period must be positive";
      probabilistic ~crash_prob ~max_crashes ~burst:1 ~eligible:started_unfinished
        ~window:(fun () -> Sim.total_steps t mod period < active)
  | Simultaneous { crash_at } ->
      (* Round-robin with a persistent cursor, crashing everyone at the
         given total-step thresholds (Drivers.simultaneous, verbatim). *)
      let remaining = ref (List.sort_uniq compare crash_at) in
      let n = Sim.num_procs t in
      let cursor = ref 0 in
      while not (Sim.all_finished t) do
        (match !remaining with
        | at :: rest when Sim.total_steps t >= at ->
            remaining := rest;
            for i = 0 to n - 1 do
              incr crashes;
              a.injected <- a.injected + 1;
              note (Schedule.Crash_choice i);
              on_crash i
            done;
            Sim.crash_all t
        | _ -> ());
        let rec advance tries =
          if tries = 0 then ()
          else if Sim.finished t !cursor then begin
            cursor := (!cursor + 1) mod n;
            advance (tries - 1)
          end
        in
        advance n;
        if not (Sim.finished t !cursor) then begin
          do_step !cursor;
          cursor := (!cursor + 1) mod n
        end
      done);
  { crashes = !crashes; steps = !steps; schedule = List.rev !sched }

(* --- Incremental interface (tick-driven engines: lib/service) ---

   [decide] exposes one crash opportunity of the policy without the
   stepping side of [run]: the caller owns the scheduler and merely asks
   "whom do I crash now?".  The budget is the adversary's *lifetime*
   budget ([injected]), not per-run, so a long soak spends one
   [max_crashes] allowance total.  RNG consumption mirrors [run]'s
   opportunity shape (one [float] only when a crash is possible, one
   [int] per victim pick) but is a separate stream contract: a [t] must
   be dedicated either to [run] or to [decide], never interleaved. *)

let sim_thresholds a crash_at =
  match a.sim_remaining with
  | Some r -> r
  | None ->
      let r = List.sort_uniq compare crash_at in
      a.sim_remaining <- Some r;
      r

let decide a ~eligible ~total_steps =
  let pick_victims ~crash_prob ~max_crashes ~burst pool ~window =
    if a.injected >= max_crashes || pool = [] || not window then []
    else if Random.State.float a.rng 1.0 < crash_prob then begin
      let n_victims = min burst (min (List.length pool) (max_crashes - a.injected)) in
      let rec storm k pool acc =
        if k = 0 || pool = [] then List.rev acc
        else begin
          let v = List.nth pool (Random.State.int a.rng (List.length pool)) in
          storm (k - 1) (List.filter (fun i -> i <> v) pool) (v :: acc)
        end
      in
      let victims = storm n_victims pool [] in
      a.injected <- a.injected + List.length victims;
      victims
    end
    else []
  in
  match a.pol with
  | Uniform { crash_prob; max_crashes } ->
      pick_victims ~crash_prob ~max_crashes ~burst:1 eligible ~window:true
  | Storm { crash_prob; burst; max_crashes } ->
      pick_victims ~crash_prob ~max_crashes ~burst eligible ~window:true
  | Targeted { victims; crash_prob; max_crashes } ->
      pick_victims ~crash_prob ~max_crashes ~burst:1
        (List.filter (fun i -> List.mem i victims) eligible)
        ~window:true
  | Quiescent { period; active; crash_prob; max_crashes } ->
      if period <= 0 then invalid_arg "Adversary: Quiescent period must be positive";
      pick_victims ~crash_prob ~max_crashes ~burst:1 eligible
        ~window:(total_steps mod period < active)
  | Simultaneous { crash_at } -> (
      match sim_thresholds a crash_at with
      | at :: rest when total_steps >= at ->
          a.sim_remaining <- Some rest;
          a.injected <- a.injected + List.length eligible;
          eligible
      | _ -> [])

let next_crash_hint a ~total_steps =
  match a.pol with
  | Uniform { max_crashes; _ } | Storm { max_crashes; _ } | Targeted { max_crashes; _ } ->
      if a.injected >= max_crashes then None else Some 0
  | Quiescent { period; active; max_crashes; _ } ->
      if a.injected >= max_crashes then None
      else if period <= 0 then invalid_arg "Adversary: Quiescent period must be positive"
      else if total_steps mod period < active then Some 0
      else Some (period - (total_steps mod period))
  | Simultaneous { crash_at } -> (
      match sim_thresholds a crash_at with
      | [] -> None
      | at :: _ -> Some (max 0 (at - total_steps)))
