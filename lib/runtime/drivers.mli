(** Schedule drivers: deterministic round-robin, seeded random
    adversaries with independent crash injection, and the
    simultaneous-crash adversary of Section 2.

    The randomized entry points are compatibility wrappers over
    {!Adversary} (which records and replays schedules and supports more
    crash models); they consume their [rng] in exactly the historical
    order, so existing seeded experiments are unchanged. *)

exception Stuck of string
(** A bounded run did not terminate within its step budget; with
    finitely many crashes this indicates a violation of recoverable
    wait-freedom.  (Physically the same exception as
    {!Adversary.Stuck}: handlers for either catch both.) *)

val round_robin : ?max_steps:int -> Sim.t -> unit
(** Step every unfinished process in turn until all finish. *)

val random :
  ?max_steps:int ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  rng:Random.State.t ->
  Sim.t ->
  int
(** Random adversary: at each point, with probability [crash_prob]
    (while the crash budget lasts) crash a uniformly chosen started
    process, otherwise step a uniformly chosen unfinished one.  Returns
    the number of crashes injected. *)

val crash_and_rerun : ?max_steps:int -> rng:Random.State.t -> Sim.t -> int
(** After a completed run, crash a random subset of processes and drive
    the system back to completion: a process that outputs, crashes and
    re-runs must output the same value again. *)

val simultaneous : ?max_steps:int -> crash_at:int list -> Sim.t -> unit
(** Round-robin stepping, crashing {e all} processes whenever the total
    step count reaches one of [crash_at]. *)
