(* Domain-local undo journal for the simulator's checkpoint/restore
   engine.

   The journal is a LIFO stack of restore closures.  While a journal is
   installed (the explorer installs one around each depth-first walk),
   every mutation of simulated state — cell contents, cache-line
   ownership, per-process step/crash counters, container growth, digest
   registrations — pushes a closure that puts the old value back.
   [mark] takes the current stack extent; [rollback_to] pops and runs
   entries newest-first until the stack is back at the mark, which
   restores the entire simulation to its state at the mark.

   Three flags gate recording:

   - no journal installed: [log] is a no-op, so the write-through paths
     (tests, checkers, the replay engine) pay one branch per mutation;
   - rolling back: restore closures re-perform mutations (writing the
     old value back goes through the same mutable fields), and those
     must not journal themselves;
   - feeding: while [Sim.rollback] rebuilds a crashed-and-rewound
     process by re-feeding its recorded step values, the step bodies are
     skipped but the bookkeeping around them re-runs; the journal is
     already unwound past that region, so nothing may be recorded.

   The journal never depends on [Heap]/[Sim] (they depend on it).
   Counters accumulate locally and flush to {!Rcons_par.Pool.Telemetry}
   at [uninstall], so the hot path touches no atomics. *)

type journal = {
  mutable entries : (unit -> unit) array;
  mutable len : int;
  mutable live : bool; (* false while running restore closures *)
  mutable feed : bool; (* true while re-feeding recorded step values *)
  mutable peak : int; (* high-water [len] *)
  mutable pushed : int; (* total entries recorded *)
  mutable restores : int; (* rollback_to calls *)
}

let nop () = ()

let key : journal option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let install () =
  let r = Domain.DLS.get key in
  (match !r with
  | Some _ -> invalid_arg "Undo.install: a journal is already installed on this domain"
  | None -> ());
  r :=
    Some
      {
        entries = Array.make 1024 nop;
        len = 0;
        live = true;
        feed = false;
        peak = 0;
        pushed = 0;
        restores = 0;
      }

(* Rough per-entry footprint: a small closure (header + a few captured
   words) plus its stack slot.  Only used for the telemetry high-water
   estimate, never for correctness. *)
let bytes_per_entry = 56

let uninstall () =
  let r = Domain.DLS.get key in
  (match !r with
  | None -> ()
  | Some j ->
      Rcons_par.Pool.Telemetry.note_undo ~restores:j.restores ~entries:j.pushed
        ~bytes_peak:(j.peak * bytes_per_entry));
  r := None

let installed () = !(Domain.DLS.get key) <> None

let recording () =
  match !(Domain.DLS.get key) with Some j -> j.live && not j.feed | None -> false

let feeding () = match !(Domain.DLS.get key) with Some j -> j.feed | None -> false

let with_feeding f =
  match !(Domain.DLS.get key) with
  | None -> f ()
  | Some j ->
      let saved = j.feed in
      j.feed <- true;
      Fun.protect ~finally:(fun () -> j.feed <- saved) f

(* The handle is the domain's journal slot itself: [install]/[uninstall]
   mutate the slot's contents, never replace the slot, so a handle
   captured at any time (even before [install]) stays current. *)
type handle = journal option ref

let handle () : handle = Domain.DLS.get key
let h_installed (h : handle) = !h <> None
let h_recording (h : handle) = match !h with Some j -> j.live && not j.feed | None -> false

let push j f =
  let n = Array.length j.entries in
  if j.len = n then begin
    let bigger = Array.make (2 * n) nop in
    Array.blit j.entries 0 bigger 0 n;
    j.entries <- bigger
  end;
  j.entries.(j.len) <- f;
  j.len <- j.len + 1;
  j.pushed <- j.pushed + 1;
  if j.len > j.peak then j.peak <- j.len

let h_log (h : handle) f =
  match !h with Some j when j.live && not j.feed -> push j f | Some _ | None -> ()

let log f = h_log (Domain.DLS.get key) f

let mark () = match !(Domain.DLS.get key) with Some j -> j.len | None -> 0

let rollback_to m =
  match !(Domain.DLS.get key) with
  | None -> ()
  | Some j ->
      if m > j.len then invalid_arg "Undo.rollback_to: mark is beyond the journal tip";
      j.live <- false;
      (try
         while j.len > m do
           j.len <- j.len - 1;
           let f = j.entries.(j.len) in
           j.entries.(j.len) <- nop;
           f ()
         done
       with e ->
         j.live <- true;
         raise e);
      j.live <- true;
      j.restores <- j.restores + 1
