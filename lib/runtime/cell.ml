(* Shared read/write registers living in the simulated non-volatile memory.
   Every access is one atomic step of the calling process.

   Persistency: when a non-eager [Persist] cache is ambient at creation,
   the cell carries a cache line -- [contents] is the volatile copy every
   read sees, [persisted] the durable copy a crash may revert to.  With
   no cache (or an eager one) [line] is [None], [persisted] is unused,
   and behavior -- including the registered digest -- is bit-identical to
   the write-through model.

   Footprints: every cell carries a per-execution object id, and each of
   its accesses declares (oid, kind) so the partial-order-reducing
   explorer can tell which pending steps commute (accesses of distinct
   cells always do; see [Rcons_spec.Footprint] for the same-cell
   matrix). *)

open Rcons_spec

type 'a t = {
  mutable contents : 'a; (* volatile copy: what reads see *)
  mutable persisted : 'a; (* durable copy: what crashes revert to *)
  mutable line : Persist.line option;
  mutable hslot : Heap.slot option; (* fingerprint-cache slot, if registered *)
  oid : int; (* per-execution object id, for step footprints *)
}

(* Undo journaling: every mutation of [contents]/[persisted] pushes a
   restore closure while a journal is recording, and every restore also
   re-dirties the fingerprint-cache slot -- a clean slot must always
   mean "cached digest = current state", including after a rollback.
   The oid allocation is journaled too, so a rolled-back branch hands
   out the same ids on re-execution (footprint-based POR keys on
   them). *)
let alloc v =
  let c = { contents = v; persisted = v; line = None; hslot = None; oid = Footprint.fresh_oid () } in
  if Undo.recording () then begin
    let oid = c.oid in
    Undo.log (fun () -> Footprint.set_next_oid oid)
  end;
  c.line <-
    Persist.attach
      ~touch:(fun () -> Heap.touch c.hslot)
      ~persist:(fun () ->
        if Undo.recording () then begin
          let old = c.persisted in
          Undo.log (fun () ->
              c.persisted <- old;
              Heap.touch c.hslot)
        end;
        c.persisted <- c.contents;
        Heap.touch c.hslot)
      ~revert:(fun () ->
        if Undo.recording () then begin
          let old = c.contents in
          Undo.log (fun () ->
              c.contents <- old;
              Heap.touch c.hslot)
        end;
        c.contents <- c.persisted;
        Heap.touch c.hslot)
      ();
  c

(* A cell whose state is digested through some enclosing container's
   registration (Growable) rather than its own; [?slot] is the
   container's cache slot, so entry mutations invalidate the container
   digest.  Still acquires a cache line. *)
let make_unregistered ?slot v =
  let c = alloc v in
  c.hslot <- slot;
  c

let footprint c kind = Footprint.Obj { oid = c.oid; kind }

let make v =
  let c = alloc v in
  (match c.line with
  | None -> c.hslot <- Heap.register_c (fun () -> Heap.digest c.contents)
  | Some l ->
      (* The durable copy and the line owner are part of the global
         state: two executions in which the same value was written but
         only one flushed it have different futures.  The owner is a
         pid, so it is relabeled when the snapshot carries a process
         permutation (symmetry canonicalization). *)
      c.hslot <-
        Heap.register_sym_c (fun perm ->
            let owner =
              match (Persist.owner l, perm) with
              | None, _ -> None
              | Some p, None -> Some p
              | Some p, Some perm -> Some perm.(p)
            in
            Heap.digest (c.contents, c.persisted, owner)));
  c

let read c = Sim.step ~label:"register" ~fp:(footprint c Footprint.Read) (fun () -> c.contents)

(* Silent-store elision: a write whose value is physically identical to
   the current volatile contents changes nothing, so it is absorbed into
   the pending delta without re-owning the line -- otherwise a helper
   re-writing the same node would take ownership of the original
   writer's un-persisted change and its crash would revert it.  Physical
   equality is the only safe generic test (cell values may contain
   closures); it is conservative -- structurally equal but distinct
   values still dirty the line, which costs nothing but precision. *)
let set_contents c v =
  if not (v == c.contents) then begin
    if Undo.recording () then begin
      let old = c.contents in
      Undo.log (fun () ->
          c.contents <- old;
          Heap.touch c.hslot)
    end;
    c.contents <- v;
    Heap.touch c.hslot;
    true
  end
  else false

let write c v =
  Sim.step ~label:"register" ~fp:(footprint c Footprint.Write) (fun () ->
      match c.line with
      | None -> ignore (set_contents c v)
      | Some l -> if set_contents c v then Persist.dirty l)

let flush c = Sim.flush ~fp:(footprint c Footprint.Flush) c.line
let line c = c.line

(* Read a value that is guaranteed durable: read, flush the line, and
   re-read to confirm the line is CLEAN and the value unchanged -- the
   link-and-persist pattern.  Value equality alone is not enough: the
   writer may crash (reverting its write) and re-write the same value
   between our flush and our re-read, so the two reads match while the
   flush persisted the reverted state.  A clean line, checked atomically
   within the re-read step, means contents = persisted, so the returned
   value is durable.  Always read + flush + read steps per attempt,
   whatever the policy.  [equal] compares the two reads (default
   structural; pass [( == )] for values that cannot be compared
   structurally).  The confirm step observes the line's clean/dirty
   status on top of the contents, hence its [Sync] footprint. *)
let rec read_persist ?(equal = ( = )) c =
  let v = read c in
  flush c;
  let v', clean =
    Sim.step ~label:"register" ~fp:(footprint c Footprint.Sync) (fun () ->
        (c.contents, match c.line with None -> true | Some l -> Persist.owner l = None))
  in
  if clean && equal v v' then v' else read_persist ~equal c

(* Write a value until it is guaranteed durable: write, flush, and
   confirm -- in one atomic step, like [read_persist]'s confirm -- that
   the contents still match AND the line is clean.  Value equality alone
   is not enough on the confirm: a concurrent helper writing a
   structurally-equal but physically-distinct value between our flush
   and our read-back re-dirties the line (silent-store elision is
   physical), so the read-back matches while the durable copy may still
   be the pre-write state; a crash of that helper would then revert the
   cell.  A clean line means contents = persisted, so on success the
   written value is durable no matter whose allocation persisted it.
   On failure we re-write and retry; interfering writes (helpers,
   crash-replayed recoveries) are finitely many, so the loop
   terminates.  Exactly write + flush + confirm steps per attempt under
   every policy. *)
let rec write_persist ?(equal = ( = )) c v =
  write c v;
  flush c;
  let v', clean =
    Sim.step ~label:"register" ~fp:(footprint c Footprint.Sync) (fun () ->
        (c.contents, match c.line with None -> true | Some l -> Persist.owner l = None))
  in
  if not (clean && equal v v') then write_persist ~equal c v

(* Direct access for set-up and checking code running outside the
   simulation (not a process step).  A [poke] from set-up code is
   durable; a [poke] from inside a step (the read-modify-write of
   [One_shot.decide]) dirties the line like any other write. *)
let peek c = c.contents

(* With no cache line, writes are write-through and only [contents] is
   maintained, so the durable copy IS the volatile one; [persisted]
   would be the stale initial value. *)
let peek_persisted c = match c.line with None -> c.contents | Some _ -> c.persisted

let poke c v =
  match c.line with
  | None -> ignore (set_contents c v)
  | Some l -> if set_contents c v then Persist.dirty l
