(* Shared read/write registers living in the simulated non-volatile memory.
   Every access is one atomic step of the calling process. *)

type 'a t = { mutable contents : 'a }

(* A cell whose state is digested through some enclosing container's
   registration (Growable) rather than its own. *)
let make_unregistered v = { contents = v }

let make v =
  let c = { contents = v } in
  Heap.register (fun () -> Heap.digest c.contents);
  c

let read c = Sim.step ~label:"register" (fun () -> c.contents)
let write c v = Sim.step ~label:"register" (fun () -> c.contents <- v)

(* Direct access for set-up and checking code running outside the
   simulation (not a process step). *)
let peek c = c.contents
let poke c v = c.contents <- v
