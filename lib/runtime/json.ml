(* Minimal JSON: just enough for the repository's artifacts (witness
   files, checkpoints).  Deterministic printing, strict parsing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(indent = 2) v =
  let b = Buffer.create 256 in
  let pad n = if indent > 0 then Buffer.add_string b (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        (* Round-trippable and JSON-legal (no "nan"/"inf"; no bare "1."). *)
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | String s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) x)
          xs;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            escape b k;
            Buffer.add_string b (if indent > 0 then ": " else ":");
            go (depth + 1) x)
          fields;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* --- parsing --- *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let fail msg = raise (Bad (msg, !pos)) in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                   in
                   (* Artifacts only escape control characters; decode the
                      Latin-1 range and reject the rest. *)
                   if code < 0x100 then Buffer.add_char b (Char.chr code)
                   else fail "unsupported \\u escape";
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E' then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Json.parse: " ^ msg)

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let field k v =
  match member k v with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Json: missing field %S" k)

let to_int = function
  | Int i -> i
  | _ -> invalid_arg "Json.to_int"

let to_float = function Float f -> f | Int i -> float_of_int i | _ -> invalid_arg "Json.to_float"
let to_bool = function Bool b -> b | _ -> invalid_arg "Json.to_bool"
let to_str = function String s -> s | _ -> invalid_arg "Json.to_str"
let to_list = function List xs -> xs | _ -> invalid_arg "Json.to_list"
