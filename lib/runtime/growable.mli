(** Unbounded arrays of shared cells, for the paper's infinite arrays
    (D[1..inf] and the consensus instances C_1, C_2, ... of Figure 4;
    footnote 2 allows unboundedly many objects).  Entries materialize on
    demand with a deterministic default, as if the whole array had
    existed from the start; only reads and writes of entries are steps.

    The array registers one canonical digest with the active {!Heap}
    arena (entries sorted by index, default-valued entries elided), so
    state fingerprints do not depend on which default entries happen to
    have been materialized. *)

type 'a t

val make : (int -> 'a) -> 'a t
val cell : 'a t -> int -> 'a Cell.t
val read : 'a t -> int -> 'a
val write : 'a t -> int -> 'a -> unit

val flush : 'a t -> int -> unit
(** Persist barrier for entry [i] (see {!Cell.flush}).  Entries acquire
    cache lines when a non-eager {!Persist} cache is ambient at their
    materialization; the canonical digest then also covers each entry's
    durable copy and line owner. *)

val peek : 'a t -> int -> 'a
