(* Schedules and their metadata; see the interface. *)

type choice = Step_choice of int | Crash_choice of int

let pp_choice ppf = function
  | Step_choice i -> Format.fprintf ppf "step(p%d)" i
  | Crash_choice i -> Format.fprintf ppf "crash(p%d)" i

let pp ppf cs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_choice ppf cs

(* Replaying a *sub*-schedule (ddmin probes one) can direct a step at a
   process that finished earlier than it did in the full schedule; the
   step is simply a no-op then, matching the pre-defensive-API behavior
   [Shrink] was built on.  Out-of-range pids (malformed artifacts) still
   raise, with the range in the message. *)
let apply t = function
  | Step_choice i ->
      if i < 0 || i >= Sim.num_procs t then
        invalid_arg
          (Printf.sprintf "Schedule.apply: pid %d out of range [0,%d)" i (Sim.num_procs t));
      if not (Sim.finished t i) then ignore (Sim.step_proc t i)
  | Crash_choice i -> Sim.crash t i

let crashes cs =
  List.fold_left (fun acc c -> match c with Crash_choice _ -> acc + 1 | _ -> acc) 0 cs

(* "s3" / "c1": compact, diffable, and obvious in a text editor. *)
let to_json cs =
  Json.List
    (List.map
       (fun c ->
         match c with
         | Step_choice i -> Json.String ("s" ^ string_of_int i)
         | Crash_choice i -> Json.String ("c" ^ string_of_int i))
       cs)

let of_json j =
  List.map
    (fun item ->
      let s = Json.to_str item in
      if String.length s < 2 then invalid_arg "Schedule.of_json: bad choice";
      let pid =
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some p when p >= 0 -> p
        | _ -> invalid_arg "Schedule.of_json: bad pid"
      in
      match s.[0] with
      | 's' -> Step_choice pid
      | 'c' -> Crash_choice pid
      | _ -> invalid_arg "Schedule.of_json: bad choice tag")
    (Json.to_list j)

type provenance = {
  origin : string;
  seed : int option;
  params : (string * string) list;
  fingerprint : string option;
}

let provenance_to_json p =
  Json.Obj
    [
      ("origin", Json.String p.origin);
      ("seed", match p.seed with Some s -> Json.Int s | None -> Json.Null);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) p.params));
      ( "fingerprint",
        match p.fingerprint with Some f -> Json.String f | None -> Json.Null );
    ]

let provenance_of_json j =
  {
    origin = Json.to_str (Json.field "origin" j);
    seed = (match Json.field "seed" j with Json.Null -> None | v -> Some (Json.to_int v));
    params =
      (match Json.field "params" j with
      | Json.Obj fields -> List.map (fun (k, v) -> (k, Json.to_str v)) fields
      | _ -> invalid_arg "Schedule.provenance_of_json: params");
    fingerprint =
      (match Json.field "fingerprint" j with Json.Null -> None | v -> Some (Json.to_str v));
  }

let pp_provenance ppf p =
  Format.fprintf ppf "%s" p.origin;
  (match p.seed with Some s -> Format.fprintf ppf " seed=%d" s | None -> ());
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) p.params;
  match p.fingerprint with
  | Some f -> Format.fprintf ppf " [%s]" f
  | None -> ()
