(* Bounded exhaustive schedule exploration ("stateless model checking").

   The explorer enumerates every schedule of a freshly created system --
   each point chooses either a step of an unfinished process or a crash of
   a started, unfinished process (bounded by [max_crashes]) -- and runs a
   user invariant after every choice.  OCaml continuations are one-shot,
   so backtracking re-executes the schedule prefix from scratch on a fresh
   system; process bodies must therefore be deterministic.

   Pruning: crashing a process that has not taken a step since its last
   (re)start is a no-op in the model (it would restart at the beginning,
   where it already is), so such choices are skipped; this also prevents
   consecutive duplicate crashes.

   Parallel mode ([domains > 1]): the tree is walked sequentially down to
   [frontier_depth]; the nodes of that frontier -- in DFS order, which
   with the fixed choice ordering is lexicographic order on schedules --
   are then distributed across OCaml 5 domains, each re-executing its
   subtree on its own fresh systems built by [mk].  Per-subtree statistics
   are merged in frontier order, and if any subtree finds a violation the
   one with the smallest frontier index wins (with an atomic watermark
   cancelling subtrees that can no longer win), so the schedule reported
   is exactly the one the sequential DFS would have raised first: results
   of completed explorations are bit-identical to the sequential path. *)

type choice = Step_choice of int | Crash_choice of int

let pp_choice ppf = function
  | Step_choice i -> Format.fprintf ppf "step(p%d)" i
  | Crash_choice i -> Format.fprintf ppf "crash(p%d)" i

let pp_schedule ppf cs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_choice ppf cs

exception Violation of string * choice list

type stats = { schedules : int; nodes : int; max_depth : int }

let apply_choice t = function
  | Step_choice i -> ignore (Sim.step_proc t i)
  | Crash_choice i -> Sim.crash t i

(* [mk ()] must build a fresh system together with an invariant checker;
   the checker raises [Violation_found msg] (via [fail]) on a property
   violation.  It is run after every choice, so violations are reported at
   the earliest point they are observable. *)
exception Violation_found of string

let fail msg = raise (Violation_found msg)

exception Budget_exceeded of stats
(* Raised when the exploration tree exceeds [max_nodes]; callers choose
   bounds so that this does not happen in CI, but a runaway configuration
   fails fast instead of hanging. *)

(* Per-walker statistics; one per domain in parallel mode, merged in
   frontier order at the end. *)
type counter = { mutable c_schedules : int; mutable c_nodes : int; mutable c_max_depth : int }

let fresh_counter () = { c_schedules = 0; c_nodes = 0; c_max_depth = 0 }

exception Cancelled
(* Internal: a parallel subtree walker learned that a smaller frontier
   index already holds a violation, so its own result cannot win. *)

let explore ?(max_crashes = 1) ?(max_steps = 10_000) ?(max_nodes = 20_000_000) ?domains
    ?(frontier_depth = 4) ~mk () =
  let workers = Rcons_par.Pool.resolve_domains domains in
  let frontier_depth = max 1 frontier_depth in
  (* The node budget is shared across every domain so that parallel runs
     respect the same global bound as sequential ones. *)
  let nodes_total = Atomic.make 0 in
  let replay prefix =
    let t, check = mk () in
    List.iter
      (fun c ->
        apply_choice t c;
        match check () with
        | () -> ()
        | exception Violation_found msg ->
            Sim.abandon t;
            raise (Violation (msg, List.rev prefix)))
      (List.rev prefix);
    (t, check)
  in
  let choices t crashes_used =
    let n = Sim.num_procs t in
    let rec collect i acc =
      if i < 0 then acc
      else
        let acc = if Sim.finished t i then acc else Step_choice i :: acc in
        let acc =
          if crashes_used < max_crashes && Sim.started t i && not (Sim.finished t i) then
            Crash_choice i :: acc
          else acc
        in
        collect (i - 1) acc
    in
    collect (n - 1) []
  in
  (* One DFS walker.  [stop_depth = Some d] turns nodes at depth d into
     frontier emissions instead of recursing (phase 1 of the parallel
     split); [cancelled] is polled at every node by parallel subtree
     walkers.  The [stop_depth = None], no-cancellation instantiation is
     the plain sequential explorer. *)
  let walk ?stop_depth ?(emit = fun _ _ -> ()) ?(cancelled = fun () -> false) cnt prefix0
      depth0 crashes0 =
    let rec go prefix depth crashes_used =
      if cancelled () then raise Cancelled;
      if depth > max_steps then
        raise (Violation ("step bound exceeded (wait-freedom?)", List.rev prefix));
      if depth > cnt.c_max_depth then cnt.c_max_depth <- depth;
      match stop_depth with
      | Some d when depth >= d -> emit prefix crashes_used
      | _ -> (
          let t, _check = replay prefix in
          let cs = choices t crashes_used in
          (* Release the replayed system's pending fibers before recursing:
             children replay their own copies. *)
          Sim.abandon t;
          match cs with
          | [] -> cnt.c_schedules <- cnt.c_schedules + 1
          | cs ->
              List.iter
                (fun c ->
                  cnt.c_nodes <- cnt.c_nodes + 1;
                  let total = Atomic.fetch_and_add nodes_total 1 + 1 in
                  if total > max_nodes then
                    raise
                      (Budget_exceeded
                         {
                           schedules = cnt.c_schedules;
                           nodes = total;
                           max_depth = cnt.c_max_depth;
                         });
                  let crashes_used' =
                    match c with
                    | Crash_choice _ -> crashes_used + 1
                    | Step_choice _ -> crashes_used
                  in
                  go (c :: prefix) (depth + 1) crashes_used')
                cs)
    in
    go prefix0 depth0 crashes0
  in
  if workers <= 1 then begin
    let cnt = fresh_counter () in
    walk cnt [] 0 0;
    { schedules = cnt.c_schedules; nodes = cnt.c_nodes; max_depth = cnt.c_max_depth }
  end
  else begin
    (* Phase 1: sequential walk down to the frontier.  A violation at
       depth < frontier_depth does NOT abort immediately: in DFS order it
       comes after the complete subtrees of every frontier node emitted
       before it, so those subtrees must still be searched -- one of them
       may contain the violation the sequential explorer would have
       reported first. *)
    let frontier_rev = ref [] in
    let cnt0 = fresh_counter () in
    let phase1_violation =
      match
        walk ~stop_depth:frontier_depth
          ~emit:(fun prefix crashes -> frontier_rev := (prefix, crashes) :: !frontier_rev)
          cnt0 [] 0 0
      with
      | () -> None
      | exception Violation (msg, sched) -> Some (msg, sched)
    in
    let frontier = Array.of_list (List.rev !frontier_rev) in
    let nf = Array.length frontier in
    (* Phase 2: fan the frontier subtrees out across domains.  [best] is
       the smallest frontier index known to hold a violation; subtrees at
       larger indices cancel themselves. *)
    let best = Atomic.make max_int in
    let rec lower i =
      let b = Atomic.get best in
      if i < b && not (Atomic.compare_and_set best b i) then lower i
    in
    let results =
      Rcons_par.Pool.map ~domains:workers nf (fun i ->
          if Atomic.get best < i then None
          else
            let prefix, crashes = frontier.(i) in
            let cnt = fresh_counter () in
            match walk ~cancelled:(fun () -> Atomic.get best < i) cnt prefix frontier_depth crashes with
            | () ->
                Some
                  (Ok
                     {
                       schedules = cnt.c_schedules;
                       nodes = cnt.c_nodes;
                       max_depth = cnt.c_max_depth;
                     })
            | exception Cancelled -> None
            | exception Violation (msg, sched) ->
                lower i;
                Some (Error (msg, sched)))
    in
    (* Merge in frontier order: the first subtree violation is exactly the
       first violation of the sequential DFS; a phase-1 violation orders
       after every emitted subtree. *)
    let first_violation =
      Array.to_seq results
      |> Seq.filter_map (function Some (Error v) -> Some v | _ -> None)
      |> Seq.uncons
    in
    (match first_violation with
    | Some ((msg, sched), _) -> raise (Violation (msg, sched))
    | None -> ());
    (match phase1_violation with Some (msg, sched) -> raise (Violation (msg, sched)) | None -> ());
    Array.fold_left
      (fun acc r ->
        match r with
        | Some (Ok s) ->
            {
              schedules = acc.schedules + s.schedules;
              nodes = acc.nodes + s.nodes;
              max_depth = max acc.max_depth s.max_depth;
            }
        | Some (Error _) -> acc
        | None -> acc)
      { schedules = cnt0.c_schedules; nodes = cnt0.c_nodes; max_depth = cnt0.c_max_depth }
      results
  end
