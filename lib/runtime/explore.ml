(* Bounded exhaustive schedule exploration ("stateless model checking").

   The explorer enumerates every schedule of a freshly created system --
   each point chooses either a step of an unfinished process or a crash of
   a started, unfinished process (bounded by [max_crashes]) -- and runs a
   user invariant after every choice.  OCaml continuations are one-shot,
   so backtracking re-executes the schedule prefix from scratch on a fresh
   system; process bodies must therefore be deterministic.

   Spine reuse: the first child of every node continues the parent's live
   system instead of replaying its prefix from the root, so the leftmost
   descent of each subtree is free and only backtracking (later siblings)
   pays the O(depth) replay.

   Undo engine (default): instead of replaying, the walker keeps ONE
   persistent system and snapshots it logically -- every mutation the
   simulator performs while an {!Undo} journal is installed pushes an
   inverse closure, [Sim.mark] records the journal length at a fork
   point, and [Sim.rollback] pops back to it and rebuilds the one-shot
   continuations by value-feeding (see sim.ml).  A sibling then costs
   O(steps since the fork point) instead of O(depth), and the heap
   fingerprint on the dedup path is recomputed only for containers
   written since the last hash (see heap.ml).  The replay walker above
   is kept verbatim as the correctness oracle ([RCONS_NO_UNDO=1],
   [--no-undo], or [?undo:false]); both engines produce byte-identical
   statistics, violations, and checkpoints in every mode.

   Pruning: crashing a process that has not taken a step since its last
   (re)start is a no-op in the model (it would restart at the beginning,
   where it already is), so such choices are skipped; this also prevents
   consecutive duplicate crashes.

   Deduplication ([dedup = true]): two schedules that reach the same
   global state -- same non-volatile heap (via [Heap] arenas and
   [Sim.fingerprint]) and same per-process control state -- have identical
   futures, so the schedule tree is explored as a state graph: a lock-free
   concurrent visited set ([Rcons_par.Visited]) claims each fingerprint
   exactly once, the claimant expands the state's children, and every
   later encounter is counted as a dedup hit and pruned.  Because the
   fingerprint includes cumulative per-process step/crash counts, the
   state graph is graded by depth, so the set of expanded states and
   walked edges -- and therefore every statistic -- is independent of
   visit order and of the domain count.  Statistics change meaning under
   dedup ([nodes] counts state-graph edges, not tree edges), which is why
   it is off by default: raw counts are what the paper-facing tables use.

   Partial-order reduction ([por = true]): every shared-memory access
   declares a step footprint, which yields a sound independence relation
   over choices (see [Rcons_spec.Footprint]).  Crashes never commute
   with their victim's steps; two crashes of distinct processes commute
   when at least two crash credits remain (each reverts only its own
   victim's lines); a crash commutes with another process's step only
   under the eager persistency model (a lossy cache makes the crash
   revert shared lines the step may read).  The walker then runs the
   classic sleep-set algorithm: a choice in the node's sleep set starts
   a subtree that differs from an already-explored sibling subtree only
   by swaps of adjacent independent transitions, so it is skipped and
   counted in [por_pruned].  Sleep sets prune *interleavings*, never
   *states*: every reachable state is still visited by some schedule,
   and the invariants here are state properties (output agreement and
   validity), so a reduced run finds a violation iff the raw run does.
   With [dedup] the fingerprint switches to the ungraded form (total
   crashes only -- see [Sim.fingerprint_digest ~graded:false]) so that
   states differing only in a discarded pre-crash prefix collapse, and
   the visited store records the sleep mask and depth each state was
   expanded under, pruning a revisit only when a previous expansion used
   a subset sleep mask at no greater depth (re-expanding otherwise,
   after Godefroid--Holzmann--Pirottin); the combination stays sound but
   its statistics are visit-order dependent, so por + dedup is
   sequential only and not resumable.  Raw por composes with the
   parallel walkers: frontier items carry their sleep sets into phase 2,
   and the phase split does not change which subtrees are explored, so
   parallel reduced runs report the sequential reduced statistics.

   Symmetry reduction ([symmetry = classes]): states that differ only by
   a relabeling of interchangeable processes -- same code, same input;
   the *caller* asserts interchangeability by listing the pid classes --
   share a canonical fingerprint ([Sim.fingerprint_digest_canonical]),
   so the deduplicating explorer expands one representative per orbit.
   [symmetry_hits] counts expanded-edge targets whose canonical digest
   beat the identity labeling.  Every schedule actually walked remains a
   concrete one, so violation replay needs no unwinding.

   Parallel mode ([domains > 1]): the tree is walked sequentially down to
   [frontier_depth]; the nodes of that frontier -- in DFS order, which
   with the fixed choice ordering is lexicographic order on schedules --
   are then distributed across OCaml 5 domains, each re-executing its
   subtree on its own fresh systems built by [mk].  Per-subtree statistics
   are merged in frontier order, and if any subtree finds a violation the
   one with the smallest frontier index wins (with an atomic watermark
   cancelling subtrees that can no longer win), so the schedule reported
   is exactly the one the sequential DFS would have raised first: results
   of completed explorations are bit-identical to the sequential path.
   With [dedup = true] the walkers instead share the visited set (their
   statistics are order-independent, see above); if any walker finds a
   violation the run falls back to one sequential deduplicating pass,
   whose first violation is deterministic -- so seq and par dedup runs
   report identical stats and identical violation schedules, though the
   dedup violation schedule may differ from the raw-mode one.

   Budgets ([node_budget] / [time_budget], sequential mode only): instead
   of losing an interrupted exhaustive run, the explorer raises
   [Interrupted] with a serializable checkpoint -- the DFS cursor (the
   schedule prefix of the first uncounted node), the statistics
   accumulated so far, and (under dedup) the visited-set contents.
   Resuming from the checkpoint re-descends the cursor spine without
   re-counting it, skips the fully-explored subtrees to its left, and
   continues the DFS exactly where it stopped, so the final statistics
   are bit-identical to an uninterrupted run. *)

type choice = Schedule.choice = Step_choice of int | Crash_choice of int

let pp_choice = Schedule.pp_choice
let pp_schedule = Schedule.pp

type violation = {
  v_msg : string;
  v_schedule : choice list;
  v_provenance : Schedule.provenance option;
      (* None only transiently, inside [explore]: the boundary wrapper
         attaches the run's provenance before the exception escapes. *)
}

exception Violation of violation

let violation msg prefix = Violation { v_msg = msg; v_schedule = List.rev prefix; v_provenance = None }

type stats = {
  schedules : int;
  nodes : int;
  max_depth : int;
  dedup_hits : int; (* 0 unless [dedup] *)
  distinct_states : int; (* 0 unless [dedup] *)
  por_pruned : int; (* 0 unless [por] *)
  symmetry_hits : int; (* 0 unless [symmetry] *)
}

let apply_choice = Schedule.apply

(* [mk ()] must build a fresh system together with an invariant checker;
   the checker raises [Violation_found msg] (via [fail]) on a property
   violation.  It is run after every choice, so violations are reported at
   the earliest point they are observable. *)
exception Violation_found of string

let fail msg = raise (Violation_found msg)

exception Budget_exceeded of stats
(* Raised when the exploration tree exceeds [max_nodes]; callers choose
   bounds so that this does not happen in CI, but a runaway configuration
   fails fast instead of hanging. *)

(* A resumable cut of an interrupted sequential exploration. *)
type checkpoint = {
  cp_cursor : choice list; (* schedule prefix of the first uncounted node *)
  cp_stats : stats; (* totals accumulated strictly before the cursor *)
  cp_visited : string list; (* claimed fingerprints (raw digests); [] unless dedup *)
  cp_max_crashes : int;
  cp_max_steps : int;
  cp_dedup : bool;
  cp_por : bool; (* recorded so a resume attempt fails loudly *)
  cp_engine : string; (* "undo" | "replay": which engine took the cut *)
}

exception Interrupted of checkpoint

let checkpoint_stats cp = cp.cp_stats
let checkpoint_cursor cp = cp.cp_cursor

let checkpoint_to_json cp =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("kind", Json.String "explore-checkpoint");
      ("max_crashes", Json.Int cp.cp_max_crashes);
      ("max_steps", Json.Int cp.cp_max_steps);
      ("dedup", Json.Bool cp.cp_dedup);
      ("por", Json.Bool cp.cp_por);
      ("engine", Json.String cp.cp_engine);
      ( "stats",
        Json.Obj
          [
            ("schedules", Json.Int cp.cp_stats.schedules);
            ("nodes", Json.Int cp.cp_stats.nodes);
            ("max_depth", Json.Int cp.cp_stats.max_depth);
            ("dedup_hits", Json.Int cp.cp_stats.dedup_hits);
            ("distinct_states", Json.Int cp.cp_stats.distinct_states);
            ("por_pruned", Json.Int cp.cp_stats.por_pruned);
            ("symmetry_hits", Json.Int cp.cp_stats.symmetry_hits);
          ] );
      ("cursor", Schedule.to_json cp.cp_cursor);
      ("visited", Json.List (List.map (fun d -> Json.String (Digest.to_hex d)) cp.cp_visited));
    ]

let checkpoint_of_json j =
  if (match Json.member "kind" j with Some (Json.String "explore-checkpoint") -> false | _ -> true)
  then invalid_arg "Explore.checkpoint_of_json: not an explore checkpoint";
  let stats = Json.field "stats" j in
  let int k v = Json.to_int (Json.field k v) in
  (* Fields added after the v1 format default when absent, so pre-reduction
     checkpoints stay loadable. *)
  let opt_int k v = match Json.member k v with Some x -> Json.to_int x | None -> 0 in
  {
    cp_cursor = Schedule.of_json (Json.field "cursor" j);
    cp_stats =
      {
        schedules = int "schedules" stats;
        nodes = int "nodes" stats;
        max_depth = int "max_depth" stats;
        dedup_hits = int "dedup_hits" stats;
        distinct_states = int "distinct_states" stats;
        por_pruned = opt_int "por_pruned" stats;
        symmetry_hits = opt_int "symmetry_hits" stats;
      };
    cp_visited =
      List.map (fun s -> Digest.from_hex (Json.to_str s)) (Json.to_list (Json.field "visited" j));
    cp_max_crashes = int "max_crashes" j;
    cp_max_steps = int "max_steps" j;
    cp_dedup = Json.to_bool (Json.field "dedup" j);
    cp_por = (match Json.member "por" j with Some b -> Json.to_bool b | None -> false);
    cp_engine =
      (* Either engine may resume either cut -- the cursor format is
         engine-independent -- but a checkpoint claiming an engine this
         build does not know is from the future, and its cursor may
         mean something else: refuse it rather than misresume. *)
      (match Json.member "engine" j with
      | None -> "replay" (* pre-undo checkpoints *)
      | Some (Json.String ("undo" as e)) | Some (Json.String ("replay" as e)) -> e
      | Some (Json.String e) ->
          invalid_arg ("Explore.checkpoint_of_json: unknown exploration engine " ^ e)
      | Some _ -> invalid_arg "Explore.checkpoint_of_json: engine must be a string");
  }

let save_checkpoint ~file cp =
  (* Write-temp-then-rename (the [Cert_cache] convention): a crash --
     of the host process this time, not a simulated one -- while the
     checkpoint is being written must never leave a truncated file
     where [--resume] expects a valid one.  The rename is atomic on
     POSIX, so the file is either the complete old checkpoint or the
     complete new one. *)
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Json.to_string (checkpoint_to_json cp));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let load_checkpoint ~file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  checkpoint_of_json (Json.parse_exn s)

(* Per-walker statistics; one per domain in parallel mode, merged in
   frontier order at the end. *)
type counter = {
  mutable c_schedules : int;
  mutable c_nodes : int;
  mutable c_max_depth : int;
  mutable c_dedup_hits : int;
  mutable c_por_pruned : int;
  mutable c_symmetry_hits : int;
}

let fresh_counter () =
  {
    c_schedules = 0;
    c_nodes = 0;
    c_max_depth = 0;
    c_dedup_hits = 0;
    c_por_pruned = 0;
    c_symmetry_hits = 0;
  }

let counter_of_stats s =
  {
    c_schedules = s.schedules;
    c_nodes = s.nodes;
    c_max_depth = s.max_depth;
    c_dedup_hits = s.dedup_hits;
    c_por_pruned = s.por_pruned;
    c_symmetry_hits = s.symmetry_hits;
  }

(* Internal: pluggable visited-state store.  Graded dedup (and dedup +
   symmetry) uses the lock-free shared [Rcons_par.Visited] set; the
   por + dedup mode uses a sequential store keyed by ungraded
   fingerprint that remembers the (sleep mask, depth) pairs each state
   was expanded under.  [st_claim] returns whether the caller should
   expand the state (false = already covered). *)
type store = {
  st_claim : counter -> Sim.t -> mask:int -> depth:int -> bool;
  st_distinct : unit -> int;
  st_elements : unit -> string list;
}

exception Cancelled
(* Internal: a parallel subtree walker learned that its result can no
   longer matter (a smaller frontier index holds a violation in raw mode;
   any walker does in dedup mode). *)

exception Interrupt_at of choice list
(* Internal: a budget tripped at this (forward) cursor prefix; the
   explore entry point converts it into [Interrupted] with a checkpoint. *)

(* The checkpoint/restore engine is the default; [RCONS_NO_UNDO] (any
   non-empty value other than "0") or [?undo:false] falls back to the
   replay walker, kept verbatim as the correctness oracle. *)
let undo_default () =
  match Sys.getenv_opt "RCONS_NO_UNDO" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let explore ?(max_crashes = 1) ?(max_steps = 10_000) ?(max_nodes = 20_000_000) ?domains
    ?(frontier_depth = 4) ?(dedup = false) ?(por = false) ?symmetry ?node_budget ?time_budget
    ?resume_from ?fingerprint ?undo ~mk () =
  let use_undo = match undo with Some b -> b | None -> undo_default () in
  let workers = Rcons_par.Pool.resolve_domains domains in
  let frontier_depth = max 1 frontier_depth in
  let budgeted = node_budget <> None || time_budget <> None in
  if (budgeted || resume_from <> None) && workers > 1 then
    invalid_arg "Explore.explore: budgets and resume require domains = 1";
  if por && dedup && workers > 1 then
    invalid_arg "Explore.explore: por + dedup is order-dependent and requires domains = 1";
  if symmetry <> None && not dedup then
    invalid_arg "Explore.explore: symmetry reduction requires dedup";
  (match resume_from with
  | Some cp ->
      if por then
        invalid_arg "Explore.explore: resume with por is unsupported (reduced runs are not resumable)";
      if symmetry <> None then
        invalid_arg "Explore.explore: resume with symmetry is unsupported";
      if cp.cp_por then
        invalid_arg "Explore.explore: checkpoint was taken with por; reduced runs are not resumable";
      if cp.cp_max_crashes <> max_crashes || cp.cp_max_steps <> max_steps || cp.cp_dedup <> dedup
      then
        invalid_arg
          (Printf.sprintf
             "Explore.explore: checkpoint was taken with max_crashes=%d max_steps=%d dedup=%b"
             cp.cp_max_crashes cp.cp_max_steps cp.cp_dedup)
  | None -> ());
  let start_time = if time_budget = None then 0. else Unix.gettimeofday () in
  (* Budgets bound the work of THIS invocation, not of the whole
     (possibly many-times-resumed) exploration: a resumed run starts its
     node allowance afresh above the checkpoint's counters, so chaining
     [explore ~node_budget ~resume_from] makes steady progress. *)
  let base_nodes = match resume_from with Some cp -> cp.cp_stats.nodes | None -> 0 in
  (* The node budget is shared across every domain so that parallel runs
     respect the same global bound as sequential ones. *)
  let nodes_total = Atomic.make 0 in
  (* The ambient persistency policy, captured here so worker domains
     (whose domain-local slots start empty) build their systems under the
     same policy as the main domain. *)
  let persist_cfg =
    match Persist.current () with
    | Some c -> Some (Persist.policy c, Persist.flush_cost c)
    | None -> None
  in
  (* Under the eager model a crash touches only its victim's control
     state, so it commutes with other processes' steps; a lossy cache
     makes it revert shared lines, which those steps may read. *)
  let eager_model =
    match persist_cfg with None | Some (Persist.Eager, _) -> true | Some _ -> false
  in
  (* A process body may raise (e.g. an algorithm hitting an assertion
     because a crash reverted an un-flushed write under a lossy cache);
     that is a property violation with a schedule, not an explorer
     error.  [prefix] is most-recent-first, as [violation] expects. *)
  let guarded_apply t c prefix =
    match apply_choice t c with
    | () -> ()
    | exception ((Invalid_argument m | Failure m) as e) ->
        (* Distinguish harness bugs from algorithm failures: our own
           defensive checks name their [Sim.]/[Schedule.] entry point. *)
        if String.starts_with ~prefix:"Sim." m || String.starts_with ~prefix:"Schedule." m
        then raise e
        else begin
          Sim.abandon t;
          raise (violation ("uncaught exception in process body: " ^ m) prefix)
        end
  in
  let replay prefix =
    (* Fingerprinting needs every system under its own arena; the arena
       stays active while the system runs so that lazily created objects
       keep registering (the explorer runs one system at a time per
       domain).  The arena active before [explore] is restored on exit.
       Likewise every system gets a fresh write-back cache of the ambient
       policy: lines are per-system state.  Object ids restart at zero so
       footprints are comparable across replays of the same prefix. *)
    Rcons_spec.Footprint.reset_oids ();
    if dedup then Heap.activate (Heap.create ());
    (match persist_cfg with
    | Some (p, fc) -> Persist.activate (Persist.create ~flush_cost:fc p)
    | None -> ());
    let t, check = mk () in
    let applied = ref [] in
    List.iter
      (fun c ->
        applied := c :: !applied;
        guarded_apply t c !applied;
        match check () with
        | () -> ()
        | exception Violation_found msg ->
            Sim.abandon t;
            raise (violation msg prefix))
      (List.rev prefix);
    (t, check)
  in
  (* The symmetry group is derived from the class list and the process
     count of the first system built; computed once, in the main domain
     (the root state is always fingerprinted before workers start). *)
  let perms_cache = Atomic.make None in
  let perms_for t =
    match Atomic.get perms_cache with
    | Some ps -> ps
    | None ->
        let ps =
          Sim.relabelings
            ~classes:(match symmetry with Some c -> c | None -> assert false)
            (Sim.num_procs t)
        in
        Atomic.set perms_cache (Some ps);
        ps
  in
  (* por + dedup identifies states by the ungraded fingerprint: remaining
     crash budget is all a state's futures depend on, so the discarded
     prefixes of crashed runs collapse. *)
  let ungraded = por && dedup in
  let fp_of cnt t =
    match symmetry with
    | None -> Sim.fingerprint_digest ~graded:(not ungraded) t
    | Some _ ->
        let d, beat =
          Sim.fingerprint_digest_canonical ~graded:(not ungraded) ~perms:(perms_for t) t
        in
        if beat then cnt.c_symmetry_hits <- cnt.c_symmetry_hits + 1;
        d
  in
  let visited_store vset =
    {
      st_claim = (fun cnt t ~mask:_ ~depth:_ -> Rcons_par.Visited.add vset (fp_of cnt t));
      st_distinct = (fun () -> Rcons_par.Visited.cardinal vset);
      st_elements = (fun () -> Rcons_par.Visited.elements vset);
    }
  in
  (* The por + dedup store (GHP95): a revisit is covered only if a
     previous expansion of the same state used a subset sleep mask (it
     explored at least the transitions we would) at no greater depth
     (its subtree was not truncated earlier by [max_steps] than ours
     would be); otherwise the state is re-expanded and the new
     (mask, depth) recorded.  Sequential-only, so a plain Hashtbl. *)
  let masked_store () =
    let tbl : (string, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
    {
      st_claim =
        (fun cnt t ~mask ~depth ->
          let fp = fp_of cnt t in
          let stored = Option.value (Hashtbl.find_opt tbl fp) ~default:[] in
          if List.exists (fun (m, d) -> m land mask = m && d <= depth) stored then false
          else begin
            Hashtbl.replace tbl fp ((mask, depth) :: stored);
            true
          end);
      st_distinct = (fun () -> Hashtbl.length tbl);
      st_elements = (fun () -> []);
    }
  in
  let mask_of_choice = function
    | Step_choice i -> 1 lsl (2 * i)
    | Crash_choice i -> 1 lsl ((2 * i) + 1)
  in
  let mask_of sleep = List.fold_left (fun m c -> m lor mask_of_choice c) 0 sleep in
  let choices t crashes_used =
    let n = Sim.num_procs t in
    let rec collect i acc =
      if i < 0 then acc
      else
        let acc = if Sim.finished t i then acc else Step_choice i :: acc in
        let acc =
          if crashes_used < max_crashes && Sim.started t i && not (Sim.finished t i) then
            Crash_choice i :: acc
          else acc
        in
        collect (i - 1) acc
    in
    collect (n - 1) []
  in
  (* One DFS walker over the schedule tree (or, with [store], the state
     graph).  [stop_depth = Some d] turns nodes at depth d into frontier
     emissions instead of recursions (phase 1 of the parallel split);
     [cancelled] is polled at every node by parallel subtree walkers.
     [sys], when given, is a live system already positioned after
     [prefix0]; the walker owns it (spine reuse).  [resume] is the
     remaining cursor path of a checkpoint being resumed: its spine is
     re-descended without counting, subtrees to its left are skipped, and
     everything to its right runs normally.  [sleep0] is the node's
     inherited sleep set (por mode; frontier items carry theirs into
     phase 2).  The [stop_depth = None], no-cancellation, no-store,
     no-resume instantiation is the plain sequential explorer. *)
  let walk ?stop_depth ?(emit = fun _ _ _ -> ()) ?(cancelled = fun () -> false) ?store ?sys
      ?(resume = []) ?(sleep0 = []) cnt prefix0 depth0 crashes0 =
    let budget_stats total =
      {
        schedules = cnt.c_schedules;
        nodes = total;
        max_depth = cnt.c_max_depth;
        dedup_hits = cnt.c_dedup_hits;
        distinct_states = (match store with Some st -> st.st_distinct () | None -> 0);
        por_pruned = cnt.c_por_pruned;
        symmetry_hits = cnt.c_symmetry_hits;
      }
    in
    let over_budget () =
      (match node_budget with Some b -> cnt.c_nodes - base_nodes > b | None -> false)
      ||
      match time_budget with
      | Some tb -> cnt.c_nodes land 255 = 0 && Unix.gettimeofday () -. start_time > tb
      | None -> false
    in
    (* Expand one node: [sys] is live, positioned after [prefix], and is
       consumed (handed to the first descended child, or abandoned at a
       leaf / after the loop / on an exception). *)
    let rec expand (t, check) prefix depth crashes_used resume sleep_in =
      let cs = choices t crashes_used in
      match cs with
      | [] ->
          Sim.abandon t;
          cnt.c_schedules <- cnt.c_schedules + 1
      | cs ->
          (* Footprints are read off the live system at node entry,
             before the first descended child consumes it. *)
          let fps =
            if por then begin
              let n = Sim.num_procs t in
              if n > 30 then invalid_arg "Explore.explore: por supports at most 30 processes";
              Array.init n (fun i ->
                  match Sim.pending_footprint t i with
                  | Some f -> f
                  | None -> Rcons_spec.Footprint.Global)
            end
            else [||]
          in
          let indep u c =
            match (u, c) with
            | Step_choice p, Step_choice q ->
                p <> q && Rcons_spec.Footprint.independent fps.(p) fps.(q)
            | Crash_choice p, Crash_choice q ->
                (* Swapping two crashes needs both executable in either
                   order, i.e. two remaining crash credits. *)
                p <> q && max_crashes - crashes_used >= 2
            | Crash_choice p, Step_choice q | Step_choice q, Crash_choice p ->
                p <> q && eager_model
          in
          (* Position of the resume cursor among this node's children:
             children before it were fully explored before the
             interrupt; the cursor spine itself ([on_path]) was already
             counted and claimed. *)
          let resume_idx, resume_rest =
            match resume with
            | [] -> (-1, [])
            | c0 :: rest ->
                let rec find k = function
                  | [] ->
                      invalid_arg
                        "Explore.explore: resume cursor does not match this workload (different \
                         mk or parameters?)"
                  | c :: tl -> if c = c0 then k else find (k + 1) tl
                in
                (find 0 cs, rest)
          in
          (* The first child actually descended inherits the parent's
             live system; under por the leading children may be asleep
             (por and resume are mutually exclusive, so [sleep_in] fully
             determines which).  -1: every child asleep, nobody takes
             the live system. *)
          let live_k =
            if resume_idx >= 0 then resume_idx
            else if not por then 0
            else
              let rec first k = function
                | [] -> -1
                | c :: tl -> if List.mem c sleep_in then first (k + 1) tl else k
              in
              first 0 cs
          in
          let sleep = ref sleep_in in
          let live = ref (Some (t, check)) in
          let take_live () =
            match !live with
            | Some sys ->
                live := None;
                sys
            | None -> assert false
          in
          let abandon_live () = match !live with Some (t, _) -> Sim.abandon t | None -> () in
          (try
             List.iteri
               (fun k c ->
                 if k < resume_idx then () (* left of the cursor: already explored *)
                 else if por && List.mem c !sleep then
                   (* Asleep: a sibling subtree already covers every
                      interleaving this child would start (modulo swaps
                      of independent transitions). *)
                   cnt.c_por_pruned <- cnt.c_por_pruned + 1
                 else begin
                   let on_path = k = resume_idx && resume_rest <> [] in
                   let depth' = depth + 1 in
                   let prefix' = c :: prefix in
                   let crashes' =
                     match c with
                     | Crash_choice _ -> crashes_used + 1
                     | Step_choice _ -> crashes_used
                   in
                   let child_sleep =
                     if por then List.filter (fun u -> indep u c) !sleep else []
                   in
                   let position () =
                     (* A live system positioned after [prefix']; the
                        first descended child continues the parent's
                        system (spine reuse), later siblings replay. *)
                     if k = live_k then begin
                       let t, check = take_live () in
                       guarded_apply t c prefix';
                       (match check () with
                       | () -> ()
                       | exception Violation_found msg ->
                           Sim.abandon t;
                           raise (violation msg prefix'));
                       (t, check)
                     end
                     else replay prefix'
                   in
                   (if on_path then
                      (* Re-descend the checkpoint spine: counted and (in
                         dedup mode) claimed before the interrupt, so
                         neither is repeated. *)
                      expand (position ()) prefix' depth' crashes' resume_rest []
                    else begin
                      cnt.c_nodes <- cnt.c_nodes + 1;
                      let total = Atomic.fetch_and_add nodes_total 1 + 1 in
                      if total > max_nodes then raise (Budget_exceeded (budget_stats total));
                      if budgeted && over_budget () then begin
                        (* Roll the uncounted-on-resume node back out of
                           the counters: the checkpoint's statistics are
                           exactly those of the explored region. *)
                        cnt.c_nodes <- cnt.c_nodes - 1;
                        raise (Interrupt_at (List.rev prefix'))
                      end;
                      if cancelled () then raise Cancelled;
                      if depth' > max_steps then
                        raise (violation "step bound exceeded (wait-freedom?)" prefix');
                      if depth' > cnt.c_max_depth then cnt.c_max_depth <- depth';
                      let frontier =
                        match stop_depth with Some d -> depth' >= d | None -> false
                      in
                      match store with
                      | None ->
                          if frontier then emit prefix' crashes' child_sleep
                          else expand (position ()) prefix' depth' crashes' [] child_sleep
                      | Some st ->
                          (* Dedup mode: position the child system even at
                             the frontier (its fingerprint must be claimed
                             before emission so phase 2 expands it exactly
                             once). *)
                          let sys' = position () in
                          if st.st_claim cnt (fst sys') ~mask:(mask_of child_sleep) ~depth:depth'
                          then
                            if frontier then begin
                              Sim.abandon (fst sys');
                              emit prefix' crashes' child_sleep
                            end
                            else expand sys' prefix' depth' crashes' [] child_sleep
                          else begin
                            cnt.c_dedup_hits <- cnt.c_dedup_hits + 1;
                            Sim.abandon (fst sys')
                          end
                    end);
                   (* The child's subtree is now fully covered (explored
                      here, emitted for phase 2, or claimed earlier), so
                      later siblings may sleep on it. *)
                   if por then sleep := c :: !sleep
                 end)
               cs;
             (* In raw parallel phase 1 every child of a pre-frontier node
                can be emitted rather than descended, leaving the parent's
                system unconsumed; release it rather than leak its fiber
                stacks. *)
             abandon_live ()
           with e ->
             abandon_live ();
             raise e)
    in
    (* Node entry checks, in the seed explorer's order. *)
    if cancelled () then begin
      (match sys with Some (t, _) -> Sim.abandon t | None -> ());
      raise Cancelled
    end;
    if depth0 > max_steps then begin
      (match sys with Some (t, _) -> Sim.abandon t | None -> ());
      raise (violation "step bound exceeded (wait-freedom?)" prefix0)
    end;
    if depth0 > cnt.c_max_depth then cnt.c_max_depth <- depth0;
    match stop_depth with
    | Some d when depth0 >= d ->
        (match sys with Some (t, _) -> Sim.abandon t | None -> ());
        emit prefix0 crashes0 sleep0
    | _ ->
        let sys = match sys with Some s -> s | None -> replay prefix0 in
        expand sys prefix0 depth0 crashes0 resume sleep0
  in
  (* The checkpoint/restore walker: ONE persistent system serves the
     whole (sub)tree.  Entering a child marks the undo journal, applies
     the choice in place and recurses; returning rolls the system back
     to the mark ([Sim.rollback]), so a later sibling costs O(steps
     since the fork point) instead of the O(depth) from-root replay the
     walker above pays.  Counting, budget checks, pruning and
     visited-claim order mirror [walk] operation for operation: the two
     engines must produce byte-identical statistics in every mode (the
     replay walker is kept verbatim above as the correctness oracle;
     test_search.ml pins the equivalence).  Exceptions unwind WITHOUT
     rolling back -- the system is dead to this walk either way, and
     the owner who installed the journal abandons it ([with_undo]). *)
  let walk_undo ?stop_depth ?(emit = fun _ _ _ -> ()) ?(cancelled = fun () -> false) ?store ~sys
      ?(resume = []) ?(sleep0 = []) cnt prefix0 depth0 crashes0 =
    let budget_stats total =
      {
        schedules = cnt.c_schedules;
        nodes = total;
        max_depth = cnt.c_max_depth;
        dedup_hits = cnt.c_dedup_hits;
        distinct_states = (match store with Some st -> st.st_distinct () | None -> 0);
        por_pruned = cnt.c_por_pruned;
        symmetry_hits = cnt.c_symmetry_hits;
      }
    in
    let over_budget () =
      (match node_budget with Some b -> cnt.c_nodes - base_nodes > b | None -> false)
      ||
      match time_budget with
      | Some tb -> cnt.c_nodes land 255 = 0 && Unix.gettimeofday () -. start_time > tb
      | None -> false
    in
    let t, check = sys in
    (* Apply [c] to the persistent system and run the invariant; the
       replay walker's [position]. *)
    let descend c prefix' =
      guarded_apply t c prefix';
      match check () with
      | () -> ()
      | exception Violation_found msg ->
          Sim.abandon t;
          raise (violation msg prefix')
    in
    let rec expand prefix depth crashes_used resume sleep_in =
      let cs = choices t crashes_used in
      match cs with
      | [] -> cnt.c_schedules <- cnt.c_schedules + 1 (* leaf; the system lives on *)
      | cs ->
          let fps =
            if por then begin
              let n = Sim.num_procs t in
              if n > 30 then invalid_arg "Explore.explore: por supports at most 30 processes";
              Array.init n (fun i ->
                  match Sim.pending_footprint t i with
                  | Some f -> f
                  | None -> Rcons_spec.Footprint.Global)
            end
            else [||]
          in
          let indep u c =
            match (u, c) with
            | Step_choice p, Step_choice q ->
                p <> q && Rcons_spec.Footprint.independent fps.(p) fps.(q)
            | Crash_choice p, Crash_choice q -> p <> q && max_crashes - crashes_used >= 2
            | Crash_choice p, Step_choice q | Step_choice q, Crash_choice p ->
                p <> q && eager_model
          in
          let resume_idx, resume_rest =
            match resume with
            | [] -> (-1, [])
            | c0 :: rest ->
                let rec find k = function
                  | [] ->
                      invalid_arg
                        "Explore.explore: resume cursor does not match this workload (different \
                         mk or parameters?)"
                  | c :: tl -> if c = c0 then k else find (k + 1) tl
                in
                (find 0 cs, rest)
          in
          let sleep = ref sleep_in in
          (* Last-child elision: nothing reads the system between the
             final child's return and the enclosing rollback (the
             parent's own, or the walk's end), so the last child skips
             its mark/rollback and lets that enclosing rollback restore
             both levels in one journal pop.  A chain of returns out of
             a deep leftmost subtree then costs ONE continuation rebuild
             instead of one per level -- the dominant saving, since a
             rebuild's fixed cost (discard + fresh fiber) dwarfs the
             journal pops.  Observable order is untouched: elision only
             moves WHEN state is restored, never what is walked. *)
          let last = List.length cs - 1 in
          List.iteri
            (fun k c ->
              if k < resume_idx then () (* left of the cursor: already explored *)
              else if por && List.mem c !sleep then
                cnt.c_por_pruned <- cnt.c_por_pruned + 1
              else begin
                let on_path = k = resume_idx && resume_rest <> [] in
                let depth' = depth + 1 in
                let prefix' = c :: prefix in
                let crashes' =
                  match c with
                  | Crash_choice _ -> crashes_used + 1
                  | Step_choice _ -> crashes_used
                in
                let child_sleep =
                  if por then List.filter (fun u -> indep u c) !sleep else []
                in
                let m = if k = last then None else Some (Sim.mark t) in
                let restore () = match m with Some m -> Sim.rollback t m | None -> () in
                (if on_path then begin
                   (* Re-descend the checkpoint spine: counted and (in
                      dedup mode) claimed before the interrupt. *)
                   descend c prefix';
                   expand prefix' depth' crashes' resume_rest [];
                   restore ()
                 end
                 else begin
                   cnt.c_nodes <- cnt.c_nodes + 1;
                   let total = Atomic.fetch_and_add nodes_total 1 + 1 in
                   if total > max_nodes then raise (Budget_exceeded (budget_stats total));
                   if budgeted && over_budget () then begin
                     cnt.c_nodes <- cnt.c_nodes - 1;
                     raise (Interrupt_at (List.rev prefix'))
                   end;
                   if cancelled () then raise Cancelled;
                   if depth' > max_steps then
                     raise (violation "step bound exceeded (wait-freedom?)" prefix');
                   if depth' > cnt.c_max_depth then cnt.c_max_depth <- depth';
                   let frontier =
                     match stop_depth with Some d -> depth' >= d | None -> false
                   in
                   match store with
                   | None ->
                       if frontier then emit prefix' crashes' child_sleep
                       else begin
                         descend c prefix';
                         expand prefix' depth' crashes' [] child_sleep;
                         restore ()
                       end
                   | Some st ->
                       (* Dedup mode: position the child even at the
                          frontier (its fingerprint must be claimed
                          before emission, exactly as in [walk]). *)
                       descend c prefix';
                       if st.st_claim cnt t ~mask:(mask_of child_sleep) ~depth:depth' then begin
                         if frontier then emit prefix' crashes' child_sleep
                         else expand prefix' depth' crashes' [] child_sleep;
                         restore ()
                       end
                       else begin
                         cnt.c_dedup_hits <- cnt.c_dedup_hits + 1;
                         restore ()
                       end
                 end);
                if por then sleep := c :: !sleep
              end)
            cs
    in
    if cancelled () then raise Cancelled;
    if depth0 > max_steps then raise (violation "step bound exceeded (wait-freedom?)" prefix0);
    if depth0 > cnt.c_max_depth then cnt.c_max_depth <- depth0;
    match stop_depth with
    | Some d when depth0 >= d -> emit prefix0 crashes0 sleep0
    | _ -> expand prefix0 depth0 crashes0 resume sleep0
  in
  (* Journal ownership for undo-mode walks: the journal is installed
     BEFORE the system is built, so every step value from the root on
     lands in the per-process vlogs (rollback rebuilds continuations by
     feeding them back); it is uninstalled -- flushing its telemetry --
     when the walk ends, and the walk's single persistent system is
     abandoned however the walk exits (normally, [Violation],
     [Interrupt_at], [Cancelled], ...). *)
  let with_undo mk_sys f =
    Undo.install ();
    Fun.protect ~finally:Undo.uninstall @@ fun () ->
    let sys = mk_sys () in
    Fun.protect ~finally:(fun () -> Sim.abandon (fst sys)) @@ fun () -> f sys
  in
  (* Claim the root state in the visited store and hand its live system
     to the walker (the root is expanded, never reached through an edge).
     On a resumed run the root is already claimed; the claim is then a
     no-op returning [false]. *)
  let claim_root store cnt =
    let t, check = replay [] in
    ignore (store.st_claim cnt t ~mask:0 ~depth:0);
    (t, check)
  in
  let stats_of ?store cnt =
    {
      schedules = cnt.c_schedules;
      nodes = cnt.c_nodes;
      max_depth = cnt.c_max_depth;
      dedup_hits = cnt.c_dedup_hits;
      distinct_states = (match store with Some st -> st.st_distinct () | None -> 0);
      por_pruned = cnt.c_por_pruned;
      symmetry_hits = cnt.c_symmetry_hits;
    }
  in
  (* Sequential runs (plain and resumed): convert a budget trip into a
     self-describing checkpoint. *)
  let run_seq ?store cnt resume =
    match
      if use_undo then
        match store with
        | Some st ->
            with_undo
              (fun () -> claim_root st cnt)
              (fun sys -> walk_undo ~store:st ~sys ~resume cnt [] 0 0)
        | None -> with_undo (fun () -> replay []) (fun sys -> walk_undo ~sys ~resume cnt [] 0 0)
      else begin
        match store with
        | Some st ->
            let sys = claim_root st cnt in
            walk ~store:st ~sys ~resume cnt [] 0 0
        | None -> walk ~resume cnt [] 0 0
      end
    with
    | () -> stats_of ?store cnt
    | exception Interrupt_at cursor ->
        raise
          (Interrupted
             {
               cp_cursor = cursor;
               cp_stats = stats_of ?store cnt;
               cp_visited = (match store with Some st -> st.st_elements () | None -> []);
               cp_max_crashes = max_crashes;
               cp_max_steps = max_steps;
               cp_dedup = dedup;
               cp_por = por;
               cp_engine = (if use_undo then "undo" else "replay");
             })
  in
  let run_seq_dedup () =
    let cnt =
      match resume_from with
      | Some cp -> counter_of_stats cp.cp_stats
      | None -> fresh_counter ()
    in
    if por then run_seq ~store:(masked_store ()) cnt []
    else begin
      let vset = Rcons_par.Visited.create () in
      (match resume_from with
      | Some cp -> List.iter (fun d -> ignore (Rcons_par.Visited.add vset d)) cp.cp_visited
      | None -> ());
      run_seq ~store:(visited_store vset) cnt
        (match resume_from with Some cp -> cp.cp_cursor | None -> [])
    end
  in
  let saved_arena = Heap.current () in
  let saved_cache = Persist.current () in
  let restore_arena () =
    (match saved_arena with Some a -> Heap.activate a | None -> Heap.deactivate ());
    Persist.restore saved_cache
  in
  let prov =
    {
      Schedule.origin = "explore";
      seed = None;
      params =
        ([
           ("max_crashes", string_of_int max_crashes);
           ("max_steps", string_of_int max_steps);
           ("dedup", string_of_bool dedup);
         ]
        @ (if por then [ ("por", "true") ] else [])
        @ (match symmetry with
          | None -> []
          | Some classes ->
              [
                ( "symmetry",
                  String.concat ""
                    (List.map
                       (fun cls ->
                         "[" ^ String.concat " " (List.map string_of_int cls) ^ "]")
                       classes) );
              ])
        @
        match persist_cfg with
        | None | Some (Persist.Eager, 1) -> []
        | Some (p, fc) ->
            [ ("persist", Persist.policy_to_string p); ("flush_cost", string_of_int fc) ]);
      fingerprint;
    }
  in
  let attach_provenance f =
    try f ()
    with Violation v when v.v_provenance = None ->
      raise (Violation { v with v_provenance = Some prov })
  in
  attach_provenance @@ fun () ->
  Fun.protect ~finally:restore_arena @@ fun () ->
  match resume_from with
  | Some cp when cp.cp_cursor = [] ->
      (* An empty cursor marks a checkpoint of a completed exploration:
         there is nothing to its right.  Resuming used to re-walk the
         whole tree on top of the checkpoint's totals; return them
         unchanged instead. *)
      cp.cp_stats
  | _ ->
      if workers <= 1 then
        if dedup then run_seq_dedup ()
        else begin
          let cnt =
            match resume_from with
            | Some cp -> counter_of_stats cp.cp_stats
            | None -> fresh_counter ()
          in
          run_seq cnt (match resume_from with Some cp -> cp.cp_cursor | None -> [])
        end
      else if dedup then begin
        (* Parallel dedup: walkers share the visited set; exactly-once
           expansion makes all statistics schedule-order independent, so no
           watermark is needed for pass runs.  Any violation falls back to
           the deterministic sequential dedup pass (see header comment). *)
        let store = visited_store (Rcons_par.Visited.create ()) in
        let frontier_rev = ref [] in
        let cnt0 = fresh_counter () in
        let violated = Atomic.make false in
        (* A frontier item (prefix, crashes, sleep) is the compact
           journal-delta token of the handoff: undo journals (and the
           continuations they rebuild) are domain-local, so a subtree
           cannot ship its live system across domains -- the receiving
           walker replays the prefix once to re-materialize the fork
           point, then explores its whole subtree by rollback. *)
        let emit_frontier prefix crashes sleep =
          frontier_rev := (prefix, crashes, sleep) :: !frontier_rev
        in
        let phase1 =
          match
            if use_undo then
              with_undo
                (fun () -> claim_root store cnt0)
                (fun sys ->
                  walk_undo ~stop_depth:frontier_depth ~emit:emit_frontier ~store ~sys cnt0 [] 0 0)
            else
              let sys = claim_root store cnt0 in
              walk ~stop_depth:frontier_depth ~emit:emit_frontier ~store ~sys cnt0 [] 0 0
          with
          | () -> Ok ()
          | exception Violation _ -> Error ()
        in
        match phase1 with
        | Error () -> run_seq_dedup ()
        | Ok () -> (
            let frontier = Array.of_list (List.rev !frontier_rev) in
            let nf = Array.length frontier in
            let results =
              Rcons_par.Pool.map ~domains:workers nf (fun i ->
                  if Atomic.get violated then None
                  else
                    let prefix, crashes, sleep = frontier.(i) in
                    let cnt = fresh_counter () in
                    let cancelled () = Atomic.get violated in
                    match
                      if use_undo then
                        with_undo
                          (fun () -> replay prefix)
                          (fun sys ->
                            walk_undo ~cancelled ~store ~sys ~sleep0:sleep cnt prefix
                              frontier_depth crashes)
                      else walk ~cancelled ~store ~sleep0:sleep cnt prefix frontier_depth crashes
                    with
                    | () -> Some (Ok cnt)
                    | exception Cancelled -> None
                    | exception Violation _ ->
                        Atomic.set violated true;
                        Some (Error ()))
            in
            match
              Array.exists (function Some (Error ()) -> true | _ -> false) results
            with
            | true -> run_seq_dedup ()
            | false ->
                let merged =
                  Array.fold_left
                    (fun acc r ->
                      match r with
                      | Some (Ok c) ->
                          {
                            acc with
                            schedules = acc.schedules + c.c_schedules;
                            nodes = acc.nodes + c.c_nodes;
                            max_depth = max acc.max_depth c.c_max_depth;
                            dedup_hits = acc.dedup_hits + c.c_dedup_hits;
                            por_pruned = acc.por_pruned + c.c_por_pruned;
                            symmetry_hits = acc.symmetry_hits + c.c_symmetry_hits;
                          }
                      | Some (Error ()) | None -> acc)
                    (stats_of cnt0) results
                in
                { merged with distinct_states = store.st_distinct () })
      end
      else begin
        (* Phase 1: sequential walk down to the frontier.  A violation at
           depth < frontier_depth does NOT abort immediately: in DFS order it
           comes after the complete subtrees of every frontier node emitted
           before it, so those subtrees must still be searched -- one of them
           may contain the violation the sequential explorer would have
           reported first. *)
        let frontier_rev = ref [] in
        let cnt0 = fresh_counter () in
        (* See the dedup branch: the (prefix, crashes, sleep) triple is
           the cross-domain handoff token; phase 2 replays it once. *)
        let emit_frontier prefix crashes sleep =
          frontier_rev := (prefix, crashes, sleep) :: !frontier_rev
        in
        let phase1_violation =
          match
            if use_undo then
              with_undo
                (fun () -> replay [])
                (fun sys ->
                  walk_undo ~stop_depth:frontier_depth ~emit:emit_frontier ~sys cnt0 [] 0 0)
            else walk ~stop_depth:frontier_depth ~emit:emit_frontier cnt0 [] 0 0
          with
          | () -> None
          | exception Violation v -> Some v
        in
        let frontier = Array.of_list (List.rev !frontier_rev) in
        let nf = Array.length frontier in
        (* Phase 2: fan the frontier subtrees out across domains.  [best] is
           the smallest frontier index known to hold a violation; subtrees at
           larger indices cancel themselves. *)
        let best = Atomic.make max_int in
        let rec lower i =
          let b = Atomic.get best in
          if i < b && not (Atomic.compare_and_set best b i) then lower i
        in
        let results =
          Rcons_par.Pool.map ~domains:workers nf (fun i ->
              if Atomic.get best < i then None
              else
                let prefix, crashes, sleep = frontier.(i) in
                let cnt = fresh_counter () in
                let cancelled () = Atomic.get best < i in
                match
                  if use_undo then
                    with_undo
                      (fun () -> replay prefix)
                      (fun sys ->
                        walk_undo ~cancelled ~sys ~sleep0:sleep cnt prefix frontier_depth crashes)
                  else walk ~cancelled ~sleep0:sleep cnt prefix frontier_depth crashes
                with
                | () -> Some (Ok (stats_of cnt))
                | exception Cancelled -> None
                | exception Violation v ->
                    lower i;
                    Some (Error v))
        in
        (* Merge in frontier order: the first subtree violation is exactly the
           first violation of the sequential DFS; a phase-1 violation orders
           after every emitted subtree. *)
        let first_violation =
          Array.to_seq results
          |> Seq.filter_map (function Some (Error v) -> Some v | _ -> None)
          |> Seq.uncons
        in
        (match first_violation with Some (v, _) -> raise (Violation v) | None -> ());
        (match phase1_violation with Some v -> raise (Violation v) | None -> ());
        Array.fold_left
          (fun acc r ->
            match r with
            | Some (Ok s) ->
                {
                  acc with
                  schedules = acc.schedules + s.schedules;
                  nodes = acc.nodes + s.nodes;
                  max_depth = max acc.max_depth s.max_depth;
                  por_pruned = acc.por_pruned + s.por_pruned;
                }
            | Some (Error _) -> acc
            | None -> acc)
          (stats_of cnt0) results
      end
