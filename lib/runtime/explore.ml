(* Bounded exhaustive schedule exploration ("stateless model checking").

   The explorer enumerates every schedule of a freshly created system --
   each point chooses either a step of an unfinished process or a crash of
   a started, unfinished process (bounded by [max_crashes]) -- and runs a
   user invariant after every choice.  OCaml continuations are one-shot,
   so backtracking re-executes the schedule prefix from scratch on a fresh
   system; process bodies must therefore be deterministic.

   Spine reuse: the first child of every node continues the parent's live
   system instead of replaying its prefix from the root, so the leftmost
   descent of each subtree is free and only backtracking (later siblings)
   pays the O(depth) replay.

   Pruning: crashing a process that has not taken a step since its last
   (re)start is a no-op in the model (it would restart at the beginning,
   where it already is), so such choices are skipped; this also prevents
   consecutive duplicate crashes.

   Deduplication ([dedup = true]): two schedules that reach the same
   global state -- same non-volatile heap (via [Heap] arenas and
   [Sim.fingerprint]) and same per-process control state -- have identical
   futures, so the schedule tree is explored as a state graph: a sharded
   concurrent visited set ([Rcons_par.Visited]) claims each fingerprint
   exactly once, the claimant expands the state's children, and every
   later encounter is counted as a dedup hit and pruned.  Because the
   fingerprint includes cumulative per-process step/crash counts, the
   state graph is graded by depth, so the set of expanded states and
   walked edges -- and therefore every statistic -- is independent of
   visit order and of the domain count.  Statistics change meaning under
   dedup ([nodes] counts state-graph edges, not tree edges), which is why
   it is off by default: raw counts are what the paper-facing tables use.

   Parallel mode ([domains > 1]): the tree is walked sequentially down to
   [frontier_depth]; the nodes of that frontier -- in DFS order, which
   with the fixed choice ordering is lexicographic order on schedules --
   are then distributed across OCaml 5 domains, each re-executing its
   subtree on its own fresh systems built by [mk].  Per-subtree statistics
   are merged in frontier order, and if any subtree finds a violation the
   one with the smallest frontier index wins (with an atomic watermark
   cancelling subtrees that can no longer win), so the schedule reported
   is exactly the one the sequential DFS would have raised first: results
   of completed explorations are bit-identical to the sequential path.
   With [dedup = true] the walkers instead share the visited set (their
   statistics are order-independent, see above); if any walker finds a
   violation the run falls back to one sequential deduplicating pass,
   whose first violation is deterministic -- so seq and par dedup runs
   report identical stats and identical violation schedules, though the
   dedup violation schedule may differ from the raw-mode one. *)

type choice = Step_choice of int | Crash_choice of int

let pp_choice ppf = function
  | Step_choice i -> Format.fprintf ppf "step(p%d)" i
  | Crash_choice i -> Format.fprintf ppf "crash(p%d)" i

let pp_schedule ppf cs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_choice ppf cs

exception Violation of string * choice list

type stats = {
  schedules : int;
  nodes : int;
  max_depth : int;
  dedup_hits : int; (* 0 unless [dedup] *)
  distinct_states : int; (* 0 unless [dedup] *)
}

let apply_choice t = function
  | Step_choice i -> ignore (Sim.step_proc t i)
  | Crash_choice i -> Sim.crash t i

(* [mk ()] must build a fresh system together with an invariant checker;
   the checker raises [Violation_found msg] (via [fail]) on a property
   violation.  It is run after every choice, so violations are reported at
   the earliest point they are observable. *)
exception Violation_found of string

let fail msg = raise (Violation_found msg)

exception Budget_exceeded of stats
(* Raised when the exploration tree exceeds [max_nodes]; callers choose
   bounds so that this does not happen in CI, but a runaway configuration
   fails fast instead of hanging. *)

(* Per-walker statistics; one per domain in parallel mode, merged in
   frontier order at the end. *)
type counter = {
  mutable c_schedules : int;
  mutable c_nodes : int;
  mutable c_max_depth : int;
  mutable c_dedup_hits : int;
}

let fresh_counter () = { c_schedules = 0; c_nodes = 0; c_max_depth = 0; c_dedup_hits = 0 }

exception Cancelled
(* Internal: a parallel subtree walker learned that its result can no
   longer matter (a smaller frontier index holds a violation in raw mode;
   any walker does in dedup mode). *)

let explore ?(max_crashes = 1) ?(max_steps = 10_000) ?(max_nodes = 20_000_000) ?domains
    ?(frontier_depth = 4) ?(dedup = false) ~mk () =
  let workers = Rcons_par.Pool.resolve_domains domains in
  let frontier_depth = max 1 frontier_depth in
  (* The node budget is shared across every domain so that parallel runs
     respect the same global bound as sequential ones. *)
  let nodes_total = Atomic.make 0 in
  let replay prefix =
    (* Fingerprinting needs every system under its own arena; the arena
       stays active while the system runs so that lazily created objects
       keep registering (the explorer runs one system at a time per
       domain).  The arena active before [explore] is restored on exit. *)
    if dedup then Heap.activate (Heap.create ());
    let t, check = mk () in
    List.iter
      (fun c ->
        apply_choice t c;
        match check () with
        | () -> ()
        | exception Violation_found msg ->
            Sim.abandon t;
            raise (Violation (msg, List.rev prefix)))
      (List.rev prefix);
    (t, check)
  in
  let fp_of t = Digest.string (Sim.fingerprint t) in
  let choices t crashes_used =
    let n = Sim.num_procs t in
    let rec collect i acc =
      if i < 0 then acc
      else
        let acc = if Sim.finished t i then acc else Step_choice i :: acc in
        let acc =
          if crashes_used < max_crashes && Sim.started t i && not (Sim.finished t i) then
            Crash_choice i :: acc
          else acc
        in
        collect (i - 1) acc
    in
    collect (n - 1) []
  in
  (* One DFS walker over the schedule tree (or, with [visited], the state
     graph).  [stop_depth = Some d] turns nodes at depth d into frontier
     emissions instead of recursions (phase 1 of the parallel split);
     [cancelled] is polled at every node by parallel subtree walkers.
     [sys], when given, is a live system already positioned after
     [prefix0]; the walker owns it (spine reuse).  The [stop_depth =
     None], no-cancellation, no-visited instantiation is the plain
     sequential explorer. *)
  let walk ?stop_depth ?(emit = fun _ _ -> ()) ?(cancelled = fun () -> false) ?visited ?sys cnt
      prefix0 depth0 crashes0 =
    let budget_stats total =
      {
        schedules = cnt.c_schedules;
        nodes = total;
        max_depth = cnt.c_max_depth;
        dedup_hits = cnt.c_dedup_hits;
        distinct_states = (match visited with Some v -> Rcons_par.Visited.cardinal v | None -> 0);
      }
    in
    (* Expand one node: [sys] is live, positioned after [prefix], and is
       consumed (handed to the first child, or abandoned at a leaf / on an
       exception before the first child takes it). *)
    let rec expand (t, check) prefix depth crashes_used =
      let cs = choices t crashes_used in
      match cs with
      | [] ->
          Sim.abandon t;
          cnt.c_schedules <- cnt.c_schedules + 1
      | cs ->
          let live = ref (Some (t, check)) in
          let take_live () =
            match !live with
            | Some sys ->
                live := None;
                sys
            | None -> assert false
          in
          let abandon_live () = match !live with Some (t, _) -> Sim.abandon t | None -> () in
          (try
             List.iteri
               (fun k c ->
                 cnt.c_nodes <- cnt.c_nodes + 1;
                 let total = Atomic.fetch_and_add nodes_total 1 + 1 in
                 if total > max_nodes then raise (Budget_exceeded (budget_stats total));
                 if cancelled () then raise Cancelled;
                 let depth' = depth + 1 in
                 let prefix' = c :: prefix in
                 if depth' > max_steps then
                   raise (Violation ("step bound exceeded (wait-freedom?)", List.rev prefix'));
                 if depth' > cnt.c_max_depth then cnt.c_max_depth <- depth';
                 let crashes' =
                   match c with
                   | Crash_choice _ -> crashes_used + 1
                   | Step_choice _ -> crashes_used
                 in
                 let frontier = match stop_depth with Some d -> depth' >= d | None -> false in
                 match visited with
                 | None ->
                     if frontier then emit prefix' crashes'
                     else
                       let sys' =
                         if k = 0 then begin
                           let t, check = take_live () in
                           apply_choice t c;
                           (match check () with
                           | () -> ()
                           | exception Violation_found msg ->
                               Sim.abandon t;
                               raise (Violation (msg, List.rev prefix')));
                           (t, check)
                         end
                         else replay prefix'
                       in
                       expand sys' prefix' depth' crashes'
                 | Some vset ->
                     (* Dedup mode: position the child system even at the
                        frontier (its fingerprint must be claimed before
                        emission so phase 2 expands it exactly once). *)
                     let sys' =
                       if k = 0 then begin
                         let t, check = take_live () in
                         apply_choice t c;
                         (match check () with
                         | () -> ()
                         | exception Violation_found msg ->
                             Sim.abandon t;
                             raise (Violation (msg, List.rev prefix')));
                         (t, check)
                       end
                       else replay prefix'
                     in
                     if Rcons_par.Visited.add vset (fp_of (fst sys')) then
                       if frontier then begin
                         Sim.abandon (fst sys');
                         emit prefix' crashes'
                       end
                       else expand sys' prefix' depth' crashes'
                     else begin
                       cnt.c_dedup_hits <- cnt.c_dedup_hits + 1;
                       Sim.abandon (fst sys')
                     end)
               cs
           with e ->
             abandon_live ();
             raise e)
    in
    (* Node entry checks, in the seed explorer's order. *)
    if cancelled () then begin
      (match sys with Some (t, _) -> Sim.abandon t | None -> ());
      raise Cancelled
    end;
    if depth0 > max_steps then begin
      (match sys with Some (t, _) -> Sim.abandon t | None -> ());
      raise (Violation ("step bound exceeded (wait-freedom?)", List.rev prefix0))
    end;
    if depth0 > cnt.c_max_depth then cnt.c_max_depth <- depth0;
    match stop_depth with
    | Some d when depth0 >= d ->
        (match sys with Some (t, _) -> Sim.abandon t | None -> ());
        emit prefix0 crashes0
    | _ ->
        let sys = match sys with Some s -> s | None -> replay prefix0 in
        expand sys prefix0 depth0 crashes0
  in
  (* Claim the root state in the visited set and hand its live system to
     the walker (the root is expanded, never reached through an edge). *)
  let claim_root vset =
    let t, check = replay [] in
    ignore (Rcons_par.Visited.add vset (fp_of t));
    (t, check)
  in
  let stats_of ?visited cnt =
    {
      schedules = cnt.c_schedules;
      nodes = cnt.c_nodes;
      max_depth = cnt.c_max_depth;
      dedup_hits = cnt.c_dedup_hits;
      distinct_states = (match visited with Some v -> Rcons_par.Visited.cardinal v | None -> 0);
    }
  in
  let run_seq_dedup () =
    let visited = Rcons_par.Visited.create () in
    let cnt = fresh_counter () in
    let sys = claim_root visited in
    walk ~visited ~sys cnt [] 0 0;
    stats_of ~visited cnt
  in
  let saved_arena = Heap.current () in
  let restore_arena () =
    match saved_arena with Some a -> Heap.activate a | None -> Heap.deactivate ()
  in
  Fun.protect ~finally:restore_arena @@ fun () ->
  if workers <= 1 then
    if dedup then run_seq_dedup ()
    else begin
      let cnt = fresh_counter () in
      walk cnt [] 0 0;
      stats_of cnt
    end
  else if dedup then begin
    (* Parallel dedup: walkers share the visited set; exactly-once
       expansion makes all statistics schedule-order independent, so no
       watermark is needed for pass runs.  Any violation falls back to
       the deterministic sequential dedup pass (see header comment). *)
    let visited = Rcons_par.Visited.create () in
    let frontier_rev = ref [] in
    let cnt0 = fresh_counter () in
    let violated = Atomic.make false in
    let phase1 =
      match
        let sys = claim_root visited in
        walk ~stop_depth:frontier_depth
          ~emit:(fun prefix crashes -> frontier_rev := (prefix, crashes) :: !frontier_rev)
          ~visited ~sys cnt0 [] 0 0
      with
      | () -> Ok ()
      | exception Violation _ -> Error ()
    in
    match phase1 with
    | Error () -> run_seq_dedup ()
    | Ok () -> (
        let frontier = Array.of_list (List.rev !frontier_rev) in
        let nf = Array.length frontier in
        let results =
          Rcons_par.Pool.map ~domains:workers nf (fun i ->
              if Atomic.get violated then None
              else
                let prefix, crashes = frontier.(i) in
                let cnt = fresh_counter () in
                match
                  walk
                    ~cancelled:(fun () -> Atomic.get violated)
                    ~visited cnt prefix frontier_depth crashes
                with
                | () -> Some (Ok cnt)
                | exception Cancelled -> None
                | exception Violation _ ->
                    Atomic.set violated true;
                    Some (Error ()))
        in
        match
          Array.exists (function Some (Error ()) -> true | _ -> false) results
        with
        | true -> run_seq_dedup ()
        | false ->
            let merged =
              Array.fold_left
                (fun acc r ->
                  match r with
                  | Some (Ok c) ->
                      {
                        acc with
                        schedules = acc.schedules + c.c_schedules;
                        nodes = acc.nodes + c.c_nodes;
                        max_depth = max acc.max_depth c.c_max_depth;
                        dedup_hits = acc.dedup_hits + c.c_dedup_hits;
                      }
                  | Some (Error ()) | None -> acc)
                (stats_of cnt0) results
            in
            { merged with distinct_states = Rcons_par.Visited.cardinal visited })
  end
  else begin
    (* Phase 1: sequential walk down to the frontier.  A violation at
       depth < frontier_depth does NOT abort immediately: in DFS order it
       comes after the complete subtrees of every frontier node emitted
       before it, so those subtrees must still be searched -- one of them
       may contain the violation the sequential explorer would have
       reported first. *)
    let frontier_rev = ref [] in
    let cnt0 = fresh_counter () in
    let phase1_violation =
      match
        walk ~stop_depth:frontier_depth
          ~emit:(fun prefix crashes -> frontier_rev := (prefix, crashes) :: !frontier_rev)
          cnt0 [] 0 0
      with
      | () -> None
      | exception Violation (msg, sched) -> Some (msg, sched)
    in
    let frontier = Array.of_list (List.rev !frontier_rev) in
    let nf = Array.length frontier in
    (* Phase 2: fan the frontier subtrees out across domains.  [best] is
       the smallest frontier index known to hold a violation; subtrees at
       larger indices cancel themselves. *)
    let best = Atomic.make max_int in
    let rec lower i =
      let b = Atomic.get best in
      if i < b && not (Atomic.compare_and_set best b i) then lower i
    in
    let results =
      Rcons_par.Pool.map ~domains:workers nf (fun i ->
          if Atomic.get best < i then None
          else
            let prefix, crashes = frontier.(i) in
            let cnt = fresh_counter () in
            match walk ~cancelled:(fun () -> Atomic.get best < i) cnt prefix frontier_depth crashes with
            | () -> Some (Ok (stats_of cnt))
            | exception Cancelled -> None
            | exception Violation (msg, sched) ->
                lower i;
                Some (Error (msg, sched)))
    in
    (* Merge in frontier order: the first subtree violation is exactly the
       first violation of the sequential DFS; a phase-1 violation orders
       after every emitted subtree. *)
    let first_violation =
      Array.to_seq results
      |> Seq.filter_map (function Some (Error v) -> Some v | _ -> None)
      |> Seq.uncons
    in
    (match first_violation with
    | Some ((msg, sched), _) -> raise (Violation (msg, sched))
    | None -> ());
    (match phase1_violation with Some (msg, sched) -> raise (Violation (msg, sched)) | None -> ());
    Array.fold_left
      (fun acc r ->
        match r with
        | Some (Ok s) ->
            {
              acc with
              schedules = acc.schedules + s.schedules;
              nodes = acc.nodes + s.nodes;
              max_depth = max acc.max_depth s.max_depth;
            }
        | Some (Error _) -> acc
        | None -> acc)
      (stats_of cnt0) results
  end
