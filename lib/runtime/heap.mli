(** Registry of the simulated non-volatile heap, for state fingerprinting.

    Shared objects live in ordinary OCaml values closed over by process
    bodies, so the simulator cannot enumerate them by itself.  While an
    arena is {!activate}d on the current domain, the shared-object
    constructors ({!Cell.make}, {!Growable.make}, {!Sim_obj.make}, the
    algorithm output logs) {!register} a digest thunk for their
    non-volatile state; {!snapshot} concatenates the digests in
    registration order.  Registration order is deterministic because
    system builders are deterministic, which is what makes
    {!Sim.fingerprint} replay-stable.

    With no active arena — the default, and always the case outside
    [Explore.explore ~dedup:true] — {!register} is a no-op, so ordinary
    simulations pay nothing.

    The active arena is domain-local ([Domain.DLS]): each parallel
    explorer walker builds and runs one system at a time on its own
    domain, and objects created lazily {e during} execution (Growable
    entries, the on-demand consensus instances of Figure 4) keep
    registering into the arena of the system currently running. *)

type t

val create : unit -> t
(** A fresh, empty arena (not yet active). *)

val activate : t -> unit
(** Make [a] the current domain's active arena; replaces any previous
    one.  Callers that nest (the explorer) save {!current} and restore
    it when done. *)

val deactivate : unit -> unit
(** No active arena on this domain (registration becomes a no-op). *)

val current : unit -> t option

val active : unit -> bool

val register : (unit -> string) -> unit
(** Register a digest thunk for one non-volatile object into the active
    arena; no-op if none.  The thunk is called at every {!snapshot}, so
    it must digest the object's {e current} state. *)

val register_sym : (int array option -> string) -> unit
(** Like {!register}, for objects whose digest mentions process ids
    (cache-line owners, per-process output logs).  The thunk receives
    the process relabeling of the snapshot being taken
    ([perm.(old_pid) = new_pid]; [None] = identity) and must digest the
    object {e as relabeled} — the explorer's process-symmetry
    canonicalization snapshots the heap under candidate relabelings.
    With [None] the digest must be byte-identical to what {!register}
    of the plain thunk would produce. *)

type slot
(** A cache slot for one registered digest: {!snapshot} recomputes the
    digest only while the slot is dirty and serves the cached bytes
    otherwise, making per-state hashing O(mutations since the last
    snapshot).  The emitted bytes are identical either way. *)

val register_c : (unit -> string) -> slot option
(** Cached variant of {!register}: returns the slot ([None] when no
    arena is active).  The caller {e must} {!touch} the slot on every
    mutation of the digested state — including from undo-journal restore
    closures — or snapshots go stale.  Reserved for the runtime's own
    containers; arbitrary instrumentation should keep using
    {!register}. *)

val register_sym_c : (int array option -> string) -> slot option
(** Cached variant of {!register_sym}.  Relabeled ([?perm]) snapshots
    always recompute sym slots (their bytes depend on the perm); the
    cache serves identity snapshots only. *)

val touch : slot option -> unit
(** Mark the slot dirty: the next snapshot recomputes its digest.
    [None] is a no-op, so call sites pass their stored [slot option]
    directly. *)

val digest : 'a -> string
(** Canonical digest of a plain-data value (Marshal with sharing
    expanded): byte equality coincides with structural equality.  Values
    capturing closures are digested by code pointer, which is stable
    within one binary. *)

val snapshot : ?perm:int array -> t -> string
(** The concatenated (length-prefixed) digests of every registered
    object, in registration order: the non-volatile half of a state
    fingerprint.  [?perm] relabels processes ([perm.(old) = new]) in
    every pid-bearing digest (see {!register_sym}); omitted = identity,
    byte-identical to the pre-symmetry format. *)

val snapshot_into : ?perm:int array -> Buffer.t -> t -> unit
(** [snapshot_into b a] appends exactly what {!snapshot} would return to
    [b].  Lets batch fingerprinting reuse one scratch buffer across many
    states instead of allocating per state. *)
