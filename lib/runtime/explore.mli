(** Bounded exhaustive schedule exploration (stateless model checking).

    Enumerates every schedule of a freshly created system -- each point
    chooses a step of an unfinished process or a crash of a started,
    unfinished process (at most [max_crashes] crashes) -- and runs the
    user invariant after every choice.  OCaml continuations are one-shot,
    so backtracking re-executes the schedule prefix on a fresh system;
    process bodies must be deterministic.  The first child of each node
    continues the parent's live system instead of replaying ("spine
    reuse"), so the leftmost descent of every subtree is free.

    Pruning: crashing a process that has not stepped since its last
    (re)start is a no-op in the model and is skipped, which also prunes
    consecutive duplicate crashes.

    {2 Deduplication}

    With [?dedup:true] the tree is explored as a {e state graph}: every
    reached state is fingerprinted ({!Sim.fingerprint} -- non-volatile
    heap snapshot plus per-process control state) and a concurrent
    visited set ({!Rcons_par.Visited}) ensures each distinct state is
    expanded exactly once; later encounters count as {!stats.dedup_hits}
    and are pruned.  Two schedules reaching the same fingerprint have
    identical futures, so pass/violation outcomes are preserved, but the
    statistics change meaning: [nodes] counts state-graph edges walked
    (not tree edges), [schedules] counts final states reached, and
    [distinct_states] reports the visited-set size.  Because the
    fingerprint includes cumulative per-process step/crash counts the
    state graph is graded by depth, making every statistic independent
    of visit order -- see the parallel contract below.  Dedup is {b off
    by default}: raw tree counts are what the paper-facing tables
    report, and fingerprinting requires all shared state to live in
    registered containers ({!Cell}, {!Growable}, {!Sim_obj}, the output
    logs).

    {2 Parallel exploration}

    With [?domains > 1] the schedule tree is split at [frontier_depth]:
    the top of the tree is walked sequentially, and each frontier subtree
    is re-executed on its own domain with its own fresh systems.

    In raw mode, statistics are merged in frontier (= DFS =
    lexicographic) order and the violation reported, if any, is the one
    the sequential DFS would have raised first, so completed runs are
    bit-identical to [?domains:1].  In dedup mode, walkers share the
    visited set; exactly-once expansion makes the merged statistics
    identical to the sequential dedup run on any domain count, and a
    violation found by any walker triggers one sequential deduplicating
    re-run whose first violation is, again, deterministic.  (The dedup
    violation schedule can differ from the raw-mode one -- dedup prunes
    some paths to a violating state -- but never between dedup runs.)

    The only caveat is {!Budget_exceeded}: the global [max_nodes] bound
    is enforced across all domains, but the statistics payload of the
    exception reflects the domain that tripped it.

    {2 Budgeted, resumable exploration}

    [?node_budget] / [?time_budget] (sequential mode only) turn an
    unbounded exhaustive run into a {e preemptible} one: when the budget
    trips, the explorer raises {!Interrupted} carrying a serializable
    {!checkpoint} -- the DFS cursor (the schedule prefix of the first
    node {e not yet counted}), the statistics of everything already
    explored, and (under dedup) the visited-set contents.  Passing the
    checkpoint back via [?resume_from] re-descends the cursor spine
    without re-counting it, skips the fully-explored subtrees to its
    left, and continues the DFS exactly where it stopped: the final
    statistics -- and any violation found -- are {b bit-identical} to an
    uninterrupted run, no matter how many times the run is cut and
    resumed.  Checkpoints serialize to JSON ({!save_checkpoint} /
    {!load_checkpoint}) and embed the parameters they were taken under;
    resuming with different [max_crashes] / [max_steps] / [dedup] is
    refused. *)

type choice = Schedule.choice = Step_choice of int | Crash_choice of int

val pp_choice : Format.formatter -> choice -> unit
val pp_schedule : Format.formatter -> choice list -> unit

(** An invariant violation: the offending schedule plus the provenance
    of the run that found it (origin, parameters, workload fingerprint
    -- see {!Schedule.provenance}).  [v_provenance] is always [Some]
    when the exception escapes {!explore}; it is [None] only for
    violations raised by other layers that attach their own provenance
    (the adversary harnesses). *)
type violation = {
  v_msg : string;
  v_schedule : choice list;
  v_provenance : Schedule.provenance option;
}

exception Violation of violation

(** Exploration totals.  [schedules] counts completed schedules (leaves;
    under dedup, distinct final states), [nodes] counts tree edges
    visited (under dedup, state-graph edges walked), [max_depth] is the
    deepest point reached.  [dedup_hits] (edges pruned because their
    target state was already claimed) and [distinct_states] (visited-set
    size, root included) are [0] unless [dedup] was on. *)
type stats = {
  schedules : int;
  nodes : int;
  max_depth : int;
  dedup_hits : int;
  distinct_states : int;
}

exception Violation_found of string
(** Raised by invariant checkers (via {!fail}) inside [mk]'s checker. *)

val fail : string -> 'a
(** Raise {!Violation_found}: how an invariant checker reports a
    violation to the explorer (and to the random drivers' sweeps). *)

exception Budget_exceeded of stats
(** The exploration tree exceeded [max_nodes]; fail fast instead of
    hanging.  Catching it turns the run into bounded (partial)
    exploration: no violation found within the budget. *)

type checkpoint
(** A resumable cut of an interrupted sequential exploration: DFS
    cursor, accumulated statistics, visited-set contents (dedup mode),
    and the parameters the run was started with. *)

exception Interrupted of checkpoint
(** A [node_budget] / [time_budget] tripped; the checkpoint resumes the
    run ({!explore}'s [?resume_from]) to bit-identical final results. *)

val checkpoint_stats : checkpoint -> stats
(** Statistics of the region explored before the interrupt (these are
    final for that region: resuming continues from them). *)

val checkpoint_cursor : checkpoint -> choice list
(** The schedule prefix of the first node the interrupted run did not
    count. *)

val checkpoint_to_json : checkpoint -> Json.t
val checkpoint_of_json : Json.t -> checkpoint

val save_checkpoint : file:string -> checkpoint -> unit
val load_checkpoint : file:string -> checkpoint

val apply_choice : Sim.t -> choice -> unit
(** Replay one schedule choice against a system (= {!Schedule.apply}). *)

val explore :
  ?max_crashes:int ->
  ?max_steps:int ->
  ?max_nodes:int ->
  ?domains:int ->
  ?frontier_depth:int ->
  ?dedup:bool ->
  ?node_budget:int ->
  ?time_budget:float ->
  ?resume_from:checkpoint ->
  ?fingerprint:string ->
  mk:(unit -> Sim.t * (unit -> unit)) ->
  unit ->
  stats
(** [explore ~mk ()] where [mk ()] builds a fresh system together with an
    invariant checker (raising via {!fail}).  Exceeding [max_steps] on a
    single schedule raises {!Violation} ("wait-freedom"); defaults:
    [max_crashes = 1], [max_steps = 10_000], [max_nodes = 20_000_000].

    [?domains] (default 1 = sequential) distributes frontier subtrees
    across that many OCaml 5 domains; [?frontier_depth] (default 4,
    clamped to >= 1) is the depth at which the tree is split.  [mk] is
    then called concurrently from several domains, so it must build
    genuinely fresh, unshared state on every call -- which the replay
    semantics already require.

    [?dedup] (default [false]) turns on state-space deduplication (see
    above).  Each replayed system is then built under a fresh {!Heap}
    arena; the arena active before the call, if any, is restored on
    exit.

    [?node_budget] (nodes counted by {e this} invocation -- a resumed
    run gets a fresh allowance) and [?time_budget] (wall seconds, polled
    every 256 nodes) make the run preemptible: the
    budget trip raises {!Interrupted} with a {!checkpoint}, and
    [?resume_from] continues a checkpointed run (see above).  Budgets
    and resume require [domains = 1] ([Invalid_argument] otherwise);
    resuming validates that [max_crashes] / [max_steps] / [dedup] match
    the checkpoint.

    [?fingerprint] is an optional workload identifier (object-type
    digest) recorded in the violation provenance so that counterexample
    artifacts can refuse replay against the wrong workload. *)
