(** Bounded exhaustive schedule exploration (stateless model checking).

    Enumerates every schedule of a freshly created system -- each point
    chooses a step of an unfinished process or a crash of a started,
    unfinished process (at most [max_crashes] crashes) -- and runs the
    user invariant after every choice.  OCaml continuations are one-shot,
    so backtracking re-executes the schedule prefix on a fresh system;
    process bodies must be deterministic.

    Pruning: crashing a process that has not stepped since its last
    (re)start is a no-op in the model and is skipped, which also prunes
    consecutive duplicate crashes.

    {2 Parallel exploration}

    With [?domains > 1] the schedule tree is split at [frontier_depth]:
    the top of the tree is walked sequentially, and each frontier subtree
    is re-executed on its own domain with its own fresh systems.
    Statistics are merged in frontier (= DFS = lexicographic) order and
    the violation reported, if any, is the one the sequential DFS would
    have raised first, so completed runs are bit-identical to
    [?domains:1].  The only caveat is {!Budget_exceeded}: the global
    [max_nodes] bound is enforced across all domains, but the statistics
    payload of the exception reflects the domain that tripped it. *)

type choice = Step_choice of int | Crash_choice of int

val pp_choice : Format.formatter -> choice -> unit
val pp_schedule : Format.formatter -> choice list -> unit

exception Violation of string * choice list
(** An invariant violation, with the schedule that triggered it. *)

(** Exploration totals: completed schedules (leaves), tree edges visited,
    and the deepest point reached. *)
type stats = { schedules : int; nodes : int; max_depth : int }

exception Violation_found of string
(** Raised by invariant checkers (via {!fail}) inside [mk]'s checker. *)

val fail : string -> 'a
(** Raise {!Violation_found}: how an invariant checker reports a
    violation to the explorer (and to the random drivers' sweeps). *)

exception Budget_exceeded of stats
(** The exploration tree exceeded [max_nodes]; fail fast instead of
    hanging.  Catching it turns the run into bounded (partial)
    exploration: no violation found within the budget. *)

val apply_choice : Sim.t -> choice -> unit
(** Replay one schedule choice against a system. *)

val explore :
  ?max_crashes:int ->
  ?max_steps:int ->
  ?max_nodes:int ->
  ?domains:int ->
  ?frontier_depth:int ->
  mk:(unit -> Sim.t * (unit -> unit)) ->
  unit ->
  stats
(** [explore ~mk ()] where [mk ()] builds a fresh system together with an
    invariant checker (raising via {!fail}).  Exceeding [max_steps] on a
    single schedule raises {!Violation} ("wait-freedom"); defaults:
    [max_crashes = 1], [max_steps = 10_000], [max_nodes = 20_000_000].

    [?domains] (default 1 = sequential) distributes frontier subtrees
    across that many OCaml 5 domains; [?frontier_depth] (default 4,
    clamped to >= 1) is the depth at which the tree is split.  [mk] is
    then called concurrently from several domains, so it must build
    genuinely fresh, unshared state on every call -- which the replay
    semantics already require. *)
