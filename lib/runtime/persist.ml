(* Pluggable persistency model: a volatile write-back cache between the
   simulated processes and the non-volatile heap.

   The seed model ([Eager], the default) idealizes persistent memory:
   every shared write is durable the instant the step executes, so a
   crash only destroys process-local state.  Real persistent-memory
   systems -- the setting of Golab's recoverable-consensus work
   (arXiv:1804.10597) and of detectable objects (arXiv:2002.11378) --
   interpose a volatile cache: a store becomes durable only once its
   cache line is written back, explicitly (CLWB/flush, fence) or at the
   hardware's whim.  This module models the adversarial end of that
   spectrum:

   - [Eager]  -- write-through; today's model, bit-identical behavior.
   - [Lossy]  -- a crash of process p reverts every cache line whose
                 latest write was by p and has not been flushed.
   - [Torn]   -- like [Lossy], but each of p's dirty lines independently
                 either persists or reverts, by a deterministic parity
                 rule, modelling a partial write-back racing the crash.

   Coherence is unaffected: processes always read the latest (volatile)
   value.  Only crash recovery observes the durable copy.

   A cache line is one shared location (a [Cell], a [Growable] entry, a
   [Sim_obj]); the owning module supplies [persist]/[revert] closures
   that copy volatile state to the durable shadow and back.  A line is
   *dirty* when its volatile and durable copies may differ, and records
   the pid of the last writer -- crashes are per-process in this model
   (the paper's independent-crash setting), so only the crashing
   process's write-backs are lost.

   Determinism and fingerprint soundness.  Everything here is a
   deterministic function of the schedule: lines get consecutive ids in
   creation order (system builders are deterministic), the [Torn] rule
   persists a dirty line of pid p on p's k-th crash iff
   (line id + k) mod 2 = 0 -- a function of data already present in
   [Sim.fingerprint] (per-process crash counts) and of per-line digests
   (owners are digested by the owning objects), never of the order in
   which the dirty set is traversed.  Equal fingerprints therefore still
   imply equal futures and explorer deduplication stays sound.

   Like [Heap] arenas, a cache is ambient and domain-local: [activate]
   installs it for the current domain, object constructors attach lines
   to whatever cache is ambient at creation time (none, or an [Eager]
   cache => no line, zero overhead, byte-identical digests), and [Sim]
   captures the ambient cache at [create] so crashes reach the right
   cache even if the ambient one has moved on (the deduplicating
   explorer's spine reuse does exactly that). *)

type policy = Eager | Lossy | Torn

let policy_to_string = function Eager -> "eager" | Lossy -> "lossy" | Torn -> "torn"

let policy_of_string = function
  | "eager" -> Eager
  | "lossy" -> Lossy
  | "torn" -> Torn
  | s -> invalid_arg (Printf.sprintf "Persist.policy_of_string: %S (want eager|lossy|torn)" s)

type cache = {
  policy : policy;
  flush_cost : int; (* simulated steps per flush/fence barrier *)
  mutable next_id : int;
  mutable dirty_lines : line list; (* exactly the lines with owner <> None *)
}

and line = {
  id : int;
  cache : cache;
  mutable owner : int option; (* pid of the latest writer; None = clean *)
  persist_now : unit -> unit; (* durable copy <- volatile copy *)
  revert_now : unit -> unit; (* volatile copy <- durable copy *)
  touch : unit -> unit; (* owner's fingerprint-cache invalidation hook *)
}

let create ?(flush_cost = 1) policy =
  if flush_cost < 1 then
    invalid_arg (Printf.sprintf "Persist.create: flush_cost %d < 1" flush_cost);
  { policy; flush_cost; next_id = 0; dirty_lines = [] }

let policy c = c.policy
let flush_cost c = c.flush_cost
let owner l = l.owner
let cache_of l = l.cache

(* Ambient cache for the current domain (mirror of the [Heap] arena). *)
let key : cache option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let activate c = Domain.DLS.set key (Some c)
let deactivate () = Domain.DLS.set key None
let current () = Domain.DLS.get key
let restore saved = Domain.DLS.set key saved

(* The step context: which (cache, pid) is executing a simulator step
   right now on this domain.  [Sim.step_proc] brackets each step of a
   cache-backed system with it; writes performed outside any step
   (set-up [poke]s) see no context and persist immediately. *)
let ctx : (cache * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let in_step c pid f =
  Domain.DLS.set ctx (Some (c, pid));
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx None) f

let no_touch () = ()

let attach ?(touch = no_touch) ~persist ~revert () =
  match Domain.DLS.get key with
  | None -> None
  | Some c when c.policy = Eager -> None (* write-through: no shadow copy needed *)
  | Some c ->
      let l =
        { id = c.next_id; cache = c; owner = None; persist_now = persist; revert_now = revert; touch }
      in
      (* Journal the id allocation: a rolled-back branch must hand out
         the same line ids on re-execution (the Torn crash rule keys on
         them), exactly like [Footprint] oids. *)
      if Undo.recording () then begin
        let id = l.id in
        Undo.log (fun () -> c.next_id <- id)
      end;
      c.next_id <- c.next_id + 1;
      Some l

let unlist l = l.cache.dirty_lines <- List.filter (fun l' -> l' != l) l.cache.dirty_lines

(* A write just landed on [l]'s volatile copy. *)
let dirty l =
  match Domain.DLS.get ctx with
  | Some (_, pid) ->
      if Undo.recording () then begin
        let ow = l.owner in
        if ow = None then
          Undo.log (fun () ->
              l.owner <- None;
              unlist l;
              l.touch ())
        else Undo.log (fun () -> l.owner <- ow; l.touch ())
      end;
      if l.owner = None then l.cache.dirty_lines <- l :: l.cache.dirty_lines;
      l.owner <- Some pid;
      l.touch ()
  | None ->
      (* outside any simulated step: set-up / checker writes are durable *)
      l.persist_now ();
      if l.owner <> None then begin
        if Undo.recording () then begin
          let ow = l.owner in
          let old = l.cache.dirty_lines in
          Undo.log (fun () ->
              l.owner <- ow;
              l.cache.dirty_lines <- old;
              l.touch ())
        end;
        l.owner <- None;
        unlist l;
        l.touch ()
      end

(* Write-back one line (the body of a flush barrier step).  Any process
   may flush any line, as on real hardware. *)
let flush_line l =
  if l.owner <> None then begin
    if Undo.recording () then begin
      let ow = l.owner in
      let old = l.cache.dirty_lines in
      Undo.log (fun () ->
          l.owner <- ow;
          l.cache.dirty_lines <- old;
          l.touch ())
    end;
    l.persist_now ();
    l.owner <- None;
    unlist l;
    l.touch ()
  end

(* Write-back every line last written by the process executing the
   current step (the body of a fence barrier step). *)
let fence_here () =
  match Domain.DLS.get ctx with
  | None -> ()
  | Some (c, pid) ->
      let mine, rest = List.partition (fun l -> l.owner = Some pid) c.dirty_lines in
      if mine <> [] && Undo.recording () then begin
        let owners = List.map (fun l -> (l, l.owner)) mine in
        let old = c.dirty_lines in
        Undo.log (fun () ->
            List.iter
              (fun (l, ow) ->
                l.owner <- ow;
                l.touch ())
              owners;
            c.dirty_lines <- old)
      end;
      List.iter
        (fun l ->
          l.persist_now ();
          l.owner <- None;
          l.touch ())
        mine;
      c.dirty_lines <- rest

(* Crash semantics.  [crashes] is the number of crashes [pid] had
   suffered before this one (= [Sim.crash_count] at the call). *)
let on_crash c ~pid ~crashes =
  let mine, rest = List.partition (fun l -> l.owner = Some pid) c.dirty_lines in
  if mine <> [] && Undo.recording () then begin
    let owners = List.map (fun l -> (l, l.owner)) mine in
    let old = c.dirty_lines in
    Undo.log (fun () ->
        List.iter
          (fun (l, ow) ->
            l.owner <- ow;
            l.touch ())
          owners;
        c.dirty_lines <- old)
  end;
  List.iter
    (fun l ->
      (match c.policy with
      | Eager -> () (* unreachable: eager caches create no lines *)
      | Lossy -> l.revert_now ()
      | Torn -> if (l.id + crashes) mod 2 = 0 then l.persist_now () else l.revert_now ());
      l.owner <- None;
      l.touch ())
    mine;
  c.dirty_lines <- rest

let dirty_count c = List.length c.dirty_lines

(* Run [f] with a fresh ambient cache of the given policy, restoring the
   previously ambient cache (if any) afterwards.  The bench sweeps and
   tests use this so caches never leak across workloads. *)
let scoped ?flush_cost p f =
  let saved = current () in
  activate (create ?flush_cost p);
  Fun.protect ~finally:(fun () -> restore saved) f
