(** Pluggable persistency model: a volatile write-back cache between
    simulated processes and the non-volatile heap.

    Under [Eager] (the default ambient state: no cache at all, or an
    [Eager] cache) every shared write is durable the moment its step
    executes -- the seed model, bit-identical in behavior and in
    fingerprints.  Under [Lossy]/[Torn], writes land in a volatile
    cache line first and a crash of process [p] loses (or, under
    [Torn], loses {e some of}) the lines [p] last wrote that were not
    yet written back with a flush or fence barrier.  Reads always see
    the volatile copy (cache coherence); only crash recovery observes
    the durable copy. *)

type policy = Eager | Lossy | Torn

val policy_to_string : policy -> string

val policy_of_string : string -> policy
(** Inverse of [policy_to_string]; raises [Invalid_argument] otherwise. *)

type cache
(** A write-back cache: the set of dirty lines of one simulated system,
    plus the policy and the flush cost. *)

type line
(** One cache line = one shared location.  Created by the shared-object
    constructors ([Cell], [Growable], [Sim_obj]) when a non-[Eager]
    cache is ambient. *)

val create : ?flush_cost:int -> policy -> cache
(** [flush_cost] (default 1, must be >= 1) is the number of simulated
    steps one flush/fence barrier costs. *)

val policy : cache -> policy
val flush_cost : cache -> int

val owner : line -> int option
(** Pid of the latest writer of a dirty line; [None] when the line is
    clean (volatile copy = durable copy).  Shared objects fold this
    into their registered digests so cache state enters
    [Sim.fingerprint]. *)

val cache_of : line -> cache

(** {2 Ambient cache (domain-local, mirrors [Heap] arenas)} *)

val activate : cache -> unit
val deactivate : unit -> unit
val current : unit -> cache option

val restore : cache option -> unit
(** [restore (current ())] brackets code that may activate caches. *)

val scoped : ?flush_cost:int -> policy -> (unit -> 'a) -> 'a
(** Run with a fresh ambient cache of the given policy; restores the
    previously ambient cache afterwards (exception-safe). *)

(** {2 Hooks for [Sim] and the shared-object constructors} *)

val in_step : cache -> int -> (unit -> 'a) -> 'a
(** Bracket one simulator step of pid [i] on a cache-backed system:
    establishes the (cache, pid) step context that [dirty] and
    [fence_here] consult. *)

val attach :
  ?touch:(unit -> unit) -> persist:(unit -> unit) -> revert:(unit -> unit) -> unit -> line option
(** Attach a line for a freshly created shared location to the ambient
    cache.  [persist] copies volatile -> durable, [revert] the reverse.
    [touch] (default no-op) is called after every line-state mutation
    (ownership change, write-back, crash handling) so the owning
    object can invalidate its {!Heap} fingerprint-cache slot.  Returns
    [None] (and the location behaves write-through) when no cache is
    ambient or the ambient cache is [Eager].  Line-state mutations are
    undo-journaled while a {!Undo} journal is recording, including the
    line-id allocation (the [Torn] crash rule keys on ids). *)

val dirty : line -> unit
(** Record a write to the line's volatile copy.  Inside a step, marks
    the line dirty with the stepping pid as owner; outside any step
    (set-up [poke]s), persists immediately. *)

val flush_line : line -> unit
(** Write the line back (body of a flush barrier step).  Any process may
    flush any line. *)

val fence_here : unit -> unit
(** Write back every line owned by the pid executing the current step
    (body of a fence barrier step). *)

val on_crash : cache -> pid:int -> crashes:int -> unit
(** Apply the policy's crash semantics to every line owned by [pid].
    [crashes] is the pid's crash count before this crash; the [Torn]
    rule persists a line iff [(line id + crashes) mod 2 = 0] -- a
    deterministic, traversal-order-independent function of fingerprinted
    data, keeping deduplication sound. *)

val dirty_count : cache -> int
(** Number of dirty lines (diagnostics and tests). *)
