(** Schedules -- sequences of step/crash choices -- and their metadata.

    A schedule is the currency of the whole fault-injection subsystem:
    the exhaustive explorer ({!Explore}) enumerates them, the seeded
    adversaries ({!Adversary}) sample and record them, the shrinker
    ({!Shrink}) minimizes them, and counterexample artifacts serialize
    them.  {!apply} replays one choice against a live system; replaying
    a recorded schedule against a fresh system built by the same
    deterministic builder reproduces the run exactly.

    {!provenance} is the self-description attached to violations and
    artifacts: where the schedule came from (exhaustive exploration or a
    named adversary policy), under which seed and parameters, and on
    which workload (an object-type fingerprint), so a witness file is
    replayable without the conversation that produced it. *)

type choice = Step_choice of int | Crash_choice of int

val pp_choice : Format.formatter -> choice -> unit
val pp : Format.formatter -> choice list -> unit

val apply : Sim.t -> choice -> unit
(** Replay one choice: [Step_choice i] steps process [i] (a no-op if it
    already finished), [Crash_choice i] crashes it. *)

val crashes : choice list -> int
(** Number of crash choices in the schedule. *)

val to_json : choice list -> Json.t
(** Compact array of ["s<pid>"] / ["c<pid>"] strings. *)

val of_json : Json.t -> choice list
(** @raise Invalid_argument on malformed input. *)

(** Where a schedule came from: enough to re-derive it. *)
type provenance = {
  origin : string;  (** ["explore"] or ["adversary:<policy>"] *)
  seed : int option;  (** adversary seed, when the origin is seeded *)
  params : (string * string) list;
      (** rendered knobs: crash budget, crash rate, dedup flag, ... *)
  fingerprint : string option;
      (** object-type / workload fingerprint (see
          {!Rcons.Counterexample}) tying the schedule to the system it
          was recorded against *)
}

val provenance_to_json : provenance -> Json.t
val provenance_of_json : Json.t -> provenance
val pp_provenance : Format.formatter -> provenance -> unit
