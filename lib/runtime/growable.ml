(* Unbounded array of shared cells, used for the infinite arrays of the
   paper (the D[1..infinity] register array and the consensus-instance
   sequence C_1, C_2, ... of Figure 4; footnote 2 explicitly allows an
   unbounded number of objects).  Entries are created on demand with a
   default generator; creation itself is not a process step -- only reads
   and writes of entries are.

   Fingerprinting: the whole array registers one canonical digest with
   the active Heap arena -- the materialized entries sorted by index,
   with entries still holding their default value elided.  Two
   executions that materialized different subsets of the (conceptually
   always-existing) array but wrote the same values therefore digest
   identically. *)

type 'a t = {
  default : int -> 'a;
  table : (int, 'a Cell.t) Hashtbl.t;
  mutable gslot : Heap.slot option; (* the container's fingerprint-cache slot *)
}

let make default =
  let t = { default; table = Hashtbl.create 16; gslot = None } in
  t.gslot <-
    Heap.register_sym_c (fun perm ->
      Hashtbl.fold
        (fun i c acc ->
          let d = Heap.digest (Cell.peek c) in
          let entry =
            match Cell.line c with
            | None ->
                (* Write-through entry: the seed format, byte-identical. *)
                if String.equal d (Heap.digest (t.default i)) then None
                else Some (Printf.sprintf "%d=%d:%s" i (String.length d) d)
            | Some l ->
                (* Cache-backed entry: the durable copy and the line
                   owner are part of the state; elide only entries that
                   are clean and default in both copies.  The owner is a
                   pid, relabeled under a symmetry snapshot. *)
                let dp = Heap.digest (Cell.peek_persisted c) in
                let ddef = Heap.digest (t.default i) in
                if Persist.owner l = None && String.equal d ddef && String.equal dp ddef
                then None
                else
                  Some
                    (Printf.sprintf "%d=%d:%s~%d:%s~%s" i (String.length d) d
                       (String.length dp) dp
                       (match (Persist.owner l, perm) with
                       | None, _ -> "c"
                       | Some p, None -> "p" ^ string_of_int p
                       | Some p, Some perm -> "p" ^ string_of_int perm.(p)))
          in
          match entry with None -> acc | Some e -> (i, e) :: acc)
        t.table []
      |> List.sort compare
      |> List.map snd
      |> String.concat ";");
  t

(* Lazy materialization is idempotent across an undo rollback and the
   value-feeding rebuild of [Sim.rollback]: a fed re-execution takes the
   [find_opt] hit path, and a rolled-back materialization removes the
   entry again (and rewinds the entry's oid via [Cell] journaling), so
   re-descending re-creates it identically.  Entry cells carry the
   container's cache slot: their writes and line transitions invalidate
   the container digest. *)
let cell t i =
  match Hashtbl.find_opt t.table i with
  | Some c -> c
  | None ->
      let c = Cell.make_unregistered ?slot:t.gslot (t.default i) in
      if Undo.recording () then
        Undo.log (fun () ->
            Hashtbl.remove t.table i;
            Heap.touch t.gslot);
      Hashtbl.add t.table i c;
      Heap.touch t.gslot;
      c

let read t i = Cell.read (cell t i)
let write t i v = Cell.write (cell t i) v

(* Persist barrier for one entry (materializing it if needed -- creation
   is not a step, the barrier is). *)
let flush t i = Cell.flush (cell t i)
let peek t i = Cell.peek (cell t i)
