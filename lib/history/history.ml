(* Concurrent operation histories with crash markers.

   A history records, in global time order, invocation and response events
   of high-level operations on an implemented object, plus process-crash
   markers.  Each operation carries a unique tag so that an operation that
   is interrupted by a crash and completed by the recovery code appears as
   ONE operation: the recovery's response closes the original invocation
   (this is the shape of history produced by the recoverable universal
   construction, whose recovery function finishes the last announced
   operation). *)

type ('o, 'r) event =
  | Invoke of { pid : int; tag : int; op : 'o }
  | Response of { pid : int; tag : int; resp : 'r }
  | Crash of { pid : int }
  | Persist of { pid : int; tag : int }
      (* the effect of operation [tag] is durable from this point on:
         recorded by persist-annotated implementations after their
         barriers complete (write-back cache model, [Persist]) *)

type ('o, 'r) t = { mutable events_rev : ('o, 'r) event list; mutable next_tag : int }

let create () = { events_rev = []; next_tag = 0 }

let invoke t ~pid op =
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  t.events_rev <- Invoke { pid; tag; op } :: t.events_rev;
  tag

let respond t ~pid ~tag resp = t.events_rev <- Response { pid; tag; resp } :: t.events_rev
let crash t ~pid = t.events_rev <- Crash { pid } :: t.events_rev
let persist t ~pid ~tag = t.events_rev <- Persist { pid; tag } :: t.events_rev
let events t = List.rev t.events_rev

(* Cheap structural save/restore, for undo-journaling call sites (this
   library stays runtime-agnostic; the simulation layers that append to
   a history journal it themselves).  The event list is immutable, so a
   save is two words. *)
type ('o, 'r) saved = ('o, 'r) event list * int

let save t = (t.events_rev, t.next_tag)

let restore t (events_rev, next_tag) =
  t.events_rev <- events_rev;
  t.next_tag <- next_tag

(* One operation extracted from a history: [res] is the index of its
   response event in the event sequence, or [max_int] when pending. *)
type ('o, 'r) operation = {
  op_pid : int;
  op_tag : int;
  op : 'o;
  resp : 'r option;
  inv : int;
  res : int;
}

let operations t =
  let evs = Array.of_list (events t) in
  let by_tag = Hashtbl.create 16 in
  Array.iteri
    (fun i ev ->
      match ev with
      | Invoke { pid; tag; op } ->
          Hashtbl.replace by_tag tag { op_pid = pid; op_tag = tag; op; resp = None; inv = i; res = max_int }
      | Response { tag; resp; _ } -> (
          match Hashtbl.find_opt by_tag tag with
          | Some o -> Hashtbl.replace by_tag tag { o with resp = Some resp; res = i }
          | None -> invalid_arg "History.operations: response without invocation")
      | Crash _ | Persist _ -> ())
    evs;
  Hashtbl.fold (fun _ o acc -> o :: acc) by_tag []
  |> List.sort (fun a b -> compare a.inv b.inv)

let num_crashes t =
  List.length (List.filter (function Crash _ -> true | _ -> false) (events t))
