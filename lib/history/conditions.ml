(* Crash-aware correctness conditions from Section 4 of the paper.

   The paper discusses several safety conditions for the crash-recovery
   setting and places RUniversal among them:

   - *Strict linearizability* (Aguilera and Frolund): an operation in
     progress when its process crashes is either linearized before the
     crash or not at all.  With volatile shared memory available,
     Berryhill, Golab and Tripunitara's construction achieves it; without
     volatile memory (our setting: everything is non-volatile and
     recovery completes interrupted operations) only weaker conditions
     hold -- and indeed the test suite exhibits RUniversal histories that
     are recoverably but not strictly linearizable.

   - *Recoverable linearizability* / nesting-safe recoverable
     linearizability: a crashed operation may be linearized within an
     interval that includes its recovery attempts; in our histories the
     recovery's response closes the original invocation, so this is the
     plain {!Linearizability.check} on the recorded history.

   - *Durable linearizability* (Izraelevitz, Mendes, Scott): the effects
     of operations persisted before a crash survive it.  Under the seed
     memory model (write-through: every write durable at its step) this
     coincided with the plain check; with the [Persist] write-back cache
     the distinction is real: a completed operation whose effect was
     never written back may vanish at a crash.  [durable_operations]
     implements the per-process-crash adaptation: an operation with a
     [Persist] marker is MANDATORY in the linearization (its effect is
     durable, so later reads must see it); a completed operation without
     one MAY vanish if any crash occurs after its invocation (we cannot
     know from the history alone whose cache line held its effect --
     helpers write on each other's behalf in RUniversal -- so any crash
     is conservatively allowed to have destroyed it; this avoids false
     violation reports), and MUST appear when no crash follows (nothing
     could have destroyed it).

   This module implements the strict variant by re-interpreting each
   operation's latest admissible linearization point: its response index,
   or the first crash of its process after the invocation, whichever is
   earlier. *)

(* The first crash of [pid] after event index [i], if any. *)
let first_crash_after events pid i =
  let rec go idx = function
    | [] -> None
    | History.Crash { pid = p } :: _ when p = pid && idx > i -> Some idx
    | _ :: rest -> go (idx + 1) rest
  in
  go 0 events

(* Tighten each operation's interval for strict linearizability: an
   operation whose process crashed while it was pending must linearize
   before that crash.  Operations whose process never crashed mid-flight
   are unchanged. *)
let strict_operations history =
  let events = History.events history in
  History.operations history
  |> List.map (fun (op : _ History.operation) ->
         match first_crash_after events op.op_pid op.inv with
         | Some crash_idx when crash_idx < op.res ->
             (* the crash hit while the operation was pending: its
                linearization deadline is the crash, and since the effect
                must be visible before the crash, later responses serve
                only as reads of the recorded result *)
             { op with res = crash_idx }
         | Some _ | None -> op)

let strictly_linearizable spec history =
  Linearizability.check spec (strict_operations history)

let recoverably_linearizable = Linearizability.check_history

(* Durable linearizability as an operation transformation over the same
   Wing & Gong oracle: persisted operations keep their response
   constraint; un-persisted completed operations followed by any crash
   become optional-with-free-response ([resp = None], [res = max_int] --
   exactly how the oracle treats pending operations: they may take
   effect with any response, or not at all). *)
let durable_operations history =
  let events = History.events history in
  let persisted =
    List.filter_map (function History.Persist { tag; _ } -> Some tag | _ -> None) events
  in
  let last_crash =
    List.mapi (fun i ev -> (i, ev)) events
    |> List.fold_left
         (fun acc -> function i, History.Crash _ -> Some i | _ -> acc)
         None
  in
  let any_crash_after i = match last_crash with Some c -> c > i | None -> false in
  History.operations history
  |> List.map (fun (op : _ History.operation) ->
         if op.resp = None then op (* pending: already optional *)
         else if List.mem op.op_tag persisted then op (* durable: mandatory *)
         else if any_crash_after op.inv then { op with resp = None; res = max_int }
         else op)

let durably_linearizable spec history =
  Linearizability.check spec (durable_operations history)

(* One window of the durable transformation, for online checkers that
   cut a long-running history into <= 62-operation slices (the Wing &
   Gong bitmask bound): operations with tags <= [after] are the already
   checked prefix whose effects the caller bakes into the window's
   initial state. *)
let durable_window ~after history =
  durable_operations history
  |> List.filter (fun (op : _ History.operation) -> op.op_tag > after)

let durably_linearizable_window spec ~after ~init history =
  Linearizability.check { spec with Linearizability.init } (durable_window ~after history)

(* Classification of one history against the three conditions; strict
   implies recoverable (tighter intervals only restrict the search). *)
type verdict = { recoverable : bool; strict : bool; durable : bool }

let classify spec history =
  let recoverable = recoverably_linearizable spec history in
  let strict = recoverable && strictly_linearizable spec history in
  let durable = durably_linearizable spec history in
  { recoverable; strict; durable }

(* --- Prefix durability of the replicated-log API ---

   The recoverable replicated log ([Rcons_log.Rlog]) is a chain of
   consensus instances indexed by slot; its API-level contract has three
   parts, checked over the operation history the log records:

   - per-slot agreement: every APPEND response for one slot returns the
     same value (each slot is one consensus instance -- the first
     durably installed proposal wins and everyone adopts it);
   - no committed-prefix regression: the quorum-counter readout over
     durable votes never decreases (the harness samples it into
     [committed_trace] -- after crashes, where a weak-persistency model
     could revert an un-flushed vote, and at the end);
   - durable linearizability of the log as one object: APPENDs with a
     [History.Persist] marker are mandatory in the linearization,
     completed-but-unpersisted ones may vanish at a crash
     ({!durably_linearizable} over {!log_spec}). *)

type 'v log_op = Append of { slot : int; value : 'v }

(* Sequential specification of the log: APPEND to a decided slot adopts
   the decided value, APPEND to a free slot installs its proposal.  The
   state is the decided-slot map. *)
let log_spec () =
  {
    Linearizability.init = [];
    apply =
      (fun s (Append { slot; value }) ->
        match List.assoc_opt slot s with
        | Some w -> (s, w)
        | None -> ((slot, value) :: s, value));
    equal_resp = ( = );
  }

type log_verdict = { slot_agreement : bool; prefix_monotone : bool; durable_lin : bool }

let log_verdict_ok v = v.slot_agreement && v.prefix_monotone && v.durable_lin

let log_slot_agreement history =
  let responses =
    History.operations history
    |> List.filter_map (fun (op : _ History.operation) ->
           match (op.op, op.resp) with
           | Append { slot; _ }, Some v -> Some (slot, v)
           | _, None -> None)
  in
  List.for_all
    (fun (s, v) -> List.for_all (fun (s', v') -> s <> s' || v = v') responses)
    responses

let prefix_durability ~committed_trace history =
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | [] | [ _ ] -> true
  in
  {
    slot_agreement = log_slot_agreement history;
    prefix_monotone = monotone committed_trace;
    durable_lin = durably_linearizable (log_spec ()) history;
  }
