(** Concurrent operation histories with crash markers.

    A history records, in global time order, invocation and response
    events of high-level operations plus process-crash markers.  Each
    operation carries a unique tag, so an operation interrupted by a
    crash and completed by the recovery code appears as ONE operation
    whose response arrives late -- the shape of history the recoverable
    universal construction produces. *)

type ('o, 'r) event =
  | Invoke of { pid : int; tag : int; op : 'o }
  | Response of { pid : int; tag : int; resp : 'r }
  | Crash of { pid : int }
  | Persist of { pid : int; tag : int }
      (** The effect of operation [tag] is durable from this point on;
          recorded by persist-annotated implementations after their
          write-back barriers complete.  Consumed by
          [Conditions.durably_linearizable]. *)

type ('o, 'r) t

val create : unit -> ('o, 'r) t

val invoke : ('o, 'r) t -> pid:int -> 'o -> int
(** Record an invocation; returns its fresh tag. *)

val respond : ('o, 'r) t -> pid:int -> tag:int -> 'r -> unit
val crash : ('o, 'r) t -> pid:int -> unit
val persist : ('o, 'r) t -> pid:int -> tag:int -> unit
val events : ('o, 'r) t -> ('o, 'r) event list

type ('o, 'r) saved
(** An O(1) structural snapshot of a history (the event list is
    immutable).  Lets simulation layers undo-journal their history
    appends while this library stays runtime-agnostic. *)

val save : ('o, 'r) t -> ('o, 'r) saved
val restore : ('o, 'r) t -> ('o, 'r) saved -> unit

(** One operation extracted from a history; [res = max_int] and
    [resp = None] when pending (cut off by a final crash). *)
type ('o, 'r) operation = {
  op_pid : int;
  op_tag : int;
  op : 'o;
  resp : 'r option;
  inv : int;
  res : int;
}

val operations : ('o, 'r) t -> ('o, 'r) operation list
(** Operations ordered by invocation index.
    @raise Invalid_argument on a response without an invocation. *)

val num_crashes : ('o, 'r) t -> int
