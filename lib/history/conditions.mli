(** Crash-aware correctness conditions from Section 4 of the paper:
    strict linearizability (an operation pending at its process's crash
    linearizes before the crash or not at all) versus recoverable
    linearizability (the recovery may complete it later).

    The paper observes that without volatile shared memory RUniversal
    satisfies only the weaker condition; the test suite exhibits
    concrete RUniversal histories that are recoverably but not strictly
    linearizable, and the experiment harness measures how often they
    occur.  Durable linearizability (persisted effects survive crashes)
    coincided with the plain check under the seed write-through model;
    with the [Persist] write-back cache it is checked for real against
    the history's [Persist] markers; see the implementation header. *)

val strict_operations :
  ('o, 'r) History.t -> ('o, 'r) History.operation list
(** Operations with intervals tightened to end at the first crash of
    their process while pending. *)

val strictly_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool
val recoverably_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool

val durable_operations :
  ('o, 'r) History.t -> ('o, 'r) History.operation list
(** Operations transformed for durable linearizability: ops with a
    [History.Persist] marker are mandatory; completed ops without one,
    followed by any crash, become optional with a free response (like
    pending ops -- the effect may have been lost with a volatile cache
    line); completed ops with no subsequent crash stay mandatory. *)

val durably_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool
(** {!Linearizability.check} over {!durable_operations}: every operation
    persisted before a crash must appear in the linearization,
    un-persisted completed operations may vanish. *)

type verdict = { recoverable : bool; strict : bool; durable : bool }

val classify : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> verdict
