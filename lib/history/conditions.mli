(** Crash-aware correctness conditions from Section 4 of the paper:
    strict linearizability (an operation pending at its process's crash
    linearizes before the crash or not at all) versus recoverable
    linearizability (the recovery may complete it later).

    The paper observes that without volatile shared memory RUniversal
    satisfies only the weaker condition; the test suite exhibits
    concrete RUniversal histories that are recoverably but not strictly
    linearizable, and the experiment harness measures how often they
    occur.  Durable linearizability (persisted effects survive crashes)
    coincided with the plain check under the seed write-through model;
    with the [Persist] write-back cache it is checked for real against
    the history's [Persist] markers; see the implementation header. *)

val strict_operations :
  ('o, 'r) History.t -> ('o, 'r) History.operation list
(** Operations with intervals tightened to end at the first crash of
    their process while pending. *)

val strictly_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool
val recoverably_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool

val durable_operations :
  ('o, 'r) History.t -> ('o, 'r) History.operation list
(** Operations transformed for durable linearizability: ops with a
    [History.Persist] marker are mandatory; completed ops without one,
    followed by any crash, become optional with a free response (like
    pending ops -- the effect may have been lost with a volatile cache
    line); completed ops with no subsequent crash stay mandatory. *)

val durably_linearizable : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> bool
(** {!Linearizability.check} over {!durable_operations}: every operation
    persisted before a crash must appear in the linearization,
    un-persisted completed operations may vanish. *)

val durable_window :
  after:int -> ('o, 'r) History.t -> ('o, 'r) History.operation list
(** {!durable_operations} restricted to operations with tags [> after]:
    one window of a long-running history, for online checkers that must
    respect {!Linearizability.check}'s 62-operation bound.  The caller
    owns the watermark and the window's initial state (the abstract
    state after the already-checked prefix). *)

val durably_linearizable_window :
  ('s, 'o, 'r) Linearizability.spec -> after:int -> init:'s -> ('o, 'r) History.t -> bool
(** {!durably_linearizable} of one {!durable_window}, started from
    [init] instead of the specification's initial state.  Sound online
    checking with one-window detection lag: an acknowledged effect
    reverted by a {e later} crash makes the {e next} window's responses
    inconsistent with its peeked initial state. *)

type verdict = { recoverable : bool; strict : bool; durable : bool }

val classify : ('s, 'o, 'r) Linearizability.spec -> ('o, 'r) History.t -> verdict

(** {2 Prefix durability of the replicated-log API}

    Correctness contract of the recoverable replicated log
    ([Rcons_log.Rlog]): per-slot agreement, monotonicity of the
    committed-prefix readout sampled by the harness, and durable
    linearizability of the log treated as one object. *)

type 'v log_op = Append of { slot : int; value : 'v }
(** The log's one API operation: propose [value] for [slot]; the
    response is the slot's decided value (the proposal of whoever won
    that slot's consensus instance). *)

val log_spec : unit -> ((int * 'v) list, 'v log_op, 'v) Linearizability.spec
(** Sequential specification: APPEND to a free slot installs its
    proposal and returns it; APPEND to a decided slot returns the
    decided value.  State is the decided-slot association list. *)

type log_verdict = { slot_agreement : bool; prefix_monotone : bool; durable_lin : bool }

val log_verdict_ok : log_verdict -> bool

val log_slot_agreement : ('v log_op, 'r) History.t -> bool
(** Every pair of completed APPENDs on the same slot returned the same
    value. *)

val prefix_durability :
  committed_trace:int list -> ('v log_op, 'v) History.t -> log_verdict
(** Full prefix-durability check: {!log_slot_agreement}, monotonicity of
    [committed_trace] (the committed-prefix watermark sampled after
    every crash and at the end -- a regression means a quorum of durable
    votes was lost, i.e. a committed slot went back in time), and
    {!durably_linearizable} of the history against {!log_spec}. *)
