(** Replayable counterexample artifacts.

    A violation found by the model checker or an adversary sweep is only
    worth something if it survives the process that found it: this
    module packages a violating schedule together with a
    self-describing {e workload} (which system to rebuild) and the
    {!Rcons_runtime.Schedule.provenance} of the run that found it, as a
    small JSON file (conventionally under [_counterexamples/]).  Anyone
    -- CI, a colleague, a future session -- can then {!replay} the file
    against a freshly built system and watch the violation fire again,
    or be told that it no longer does (a fixed bug, or a stale witness).

    The workload is either the Figure 2 team-consensus harness -- an
    object type (by catalogue name), the recording level whose
    certificate instantiates the algorithm, the faithful/broken variant
    switch, and the two team inputs -- or, with [log_slots] set, the
    replicated-log harness ({!Rcons_log.Rlog}) built over per-slot
    instances of the same certificate.  Certificates are re-derived at
    replay time by the same deterministic witness search that produced
    them, so the artifact stores {e names}, not marshalled closures, and
    stays readable and diffable.

    {!minimize} runs the delta-debugging shrinker
    ({!Rcons_runtime.Shrink}) over the artifact's schedule, recording
    the original length in [shrunk_from]: the committed witness is the
    1-minimal, human-readable schedule. *)

(** Which system to rebuild: the Figure 2 team-consensus harness. *)
type workload = {
  type_name : string;  (** resolved via {!Rcons_spec.Catalogue.of_name} *)
  level : int;  (** recording level; team sizes come from the certificate *)
  faithful : bool;  (** [false] = the broken variant (negative control) *)
  input_a : int;
  input_b : int;
  persist : Rcons_runtime.Persist.policy;
      (** persistency model the system is built under (default [Eager]) *)
  annotated : bool;  (** persist-annotated algorithm variant *)
  flush_cost : int;  (** steps per persist barrier *)
  log_slots : int option;
      (** [Some k]: the {!Rcons_log.Rlog} replicated-log harness with
          [k] slots instead of the single team-consensus instance (the
          team-input fields are then unused -- the log derives one
          proposal per (team, slot)) *)
}

val team2 :
  ?faithful:bool ->
  ?level:int ->
  ?inputs:int * int ->
  ?persist:Rcons_runtime.Persist.policy ->
  ?annotated:bool ->
  ?flush_cost:int ->
  string ->
  workload
(** [team2 name] (defaults: [faithful:true], [level:2],
    [inputs:(111, 222)], [persist:Eager], [annotated:false],
    [flush_cost:1]): the standard workload on type [name].  The
    persistency fields only alter the canonical string (and hence the
    fingerprint) when non-default, so pre-existing eager artifacts keep
    their stored fingerprints; absent JSON fields likewise default to
    the eager model. *)

val log :
  ?faithful:bool ->
  ?level:int ->
  ?persist:Rcons_runtime.Persist.policy ->
  ?annotated:bool ->
  ?flush_cost:int ->
  slots:int ->
  string ->
  workload
(** [log ~slots name]: the replicated-log workload on type [name] --
    JSON kind ["replicated-log"], canonical prefix ["replicated-log:"]
    -- with one {!Rcons_algo.Team_consensus} instance per slot and the
    quorum-counter committed prefix checked by
    {!Rcons_log.Rlog.check_exn}.  Same defaults as {!team2}.
    @raise Invalid_argument when [slots < 1]. *)

val fingerprint : workload -> string
(** Hex digest of the canonical workload description; stored in
    provenance records to tie a schedule to the system it was recorded
    against. *)

val symmetry_classes : workload -> (int list list, string) result
(** Interchangeable-process classes of the workload
    ({!Rcons_check.Certificate.symmetry_classes} of its certificate),
    for {!Rcons_runtime.Explore.explore}'s [?symmetry].  Sound for this
    workload because every member of a team shares one input value.
    [Ok []] when the certificate carries no symmetry. *)

val mk : workload -> (unit -> Rcons_runtime.Sim.t * (unit -> unit), string) result
(** Resolve the workload into a system builder suitable for
    {!Rcons_runtime.Explore.explore} / {!Rcons_runtime.Shrink}.
    [Error] if the type name does not resolve or the type has no
    recording witness at the requested level. *)

(** A counterexample: workload + violating schedule + metadata. *)
type t = {
  workload : workload;
  msg : string;  (** the violation message the schedule reproduces *)
  schedule : Rcons_runtime.Schedule.choice list;
  shrunk_from : int option;  (** original length, when minimized *)
  provenance : Rcons_runtime.Schedule.provenance option;
}

val of_violation : workload -> Rcons_runtime.Explore.violation -> t

val minimize : ?max_checks:int -> t -> (t, string) result
(** Shrink the schedule to 1-minimality ({!Rcons_runtime.Shrink}),
    recording the original length in [shrunk_from].  [Error] if the
    workload fails to build or the schedule does not violate. *)

val replay : t -> [ `Violated of string | `Passed ]
(** Rebuild the workload and re-run the schedule.  [`Violated msg]: the
    invariant checker fired (msg may differ from [t.msg] if the checks
    are reordered); [`Passed]: the full schedule no longer violates --
    the witness is stale.
    @raise Invalid_argument if the workload does not build or the
    artifact's provenance fingerprint does not match the workload. *)

val to_json : t -> Rcons_runtime.Json.t
val of_json : Rcons_runtime.Json.t -> t

val save : file:string -> t -> unit
val load : file:string -> t
(** @raise Invalid_argument (or [Sys_error]) on unreadable input. *)
